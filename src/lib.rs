//! Umbrella crate for the Wormhole reproduction workspace.
//!
//! This crate only re-exports the workspace's public pieces so the runnable
//! examples (`examples/`) and the cross-crate integration tests (`tests/`)
//! have a single import root. Library users should depend on the individual
//! crates (`wormhole`, `index-traits`, the `baseline-*` crates, `workloads`,
//! `netsim`) directly.

pub use baseline_art as art;
pub use baseline_btree as btree;
pub use baseline_cuckoo as cuckoo;
pub use baseline_masstree as masstree;
pub use baseline_skiplist as skiplist;
pub use index_traits as traits;
pub use netsim;
/// Crash durability for the index (`wh-durable`): write-ahead log,
/// crash-consistent snapshots, and the recovering `DurableWormhole` /
/// `DurableSharded` fronts.
pub use wh_durable as durable;
pub use wh_epoch as epoch;
pub use wh_hash as hash;
/// The range-partitioned sharded front (`wh-shard`), re-exported as
/// `sharded` so callers can write `wormhole_repro::sharded::ShardedWormhole`
/// next to `wormhole_repro::wormhole::Wormhole` (the `wormhole` crate itself
/// cannot host the module — it is a dependency of `wh-shard`).
pub use wh_shard as sharded;
pub use workloads;
pub use wormhole;

#[cfg(test)]
mod tests {
    #[test]
    fn reexports_resolve() {
        use crate::traits::OrderedIndex;
        let mut bt: crate::btree::BPlusTree<u32> = crate::btree::BPlusTree::new();
        bt.set(b"k", 1);
        assert_eq!(bt.get(b"k"), Some(1));
    }
}
