//! Umbrella crate for the Wormhole reproduction workspace.
//!
//! This crate only re-exports the workspace's public pieces so the runnable
//! examples (`examples/`) and the cross-crate integration tests (`tests/`)
//! have a single import root. Library users should depend on the individual
//! crates (`wormhole`, `index-traits`, the `baseline-*` crates, `workloads`,
//! `netsim`) directly.
//!
//! # Serving layer
//!
//! [`netsim`] is both the paper's analytic link model and a real
//! batched serving layer: [`netsim::ShardServer`] runs N shard-affine
//! execution workers behind a routing dispatcher and a reassembling
//! collector over a [`sharded::ShardedWormhole`] — one router-table
//! snapshot per incoming message ([`sharded::ShardedWormhole::route_batch`]),
//! pipelined request/response framing, batched point-lookup runs
//! through `get_batch`, and streaming scans continued by stateless
//! resume keys ([`netsim::WireRequest::Scan`] /
//! [`netsim::WireResponse::ScanPage`]). The architecture book under
//! `docs/src/` documents the stack: the crate map and wire→leaf data
//! flow (`architecture.md`), the normative wire framing spec
//! (`wire-protocol.md`, byte examples asserted against the encoder in
//! a test), and three ADRs — router epochs + biased QSBR
//! (`adr-001-router-epoch-biased-qsbr.md`), WAL/snapshot ordering
//! (`adr-002-wal-ordering.md`), and the serving threading model
//! (`adr-003-serving-threading.md`). Client-observed p50/p99/p999
//! round-trip latency, including a migration-churn tail cell, is
//! tracked in `BENCH_service.json`.
//!
//! # Observability
//!
//! Every layer records into [`wh_telemetry`] (re-exported as
//! [`telemetry`]): a dependency-free metrics core with cache-line-padded
//! atomic counters, gauges with high-water marks, and log₂-bucketed
//! latency histograms, aggregated by a [`telemetry::Registry`] into
//! [`telemetry::MetricsSnapshot`]s and a Prometheus-style text
//! exposition. The instrumented layers:
//!
//! * `wormhole` — seqlock read retries, locked fallbacks, leaf
//!   splits/merges, LPM restarts ([`wormhole::WormholeMetrics`]).
//! * `epoch` — QSBR section entries, grace-period waits, drain-barrier
//!   waits, deferred-queue depth (`EpochMetrics`).
//! * `sharded` — router fast/classic entries, migration batches and
//!   moved keys, frozen-write waits, per-shard op counters
//!   (`ShardMetrics` plus `ShardedWormhole::register_metrics`).
//! * `durable` — fsync count and latency, group-commit batch factor,
//!   WAL bytes, checkpoint durations (`DurableMetrics`).
//! * `netsim` — per-op-type service latency, wire batch sizes, and a
//!   `STATS` wire command that ships the whole exposition in-band
//!   (`ServiceMetrics`, `WireRequest::Stats`).
//!
//! Recording is allocation-free and branch-cheap. Two kill switches
//! exist: the `telemetry-off` cargo feature compiles histogram buckets
//! and clock reads out entirely, and `telemetry::set_enabled(false)`
//! skips them at runtime. Counters and gauges stay live under both —
//! they double as load signals (the shard rebalancer) and test gates.

pub use baseline_art as art;
pub use baseline_btree as btree;
pub use baseline_cuckoo as cuckoo;
pub use baseline_masstree as masstree;
pub use baseline_skiplist as skiplist;
pub use index_traits as traits;
pub use netsim;
/// Crash durability for the index (`wh-durable`): write-ahead log,
/// crash-consistent snapshots, and the recovering `DurableWormhole` /
/// `DurableSharded` fronts.
pub use wh_durable as durable;
pub use wh_epoch as epoch;
pub use wh_hash as hash;
/// The range-partitioned sharded front (`wh-shard`), re-exported as
/// `sharded` so callers can write `wormhole_repro::sharded::ShardedWormhole`
/// next to `wormhole_repro::wormhole::Wormhole` (the `wormhole` crate itself
/// cannot host the module — it is a dependency of `wh-shard`).
pub use wh_shard as sharded;
/// The metrics core (`wh-telemetry`): counters, gauges, histograms, the
/// registry, and the global enable switch.
pub use wh_telemetry as telemetry;
pub use workloads;
pub use wormhole;

#[cfg(test)]
mod tests {
    #[test]
    fn reexports_resolve() {
        use crate::traits::OrderedIndex;
        let mut bt: crate::btree::BPlusTree<u32> = crate::btree::BPlusTree::new();
        bt.set(b"k", 1);
        assert_eq!(bt.get(b"k"), Some(1));
    }
}
