//! Ordered analytics over composite keys, comparing Wormhole with the
//! B+ tree and skip list baselines on the same data.
//!
//! The Az1 keyset concatenates item-user-time, so an ordered index can answer
//! "all reviews of item X" or "reviews of item X in a time window" with a
//! single range scan — the class of query that forces KV systems to use an
//! ordered index instead of a hash table. The example loads the same
//! composite keys into three indexes, runs the same analytics on each, and
//! checks they agree.
//!
//! Run with: `cargo run --release --example analytics_scan`

use std::time::Instant;

use baseline_btree::BPlusTree;
use baseline_skiplist::SkipList;
use index_traits::{successor_key, ConcurrentOrderedIndex, OrderedIndex};
use workloads::{generate, KeysetId};
use wormhole::Wormhole;

const KEYS: usize = 150_000;

/// Counts keys in `[prefix, successor(prefix))` from an ordered result list.
fn count_prefix(pairs: &[(Vec<u8>, u64)], prefix: &[u8]) -> usize {
    pairs
        .iter()
        .take_while(|(k, _)| k.starts_with(prefix))
        .count()
}

fn main() {
    println!("generating {KEYS} item-user-time keys (Az1)…");
    let keyset = generate(KeysetId::Az1, KEYS, 11);

    // Load the same data into three ordered indexes.
    let wormhole: Wormhole<u64> = Wormhole::new();
    let mut btree: BPlusTree<u64> = BPlusTree::new();
    let mut skiplist: SkipList<u64> = SkipList::new();
    for (i, key) in keyset.keys.iter().enumerate() {
        wormhole.set(key, i as u64);
        btree.set(key, i as u64);
        skiplist.set(key, i as u64);
    }

    // Pick a handful of item prefixes that actually occur in the data.
    let prefixes: Vec<Vec<u8>> = keyset
        .keys
        .iter()
        .step_by(KEYS / 10)
        .map(|k| k[..10].to_vec()) // "B" + 9 digits = the item id field
        .collect();

    println!("\nper-item review counts (item prefix -> count):");
    let mut total = [0usize; 3];
    #[allow(clippy::type_complexity)]
    let timers: Vec<(&str, Box<dyn Fn(&[u8], usize) -> Vec<(Vec<u8>, u64)> + '_>)> = vec![
        (
            "wormhole",
            Box::new(|start, n| wormhole.range_from(start, n)),
        ),
        ("b+tree", Box::new(|start, n| btree.range_from(start, n))),
        (
            "skiplist",
            Box::new(|start, n| skiplist.range_from(start, n)),
        ),
    ];

    for prefix in &prefixes {
        let mut counts = Vec::new();
        for (idx, (_, scan)) in timers.iter().enumerate() {
            let pairs = scan(prefix, 10_000);
            let count = count_prefix(&pairs, prefix);
            counts.push(count);
            total[idx] += count;
        }
        assert!(
            counts.windows(2).all(|w| w[0] == w[1]),
            "indexes disagree on prefix {:?}: {counts:?}",
            String::from_utf8_lossy(prefix)
        );
        println!(
            "  {} -> {} reviews",
            String::from_utf8_lossy(prefix),
            counts[0]
        );
    }
    println!("all three indexes agree on every prefix count ✔");

    // Time-window query on one item: keys are item-user-time, so a window on
    // the trailing timestamp needs a scan over the item's range with a
    // filter — still a single ordered scan per item. The resumable cursor
    // streams it without materialising the item's whole range: borrowed
    // pairs come straight out of a reused per-leaf batch arena, and the
    // scan stops at the prefix's upper bound without ever guessing a
    // `range_from` window size.
    let item = &prefixes[0];
    let upper = successor_key(item).unwrap();
    let window = (1_150_000_000u64, 1_250_000_000u64);
    let mut in_window = 0usize;
    let mut cursor = wormhole.scan(item);
    while let Some((key, _)) = cursor.next() {
        if key >= upper.as_slice() {
            break;
        }
        let ts: u64 = String::from_utf8_lossy(&key[key.len() - 10..])
            .parse()
            .unwrap_or(0);
        if (window.0..window.1).contains(&ts) {
            in_window += 1;
        }
    }
    println!(
        "\nreviews of item {} in time window [{}, {}): {in_window}",
        String::from_utf8_lossy(item),
        window.0,
        window.1
    );

    // A quick throughput comparison of the full-table ordered scan.
    println!("\nfull ordered scan of {} keys:", KEYS);
    for (name, scan) in &timers {
        let start = Instant::now();
        let all = scan(b"", KEYS + 1);
        let secs = start.elapsed().as_secs_f64();
        assert_eq!(all.len(), KEYS);
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0), "scan out of order");
        println!("  {name:9} {:.1} Mkeys/s", KEYS as f64 / secs / 1e6);
    }
    // The same drain streamed through the cursor: no per-key materialisation.
    {
        let start = Instant::now();
        let mut cursor = wormhole.scan(b"");
        let mut streamed = 0usize;
        let mut prev: Vec<u8> = Vec::new();
        while let Some((key, _)) = cursor.next() {
            assert!(streamed == 0 || prev.as_slice() < key, "scan out of order");
            prev.clear();
            prev.extend_from_slice(key);
            streamed += 1;
        }
        let secs = start.elapsed().as_secs_f64();
        assert_eq!(streamed, KEYS);
        println!(
            "  {:9} {:.1} Mkeys/s (streaming, zero-copy batches)",
            "wh-cursor",
            KEYS as f64 / secs / 1e6
        );
    }
}
