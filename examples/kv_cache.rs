//! A Memcached-style shared key-value cache served by the **sharded**
//! Wormhole front — the scenario that motivates the paper's introduction
//! (in-memory KV stores whose index cost dominates once I/O is gone), at
//! the multi-writer scale where a single index's writer mutex would start
//! to serialise structural changes.
//!
//! The cache range-partitions the keyset over four independent Wormhole
//! shards (boundaries sampled from the expected keys, so even a skewed
//! keyset spreads evenly). Several worker threads serve a mixed GET/SET
//! workload, while one analytics thread periodically runs ordered range
//! scans — which stream straight across shard boundaries, the operation a
//! plain hash-partitioned cache cannot serve in key order.
//!
//! An interlude demonstrates **batched multi-get**: a client fetches an
//! 800-key working set through `get_batch` — one router critical section,
//! pipelined probes with overlapped cache misses per shard — and the
//! per-batch latency is printed next to the same keys read one get at a
//! time.
//!
//! The second act demonstrates **online rebalancing**: the workload
//! shifts onto a narrow hot range (one shard absorbs everything, the way
//! a tenant going viral would), a rebalancer thread watches the per-shard
//! op counters through `maybe_rebalance()`, and the boundary migrates
//! live — no rebuild, no downtime — until the hot range spans shards
//! again. Per-shard op counters are printed before and after.
//!
//! The third act demonstrates **crash durability**: the cache contents
//! are persisted into a `DurableSharded` (one write-ahead log per shard),
//! checkpointed into snapshots, and the in-memory state is dropped — the
//! process forgetting everything it served. `open()` then rebuilds the
//! cache from disk (newest snapshot + WAL tail per shard), the contents
//! are verified entry for entry, and the workers resume serving against
//! the durable index, with every acknowledged write group-committed.
//!
//! Run with: `cargo run --release --example kv_cache`

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use index_traits::{ConcurrentOrderedIndex, DurableIndex};
use wh_durable::{DurableOptions, DurableSharded, SyncPolicy};
use wh_shard::{RebalanceConfig, ShardedConfig, ShardedWormhole};
use wh_telemetry::{MetricsSnapshot, Registry};
use workloads::{generate, uniform_indices, KeysetId};

const KEYS: usize = 200_000;
const OPS_PER_WORKER: usize = 300_000;
const SHARDS: usize = 4;

/// Dumps the cache-facing slice of a [`MetricsSnapshot`]: per-shard load
/// (the same counters the rebalancer reads), the router path split, and
/// migration progress. Everything here comes off the snapshot — the
/// example's "dashboard" is the telemetry registry, not ad-hoc printf
/// plumbing.
fn dump_cache_snapshot(cache: &ShardedWormhole<u64>, snap: &MetricsSnapshot, label: &str) {
    println!("{label}:");
    for s in 0..cache.shard_count() {
        println!(
            "  shard {s}: {:>7} entries, {:>9} ops",
            cache.shard(s).len(),
            snap.counter(&format!("cache_shard{s}_ops_total")),
        );
    }
    println!(
        "  router: {} fast entries / {} classic; migrations: {} batches, {} keys moved",
        snap.counter("cache_router_fast_entries_total"),
        snap.counter("cache_router_classic_entries_total"),
        snap.counter("cache_migration_batches_total"),
        snap.counter("cache_migration_moved_keys_total"),
    );
}

fn main() {
    let workers = std::thread::available_parallelism()
        .map(|n| n.get().min(8))
        .unwrap_or(4);
    println!("generating {KEYS} Az1-style keys…");
    let keyset = generate(KeysetId::Az1, KEYS, 7);
    // Boundaries drawn from a thin sample of the keyset: each shard gets
    // roughly a quarter of the traffic, whatever the key distribution.
    let sample: Vec<&[u8]> = keyset.keys.iter().step_by(64).map(Vec::as_slice).collect();
    let config = ShardedConfig::from_sample(SHARDS, &sample).with_rebalance(RebalanceConfig {
        min_pair_ops: 10_000,
        imbalance_percent: 200,
        batch_keys: 1_024,
        sample_cap: 4_096,
        min_move_keys: 512,
    });
    let cache: Arc<ShardedWormhole<u64>> = Arc::new(ShardedWormhole::with_config(config));
    // Every layer below records into this registry; the example's stats
    // printing is snapshot dumps of it.
    let registry = Arc::new(Registry::new());
    cache.register_metrics(&registry, "cache");
    println!(
        "sharded cache: {} shards, boundaries at {:?}",
        cache.shard_count(),
        cache
            .boundaries()
            .iter()
            .map(|b| String::from_utf8_lossy(b).into_owned())
            .collect::<Vec<_>>(),
    );

    // Warm the cache with half of the keyset.
    for (i, key) in keyset.keys.iter().take(KEYS / 2).enumerate() {
        cache.set(key, i as u64);
    }
    println!("cache warmed with {} entries", cache.len());
    for s in 0..cache.shard_count() {
        println!("  shard {s}: {} entries", cache.shard(s).len());
    }

    let hits = Arc::new(AtomicUsize::new(0));
    let misses = Arc::new(AtomicUsize::new(0));
    let start = Instant::now();

    std::thread::scope(|scope| {
        // Mixed GET/SET workers (90% GET / 10% SET); writers on different
        // shards never meet on a writer mutex.
        for w in 0..workers {
            let cache = Arc::clone(&cache);
            let keys = &keyset.keys;
            let hits = Arc::clone(&hits);
            let misses = Arc::clone(&misses);
            scope.spawn(move || {
                let probes = uniform_indices(OPS_PER_WORKER, keys.len(), w as u64 + 100);
                for (i, &p) in probes.iter().enumerate() {
                    if i % 10 == 0 {
                        cache.set(&keys[p], p as u64);
                    } else if cache.get(&keys[p]).is_some() {
                        hits.fetch_add(1, Ordering::Relaxed);
                    } else {
                        misses.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
        // One analytics thread scanning key ranges while writers run; the
        // ordered windows cross shard boundaries transparently.
        {
            let cache = Arc::clone(&cache);
            scope.spawn(move || {
                let mut scanned = 0usize;
                for i in 0..200 {
                    let start_key = format!("B{:09}", (i * 4999) % 1_000_000);
                    scanned += cache.range_from(start_key.as_bytes(), 100).len();
                }
                println!("analytics thread scanned {scanned} entries in ordered ranges");
            });
        }
    });

    let secs = start.elapsed().as_secs_f64();
    let total_ops = workers * OPS_PER_WORKER;
    println!(
        "{workers} workers performed {total_ops} ops in {secs:.2}s  ({:.2} Mops/s)",
        total_ops as f64 / secs / 1e6
    );
    println!(
        "hits: {}, misses: {}, final cache size: {}",
        hits.load(Ordering::Relaxed),
        misses.load(Ordering::Relaxed),
        cache.len()
    );

    // ---- Interlude: multi-get, the way a cache client actually reads. ----
    // A page render fetches its whole working set in one round trip; the
    // sharded front splits the batch by boundary inside one router critical
    // section and each shard pipelines its probes (hashes up front, bucket
    // prefetches, interleaved descents), so a batch costs far less than
    // the same keys fetched one get at a time.
    {
        let working_set: Vec<&[u8]> = uniform_indices(800, keyset.keys.len(), 31)
            .into_iter()
            .map(|p| keyset.keys[p].as_slice())
            .collect();
        let rounds = 200usize;
        let start = Instant::now();
        let mut hits = 0usize;
        for _ in 0..rounds {
            hits += cache.get_batch(&working_set).iter().flatten().count();
        }
        let batched = start.elapsed();
        let start = Instant::now();
        let mut loop_hits = 0usize;
        for _ in 0..rounds {
            loop_hits += working_set
                .iter()
                .filter(|k| cache.get(k).is_some())
                .count();
        }
        let single = start.elapsed();
        assert_eq!(hits, loop_hits);
        println!(
            "\nmulti-get of a {}-key working set ({} hits): {:.1} µs/batch batched \
             vs {:.1} µs/batch as single gets",
            working_set.len(),
            hits / rounds,
            batched.as_secs_f64() * 1e6 / rounds as f64,
            single.as_secs_f64() * 1e6 / rounds as f64,
        );
    }

    // ---- Act 2: the hot range shifts, the rebalancer follows. ----
    // A contiguous slice at the bottom of the key order — one shard's
    // territory — suddenly takes all the traffic (a tenant going viral).
    let mut sorted: Vec<&Vec<u8>> = keyset.keys.iter().collect();
    sorted.sort_unstable();
    let hot: Vec<&Vec<u8>> = sorted[..KEYS / 8].to_vec();
    println!(
        "\nhot-range shift: all traffic moves to the lowest {} keys",
        hot.len()
    );
    dump_cache_snapshot(&cache, &registry.snapshot(), "before the shift");
    let before = cache.boundaries();

    let live_workers = Arc::new(AtomicUsize::new(workers));
    let start = Instant::now();
    std::thread::scope(|scope| {
        // The rebalancer: a background ticker calling the counter-driven
        // policy — every migration is a live boundary move, readers and
        // unrelated writers never stop. It retires once the last worker
        // drains.
        {
            let cache = Arc::clone(&cache);
            let live_workers = Arc::clone(&live_workers);
            scope.spawn(move || {
                let mut migrations = 0usize;
                let mut moved = 0usize;
                while live_workers.load(Ordering::Relaxed) > 0 {
                    std::thread::sleep(Duration::from_millis(50));
                    if let wh_shard::RebalanceOutcome::Migrated(report) = cache.maybe_rebalance() {
                        migrations += 1;
                        moved += report.moved_keys;
                        println!(
                            "  rebalance: boundary {} of donor shard {} moved \
                             ({} keys in {} batches, grace waits {} free / {} blocked)",
                            report.pair,
                            report.donor,
                            report.moved_keys,
                            report.batches,
                            report.grace_waits_free,
                            report.grace_waits_blocked,
                        );
                    }
                }
                println!("rebalancer: {migrations} migrations, {moved} keys moved live");
            });
        }
        // The dashboard: periodic MetricsSnapshot dumps while the skewed
        // phase runs — migration progress and the router path split, read
        // from the same registry a STATS scrape would render.
        {
            let registry = Arc::clone(&registry);
            let live_workers = Arc::clone(&live_workers);
            scope.spawn(move || {
                while live_workers.load(Ordering::Relaxed) > 0 {
                    std::thread::sleep(Duration::from_millis(500));
                    let snap = registry.snapshot();
                    println!(
                        "  [snapshot] moved_keys={} batches={} fast={} classic={} \
                         frozen_waits={}",
                        snap.counter("cache_migration_moved_keys_total"),
                        snap.counter("cache_migration_batches_total"),
                        snap.counter("cache_router_fast_entries_total"),
                        snap.counter("cache_router_classic_entries_total"),
                        snap.counter("cache_frozen_write_waits_total"),
                    );
                }
            });
        }
        for w in 0..workers {
            let cache = Arc::clone(&cache);
            let hot = &hot;
            let live_workers = Arc::clone(&live_workers);
            scope.spawn(move || {
                let probes = uniform_indices(OPS_PER_WORKER * 2, hot.len(), w as u64 + 900);
                for (i, &p) in probes.iter().enumerate() {
                    if i % 10 == 0 {
                        cache.set(hot[p], p as u64);
                    } else {
                        std::hint::black_box(cache.get(hot[p]));
                    }
                }
                live_workers.fetch_sub(1, Ordering::Relaxed);
            });
        }
    });

    let secs = start.elapsed().as_secs_f64();
    println!(
        "skewed phase: {} ops in {secs:.2}s  ({:.2} Mops/s)",
        workers * OPS_PER_WORKER * 2,
        (workers * OPS_PER_WORKER * 2) as f64 / secs / 1e6
    );
    dump_cache_snapshot(
        &cache,
        &registry.snapshot(),
        "after the shift + live rebalancing",
    );
    let after = cache.boundaries();
    for (i, (b, a)) in before.iter().zip(&after).enumerate() {
        if b != a {
            println!(
                "boundary {i} migrated: {:?} -> {:?}",
                String::from_utf8_lossy(b),
                String::from_utf8_lossy(a)
            );
        }
    }
    cache.check_invariants();
    println!("invariants hold after live migration — no rebuild, no downtime");

    // ---- Act 3: the cache survives its process. ----
    // Persist the served state into a durable sharded index (one WAL per
    // shard, boundaries inherited from wherever the rebalancer left
    // them), checkpoint, and throw the in-memory cache away — then prove
    // a fresh `open()` serves the exact same contents.
    let store_dir = std::env::temp_dir().join(format!("kv_cache_store_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    println!("\npersisting the cache to {}…", store_dir.display());
    let durable_options = DurableOptions {
        // Bulk load without a barrier per entry; one sync at the end
        // makes the whole image durable at once.
        sync: SyncPolicy::Manual,
        ..DurableOptions::default()
    };
    let boundaries = cache.boundaries();
    let expected: Vec<(Vec<u8>, u64)> = cache.range_from(b"", usize::MAX);
    let start = Instant::now();
    {
        let store: DurableSharded<u64> =
            DurableSharded::open_with(&store_dir, &boundaries, durable_options)
                .expect("create durable store");
        for (key, value) in &expected {
            store.set(key, *value);
        }
        store.wal_sync().expect("durability barrier");
        let covered = store.checkpoint().expect("checkpoint");
        println!(
            "persisted {} entries in {:.2}s (checkpoint covers LSN {covered} per shard)",
            expected.len(),
            start.elapsed().as_secs_f64()
        );
        // `store` (and `cache` conceptually) drop here: process state gone.
    }
    drop(cache);

    let start = Instant::now();
    let store: Arc<DurableSharded<u64>> = Arc::new(
        DurableSharded::open_with(&store_dir, &[], DurableOptions::default())
            .expect("recover durable store"),
    );
    // The recovered store's WAL metrics join the dashboard registry.
    let durable_registry = Arc::new(Registry::new());
    store.register_metrics(&durable_registry, "store");
    println!(
        "recovered {} entries in {:.2}s from snapshots + WAL tails",
        store.len(),
        start.elapsed().as_secs_f64()
    );
    for s in 0..store.shard_count() {
        let report = store.shard(s).recovery();
        println!(
            "  shard {s}: {} snapshot records, {} WAL ops replayed, committed LSN {}",
            report.snapshot_records, report.replayed_operations, report.committed_lsn
        );
    }
    let recovered: Vec<(Vec<u8>, u64)> = store.range_from(b"", usize::MAX);
    assert_eq!(recovered, expected, "recovered contents diverge");
    println!(
        "verified: all {} entries match the pre-drop cache",
        recovered.len()
    );

    // Resume serving — same mixed workload shape, now with every
    // acknowledged SET durable (group commit batches the fsyncs).
    let resume_ops = 4_000usize;
    let start = Instant::now();
    std::thread::scope(|scope| {
        for w in 0..workers {
            let store = Arc::clone(&store);
            let keys = &keyset.keys;
            scope.spawn(move || {
                let probes = uniform_indices(resume_ops, keys.len(), w as u64 + 4242);
                for (i, &p) in probes.iter().enumerate() {
                    if i % 10 == 0 {
                        store.set(&keys[p], p as u64);
                    } else {
                        std::hint::black_box(store.get(&keys[p]));
                    }
                }
            });
        }
    });
    let secs = start.elapsed().as_secs_f64();
    // The WAL picture, straight off the telemetry snapshot: fsync count
    // and latency, group-commit batch factor, and bytes appended.
    let snap = durable_registry.snapshot();
    let mut fsyncs = 0u64;
    let mut wal_bytes = 0u64;
    let sets = workers * resume_ops / 10;
    println!(
        "resumed serving: {} ops in {secs:.2}s",
        workers * resume_ops
    );
    for s in 0..store.shard_count() {
        fsyncs += snap.counter(&format!("store_shard{s}_fsyncs_total"));
        wal_bytes += snap.counter(&format!("store_shard{s}_wal_bytes_total"));
        if let (Some(latency), Some(batch)) = (
            snap.histogram(&format!("store_shard{s}_fsync_ns")),
            snap.histogram(&format!("store_shard{s}_commit_batch_ops")),
        ) {
            println!(
                "  shard {s} WAL: {} fsyncs (p50 {} ns, p99 {} ns), \
                 batch factor mean {:.1} ops/commit",
                snap.counter(&format!("store_shard{s}_fsyncs_total")),
                latency.p50(),
                latency.p99(),
                batch.mean(),
            );
        }
    }
    println!(
        "  {sets} durable SETs cost {fsyncs} fsyncs and {wal_bytes} WAL bytes \
         ({:.1} sets per fsync)",
        sets as f64 / fsyncs.max(1) as f64
    );
    let _ = std::fs::remove_dir_all(&store_dir);
    println!("the cache now outlives its process — crash recovery is a reopen");
}
