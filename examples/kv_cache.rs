//! A Memcached-style shared key-value cache served by the **sharded**
//! Wormhole front — the scenario that motivates the paper's introduction
//! (in-memory KV stores whose index cost dominates once I/O is gone), at
//! the multi-writer scale where a single index's writer mutex would start
//! to serialise structural changes.
//!
//! The cache range-partitions the keyset over four independent Wormhole
//! shards (boundaries sampled from the expected keys, so even a skewed
//! keyset spreads evenly). Several worker threads serve a mixed GET/SET
//! workload, while one analytics thread periodically runs ordered range
//! scans — which stream straight across shard boundaries, the operation a
//! plain hash-partitioned cache cannot serve in key order.
//!
//! Run with: `cargo run --release --example kv_cache`

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use index_traits::ConcurrentOrderedIndex;
use wh_shard::ShardedWormhole;
use workloads::{generate, uniform_indices, KeysetId};

const KEYS: usize = 200_000;
const OPS_PER_WORKER: usize = 300_000;
const SHARDS: usize = 4;

fn main() {
    let workers = std::thread::available_parallelism()
        .map(|n| n.get().min(8))
        .unwrap_or(4);
    println!("generating {KEYS} Az1-style keys…");
    let keyset = generate(KeysetId::Az1, KEYS, 7);
    // Boundaries drawn from a thin sample of the keyset: each shard gets
    // roughly a quarter of the traffic, whatever the key distribution.
    let sample: Vec<&[u8]> = keyset.keys.iter().step_by(64).map(Vec::as_slice).collect();
    let cache: Arc<ShardedWormhole<u64>> = Arc::new(ShardedWormhole::from_sample(SHARDS, &sample));
    println!(
        "sharded cache: {} shards, boundaries at {:?}",
        cache.shard_count(),
        cache
            .boundaries()
            .iter()
            .map(|b| String::from_utf8_lossy(b).into_owned())
            .collect::<Vec<_>>(),
    );

    // Warm the cache with half of the keyset.
    for (i, key) in keyset.keys.iter().take(KEYS / 2).enumerate() {
        cache.set(key, i as u64);
    }
    println!("cache warmed with {} entries", cache.len());
    for s in 0..cache.shard_count() {
        println!("  shard {s}: {} entries", cache.shard(s).len());
    }

    let hits = Arc::new(AtomicUsize::new(0));
    let misses = Arc::new(AtomicUsize::new(0));
    let start = Instant::now();

    std::thread::scope(|scope| {
        // Mixed GET/SET workers (90% GET / 10% SET); writers on different
        // shards never meet on a writer mutex.
        for w in 0..workers {
            let cache = Arc::clone(&cache);
            let keys = &keyset.keys;
            let hits = Arc::clone(&hits);
            let misses = Arc::clone(&misses);
            scope.spawn(move || {
                let probes = uniform_indices(OPS_PER_WORKER, keys.len(), w as u64 + 100);
                for (i, &p) in probes.iter().enumerate() {
                    if i % 10 == 0 {
                        cache.set(&keys[p], p as u64);
                    } else if cache.get(&keys[p]).is_some() {
                        hits.fetch_add(1, Ordering::Relaxed);
                    } else {
                        misses.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
        // One analytics thread scanning key ranges while writers run; the
        // ordered windows cross shard boundaries transparently.
        {
            let cache = Arc::clone(&cache);
            scope.spawn(move || {
                let mut scanned = 0usize;
                for i in 0..200 {
                    let start_key = format!("B{:09}", (i * 4999) % 1_000_000);
                    scanned += cache.range_from(start_key.as_bytes(), 100).len();
                }
                println!("analytics thread scanned {scanned} entries in ordered ranges");
            });
        }
    });

    let secs = start.elapsed().as_secs_f64();
    let total_ops = workers * OPS_PER_WORKER;
    println!(
        "{workers} workers performed {total_ops} ops in {secs:.2}s  ({:.2} Mops/s)",
        total_ops as f64 / secs / 1e6
    );
    println!(
        "hits: {}, misses: {}, final cache size: {}",
        hits.load(Ordering::Relaxed),
        misses.load(Ordering::Relaxed),
        cache.len()
    );
}
