//! URL-keyed routing table: prefix queries over long string keys.
//!
//! The paper singles out URL keys (the MemeTracker keyset, ~82 bytes with
//! long shared prefixes) as the hard case for tries and comparison-based
//! indexes alike. This example indexes URL-like keys with Wormhole and
//! answers two kinds of queries a URL store needs:
//!
//! * exact lookups ("is this URL cached, and where?");
//! * prefix scans ("every cached page under this site/section"), built from
//!   an ordered range query bounded by the prefix's successor key.
//!
//! Run with: `cargo run --release --example url_router`

use index_traits::{successor_key, ConcurrentOrderedIndex};
use workloads::{generate, KeysetId};
use wormhole::Wormhole;

fn main() {
    let keyset = generate(KeysetId::Url, 100_000, 3);
    let index: Wormhole<u32> = Wormhole::new();
    for (i, url) in keyset.keys.iter().enumerate() {
        // Value: the backend shard that stores the page.
        index.set(url, (i % 64) as u32);
    }
    println!(
        "indexed {} URLs (avg length {:.1} bytes)",
        index.len(),
        keyset.avg_len()
    );

    // Exact lookups.
    let sample = &keyset.keys[keyset.keys.len() / 2];
    println!(
        "\nexact lookup {} -> shard {:?}",
        String::from_utf8_lossy(sample),
        index.get(sample)
    );
    println!(
        "exact lookup of an unknown URL -> {:?}",
        index.get(b"http://news.example.com/not/in/the/index.html")
    );

    // Prefix scan: all cached pages under one site section.
    let prefix = b"http://news.example.com/politics/".to_vec();
    let upper = successor_key(&prefix).expect("prefix has a successor");
    let mut count = 0usize;
    let mut shown = 0usize;
    let mut cursor = prefix.clone();
    println!("\npages under {}:", String::from_utf8_lossy(&prefix));
    loop {
        let batch = index.range_from(&cursor, 512);
        if batch.is_empty() {
            break;
        }
        let mut advanced = false;
        for (url, shard) in batch {
            if url >= upper {
                advanced = false;
                break;
            }
            if shown < 5 {
                println!("  shard {:2}  {}", shard, String::from_utf8_lossy(&url));
                shown += 1;
            }
            count += 1;
            cursor = url;
            cursor.push(0); // resume strictly after the last returned URL
            advanced = true;
        }
        if !advanced {
            break;
        }
    }
    println!("  … {count} pages total under that prefix");

    // Re-route a section: overwrite the shard of every page under a prefix.
    let rerouted = reroute(&index, b"http://blog.dailymedia.org/sports/", 7);
    println!("\nrerouted {rerouted} sports pages on blog.dailymedia.org to shard 7");
}

/// Points every URL under `prefix` at `new_shard`, returning how many were
/// updated. Uses the same bounded range-scan pattern as the read path.
fn reroute(index: &Wormhole<u32>, prefix: &[u8], new_shard: u32) -> usize {
    let upper = successor_key(prefix).expect("prefix has a successor");
    let mut updated = 0usize;
    let mut cursor = prefix.to_vec();
    loop {
        let batch = index.range_from(&cursor, 512);
        if batch.is_empty() {
            return updated;
        }
        let mut advanced = false;
        for (url, _) in batch {
            if url.as_slice() >= upper.as_slice() {
                return updated;
            }
            index.set(&url, new_shard);
            updated += 1;
            cursor = url;
            cursor.push(0);
            advanced = true;
        }
        if !advanced {
            return updated;
        }
    }
}
