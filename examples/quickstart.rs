//! Quickstart: the Wormhole index as an ordered key-value map.
//!
//! Run with: `cargo run --release --example quickstart`

use index_traits::{ConcurrentOrderedIndex, OrderedIndex};
use wormhole::{Wormhole, WormholeConfig, WormholeUnsafe};

fn main() {
    // ----------------------------------------------------------------
    // The thread-safe index: share it freely across threads.
    // ----------------------------------------------------------------
    let index: Wormhole<String> = Wormhole::new();
    let names = [
        "Aaron", "Abbe", "Andrew", "Austin", "Denice", "Jacob", "James", "Jason", "John", "Joseph",
        "Julian", "Justin",
    ];
    for (i, name) in names.iter().enumerate() {
        index.set(name.as_bytes(), format!("person #{i}"));
    }

    println!("lookup James   -> {:?}", index.get(b"James"));
    println!("lookup Brown   -> {:?}", index.get(b"Brown"));

    // Range query: every key at or after "Brown", like the paper's example
    // of searching between keys that are not in the index.
    println!("\nrange from \"Brown\", 4 keys:");
    for (key, value) in index.range_from(b"Brown", 4) {
        println!("  {} -> {}", String::from_utf8_lossy(&key), value);
    }

    // Prefix query: all keys starting with "J".
    let prefix = index_traits::KeyRange::prefix(b"J");
    println!("\nkeys with prefix \"J\":");
    for (key, _) in index.range_from(b"J", usize::MAX) {
        if !prefix.contains(&key) {
            break;
        }
        println!("  {}", String::from_utf8_lossy(&key));
    }

    // Deletion.
    index.del(b"Jacob");
    println!(
        "\nafter deleting Jacob, lookup -> {:?}",
        index.get(b"Jacob")
    );
    println!("total keys: {}", index.len());

    // ----------------------------------------------------------------
    // The thread-unsafe variant (the paper's "Wormhole-unsafe"): the same
    // structure without locks, for single-threaded or externally
    // synchronised use. Optimisations can be toggled per §3 of the paper.
    // ----------------------------------------------------------------
    let config = WormholeConfig::optimized().with_leaf_capacity(64);
    let mut single: WormholeUnsafe<u64> = WormholeUnsafe::with_config(config);
    for i in 0..10_000u64 {
        single.set(format!("key-{i:06}").as_bytes(), i);
    }
    println!(
        "\nthread-unsafe index: {} keys across {} leaf nodes, {} meta items",
        single.len(),
        single.leaf_count(),
        single.meta_items()
    );
    let stats = single.stats();
    println!(
        "memory: {:.2} MB total ({:.2} MB structure)",
        stats.total_bytes() as f64 / 1e6,
        stats.structure_bytes as f64 / 1e6
    );
}
