//! Wire-level STATS acceptance: a netsim service serving a sharded
//! Wormhole answers a `WireRequest::Stats` probe with a text exposition
//! that carries at least one counter from every instrumented crate —
//! `wormhole`, `wh-epoch`, `wh-shard`, `wh-durable`, and `netsim` itself.

use std::sync::Arc;

use wormhole_repro::durable::DurableWormhole;
use wormhole_repro::netsim::{KvService, WireRequest};
use wormhole_repro::sharded::ShardedWormhole;
use wormhole_repro::traits::ConcurrentOrderedIndex;

fn parse_counter(exposition: &str, name: &str) -> Option<u64> {
    exposition.lines().find_map(|line| {
        let (n, v) = line.split_once(' ')?;
        (n == name).then(|| v.parse().ok())?
    })
}

#[test]
fn stats_exposition_covers_every_instrumented_crate() {
    let dir = std::env::temp_dir().join(format!("wh-stats-roundtrip-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // A sharded front (which itself aggregates wormhole + epoch metrics)
    // behind the simulated service, plus a durable index registered into
    // the same registry so its WAL metrics ride the same exposition.
    let sharded: Arc<ShardedWormhole<u64>> = Arc::new(ShardedWormhole::new(4));
    let durable: DurableWormhole<u64> = DurableWormhole::open(&dir).unwrap();
    for i in 0..2000u64 {
        sharded.set(format!("key-{i:08}").as_bytes(), i);
    }
    for i in 0..32u64 {
        durable.set(format!("wal-{i:04}").as_bytes(), i);
    }

    let service = KvService::with_batch_size(sharded.clone(), 256);
    sharded.register_metrics(service.registry(), "wh_shard");
    durable.register_metrics(service.registry(), "wh_durable");
    service
        .registry()
        .lint()
        .expect("full-stack metric names well-formed and unique");

    // Mix the probe into ordinary traffic: lookups first, then Stats in
    // the same request stream, all over the wire.
    let mut requests: Vec<WireRequest> = (0..500u64)
        .map(|i| WireRequest::Get {
            key: format!("key-{:08}", i * 3 % 2000).into_bytes(),
        })
        .collect();
    requests.push(WireRequest::Stats);
    let stats = service.run(&requests);
    assert_eq!(stats.operations, 501);

    let text = service.fetch_stats();
    // ≥1 counter from each of the five instrumented crates, with the
    // values the exposition should plausibly carry.
    let netsim_requests =
        parse_counter(&text, "netsim_requests_total").expect("netsim counter present");
    assert!(netsim_requests >= 501, "service saw the wire traffic");
    let shard_ops: u64 = (0..4)
        .map(|i| parse_counter(&text, &format!("wh_shard_shard{i}_ops_total")).unwrap_or(0))
        .sum();
    assert!(shard_ops >= 2500, "per-shard op counters cover sets + gets");
    let splits =
        parse_counter(&text, "wh_shard_wormhole_splits_total").expect("wormhole counter present");
    assert!(splits > 0, "2000 inserts split leaves");
    assert!(
        parse_counter(&text, "wh_shard_router_epoch_section_entries_total").is_some(),
        "epoch counter present"
    );
    let fsyncs = parse_counter(&text, "wh_durable_fsyncs_total").expect("durable counter present");
    assert!(fsyncs > 0, "durable sets fsynced");

    std::fs::remove_dir_all(&dir).unwrap();
}
