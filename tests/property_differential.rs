//! Property-based differential tests across the whole index zoo: arbitrary
//! operation sequences must leave every ordered index in exactly the same
//! state as the `BTreeMap` model, and the cuckoo hash table in the same state
//! as a `HashMap` model.

use std::collections::{BTreeMap, HashMap};

use baseline_art::Art;
use baseline_btree::BPlusTree;
use baseline_cuckoo::CuckooHashTable;
use baseline_masstree::Masstree;
use baseline_skiplist::SkipList;
use index_traits::{ConcurrentOrderedIndex, Cursor, OrderedIndex, UnorderedIndex};
use proptest::prelude::*;
use wh_shard::{RebalanceConfig, ShardedConfig, ShardedWormhole};
use wormhole::{Wormhole, WormholeConfig, WormholeUnsafe};

/// The sharded front under differential test: boundaries planted inside
/// every family the key strategies generate (short binary keys, printable
/// ASCII, high-byte blobs), so generated operations and cursor windows
/// constantly land on and cross shard edges. The rebalance policy is
/// cranked all the way down so interleaved `maybe_rebalance()` calls
/// actually migrate boundaries mid-sequence.
///
/// Both router regimes run side by side in every differential: the default
/// instance routes through the migration-idle biased fast path (with the
/// interleaved migrations constantly revoking/restoring the bias via the
/// draining barrier), the `fast_path(false)` instance through the classic
/// critical-section path only.
fn sharded_with_fast_path(fast_path: bool) -> ShardedWormhole<u64> {
    ShardedWormhole::with_config(
        ShardedConfig::with_boundaries(vec![
            vec![0x01],
            vec![0x02, 0x02],
            b"5".to_vec(),
            b"a".to_vec(),
            vec![0xa0],
        ])
        .with_inner(WormholeConfig::optimized().with_leaf_capacity(8))
        .with_rebalance(RebalanceConfig {
            min_pair_ops: 4,
            imbalance_percent: 120,
            batch_keys: 4,
            sample_cap: 64,
            min_move_keys: 1,
        })
        .with_router_fast_path(fast_path),
    )
}

fn sharded_under_test() -> ShardedWormhole<u64> {
    sharded_with_fast_path(true)
}

/// An operation in the generated sequences.
#[derive(Debug, Clone)]
enum Op {
    Set(Vec<u8>, u64),
    Del(Vec<u8>),
    Range(Vec<u8>, usize),
    /// Nudges the sharded front's online rebalancer (no observable effect
    /// on the key/value state — every other index ignores it).
    Rebalance,
}

fn key_strategy() -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        // Short binary keys exercise prefix/zero-byte corner cases.
        proptest::collection::vec(0u8..4, 0..6),
        // ASCII keys of moderate length.
        proptest::collection::vec(0x20u8..0x7F, 1..20),
        // A few long keys.
        proptest::collection::vec(any::<u8>(), 40..80),
    ]
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (key_strategy(), any::<u64>()).prop_map(|(k, v)| Op::Set(k, v)),
        1 => key_strategy().prop_map(Op::Del),
        1 => (key_strategy(), 0usize..40).prop_map(|(k, n)| Op::Range(k, n)),
        1 => Just(Op::Rebalance),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn ordered_indexes_match_btreemap(ops in proptest::collection::vec(op_strategy(), 1..250)) {
        let mut model: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
        let mut skiplist = SkipList::new();
        let mut btree = BPlusTree::with_fanout(8);
        let mut art = Art::new();
        let mut masstree = Masstree::new();
        let mut wh_unsafe = WormholeUnsafe::with_config(WormholeConfig::optimized().with_leaf_capacity(8));
        let wh = Wormhole::with_config(WormholeConfig::optimized().with_leaf_capacity(8));
        let sharded = sharded_under_test();
        let sharded_slow = sharded_with_fast_path(false);

        for op in &ops {
            match op {
                Op::Set(k, v) => {
                    let expect = model.insert(k.clone(), *v);
                    prop_assert_eq!(skiplist.set(k, *v), expect);
                    prop_assert_eq!(btree.set(k, *v), expect);
                    prop_assert_eq!(art.set(k, *v), expect);
                    prop_assert_eq!(masstree.set(k, *v), expect);
                    prop_assert_eq!(wh_unsafe.set(k, *v), expect);
                    prop_assert_eq!(wh.set(k, *v), expect);
                    prop_assert_eq!(sharded.set(k, *v), expect);
                    prop_assert_eq!(sharded_slow.set(k, *v), expect);
                }
                Op::Del(k) => {
                    let expect = model.remove(k);
                    prop_assert_eq!(skiplist.del(k), expect);
                    prop_assert_eq!(btree.del(k), expect);
                    prop_assert_eq!(art.del(k), expect);
                    prop_assert_eq!(masstree.del(k), expect);
                    prop_assert_eq!(wh_unsafe.del(k), expect);
                    prop_assert_eq!(wh.del(k), expect);
                    prop_assert_eq!(sharded.del(k), expect);
                    prop_assert_eq!(sharded_slow.del(k), expect);
                }
                Op::Range(start, count) => {
                    let expect: Vec<(Vec<u8>, u64)> = model
                        .range(start.clone()..)
                        .take(*count)
                        .map(|(k, v)| (k.clone(), *v))
                        .collect();
                    prop_assert_eq!(skiplist.range_from(start, *count), expect.clone());
                    prop_assert_eq!(btree.range_from(start, *count), expect.clone());
                    prop_assert_eq!(art.range_from(start, *count), expect.clone());
                    prop_assert_eq!(masstree.range_from(start, *count), expect.clone());
                    prop_assert_eq!(wh_unsafe.range_from(start, *count), expect.clone());
                    prop_assert_eq!(wh.range_from(start, *count), expect.clone());
                    prop_assert_eq!(sharded.range_from(start, *count), expect.clone());
                    prop_assert_eq!(sharded_slow.range_from(start, *count), expect);
                }
                Op::Rebalance => {
                    // Only the sharded front reacts: boundaries may migrate
                    // mid-sequence, but the observable key/value state must
                    // stay identical to every other index.
                    let _ = sharded.maybe_rebalance();
                    let _ = sharded_slow.maybe_rebalance();
                }
            }
        }

        // Terminal state: sizes, full scans, and point lookups all agree.
        prop_assert_eq!(skiplist.len(), model.len());
        prop_assert_eq!(btree.len(), model.len());
        prop_assert_eq!(art.len(), model.len());
        prop_assert_eq!(masstree.len(), model.len());
        prop_assert_eq!(wh_unsafe.len(), model.len());
        prop_assert_eq!(ConcurrentOrderedIndex::len(&wh), model.len());
        prop_assert_eq!(ConcurrentOrderedIndex::len(&sharded), model.len());
        prop_assert_eq!(ConcurrentOrderedIndex::len(&sharded_slow), model.len());
        sharded.check_invariants();
        sharded_slow.check_invariants();
        let expect_all: Vec<(Vec<u8>, u64)> = model.iter().map(|(k, v)| (k.clone(), *v)).collect();
        prop_assert_eq!(btree.range_from(&[], usize::MAX), expect_all.clone());
        prop_assert_eq!(wh_unsafe.range_from(&[], usize::MAX), expect_all.clone());
        prop_assert_eq!(wh.range_from(&[], usize::MAX), expect_all.clone());
        prop_assert_eq!(sharded.range_from(&[], usize::MAX), expect_all.clone());
        prop_assert_eq!(sharded_slow.range_from(&[], usize::MAX), expect_all);
        for (k, v) in &model {
            prop_assert_eq!(art.get(k), Some(*v));
            prop_assert_eq!(masstree.get(k), Some(*v));
            prop_assert_eq!(skiplist.get(k), Some(*v));
        }
    }

    #[test]
    fn cuckoo_matches_hashmap(ops in proptest::collection::vec(
        (key_strategy(), any::<u64>(), any::<bool>()), 1..300)) {
        let mut model: HashMap<Vec<u8>, u64> = HashMap::new();
        let mut cuckoo = CuckooHashTable::with_capacity(16);
        for (key, value, is_delete) in &ops {
            if *is_delete {
                prop_assert_eq!(cuckoo.del(key), model.remove(key));
            } else {
                prop_assert_eq!(cuckoo.set(key, *value), model.insert(key.clone(), *value));
            }
        }
        prop_assert_eq!(cuckoo.len(), model.len());
        for (k, v) in &model {
            prop_assert_eq!(cuckoo.get(k), Some(*v));
        }
    }

    /// `get_batch` must answer exactly like one `get` per key, in order,
    /// on every ordered index — the baselines through the trait's default
    /// loop, both Wormholes and the sharded front through their pipelined
    /// overrides. The probe batch deliberately mixes generated keys (mostly
    /// misses), guaranteed hits sampled from the inserted set, and repeats
    /// of the same key within one batch.
    #[test]
    fn get_batch_matches_single_gets(
        sets in proptest::collection::vec((key_strategy(), any::<u64>()), 1..120),
        raw_probes in proptest::collection::vec(key_strategy(), 0..24),
        hit_picks in proptest::collection::vec(any::<usize>(), 0..16),
        dup_picks in proptest::collection::vec(any::<usize>(), 0..6),
    ) {
        let mut skiplist = SkipList::new();
        let mut btree = BPlusTree::with_fanout(8);
        let mut art = Art::new();
        let mut masstree = Masstree::new();
        let mut wh_unsafe =
            WormholeUnsafe::with_config(WormholeConfig::optimized().with_leaf_capacity(8));
        let wh = Wormhole::with_config(WormholeConfig::optimized().with_leaf_capacity(8));
        let sharded = sharded_under_test();
        let sharded_slow = sharded_with_fast_path(false);
        for (k, v) in &sets {
            skiplist.set(k, *v);
            btree.set(k, *v);
            art.set(k, *v);
            masstree.set(k, *v);
            wh_unsafe.set(k, *v);
            wh.set(k, *v);
            sharded.set(k, *v);
            sharded_slow.set(k, *v);
        }

        let mut batch: Vec<&[u8]> = raw_probes.iter().map(Vec::as_slice).collect();
        for pick in &hit_picks {
            batch.push(sets[pick % sets.len()].0.as_slice());
        }
        let base = batch.len();
        for pick in &dup_picks {
            if base > 0 {
                batch.push(batch[pick % base]);
            }
        }

        let expect: Vec<Option<u64>> =
            batch.iter().map(|k| OrderedIndex::get(&skiplist, k)).collect();
        prop_assert_eq!(&OrderedIndex::get_batch(&skiplist, &batch), &expect);
        prop_assert_eq!(&OrderedIndex::get_batch(&btree, &batch), &expect);
        prop_assert_eq!(&OrderedIndex::get_batch(&art, &batch), &expect);
        prop_assert_eq!(&OrderedIndex::get_batch(&masstree, &batch), &expect);
        prop_assert_eq!(&OrderedIndex::get_batch(&wh_unsafe, &batch), &expect);
        prop_assert_eq!(&ConcurrentOrderedIndex::get_batch(&wh, &batch), &expect);
        prop_assert_eq!(&ConcurrentOrderedIndex::get_batch(&sharded, &batch), &expect);
        prop_assert_eq!(&ConcurrentOrderedIndex::get_batch(&sharded_slow, &batch), &expect);
        // Per-key gets on the overriding indexes agree with the model too.
        for (k, e) in batch.iter().zip(&expect) {
            prop_assert_eq!(&OrderedIndex::get(&wh_unsafe, k), e);
            prop_assert_eq!(&ConcurrentOrderedIndex::get(&wh, k), e);
            prop_assert_eq!(&ConcurrentOrderedIndex::get(&sharded, k), e);
            prop_assert_eq!(&ConcurrentOrderedIndex::get(&sharded_slow, k), e);
        }
    }

    #[test]
    fn wormhole_ablation_configs_agree_with_each_other(
        ops in proptest::collection::vec((key_strategy(), any::<u64>()), 1..150)) {
        let mut indexes: Vec<WormholeUnsafe<u64>> = WormholeConfig::ablation_ladder()
            .into_iter()
            .map(|(_, config)| WormholeUnsafe::with_config(config.with_leaf_capacity(8)))
            .collect();
        for (key, value) in &ops {
            for index in indexes.iter_mut() {
                index.set(key, *value);
            }
        }
        let reference = indexes[0].range_from(&[], usize::MAX);
        for index in &indexes[1..] {
            prop_assert_eq!(index.range_from(&[], usize::MAX), reference.clone());
        }
        for (key, _) in &ops {
            let expect = indexes[0].get(key);
            for index in &indexes[1..] {
                prop_assert_eq!(index.get(key), expect);
            }
        }
    }
}

/// Drains up to `count` pairs from a cursor and reports the continuation
/// key a fresh `scan` would resume at.
fn pull(mut cursor: Cursor<'_, u64>, count: usize) -> (Vec<(Vec<u8>, u64)>, Vec<u8>) {
    let mut got = Vec::new();
    cursor.collect_next(count, &mut got);
    (got, cursor.resume_key())
}

proptest! {
    // The cursor differential runs at a higher case count than the op-level
    // differentials above: resumption interacts with mutations in ways a
    // single linear scan never exercises.
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Interleaved resumable scans: apply a batch of mutations, stream a
    /// window through a cursor on every ordered index, resume from the
    /// cursor's reported key after the next batch of mutations, and check
    /// each window — and the final quiesced full drain — against
    /// `BTreeMap::range`.
    #[test]
    fn interleaved_scan_cursors_match_btreemap(
        phases in proptest::collection::vec(
            (
                proptest::collection::vec(
                    (key_strategy(), any::<u64>(), any::<bool>()), 0..30),
                1usize..25,
            ),
            1..4),
        start in key_strategy(),
    ) {
        let mut model: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
        let mut skiplist = SkipList::new();
        let mut btree = BPlusTree::with_fanout(8);
        let mut art = Art::new();
        let mut masstree = Masstree::new();
        let mut wh_unsafe =
            WormholeUnsafe::with_config(WormholeConfig::optimized().with_leaf_capacity(8));
        let wh = Wormhole::with_config(WormholeConfig::optimized().with_leaf_capacity(8));
        let sharded = sharded_under_test();
        let sharded_slow = sharded_with_fast_path(false);

        let mut resume = start.clone();
        for (ops, window) in &phases {
            for (k, v, is_delete) in ops {
                if *is_delete {
                    let expect = model.remove(k);
                    prop_assert_eq!(skiplist.del(k), expect);
                    prop_assert_eq!(btree.del(k), expect);
                    prop_assert_eq!(art.del(k), expect);
                    prop_assert_eq!(masstree.del(k), expect);
                    prop_assert_eq!(wh_unsafe.del(k), expect);
                    prop_assert_eq!(wh.del(k), expect);
                    prop_assert_eq!(sharded.del(k), expect);
                    prop_assert_eq!(sharded_slow.del(k), expect);
                } else {
                    let expect = model.insert(k.clone(), *v);
                    prop_assert_eq!(skiplist.set(k, *v), expect);
                    prop_assert_eq!(btree.set(k, *v), expect);
                    prop_assert_eq!(art.set(k, *v), expect);
                    prop_assert_eq!(masstree.set(k, *v), expect);
                    prop_assert_eq!(wh_unsafe.set(k, *v), expect);
                    prop_assert_eq!(wh.set(k, *v), expect);
                    prop_assert_eq!(sharded.set(k, *v), expect);
                    prop_assert_eq!(sharded_slow.set(k, *v), expect);
                }
            }
            // A rebalance decision between mutation batches may migrate a
            // boundary under the resumable scans below — resume keys must
            // re-route through the moved boundaries transparently.
            let _ = sharded.maybe_rebalance();
            let _ = sharded_slow.maybe_rebalance();
            // Stream one window from the shared resume point on every index
            // (the baselines via the default range_from-adapted cursor, the
            // Wormholes via their native leaf-streaming cursors).
            let expect: Vec<(Vec<u8>, u64)> = model
                .range(resume.clone()..)
                .take(*window)
                .map(|(k, v)| (k.clone(), *v))
                .collect();
            let windows = [
                pull(skiplist.scan(&resume), *window),
                pull(btree.scan(&resume), *window),
                pull(art.scan(&resume), *window),
                pull(masstree.scan(&resume), *window),
                pull(wh_unsafe.scan(&resume), *window),
                pull(wh.scan(&resume), *window),
                pull(sharded.scan(&resume), *window),
                pull(sharded_slow.scan(&resume), *window),
            ];
            for (got, resume_key) in &windows {
                prop_assert_eq!(got, &expect);
                prop_assert_eq!(resume_key, &windows[0].1, "resume keys diverge");
            }
            resume = windows[0].1.clone();
        }

        // Quiesced: a fresh cursor drained from the original start must
        // agree with range_from and the model on every index.
        let expect_all: Vec<(Vec<u8>, u64)> = model
            .range(start.clone()..)
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        let drains = [
            pull(skiplist.scan(&start), usize::MAX).0,
            pull(btree.scan(&start), usize::MAX).0,
            pull(art.scan(&start), usize::MAX).0,
            pull(masstree.scan(&start), usize::MAX).0,
            pull(wh_unsafe.scan(&start), usize::MAX).0,
            pull(wh.scan(&start), usize::MAX).0,
            pull(sharded.scan(&start), usize::MAX).0,
            pull(sharded_slow.scan(&start), usize::MAX).0,
        ];
        for drained in &drains {
            prop_assert_eq!(drained, &expect_all);
        }
        prop_assert_eq!(wh_unsafe.range_from(&start, usize::MAX), expect_all.clone());
        prop_assert_eq!(wh.range_from(&start, usize::MAX), expect_all.clone());
        prop_assert_eq!(sharded.range_from(&start, usize::MAX), expect_all.clone());
        prop_assert_eq!(sharded_slow.range_from(&start, usize::MAX), expect_all);
    }
}
