//! Differential tests: every ordered index in the workspace must agree with
//! `std::collections::BTreeMap` (and therefore with each other) on the same
//! operation sequences, for every keyset family of the paper.

use std::collections::BTreeMap;

use baseline_art::Art;
use baseline_btree::BPlusTree;
use baseline_masstree::Masstree;
use baseline_skiplist::SkipList;
use index_traits::{ConcurrentOrderedIndex, OrderedIndex};
use workloads::{generate, KeysetId};
use wormhole::{Wormhole, WormholeConfig, WormholeUnsafe};

/// All single-threaded ordered indexes under test.
fn ordered_indexes() -> Vec<Box<dyn OrderedIndex<u64>>> {
    vec![
        Box::new(SkipList::new()),
        Box::new(BPlusTree::new()),
        Box::new(Art::new()),
        Box::new(Masstree::new()),
        Box::new(WormholeUnsafe::new()),
        Box::new(WormholeUnsafe::with_config(
            WormholeConfig::base().with_leaf_capacity(16),
        )),
    ]
}

fn check_against_model(keys: &[Vec<u8>], label: &str) {
    let mut model: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
    let mut indexes = ordered_indexes();
    let concurrent: Wormhole<u64> = Wormhole::new();

    // Insert everything (with one deliberate overwrite pass over a subset).
    for (i, key) in keys.iter().enumerate() {
        model.insert(key.clone(), i as u64);
        for index in indexes.iter_mut() {
            index.set(key, i as u64);
        }
        concurrent.set(key, i as u64);
    }
    for (i, key) in keys.iter().enumerate().step_by(7) {
        let v = (i as u64) << 32;
        model.insert(key.clone(), v);
        for index in indexes.iter_mut() {
            index.set(key, v);
        }
        concurrent.set(key, v);
    }

    // Point lookups of present and absent keys.
    for (key, value) in &model {
        for index in &indexes {
            assert_eq!(index.get(key), Some(*value), "{label}: {}", index.name());
        }
        assert_eq!(concurrent.get(key), Some(*value), "{label}: wormhole");
    }
    for key in keys.iter().take(50) {
        let mut absent = key.clone();
        absent.push(0xFE);
        absent.push(0x01);
        let expect = model.get(&absent).copied();
        for index in &indexes {
            assert_eq!(index.get(&absent), expect, "{label}: {}", index.name());
        }
        assert_eq!(concurrent.get(&absent), expect, "{label}: wormhole");
    }

    // Range queries from existing keys, absent keys, and the empty key.
    let mut starts: Vec<Vec<u8>> = keys.iter().take(25).cloned().collect();
    starts.push(Vec::new());
    starts.push(vec![0xFF; 4]);
    starts.push(keys[keys.len() / 2][..keys[keys.len() / 2].len() / 2].to_vec());
    for start in &starts {
        let expect: Vec<(Vec<u8>, u64)> = model
            .range(start.clone()..)
            .take(100)
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        for index in &indexes {
            assert_eq!(
                index.range_from(start, 100),
                expect,
                "{label}: {} range from {start:?}",
                index.name()
            );
        }
        assert_eq!(
            concurrent.range_from(start, 100),
            expect,
            "{label}: wormhole range"
        );
    }

    // Deletions of every third key, then re-validate lookups and full scans.
    for key in keys.iter().step_by(3) {
        let expect = model.remove(key);
        for index in indexes.iter_mut() {
            assert_eq!(index.del(key), expect, "{label}: {}", index.name());
        }
        assert_eq!(concurrent.del(key), expect, "{label}: wormhole");
    }
    let expect_all: Vec<(Vec<u8>, u64)> = model.iter().map(|(k, v)| (k.clone(), *v)).collect();
    for index in &indexes {
        assert_eq!(index.len(), model.len(), "{label}: {}", index.name());
        assert_eq!(
            index.range_from(&[], usize::MAX),
            expect_all,
            "{label}: {} full scan",
            index.name()
        );
    }
    assert_eq!(concurrent.len(), model.len(), "{label}: wormhole len");
    assert_eq!(
        concurrent.range_from(&[], usize::MAX),
        expect_all,
        "{label}: wormhole full scan"
    );
}

#[test]
fn amazon_style_keys() {
    let keys = generate(KeysetId::Az1, 3_000, 1).keys;
    check_against_model(&keys, "Az1");
    let keys = generate(KeysetId::Az2, 3_000, 2).keys;
    check_against_model(&keys, "Az2");
}

#[test]
fn url_keys_with_long_shared_prefixes() {
    let keys = generate(KeysetId::Url, 3_000, 3).keys;
    check_against_model(&keys, "Url");
}

#[test]
fn short_and_long_random_keys() {
    let keys = generate(KeysetId::K3, 3_000, 4).keys;
    check_against_model(&keys, "K3");
    let keys = generate(KeysetId::K8, 800, 5).keys;
    check_against_model(&keys, "K8");
}

#[test]
fn binary_keys_with_embedded_zeros_and_prefix_relations() {
    // Adversarial keyset: keys that are prefixes of each other, contain zero
    // bytes, and include the empty key — the cases §3.3 worries about.
    let mut keys: Vec<Vec<u8>> = Vec::new();
    keys.push(Vec::new());
    for a in 0u8..8 {
        for b in 0u8..8 {
            keys.push(vec![a, b]);
            keys.push(vec![a, b, 0]);
            keys.push(vec![a, b, 0, 0]);
            keys.push(vec![a, 0, b]);
            keys.push(vec![a, b, 0, b, 0]);
        }
    }
    keys.sort();
    keys.dedup();
    check_against_model(&keys, "binary");
}
