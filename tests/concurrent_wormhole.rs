//! Concurrency-focused integration tests for the thread-safe Wormhole:
//! multi-threaded writers with disjoint key spaces, readers racing with
//! structural changes, and end-to-end use through the netsim service.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use index_traits::ConcurrentOrderedIndex;
use netsim::{KvService, LinkModel, WireRequest};
use wh_shard::{RebalanceConfig, ShardedConfig, ShardedWormhole};
use workloads::{generate, KeysetId};
use wormhole::{Wormhole, WormholeConfig};

/// Iteration multiplier for the release-gated stress tests, read from
/// `WH_STRESS_MULT` (default 1). PR CI runs at 1; the nightly CI job
/// boosts it so long-soak races get real wall-clock without slowing every
/// pull request.
fn stress_mult() -> u64 {
    std::env::var("WH_STRESS_MULT")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&m| m > 0)
        .unwrap_or(1)
}

/// Splits a yielded key of the torn-scan test into its stable id and
/// whether it is a churn key. Panics on a malformed (torn) key.
fn parse_torn_scan_key(key: &[u8]) -> (u64, bool) {
    let s = std::str::from_utf8(key).expect("yielded key is not UTF-8");
    let rest = s
        .strip_prefix("stable-")
        .expect("yielded key lost its prefix");
    match rest.split_once(":churn") {
        None => (rest.parse().expect("malformed stable id"), false),
        Some((id, writer)) => {
            assert!(
                writer.len() == 1 && writer.chars().all(|c| c.is_ascii_digit()),
                "malformed churn suffix in {s:?}"
            );
            (id.parse().expect("malformed churn id"), true)
        }
    }
}

#[test]
fn disjoint_writers_preserve_every_key() {
    let wh = Arc::new(Wormhole::with_config(
        WormholeConfig::optimized().with_leaf_capacity(16),
    ));
    let threads = 8usize;
    let per_thread = 5_000u64;
    std::thread::scope(|scope| {
        for t in 0..threads {
            let wh = Arc::clone(&wh);
            scope.spawn(move || {
                for i in 0..per_thread {
                    wh.set(format!("t{t:02}-{i:08}").as_bytes(), i);
                }
            });
        }
    });
    assert_eq!(wh.len(), threads * per_thread as usize);
    wh.check_invariants();
    for t in 0..threads {
        for i in (0..per_thread).step_by(101) {
            assert_eq!(wh.get(format!("t{t:02}-{i:08}").as_bytes()), Some(i));
        }
    }
    // Ordered full scan sees every key exactly once, in order.
    let scan = wh.range_from(b"", usize::MAX);
    assert_eq!(scan.len(), threads * per_thread as usize);
    assert!(scan.windows(2).all(|w| w[0].0 < w[1].0));
}

#[test]
fn readers_never_observe_torn_state_during_splits_and_merges() {
    let wh = Arc::new(Wormhole::with_config(
        WormholeConfig::optimized().with_leaf_capacity(8),
    ));
    // A stable population that readers verify continuously.
    for i in 0..5_000u64 {
        wh.set(format!("stable-{i:06}").as_bytes(), i);
    }
    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|scope| {
        // Churn threads force splits and merges around the stable keys.
        for t in 0..3 {
            let wh = Arc::clone(&wh);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut round = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    for i in 0..300u64 {
                        wh.set(format!("churn{t}-{:06}", i % 150).as_bytes(), round);
                    }
                    for i in 0..300u64 {
                        wh.del(format!("churn{t}-{:06}", i % 150).as_bytes());
                    }
                    round += 1;
                }
            });
        }
        // Readers check the stable population and ordered scans.
        let mut readers = Vec::new();
        for r in 0..3 {
            let wh = Arc::clone(&wh);
            readers.push(scope.spawn(move || {
                for pass in 0..40u64 {
                    let i = (pass * 97 + r * 13) % 5_000;
                    assert_eq!(
                        wh.get(format!("stable-{i:06}").as_bytes()),
                        Some(i),
                        "stable key lost"
                    );
                    let scan = wh.range_from(b"stable-002", 50);
                    assert_eq!(scan.len(), 50);
                    assert!(
                        scan.windows(2).all(|w| w[0].0 < w[1].0),
                        "scan out of order"
                    );
                    assert!(scan.iter().all(|(k, _)| k.starts_with(b"stable-")));
                }
            }));
        }
        for r in readers {
            r.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
    });
    wh.check_invariants();
    for i in (0..5_000u64).step_by(37) {
        assert_eq!(wh.get(format!("stable-{i:06}").as_bytes()), Some(i));
    }
}

#[test]
fn optimistic_readers_see_consistent_state_under_split_merge_churn() {
    // Stress for the lock-free (seqlock) read path: churn writers force
    // continuous splits and merges of the leaves holding a stable
    // population, while readers assert that every point read returns the
    // exact preloaded value and every scan sees the stable keys exactly
    // once, in order — i.e. each read observed either the pre- or the
    // post-split state of a leaf, never a torn mixture. Iteration counts
    // are kept high only under `--release` (scaled by WH_STRESS_MULT for
    // nightly soaks); debug builds run a smoke pass.
    let iters: u64 = if cfg!(debug_assertions) {
        300
    } else {
        25_000 * stress_mult()
    };
    let n_stable = 2_000u64;
    let wh = Arc::new(Wormhole::with_config(
        WormholeConfig::optimized().with_leaf_capacity(8),
    ));
    for i in 0..n_stable {
        wh.set(format!("stable-{i:06}").as_bytes(), i);
    }
    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|scope| {
        // Churn writers: keys of the form `stable-NNNNNN:churnT` land in the
        // same leaves as the stable keys, so inserting a wave of them splits
        // those leaves and deleting the wave merges them back.
        for t in 0..2u64 {
            let wh = Arc::clone(&wh);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut round = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    for i in ((t * 3)..n_stable).step_by(7) {
                        wh.set(format!("stable-{i:06}:churn{t}").as_bytes(), round);
                    }
                    for i in ((t * 3)..n_stable).step_by(7) {
                        wh.del(format!("stable-{i:06}:churn{t}").as_bytes());
                    }
                    round += 1;
                }
            });
        }
        let mut readers = Vec::new();
        for r in 0..4u64 {
            let wh = Arc::clone(&wh);
            readers.push(scope.spawn(move || {
                let stable_len = "stable-000000".len();
                for pass in 0..iters {
                    let i = (pass * 131 + r * 17) % n_stable;
                    // Point read: always the exact preloaded value.
                    assert_eq!(
                        wh.get(format!("stable-{i:06}").as_bytes()),
                        Some(i),
                        "torn point read of stable-{i:06}"
                    );
                    if pass % 16 == r % 4 {
                        // Window scan: the stable keys inside the window form
                        // exactly the consecutive run starting at `from`.
                        let from = i.min(n_stable - 40);
                        let scan = wh.range_from(format!("stable-{from:06}").as_bytes(), 60);
                        assert!(scan.windows(2).all(|w| w[0].0 < w[1].0), "scan unordered");
                        let stable: Vec<(u64, u64)> = scan
                            .iter()
                            .filter_map(|(k, v)| {
                                let s = std::str::from_utf8(k).ok()?;
                                if s.len() == stable_len && s.starts_with("stable-") {
                                    Some((s["stable-".len()..].parse().ok()?, *v))
                                } else {
                                    None
                                }
                            })
                            .collect();
                        assert!(!stable.is_empty(), "scan lost the stable population");
                        for (j, (k, v)) in stable.iter().enumerate() {
                            assert_eq!(
                                *k,
                                from + j as u64,
                                "stable key missing or duplicated in scan"
                            );
                            assert_eq!(*v, from + j as u64, "torn scan value");
                        }
                    }
                }
            }));
        }
        for r in readers {
            r.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
    });
    wh.check_invariants();
    for i in (0..n_stable).step_by(29) {
        assert_eq!(wh.get(format!("stable-{i:06}").as_bytes()), Some(i));
    }
}

#[test]
fn torn_scan_cursors_stream_consistent_state_under_churn() {
    // Stress for the streaming scan cursor: readers drain full-index
    // cursors batch by batch while churn writers force continuous splits
    // and merges of the leaves being streamed. Every yielded pair must be
    // well-formed (a key the workload could actually have written, with its
    // exact value for the stable population), keys must be strictly
    // ascending across the entire stream — per-leaf snapshots must never
    // re-yield or reorder across a batch boundary — and every key that is
    // stable for the whole scan must appear exactly once. Iteration counts
    // are kept high only under `--release` (scaled by WH_STRESS_MULT for
    // nightly soaks); debug builds run a smoke pass.
    let scans: u64 = if cfg!(debug_assertions) {
        8
    } else {
        400 * stress_mult()
    };
    let n_stable = 2_000u64;
    let wh = Arc::new(Wormhole::with_config(
        WormholeConfig::optimized().with_leaf_capacity(8),
    ));
    for i in 0..n_stable {
        wh.set(format!("stable-{i:06}").as_bytes(), i);
    }
    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|scope| {
        // Churn writers: keys interleaved with the stable population split
        // the streamed leaves on insert and merge them back on delete.
        for t in 0..2u64 {
            let wh = Arc::clone(&wh);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut round = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    for i in ((t * 3)..n_stable).step_by(5) {
                        wh.set(format!("stable-{i:06}:churn{t}").as_bytes(), round);
                    }
                    for i in ((t * 3)..n_stable).step_by(5) {
                        wh.del(format!("stable-{i:06}:churn{t}").as_bytes());
                    }
                    round += 1;
                }
            });
        }
        let mut readers = Vec::new();
        for _ in 0..3 {
            let wh = Arc::clone(&wh);
            readers.push(scope.spawn(move || {
                for _ in 0..scans {
                    let mut cursor = wh.scan(b"");
                    let mut prev: Option<Vec<u8>> = None;
                    let mut next_stable = 0u64;
                    while let Some(batch) = cursor.next_batch() {
                        assert!(!batch.is_empty(), "cursor yielded an empty batch");
                        for (key, value) in batch.iter() {
                            if let Some(prev) = &prev {
                                assert!(
                                    prev.as_slice() < key,
                                    "stream not strictly ascending: {:?} !< {:?}",
                                    String::from_utf8_lossy(prev),
                                    String::from_utf8_lossy(key),
                                );
                            }
                            let (id, is_churn) = parse_torn_scan_key(key);
                            assert!(id < n_stable, "id out of range in scan");
                            if !is_churn {
                                assert_eq!(
                                    id, next_stable,
                                    "stable key missing or duplicated in scan"
                                );
                                assert_eq!(*value, id, "torn value for stable-{id:06}");
                                next_stable += 1;
                            }
                            prev = Some(key.to_vec());
                        }
                    }
                    assert_eq!(
                        next_stable, n_stable,
                        "scan lost part of the stable population"
                    );
                }
            }));
        }
        for r in readers {
            r.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
    });
    wh.check_invariants();
    for i in (0..n_stable).step_by(41) {
        assert_eq!(wh.get(format!("stable-{i:06}").as_bytes()), Some(i));
    }
}

#[test]
fn sharded_multi_writer_scan_stress() {
    // Release-gated stress for the sharded front: writers churn splits and
    // merges on EVERY shard at once while readers drain full cross-shard
    // cursors, asserting strict global key order across every shard
    // boundary, well-formed pairs only, and the stable population seen
    // exactly once per scan. Iteration counts are high only under
    // `--release` (scaled by WH_STRESS_MULT for nightly soaks); debug
    // builds run a smoke pass.
    let scans: u64 = if cfg!(debug_assertions) {
        6
    } else {
        250 * stress_mult()
    };
    let n_stable = 2_000u64;
    let idx = Arc::new(ShardedWormhole::<u64>::with_config(
        ShardedConfig::with_boundaries(vec![
            b"stable-000500".to_vec(),
            b"stable-001000".to_vec(),
            b"stable-001500".to_vec(),
        ])
        .with_inner(WormholeConfig::optimized().with_leaf_capacity(8)),
    ));
    for i in 0..n_stable {
        idx.set(format!("stable-{i:06}").as_bytes(), i);
    }
    // Sanity: the population really spans all four shards.
    for s in 0..idx.shard_count() {
        assert!(idx.shard(s).len() > 0, "shard {s} empty before stress");
    }
    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|scope| {
        // Churn writers: interleaved churn keys split the streamed leaves
        // on insert and merge them back on delete — in every shard,
        // including leaves that straddle scan batches at shard boundaries.
        for t in 0..3u64 {
            let idx = Arc::clone(&idx);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut round = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    for i in ((t * 3)..n_stable).step_by(5) {
                        idx.set(format!("stable-{i:06}:churn{t}").as_bytes(), round);
                    }
                    for i in ((t * 3)..n_stable).step_by(5) {
                        idx.del(format!("stable-{i:06}:churn{t}").as_bytes());
                    }
                    round += 1;
                }
            });
        }
        let mut readers = Vec::new();
        for _ in 0..3 {
            let idx = Arc::clone(&idx);
            readers.push(scope.spawn(move || {
                for _ in 0..scans {
                    let mut cursor = idx.scan(b"");
                    let mut prev: Option<Vec<u8>> = None;
                    let mut next_stable = 0u64;
                    while let Some(batch) = cursor.next_batch() {
                        assert!(!batch.is_empty(), "cursor yielded an empty batch");
                        for (key, value) in batch.iter() {
                            if let Some(prev) = &prev {
                                assert!(
                                    prev.as_slice() < key,
                                    "stream not strictly ascending across shards: \
                                     {:?} !< {:?}",
                                    String::from_utf8_lossy(prev),
                                    String::from_utf8_lossy(key),
                                );
                            }
                            let (id, is_churn) = parse_torn_scan_key(key);
                            assert!(id < n_stable, "id out of range in scan");
                            if !is_churn {
                                assert_eq!(
                                    id, next_stable,
                                    "stable key missing or duplicated in sharded scan"
                                );
                                assert_eq!(*value, id, "torn value for stable-{id:06}");
                                next_stable += 1;
                            }
                            prev = Some(key.to_vec());
                        }
                    }
                    assert_eq!(
                        next_stable, n_stable,
                        "sharded scan lost part of the stable population"
                    );
                }
            }));
        }
        for r in readers {
            r.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
    });
    idx.check_invariants();
    for i in (0..n_stable).step_by(37) {
        assert_eq!(idx.get(format!("stable-{i:06}").as_bytes()), Some(i));
    }
}

/// Release-gated stress for online shard rebalancing, run once per router
/// regime: a migration thread forces boundary moves back and forth through
/// the middle of the stable population while churn writers split/merge
/// leaves in every shard (including inside the migrating ranges), point
/// readers assert every stable key is readable with its exact value at
/// every instant (a migrated key must never be unreachable or torn), and
/// cross-shard cursor readers drain full scans asserting strict global
/// order and the stable population seen exactly once. With the fast path
/// on, every migration revokes the router bias through the draining
/// barrier while the readers race it; with it off, every op takes the
/// classic critical-section path. Iteration counts are high only under
/// `--release` (scaled by WH_STRESS_MULT for nightly soaks); debug builds
/// run a smoke pass.
fn migration_under_churn_stress_with(fast_path: bool) {
    let migrations: u64 = if cfg!(debug_assertions) {
        6
    } else {
        600 * stress_mult()
    };
    let scans: u64 = if cfg!(debug_assertions) {
        4
    } else {
        300 * stress_mult()
    };
    let n_stable = 2_000u64;
    let idx = Arc::new(ShardedWormhole::<u64>::with_config(
        ShardedConfig::with_boundaries(vec![
            b"stable-000500".to_vec(),
            b"stable-001000".to_vec(),
            b"stable-001500".to_vec(),
        ])
        .with_inner(WormholeConfig::optimized().with_leaf_capacity(8))
        .with_rebalance(RebalanceConfig {
            min_pair_ops: 512,
            imbalance_percent: 150,
            batch_keys: 64,
            sample_cap: 512,
            min_move_keys: 8,
        })
        .with_router_fast_path(fast_path),
    ));
    for i in 0..n_stable {
        idx.set(format!("stable-{i:06}").as_bytes(), i);
    }
    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|scope| {
        // The migration thread bounces boundary 1 between two targets that
        // each re-home a 200-key slice (plus its churn keys), and lets the
        // counter-driven policy take an occasional extra decision.
        {
            let idx = Arc::clone(&idx);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let targets: [&[u8]; 2] = [b"stable-000800", b"stable-001200"];
                for m in 0..migrations {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    match idx.migrate_boundary(1, targets[(m % 2) as usize]) {
                        Ok(_) => {}
                        // A policy-driven move of a neighbouring boundary
                        // (the maybe_rebalance below) can make a forced
                        // target degenerate; that rejection is correct.
                        Err(wh_shard::MigrateError::InvalidTarget { .. }) => {}
                        Err(e) => panic!("forced migration failed: {e}"),
                    }
                    if m % 8 == 0 {
                        let _ = idx.maybe_rebalance();
                    }
                }
                stop.store(true, Ordering::Relaxed);
            });
        }
        // Churn writers: splits and merges in every shard, including keys
        // interleaved with the migrating slices.
        for t in 0..2u64 {
            let idx = Arc::clone(&idx);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut round = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    for i in ((t * 3)..n_stable).step_by(5) {
                        idx.set(format!("stable-{i:06}:churn{t}").as_bytes(), round);
                    }
                    for i in ((t * 3)..n_stable).step_by(5) {
                        idx.del(format!("stable-{i:06}:churn{t}").as_bytes());
                    }
                    round += 1;
                }
            });
        }
        // Point readers: a stable key is present with its exact value at
        // every instant of a migration (freeze/copy/publish/drain).
        for r in 0..2u64 {
            let idx = Arc::clone(&idx);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut pass = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    // Bias probes toward the migrating slice (700..1300).
                    let i = if pass.is_multiple_of(2) {
                        700 + (pass * 131 + r * 17) % 600
                    } else {
                        (pass * 131 + r * 17) % n_stable
                    };
                    assert_eq!(
                        idx.get(format!("stable-{i:06}").as_bytes()),
                        Some(i),
                        "stable-{i:06} unreachable or torn during migration"
                    );
                    pass += 1;
                }
            });
        }
        // Cursor readers: full cross-shard drains stay strictly ascending
        // and exhaustive while boundaries move underneath them.
        let mut readers = Vec::new();
        for _ in 0..2 {
            let idx = Arc::clone(&idx);
            let stop = Arc::clone(&stop);
            readers.push(scope.spawn(move || {
                let mut done = 0u64;
                while done < scans && !stop.load(Ordering::Relaxed) {
                    let mut cursor = idx.scan(b"");
                    let mut prev: Option<Vec<u8>> = None;
                    let mut next_stable = 0u64;
                    while let Some(batch) = cursor.next_batch() {
                        assert!(!batch.is_empty(), "cursor yielded an empty batch");
                        for (key, value) in batch.iter() {
                            if let Some(prev) = &prev {
                                assert!(
                                    prev.as_slice() < key,
                                    "stream not strictly ascending across a migration: \
                                     {:?} !< {:?}",
                                    String::from_utf8_lossy(prev),
                                    String::from_utf8_lossy(key),
                                );
                            }
                            let (id, is_churn) = parse_torn_scan_key(key);
                            assert!(id < n_stable, "id out of range in scan");
                            if !is_churn {
                                assert_eq!(
                                    id, next_stable,
                                    "stable key missing or duplicated in scan racing migration"
                                );
                                assert_eq!(*value, id, "torn value for stable-{id:06}");
                                next_stable += 1;
                            }
                            prev = Some(key.to_vec());
                        }
                    }
                    assert_eq!(
                        next_stable, n_stable,
                        "scan racing migration lost part of the stable population"
                    );
                    done += 1;
                }
            }));
        }
        for r in readers {
            r.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
    });
    idx.check_invariants();
    assert_eq!(idx.len() as u64, n_stable, "churn or migration leaked keys");
    for i in 0..n_stable {
        assert_eq!(idx.get(format!("stable-{i:06}").as_bytes()), Some(i));
    }
}

#[test]
fn migration_under_churn_stress() {
    migration_under_churn_stress_with(true);
}

#[test]
fn migration_under_churn_stress_no_fast_path() {
    migration_under_churn_stress_with(false);
}

#[test]
fn fast_path_drain_barrier_flip_flop_stress() {
    // Release-gated stress aimed squarely at the biased-entry handshake:
    // with no churn to slow it down, a migration thread bounces a boundary
    // between two close targets as fast as it can, so the router bias is
    // revoked (draining barrier) and restored at the highest achievable
    // frequency while point and batched readers hammer fast-path gets.
    // Every read must return the exact preloaded value at every instant —
    // a reader whose fast section raced the barrier must either have been
    // waited out (table still live) or bounced to the critical-section
    // path; a torn read here means a fast section dereferenced a retired
    // table. Iteration counts are high only under `--release` (scaled by
    // WH_STRESS_MULT for nightly soaks); debug builds run a smoke pass.
    let flips: u64 = if cfg!(debug_assertions) {
        8
    } else {
        2_000 * stress_mult()
    };
    let n_stable = 1_000u64;
    let idx = Arc::new(ShardedWormhole::<u64>::with_config(
        ShardedConfig::with_boundaries(vec![b"k-0500".to_vec()])
            .with_inner(WormholeConfig::optimized().with_leaf_capacity(8))
            .with_rebalance(RebalanceConfig {
                min_pair_ops: u64::MAX,
                imbalance_percent: 400,
                batch_keys: 128,
                sample_cap: 256,
                min_move_keys: 8,
            }),
    ));
    for i in 0..n_stable {
        idx.set(format!("k-{i:04}").as_bytes(), i);
    }
    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|scope| {
        {
            let idx = Arc::clone(&idx);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                // 50-key hops keep each migration short, maximising the
                // rate of drain-barrier / resume-bias transitions.
                let targets: [&[u8]; 2] = [b"k-0450", b"k-0500"];
                for m in 0..flips {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    idx.migrate_boundary(0, targets[(m % 2) as usize])
                        .expect("flip-flop migration failed");
                }
                stop.store(true, Ordering::Relaxed);
            });
        }
        // Point readers biased toward the bouncing slice (400..600).
        for r in 0..2u64 {
            let idx = Arc::clone(&idx);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut pass = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let i = if pass.is_multiple_of(2) {
                        400 + (pass * 131 + r * 17) % 200
                    } else {
                        (pass * 131 + r * 17) % n_stable
                    };
                    assert_eq!(
                        idx.get(format!("k-{i:04}").as_bytes()),
                        Some(i),
                        "k-{i:04} unreachable or torn across a bias flip"
                    );
                    pass += 1;
                }
            });
        }
        // A batched reader: one fast section covers the whole batch, so it
        // holds sections open longer than any point get — the barrier must
        // wait these out too.
        {
            let idx = Arc::clone(&idx);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let keys: Vec<Vec<u8>> = (0..n_stable)
                    .map(|i| format!("k-{i:04}").into_bytes())
                    .collect();
                let mut pass = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let batch: Vec<&[u8]> = (0..64u64)
                        .map(|j| keys[((pass * 67 + j * 13) % n_stable) as usize].as_slice())
                        .collect();
                    let values = idx.get_batch(&batch);
                    for (key, value) in batch.iter().zip(&values) {
                        let id: u64 = std::str::from_utf8(key).unwrap()[2..].parse().unwrap();
                        assert_eq!(*value, Some(id), "torn batched read across a bias flip");
                    }
                    pass += 1;
                }
            });
        }
    });
    idx.check_invariants();
    assert_eq!(idx.len() as u64, n_stable);
    for i in 0..n_stable {
        assert_eq!(idx.get(format!("k-{i:04}").as_bytes()), Some(i));
    }
}

#[test]
fn batched_gets_see_consistent_state_under_split_merge_churn() {
    // Stress for the pipelined `get_batch` read path: churn writers force
    // continuous splits and merges of the leaves holding a stable
    // population while batched readers issue windows of point lookups
    // through `get_batch` — every stable key must come back with its exact
    // preloaded value and every deliberately-absent key must miss, even
    // though the batch's probes interleave their descent steps and any of
    // them can hit a seqlock conflict mid-window. Iteration counts are
    // high only under `--release` (scaled by WH_STRESS_MULT for nightly
    // soaks); debug builds run a smoke pass.
    let iters: u64 = if cfg!(debug_assertions) {
        150
    } else {
        12_000 * stress_mult()
    };
    let n_stable = 2_000u64;
    let wh = Arc::new(Wormhole::with_config(
        WormholeConfig::optimized().with_leaf_capacity(8),
    ));
    let stable_keys: Vec<Vec<u8>> = (0..n_stable)
        .map(|i| format!("stable-{i:06}").into_bytes())
        .collect();
    // Sorts after every stable/churn key, never inserted: guaranteed misses.
    let miss_keys: Vec<Vec<u8>> = (0..8u64)
        .map(|j| format!("zz-absent-{j}").into_bytes())
        .collect();
    for (i, key) in stable_keys.iter().enumerate() {
        wh.set(key, i as u64);
    }
    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|scope| {
        for t in 0..2u64 {
            let wh = Arc::clone(&wh);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut round = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    for i in ((t * 3)..n_stable).step_by(7) {
                        wh.set(format!("stable-{i:06}:churn{t}").as_bytes(), round);
                    }
                    for i in ((t * 3)..n_stable).step_by(7) {
                        wh.del(format!("stable-{i:06}:churn{t}").as_bytes());
                    }
                    round += 1;
                }
            });
        }
        let mut readers = Vec::new();
        for r in 0..4u64 {
            let wh = Arc::clone(&wh);
            let stable_keys = &stable_keys;
            let miss_keys = &miss_keys;
            readers.push(scope.spawn(move || {
                let mut batch: Vec<&[u8]> = Vec::with_capacity(56);
                let mut ids: Vec<u64> = Vec::with_capacity(56);
                for pass in 0..iters {
                    batch.clear();
                    ids.clear();
                    // 48 stable probes striding across distinct leaves, with
                    // a guaranteed miss interleaved every 6 probes.
                    let base = (pass * 131 + r * 17) % n_stable;
                    for j in 0..48u64 {
                        let i = (base + j * 41) % n_stable;
                        batch.push(stable_keys[i as usize].as_slice());
                        ids.push(i);
                        if j % 6 == 0 {
                            let m = ((pass + j) % miss_keys.len() as u64) as usize;
                            batch.push(miss_keys[m].as_slice());
                            ids.push(u64::MAX);
                        }
                    }
                    let values = wh.get_batch(&batch);
                    assert_eq!(values.len(), batch.len());
                    for (slot, (value, &id)) in values.iter().zip(&ids).enumerate() {
                        if id == u64::MAX {
                            assert_eq!(*value, None, "absent key hit in batch slot {slot}");
                        } else {
                            assert_eq!(
                                *value,
                                Some(id),
                                "torn batched read of stable-{id:06} in slot {slot}"
                            );
                        }
                    }
                }
            }));
        }
        for r in readers {
            r.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
    });
    wh.check_invariants();
    for i in (0..n_stable).step_by(29) {
        assert_eq!(wh.get(format!("stable-{i:06}").as_bytes()), Some(i));
    }
}

#[test]
fn batched_gets_under_migration_and_churn() {
    // `get_batch` through the sharded front while boundaries migrate: the
    // migration thread bounces a boundary through the middle of the stable
    // population (so batches keep spanning the frozen/moving range and the
    // router retires mid-stream), churn writers split and merge leaves in
    // every shard, and batched readers — biased toward the migrating slice
    // — must see every stable key with its exact value and every absent
    // probe miss. Release-gated; debug builds run a smoke pass.
    let migrations: u64 = if cfg!(debug_assertions) {
        6
    } else {
        400 * stress_mult()
    };
    let n_stable = 2_000u64;
    let idx = Arc::new(ShardedWormhole::<u64>::with_config(
        ShardedConfig::with_boundaries(vec![
            b"stable-000500".to_vec(),
            b"stable-001000".to_vec(),
            b"stable-001500".to_vec(),
        ])
        .with_inner(WormholeConfig::optimized().with_leaf_capacity(8)),
    ));
    let stable_keys: Vec<Vec<u8>> = (0..n_stable)
        .map(|i| format!("stable-{i:06}").into_bytes())
        .collect();
    let miss_keys: Vec<Vec<u8>> = (0..8u64)
        .map(|j| format!("zz-absent-{j}").into_bytes())
        .collect();
    for (i, key) in stable_keys.iter().enumerate() {
        idx.set(key, i as u64);
    }
    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|scope| {
        {
            let idx = Arc::clone(&idx);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let targets: [&[u8]; 2] = [b"stable-000800", b"stable-001200"];
                for m in 0..migrations {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    match idx.migrate_boundary(1, targets[(m % 2) as usize]) {
                        Ok(_) => {}
                        Err(wh_shard::MigrateError::InvalidTarget { .. }) => {}
                        Err(e) => panic!("forced migration failed: {e}"),
                    }
                }
                stop.store(true, Ordering::Relaxed);
            });
        }
        for t in 0..2u64 {
            let idx = Arc::clone(&idx);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut round = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    for i in ((t * 3)..n_stable).step_by(5) {
                        idx.set(format!("stable-{i:06}:churn{t}").as_bytes(), round);
                    }
                    for i in ((t * 3)..n_stable).step_by(5) {
                        idx.del(format!("stable-{i:06}:churn{t}").as_bytes());
                    }
                    round += 1;
                }
            });
        }
        for r in 0..2u64 {
            let idx = Arc::clone(&idx);
            let stop = Arc::clone(&stop);
            let stable_keys = &stable_keys;
            let miss_keys = &miss_keys;
            scope.spawn(move || {
                let mut batch: Vec<&[u8]> = Vec::with_capacity(72);
                let mut ids: Vec<u64> = Vec::with_capacity(72);
                let mut pass = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    batch.clear();
                    ids.clear();
                    // Bias two thirds of the probes into the migrating slice
                    // (700..1300) so most batches straddle the moving
                    // boundary; the rest stride the whole population.
                    for j in 0..64u64 {
                        let i = if j % 3 != 0 {
                            700 + (pass * 131 + r * 17 + j * 41) % 600
                        } else {
                            (pass * 131 + r * 17 + j * 41) % n_stable
                        };
                        batch.push(stable_keys[i as usize].as_slice());
                        ids.push(i);
                        if j % 8 == 0 {
                            let m = ((pass + j) % miss_keys.len() as u64) as usize;
                            batch.push(miss_keys[m].as_slice());
                            ids.push(u64::MAX);
                        }
                    }
                    let values = idx.get_batch(&batch);
                    assert_eq!(values.len(), batch.len());
                    for (slot, (value, &id)) in values.iter().zip(&ids).enumerate() {
                        if id == u64::MAX {
                            assert_eq!(*value, None, "absent key hit in batch slot {slot}");
                        } else {
                            assert_eq!(
                                *value,
                                Some(id),
                                "stable-{id:06} unreachable or torn in batched read \
                                 racing migration (slot {slot})"
                            );
                        }
                    }
                    pass += 1;
                }
            });
        }
    });
    idx.check_invariants();
    assert_eq!(idx.len() as u64, n_stable, "churn or migration leaked keys");
    for i in (0..n_stable).step_by(23) {
        assert_eq!(idx.get(format!("stable-{i:06}").as_bytes()), Some(i));
    }
}

#[test]
fn netsim_service_end_to_end_over_wormhole() {
    let keyset = generate(KeysetId::Az1, 20_000, 21);
    let wh: Arc<Wormhole<u64>> = Arc::new(Wormhole::new());
    for (i, key) in keyset.keys.iter().enumerate() {
        wh.set(key, i as u64);
    }
    let service = KvService::new(Arc::clone(&wh) as Arc<dyn ConcurrentOrderedIndex<u64>>);

    // A batch mixing lookups, writes, and range scans.
    let mut requests = Vec::new();
    for (i, key) in keyset.keys.iter().take(5_000).enumerate() {
        requests.push(WireRequest::Get { key: key.clone() });
        if i % 10 == 0 {
            requests.push(WireRequest::Set {
                key: format!("service-added-{i:05}").into_bytes(),
                value: i as u64,
            });
        }
        if i % 100 == 0 {
            requests.push(WireRequest::Range {
                start: key.clone(),
                count: 20,
            });
        }
    }
    let stats = service.run(&requests);
    assert_eq!(stats.operations, requests.len());
    assert!(stats.hits >= 5_000, "every preloaded key must be found");
    // Writes through the service are visible directly in the index.
    assert_eq!(wh.get(b"service-added-00500"), Some(500));

    // The link model turns the measured host throughput into a delivered
    // figure that can never exceed the host rate.
    let link = LinkModel::infiniband_100g();
    let delivered = link.delivered_ops_per_second(
        stats.mops() * 1e6,
        stats.avg_request_bytes().ceil() as usize,
        stats.avg_response_bytes().ceil() as usize,
    );
    assert!(delivered <= stats.mops() * 1e6 * 1.001);
    assert!(delivered > 0.0);
}

#[test]
fn concurrent_index_matches_single_threaded_reference_after_churn() {
    use index_traits::OrderedIndex;
    use wormhole::WormholeUnsafe;

    let keyset = generate(KeysetId::Url, 6_000, 33);
    let concurrent = Arc::new(Wormhole::with_config(
        WormholeConfig::optimized().with_leaf_capacity(16),
    ));
    // Apply a deterministic partitioned workload concurrently…
    std::thread::scope(|scope| {
        for t in 0..4usize {
            let concurrent = Arc::clone(&concurrent);
            let keys = &keyset.keys;
            scope.spawn(move || {
                for (i, key) in keys.iter().enumerate().skip(t).step_by(4) {
                    concurrent.set(key, i as u64);
                    if i % 5 == 0 {
                        concurrent.del(key);
                    }
                }
            });
        }
    });
    // …then replay the same net effect single-threaded.
    let mut reference: WormholeUnsafe<u64> = WormholeUnsafe::new();
    for (i, key) in keyset.keys.iter().enumerate() {
        reference.set(key, i as u64);
        if i % 5 == 0 {
            reference.del(key);
        }
    }
    assert_eq!(ConcurrentOrderedIndex::len(&*concurrent), reference.len());
    assert_eq!(
        concurrent.range_from(b"", usize::MAX),
        reference.range_from(b"", usize::MAX)
    );
}
