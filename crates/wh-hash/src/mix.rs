//! Finalising mixers that spread hash values across the 64-bit space.
//!
//! CRC-32c is an excellent error-detection code but a mediocre bucket
//! spreader for short, structured inputs: nearby keys produce nearby CRCs.
//! The hash tables in this workspace (the MetaTrieHT and the cuckoo baseline)
//! therefore pass the CRC through a strong avalanche mixer before using it as
//! a bucket index. The mixers here are the finalisers from SplitMix64 and
//! xorshift-multiply, both public-domain constructions.

/// SplitMix64 finaliser: a full-avalanche 64-bit mixer.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Xorshift-multiply mixer (Stafford variant 13), used where a second
/// independent hash function is needed (cuckoo hashing's second bucket).
#[inline]
pub fn xorshift_mix(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 33;
    x = x.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    x ^ (x >> 33)
}

/// Maps a hash value to a bucket index in `[0, nbuckets)`.
///
/// Uses the multiply-shift trick (Lemire's fast range reduction) instead of a
/// modulo, so `nbuckets` does not need to be a power of two.
#[inline]
pub fn mix_to_bucket(hash: u64, nbuckets: usize) -> usize {
    debug_assert!(nbuckets > 0);
    (((hash as u128) * (nbuckets as u128)) >> 64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_is_deterministic_and_avalanches() {
        assert_eq!(mix64(42), mix64(42));
        // Flipping one input bit should flip roughly half the output bits.
        let a = mix64(0x1234_5678);
        let b = mix64(0x1234_5679);
        let flipped = (a ^ b).count_ones();
        assert!(flipped >= 16, "only {flipped} bits flipped");
    }

    #[test]
    fn xorshift_mix_differs_from_mix64() {
        for x in [0u64, 1, 42, u64::MAX, 0xDEAD_BEEF] {
            if x != 0 {
                assert_ne!(mix64(x), xorshift_mix(x));
            }
        }
    }

    #[test]
    fn bucket_mapping_stays_in_range() {
        for nbuckets in [1usize, 2, 3, 7, 100, 1 << 20] {
            for x in 0u64..1000 {
                let b = mix_to_bucket(mix64(x), nbuckets);
                assert!(b < nbuckets);
            }
        }
    }

    #[test]
    fn bucket_mapping_is_roughly_uniform() {
        let nbuckets = 16;
        let mut counts = vec![0usize; nbuckets];
        let samples = 160_000u64;
        for x in 0..samples {
            counts[mix_to_bucket(mix64(x), nbuckets)] += 1;
        }
        let expected = samples as usize / nbuckets;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                c > expected * 9 / 10 && c < expected * 11 / 10,
                "bucket {i} has {c}, expected ~{expected}"
            );
        }
    }
}
