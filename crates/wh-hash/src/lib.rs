//! Hashing primitives used throughout the Wormhole index reproduction.
//!
//! The Wormhole paper (§3.1) relies on three hashing facilities:
//!
//! * An *incremental* hash over key prefixes. During the binary search on
//!   prefix lengths the search repeatedly extends an already-hashed prefix;
//!   an incremental hash lets the extension reuse the previous state instead
//!   of rehashing the whole prefix. The paper uses CRC-32c; so do we.
//! * A 16-bit *tag* derived from the full hash, stored next to pointers in
//!   hash slots and leaf nodes so that most comparisons touch only one cache
//!   line.
//! * A mixing step that spreads CRC values across the full 64-bit space for
//!   use as a bucket index (CRC alone is a poor bucket spreader for short,
//!   similar inputs).
//!
//! Everything here is implemented from scratch in safe Rust with `const`
//! table generation, so the crate has no dependencies.

pub mod crc32c;
pub mod incremental;
pub mod mix;
pub mod tag;

pub use crc32c::{crc32c, crc32c_append};
pub use incremental::IncrementalHasher;
pub use mix::{mix64, mix_to_bucket, xorshift_mix};
pub use tag::{tag16, tag8_match_mask, tag_position_hint};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_level_reexports_work() {
        let h = crc32c(b"wormhole");
        assert_eq!(h, crc32c_append(0, b"wormhole"));
        let _ = tag16(h);
        let _ = mix64(h as u64);
    }
}
