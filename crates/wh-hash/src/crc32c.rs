//! Software CRC-32c (Castagnoli) with slice-by-8 table lookup.
//!
//! CRC-32c uses the reflected polynomial `0x82F63B78`. The tables are built
//! at compile time with `const fn`, so there is no runtime initialisation and
//! no external dependency. The implementation processes eight bytes per step
//! on aligned bulk data and falls back to byte-at-a-time processing for the
//! head and tail, matching the structure of the classic slice-by-8 kernels
//! used by `libcrc32c` and the paper's C implementation.

/// The reflected CRC-32c polynomial.
pub const POLY_REFLECTED: u32 = 0x82F6_3B78;

/// Number of slice tables used by the bulk kernel.
const SLICES: usize = 8;

/// Builds the 8 × 256 lookup tables at compile time.
const fn build_tables() -> [[u32; 256]; SLICES] {
    let mut tables = [[0u32; 256]; SLICES];
    let mut i = 0usize;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY_REFLECTED
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut slice = 1usize;
    while slice < SLICES {
        let mut i = 0usize;
        while i < 256 {
            let prev = tables[slice - 1][i];
            tables[slice][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        slice += 1;
    }
    tables
}

/// Compile-time generated slice-by-8 tables.
static TABLES: [[u32; 256]; SLICES] = build_tables();

/// Processes a single byte with the table-driven kernel.
#[inline(always)]
fn step_byte(state: u32, byte: u8) -> u32 {
    (state >> 8) ^ TABLES[0][((state ^ byte as u32) & 0xFF) as usize]
}

/// Processes eight bytes at once with the slice-by-8 kernel.
#[inline(always)]
fn step_u64(state: u32, chunk: &[u8]) -> u32 {
    debug_assert_eq!(chunk.len(), 8);
    let lo = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) ^ state;
    let hi = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
    TABLES[7][(lo & 0xFF) as usize]
        ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
        ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
        ^ TABLES[4][((lo >> 24) & 0xFF) as usize]
        ^ TABLES[3][(hi & 0xFF) as usize]
        ^ TABLES[2][((hi >> 8) & 0xFF) as usize]
        ^ TABLES[1][((hi >> 16) & 0xFF) as usize]
        ^ TABLES[0][((hi >> 24) & 0xFF) as usize]
}

/// Continues a CRC-32c computation over `data`, starting from `state`.
///
/// `state` is the *internal* (pre-finalisation) state: `0` for a fresh hash.
/// The returned value is again an internal state; callers that need the
/// conventional finalised CRC should invert the bits, but the Wormhole index
/// only uses the raw state as hash material, so no finalisation is applied.
#[inline]
pub fn crc32c_append(state: u32, data: &[u8]) -> u32 {
    let mut crc = !state;
    let mut rest = data;
    while rest.len() >= 8 {
        crc = step_u64(crc, &rest[..8]);
        rest = &rest[8..];
    }
    for &b in rest {
        crc = step_byte(crc, b);
    }
    !crc
}

/// Computes the CRC-32c of `data` in one shot.
#[inline]
pub fn crc32c(data: &[u8]) -> u32 {
    crc32c_append(0, data)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Bit-at-a-time reference implementation used to validate the tables.
    fn crc32c_reference(data: &[u8]) -> u32 {
        let mut crc: u32 = 0xFFFF_FFFF;
        for &byte in data {
            crc ^= byte as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ POLY_REFLECTED
                } else {
                    crc >> 1
                };
            }
        }
        !crc
    }

    #[test]
    fn known_vector_123456789() {
        // The canonical CRC-32c check value for "123456789" is 0xE3069283.
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
    }

    #[test]
    fn empty_input_is_zero() {
        assert_eq!(crc32c(b""), 0);
    }

    /// The canonical CRC-32c vector table from RFC 3720 §B.4 (iSCSI, the
    /// polynomial's defining use). The WAL frames every record with this
    /// CRC ([`wh-durable`]'s torn-tail detection), so these vectors pin
    /// the on-disk checksum against any future change to the kernel —
    /// a table or folding rewrite that drifts from the standard would
    /// silently invalidate every existing log file.
    #[test]
    fn rfc3720_vector_table() {
        let ascending: Vec<u8> = (0u8..32).collect();
        let descending: Vec<u8> = (0u8..32).rev().collect();
        let vectors: [(&[u8], u32); 4] = [
            (&[0u8; 32], 0x8A91_36AA),
            (&[0xFFu8; 32], 0x62A8_AB43),
            (&ascending, 0x46DD_794E),
            (&descending, 0x113F_DB5C),
        ];
        for (i, (input, expected)) in vectors.iter().enumerate() {
            assert_eq!(crc32c(input), *expected, "RFC 3720 vector {i}");
        }
    }

    /// The incremental form must agree with the vector table too — WAL
    /// snapshot writing streams through `crc32c_append` chunk by chunk.
    #[test]
    fn rfc3720_vectors_hold_under_chunked_append() {
        let zeros = [0u8; 32];
        for chunk in [1usize, 3, 8, 13, 32] {
            let mut state = 0u32;
            for piece in zeros.chunks(chunk) {
                state = crc32c_append(state, piece);
            }
            assert_eq!(state, 0x8A91_36AA, "chunk size {chunk}");
        }
    }

    #[test]
    fn matches_reference_on_various_lengths() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1024).collect();
        for len in [0, 1, 2, 3, 7, 8, 9, 15, 16, 17, 63, 64, 65, 255, 256, 1024] {
            assert_eq!(
                crc32c(&data[..len]),
                crc32c_reference(&data[..len]),
                "length {len}"
            );
        }
    }

    #[test]
    fn append_is_equivalent_to_one_shot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        for split in 0..=data.len() {
            let (a, b) = data.split_at(split);
            let piecewise = crc32c_append(crc32c_append(0, a), b);
            assert_eq!(piecewise, crc32c(data), "split at {split}");
        }
    }

    #[test]
    fn different_inputs_rarely_collide() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for i in 0u32..10_000 {
            seen.insert(crc32c(&i.to_le_bytes()));
        }
        // CRC-32c over distinct 4-byte inputs is injective.
        assert_eq!(seen.len(), 10_000);
    }
}
