//! Resumable prefix hashing (the paper's *IncHashing* optimisation, §3.1).
//!
//! During the binary search on prefix lengths (Algorithm 1) the search key is
//! hashed at several prefix lengths. When a prefix match succeeds, the next
//! probed prefix is strictly longer, so the hash state of the matched prefix
//! can be extended rather than recomputed. [`IncrementalHasher`] keeps the
//! CRC state for the longest *committed* prefix and extends it on demand,
//! reducing the total number of hashed bytes from `(L/2)·log₂L` to `L`.

use crate::crc32c::crc32c_append;

/// A resumable CRC-32c hasher over a fixed key.
///
/// The hasher is created once per lookup with the full search key and then
/// asked for the hash of arbitrary prefix lengths. Lengths that extend the
/// committed prefix reuse the committed state; shorter lengths are computed
/// from scratch (the binary search only commits on successful matches, so
/// this mirrors the paper exactly).
#[derive(Debug, Clone)]
pub struct IncrementalHasher<'k> {
    key: &'k [u8],
    /// Length of the committed prefix.
    committed_len: usize,
    /// CRC state of the committed prefix.
    committed_state: u32,
}

impl<'k> IncrementalHasher<'k> {
    /// Creates a hasher over `key` with an empty committed prefix.
    #[inline]
    pub fn new(key: &'k [u8]) -> Self {
        Self {
            key,
            committed_len: 0,
            committed_state: 0,
        }
    }

    /// Returns the key this hasher operates on.
    #[inline]
    pub fn key(&self) -> &'k [u8] {
        self.key
    }

    /// Returns the length of the currently committed prefix.
    #[inline]
    pub fn committed_len(&self) -> usize {
        self.committed_len
    }

    /// Hashes the prefix `key[..len]` without changing the committed state.
    ///
    /// Reuses the committed state when `len >= committed_len`.
    #[inline]
    pub fn hash_prefix(&self, len: usize) -> u32 {
        assert!(len <= self.key.len(), "prefix length out of bounds");
        if len >= self.committed_len {
            crc32c_append(self.committed_state, &self.key[self.committed_len..len])
        } else {
            crc32c_append(0, &self.key[..len])
        }
    }

    /// Hashes the prefix `key[..len]` and commits it as the new base state
    /// when it extends the current committed prefix.
    ///
    /// The Wormhole lookup commits a prefix whenever the MetaTrieHT probe for
    /// that prefix succeeds, because the binary search will only ever probe
    /// longer prefixes afterwards from that branch.
    #[inline]
    pub fn hash_prefix_and_commit(&mut self, len: usize) -> u32 {
        let h = self.hash_prefix(len);
        if len >= self.committed_len {
            self.committed_len = len;
            self.committed_state = h;
        }
        h
    }

    /// Hashes the entire key (committing it).
    #[inline]
    pub fn hash_full(&mut self) -> u32 {
        self.hash_prefix_and_commit(self.key.len())
    }

    /// Resets the committed prefix to empty.
    #[inline]
    pub fn reset(&mut self) {
        self.committed_len = 0;
        self.committed_state = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crc32c::crc32c;

    #[test]
    fn prefix_hash_matches_one_shot() {
        let key = b"wormhole-index-key-with-a-long-suffix";
        let hasher = IncrementalHasher::new(key);
        for len in 0..=key.len() {
            assert_eq!(hasher.hash_prefix(len), crc32c(&key[..len]));
        }
    }

    #[test]
    fn commit_then_extend_matches_one_shot() {
        let key = b"abcdefghijklmnopqrstuvwxyz0123456789";
        let mut hasher = IncrementalHasher::new(key);
        // Simulate a binary search: commit at 18, then probe 27, 31, 36.
        let h18 = hasher.hash_prefix_and_commit(18);
        assert_eq!(h18, crc32c(&key[..18]));
        for len in [27usize, 31, 36] {
            assert_eq!(hasher.hash_prefix(len), crc32c(&key[..len]));
        }
        // Probing a shorter prefix after a commit still works.
        assert_eq!(hasher.hash_prefix(9), crc32c(&key[..9]));
    }

    #[test]
    fn committed_len_only_grows() {
        let key = b"0123456789";
        let mut hasher = IncrementalHasher::new(key);
        hasher.hash_prefix_and_commit(6);
        assert_eq!(hasher.committed_len(), 6);
        hasher.hash_prefix_and_commit(3);
        assert_eq!(hasher.committed_len(), 6);
        hasher.hash_prefix_and_commit(9);
        assert_eq!(hasher.committed_len(), 9);
    }

    #[test]
    fn reset_clears_state() {
        let key = b"reset-me";
        let mut hasher = IncrementalHasher::new(key);
        hasher.hash_full();
        hasher.reset();
        assert_eq!(hasher.committed_len(), 0);
        assert_eq!(hasher.hash_prefix(4), crc32c(&key[..4]));
    }

    #[test]
    #[should_panic(expected = "prefix length out of bounds")]
    fn out_of_bounds_prefix_panics() {
        let hasher = IncrementalHasher::new(b"abc");
        let _ = hasher.hash_prefix(4);
    }
}
