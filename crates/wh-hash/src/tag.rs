//! 16-bit tags and speculative positioning (paper §3.1–3.2).
//!
//! Wormhole stores a 16-bit tag next to each pointer in MetaTrieHT hash slots
//! and next to each key in a leaf node. Comparisons are performed on the tag
//! first, so the (possibly long) key is only dereferenced when the tag
//! matches. The leaf-node search additionally uses the tag value itself as a
//! position hint into the tag-sorted array (*DirectPos*): with a uniform
//! hash, a tag of value `T` in an array of `n` keys is expected near index
//! `n·T / 65536`.

/// Extracts the 16-bit tag from a 32-bit hash value.
///
/// The paper uses the lower 16 bits of the CRC-32c value.
#[inline]
pub fn tag16(hash: u32) -> u16 {
    (hash & 0xFFFF) as u16
}

/// Returns the expected position of `tag` in a tag-sorted array of `len`
/// entries (the *DirectPos* speculative starting point).
#[inline]
pub fn tag_position_hint(tag: u16, len: usize) -> usize {
    if len == 0 {
        return 0;
    }
    // k × T / (Tmax + 1), clamped to a valid index.
    let pos = (len * tag as usize) >> 16;
    pos.min(len - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_is_low_16_bits() {
        assert_eq!(tag16(0xDEAD_BEEF), 0xBEEF);
        assert_eq!(tag16(0x0000_0001), 1);
        assert_eq!(tag16(0xFFFF_0000), 0);
    }

    #[test]
    fn position_hint_bounds() {
        assert_eq!(tag_position_hint(0, 0), 0);
        assert_eq!(tag_position_hint(u16::MAX, 0), 0);
        for len in [1usize, 2, 7, 128, 1000] {
            assert_eq!(tag_position_hint(0, len), 0);
            assert!(tag_position_hint(u16::MAX, len) < len);
        }
    }

    #[test]
    fn position_hint_is_monotonic_in_tag() {
        let len = 128;
        let mut last = 0;
        for t in 0..=u16::MAX {
            let p = tag_position_hint(t, len);
            assert!(p >= last);
            last = p;
        }
    }

    #[test]
    fn position_hint_matches_uniform_expectation() {
        // A tag exactly halfway through the space should land near the middle.
        let hint = tag_position_hint(0x8000, 128);
        assert!((63..=65).contains(&hint), "hint was {hint}");
    }
}
