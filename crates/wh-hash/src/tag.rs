//! 16-bit tags and speculative positioning (paper §3.1–3.2).
//!
//! Wormhole stores a 16-bit tag next to each pointer in MetaTrieHT hash slots
//! and next to each key in a leaf node. Comparisons are performed on the tag
//! first, so the (possibly long) key is only dereferenced when the tag
//! matches. The leaf-node search additionally uses the tag value itself as a
//! position hint into the tag-sorted array (*DirectPos*): with a uniform
//! hash, a tag of value `T` in an array of `n` keys is expected near index
//! `n·T / 65536`.

/// Extracts the 16-bit tag from a 32-bit hash value.
///
/// The paper uses the lower 16 bits of the CRC-32c value.
#[inline]
pub fn tag16(hash: u32) -> u16 {
    (hash & 0xFFFF) as u16
}

/// Compares all eight tags of one cache-line bucket against `tag` at once
/// and returns a bitmask (bit `i` set ⟺ `tags[i]` may equal `tag`).
///
/// This is the batch comparison behind the MetaTrieHT's bucketized probe:
/// the eight 16-bit tags of a 64-byte bucket are packed into two `u64`
/// words and compared SWAR-style (XOR + zero-lane detection), so a probe
/// decides "which slots are candidates" from one cache line without any
/// per-slot branching.
///
/// The mask is *conservative in one direction only*: every true match has
/// its bit set (no false negatives), but a higher lane can rarely be
/// flagged spuriously when a lower lane in the same word is a true match
/// (the zero-lane borrow trick propagates across lanes). Callers either
/// verify the stored key on match (exact probes) or take the lowest set
/// bit first (optimistic probes), so the slack never changes results.
#[inline]
pub fn tag8_match_mask(tags: &[u16; 8], tag: u16) -> u8 {
    const LANE_LSB: u64 = 0x0001_0001_0001_0001;
    const LANE_MSB: u64 = 0x8000_8000_8000_8000;
    let needle = (tag as u64).wrapping_mul(LANE_LSB);
    let mut mask = 0u8;
    for (word, chunk) in tags.chunks_exact(4).enumerate() {
        let packed = chunk[0] as u64
            | (chunk[1] as u64) << 16
            | (chunk[2] as u64) << 32
            | (chunk[3] as u64) << 48;
        let diff = packed ^ needle;
        // A zero 16-bit lane in `diff` marks a matching tag.
        let zero_lanes = diff.wrapping_sub(LANE_LSB) & !diff & LANE_MSB;
        // Lane high bits sit at positions 15/31/47/63; compress to 4 bits.
        let lane_bits = ((zero_lanes >> 15) & 1)
            | ((zero_lanes >> 30) & 2)
            | ((zero_lanes >> 45) & 4)
            | ((zero_lanes >> 60) & 8);
        mask |= (lane_bits as u8) << (word * 4);
    }
    mask
}

/// Returns the expected position of `tag` in a tag-sorted array of `len`
/// entries (the *DirectPos* speculative starting point).
#[inline]
pub fn tag_position_hint(tag: u16, len: usize) -> usize {
    if len == 0 {
        return 0;
    }
    // k × T / (Tmax + 1), clamped to a valid index.
    let pos = (len * tag as usize) >> 16;
    pos.min(len - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_is_low_16_bits() {
        assert_eq!(tag16(0xDEAD_BEEF), 0xBEEF);
        assert_eq!(tag16(0x0000_0001), 1);
        assert_eq!(tag16(0xFFFF_0000), 0);
    }

    #[test]
    fn position_hint_bounds() {
        assert_eq!(tag_position_hint(0, 0), 0);
        assert_eq!(tag_position_hint(u16::MAX, 0), 0);
        for len in [1usize, 2, 7, 128, 1000] {
            assert_eq!(tag_position_hint(0, len), 0);
            assert!(tag_position_hint(u16::MAX, len) < len);
        }
    }

    #[test]
    fn position_hint_is_monotonic_in_tag() {
        let len = 128;
        let mut last = 0;
        for t in 0..=u16::MAX {
            let p = tag_position_hint(t, len);
            assert!(p >= last);
            last = p;
        }
    }

    /// Scalar reference for the SWAR mask: exact per-slot equality.
    fn scalar_mask(tags: &[u16; 8], tag: u16) -> u8 {
        let mut mask = 0u8;
        for (i, &t) in tags.iter().enumerate() {
            if t == tag {
                mask |= 1 << i;
            }
        }
        mask
    }

    #[test]
    fn tag8_mask_finds_every_true_match() {
        // No false negatives: every scalar match bit appears in the SWAR
        // mask, on fixed corner cases and a pseudo-random sweep.
        let cases: Vec<([u16; 8], u16)> = vec![
            ([0; 8], 0),
            ([0; 8], 1),
            ([u16::MAX; 8], u16::MAX),
            ([1, 0, 1, 0, 1, 0, 1, 0], 1),
            ([0xBEEF, 1, 2, 3, 4, 5, 6, 0xBEEF], 0xBEEF),
            // Borrow-propagation case: a zero lane below a lane holding 1.
            ([7, 1, 0, 0, 0x8000, 0x8001, 0x7FFF, 1], 7),
        ];
        for (tags, tag) in cases {
            let swar = tag8_match_mask(&tags, tag);
            let exact = scalar_mask(&tags, tag);
            assert_eq!(swar & exact, exact, "missed match: {tags:?} vs {tag:#x}");
        }
        let mut state = 0x1234_5678_9ABC_DEFFu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..20_000 {
            let mut tags = [0u16; 8];
            for t in &mut tags {
                // Small value space so collisions and borrow cases occur.
                *t = (next() % 5) as u16;
            }
            let tag = (next() % 5) as u16;
            let swar = tag8_match_mask(&tags, tag);
            let exact = scalar_mask(&tags, tag);
            assert_eq!(swar & exact, exact, "missed match: {tags:?} vs {tag}");
            // False positives are tolerated, but only above a true match in
            // the same 4-lane word (the documented borrow direction).
            let spurious = swar & !exact;
            for word in 0..2 {
                let word_bits = 0b1111u8 << (word * 4);
                let word_spurious = spurious & word_bits;
                if word_spurious != 0 {
                    let word_exact = exact & word_bits;
                    assert!(
                        word_exact != 0
                            && word_exact.trailing_zeros() < word_spurious.trailing_zeros(),
                        "unexplained false positive: {tags:?} vs {tag}"
                    );
                }
            }
        }
    }

    #[test]
    fn tag8_mask_lowest_bit_is_always_a_true_match() {
        // The optimistic probe takes the lowest set bit; that bit must be
        // exact even when higher lanes carry borrow artifacts.
        let mut state = 0xDEAD_BEEF_0BAD_F00Du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..20_000 {
            let mut tags = [0u16; 8];
            for t in &mut tags {
                *t = (next() % 7) as u16;
            }
            let tag = (next() % 7) as u16;
            let mask = tag8_match_mask(&tags, tag);
            if mask != 0 {
                let first = mask.trailing_zeros() as usize;
                assert_eq!(tags[first], tag, "{tags:?} vs {tag}");
            } else {
                assert!(!tags.contains(&tag));
            }
        }
    }

    #[test]
    fn position_hint_matches_uniform_expectation() {
        // A tag exactly halfway through the space should land near the middle.
        let hint = tag_position_hint(0x8000, 128);
        assert!((63..=65).contains(&hint), "hint was {hint}");
    }
}
