//! Shared traits and byte-key utilities for the Wormhole reproduction.
//!
//! Every index in this workspace — the Wormhole index itself and the five
//! baselines it is evaluated against (B+ tree, skip list, ART, Masstree,
//! cuckoo hash) — implements the traits defined here so that the benchmark
//! harness, examples, and integration tests can drive any of them through a
//! single interface.
//!
//! Keys are raw byte strings (`&[u8]`), matching the paper's model of keys as
//! token strings where each byte is a token. Values are a generic parameter
//! `V`; the benchmark harness instantiates `V = u64` (the paper measures index
//! cost only and "skips access of values"), while the examples use richer
//! value types.

pub mod key;
pub mod scan;
pub mod traits;

pub use key::{common_prefix_len, immediate_successor_into, is_prefix_of, successor_key, KeyRange};
pub use scan::{ChainedSource, Cursor, CursorSource, RangeSink, ScanBatch, ScanPage};
pub use traits::{ConcurrentOrderedIndex, DurableIndex, IndexStats, OrderedIndex, UnorderedIndex};
