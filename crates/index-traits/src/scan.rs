//! Resumable ordered-scan cursors.
//!
//! `range_from` answers a bounded window but materialises a fresh
//! `Vec<(Vec<u8>, V)>` on every call — an `O(window)` copy that long
//! analytical scans and pagination loops pay over and over. The types here
//! let a caller *stream* an ordered scan instead: a [`Cursor`] pulls the
//! index's pairs batch by batch into one reusable [`ScanBatch`] arena, so a
//! steady-state scan performs **zero heap allocations per batch** no matter
//! how far it runs.
//!
//! # Consistency contract
//!
//! A cursor yields each key **at most once**, in **strictly ascending key
//! order**. Each batch is an atomic snapshot of one region of the index
//! (for the Wormhole indexes: exactly one leaf node, captured under seqlock
//! validation), but there is **no global snapshot across batches**: a key
//! inserted behind the cursor's position is never seen, a key inserted
//! ahead of it may or may not be seen depending on timing, and a key that
//! exists for the whole duration of the scan is seen exactly once. This is
//! the same per-leaf guarantee `range_from` gives on the concurrent
//! Wormhole — see `wormhole::concurrent` for the safety model that bounds
//! what a racing optimistic read may transiently observe before validation
//! discards it (live memory only: leaf-interior frees are deferred past a
//! QSBR grace period).
//!
//! # Resumability
//!
//! [`Cursor::resume_key`] reports the start key that continues the scan
//! after everything consumed so far. The cursor borrows the index, so
//! single-threaded callers drop it, mutate, and reopen with
//! `index.scan(&resume_key)`; pagination services persist the resume key
//! between requests the same way.

use crate::traits::{ConcurrentOrderedIndex, OrderedIndex};

/// Number of pairs the default `range_from`-adapted cursor source fetches
/// per batch.
pub const DEFAULT_SCAN_BATCH: usize = 128;

/// One batch of scan output.
///
/// Keys are stored concatenated in a single byte arena (`bytes` + end
/// offsets) rather than as one `Vec<u8>` per key, so refilling a batch in
/// steady state reuses three flat buffers and allocates nothing.
#[derive(Debug)]
pub struct ScanBatch<V> {
    /// Concatenated key bytes.
    bytes: Vec<u8>,
    /// End offset of key `i` in `bytes` (its start is `ends[i - 1]` or 0).
    ends: Vec<usize>,
    /// Value of key `i`.
    values: Vec<V>,
}

impl<V> Default for ScanBatch<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> ScanBatch<V> {
    /// Creates an empty batch.
    pub fn new() -> Self {
        Self {
            bytes: Vec::new(),
            ends: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Pre-sizes the batch for `items` pairs totalling `key_bytes` of key
    /// payload, so the first fills are as allocation-free as steady state.
    pub fn reserve(&mut self, items: usize, key_bytes: usize) {
        self.bytes.reserve(key_bytes);
        self.ends.reserve(items);
        self.values.reserve(items);
    }

    /// Removes every pair, keeping the buffers for reuse.
    pub fn clear(&mut self) {
        self.bytes.clear();
        self.ends.clear();
        self.values.clear();
    }

    /// Number of pairs in the batch.
    pub fn len(&self) -> usize {
        self.ends.len()
    }

    /// Returns `true` when the batch holds no pairs.
    pub fn is_empty(&self) -> bool {
        self.ends.is_empty()
    }

    /// Appends a pair (callers must keep keys ascending).
    pub fn push(&mut self, key: &[u8], value: V) {
        self.bytes.extend_from_slice(key);
        self.ends.push(self.bytes.len());
        self.values.push(value);
    }

    /// Key of pair `i`.
    pub fn key(&self, i: usize) -> &[u8] {
        let start = if i == 0 { 0 } else { self.ends[i - 1] };
        &self.bytes[start..self.ends[i]]
    }

    /// Value of pair `i`.
    pub fn value(&self, i: usize) -> &V {
        &self.values[i]
    }

    /// Pair `i` as `(key, value)`.
    pub fn get(&self, i: usize) -> (&[u8], &V) {
        (self.key(i), self.value(i))
    }

    /// The last key in the batch, if any.
    pub fn last_key(&self) -> Option<&[u8]> {
        self.len().checked_sub(1).map(|i| self.key(i))
    }

    /// Keeps only the first `len` pairs, trimming the key arena to match
    /// (no-op when `len >= self.len()`). Lets a consumer that must not
    /// observe keys beyond an upper bound — e.g. a range-sharded scan
    /// clamping a segment to its shard's boundary — drop a batch's tail
    /// without copying or reallocating.
    pub fn truncate(&mut self, len: usize) {
        if len >= self.ends.len() {
            return;
        }
        let bytes_end = if len == 0 { 0 } else { self.ends[len - 1] };
        self.bytes.truncate(bytes_end);
        self.ends.truncate(len);
        self.values.truncate(len);
    }

    /// Iterates the pairs in order.
    pub fn iter(&self) -> impl Iterator<Item = (&[u8], &V)> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }
}

/// One bounded page of an ordered scan, plus the continuation that fetches
/// the next page: the unit a **streaming scan RPC** ships per response
/// message.
///
/// A service answering a scan request cannot stream an unbounded cursor
/// into one response — a million-key scan must cross many bounded-size
/// messages. `ScanPage` is the wire-shaped slice of a scan:
/// [`items`](ScanPage::items) holds up to the requested number of pairs
/// (in strictly ascending key order), and [`resume`](ScanPage::resume)
/// carries the start key of the next page, or `None` once the scan is
/// known to be exhausted. Because the resume key is a plain global key
/// (see [`Cursor::resume_key`]), the continuation is **stateless**: the
/// server keeps no cursor between pages, the client just issues the next
/// request at `resume` — which also makes a long scan robust to the index
/// reorganising (shard boundaries migrating, leaves splitting) between
/// pages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanPage<V> {
    /// Up to `limit` key/value pairs, ascending, starting at the smallest
    /// key `>=` the requested start.
    pub items: Vec<(Vec<u8>, V)>,
    /// Start key of the next page (`None` when the scan is complete). A
    /// `Some` resume after a full page may still point past the last key —
    /// the next page then comes back empty with `resume: None`.
    pub resume: Option<Vec<u8>>,
}

/// A destination for range-collection primitives: both the materialising
/// `Vec<(Vec<u8>, V)>` output of `range_from` and the arena-backed
/// [`ScanBatch`] of a cursor, so an index implements its collection loop
/// once and serves both APIs.
pub trait RangeSink<V> {
    /// Accepts the next pair of the scan, in ascending key order.
    fn accept(&mut self, key: &[u8], value: &V);
}

impl<V: Clone> RangeSink<V> for ScanBatch<V> {
    fn accept(&mut self, key: &[u8], value: &V) {
        self.push(key, value.clone());
    }
}

impl<V: Clone> RangeSink<V> for Vec<(Vec<u8>, V)> {
    fn accept(&mut self, key: &[u8], value: &V) {
        self.push((key.to_vec(), value.clone()));
    }
}

/// The index-side driver of a [`Cursor`]: produces the scan's batches.
pub trait CursorSource<V> {
    /// Clears `batch` and fills it with the next run of pairs, in ascending
    /// key order and strictly above everything filled by earlier calls.
    /// Returns `false` when the scan is exhausted (leaving `batch` empty);
    /// a `true` return guarantees at least one pair.
    ///
    /// `limit` caps how many pairs this batch needs to hold (the consumer
    /// will not take more before asking again): implementations may stop
    /// collecting — and cloning values — once they reach it, as long as a
    /// truncated batch still resumes exactly after its last pair. Pass
    /// `usize::MAX` when streaming without a known bound.
    fn fill_next(&mut self, batch: &mut ScanBatch<V>, limit: usize) -> bool;

    /// Pre-sizes any internal buffers for batches of `items` pairs and
    /// `key_bytes` of key payload. Optional; the default does nothing.
    fn reserve(&mut self, items: usize, key_bytes: usize) {
        let _ = (items, key_bytes);
    }
}

/// Adapts `range_from` into a [`CursorSource`]: each batch is one
/// `range_from(resume, DEFAULT_SCAN_BATCH)` call, resumed at the successor
/// (`last key ++ 0x00`) of the previous batch. This is the default `scan`
/// of every index that does not provide a native streaming path; it removes
/// the `O(window)` copy of a single huge `range_from` but still pays one
/// key-`Vec` allocation per pair inside the adapted call.
struct RangeFnSource<V, F> {
    fetch: F,
    /// Inclusive lower bound of the next batch (reused buffer).
    resume: Vec<u8>,
    done: bool,
    _values: std::marker::PhantomData<fn() -> V>,
}

impl<V, F> CursorSource<V> for RangeFnSource<V, F>
where
    F: FnMut(&[u8], usize) -> Vec<(Vec<u8>, V)>,
{
    fn fill_next(&mut self, batch: &mut ScanBatch<V>, limit: usize) -> bool {
        batch.clear();
        if self.done {
            return false;
        }
        let want = limit.min(DEFAULT_SCAN_BATCH);
        let got = (self.fetch)(&self.resume, want);
        if got.len() < want {
            self.done = true;
        }
        for (key, value) in got {
            batch.push(&key, value);
        }
        if let Some(last) = batch.last_key() {
            crate::key::immediate_successor_into(last, &mut self.resume);
        }
        !batch.is_empty()
    }

    fn reserve(&mut self, _items: usize, key_bytes: usize) {
        self.resume.reserve(key_bytes);
    }
}

/// Chains the scans of several sources whose key spaces are pairwise
/// disjoint and ascending — segment `i + 1`'s keys are all strictly greater
/// than segment `i`'s, as holds for the shards of a range-partitioned index.
///
/// Segments are produced lazily by a factory closure (so a cross-shard scan
/// only opens a shard's cursor when the stream actually reaches it) and
/// consumed in order: each [`CursorSource::fill_next`] delegates to the
/// current segment, advancing to the next one when it is exhausted. Because
/// the segments' ranges ascend, the concatenation satisfies the
/// [`CursorSource`] contract (strictly ascending across every batch) as
/// long as each segment does.
///
/// A whole [`Cursor`] can serve as a segment — see the
/// [`CursorSource` impl for `Cursor`](Cursor#impl-CursorSource%3CV%3E-for-Cursor%3C'a,+V%3E).
/// (`ShardedWormhole` used to chain its per-shard cursors through this
/// type; online rebalancing moved it to its own routed source that
/// re-validates boundaries per batch, so this remains as the general
/// static-partition building block.)
pub struct ChainedSource<'a, V> {
    /// Produces the next segment, or `None` when every segment has been
    /// consumed. Invoked exactly once per segment, in chain order.
    next_segment: Box<dyn FnMut() -> Option<Box<dyn CursorSource<V> + 'a>> + 'a>,
    current: Option<Box<dyn CursorSource<V> + 'a>>,
    /// Reserve hint replayed onto each newly opened segment.
    hint: Option<(usize, usize)>,
    done: bool,
}

impl<'a, V> ChainedSource<'a, V> {
    /// Builds a chain over the segments produced by `next_segment`.
    pub fn new(
        next_segment: Box<dyn FnMut() -> Option<Box<dyn CursorSource<V> + 'a>> + 'a>,
    ) -> Self {
        Self {
            next_segment,
            current: None,
            hint: None,
            done: false,
        }
    }
}

impl<'a, V> CursorSource<V> for ChainedSource<'a, V> {
    fn fill_next(&mut self, batch: &mut ScanBatch<V>, limit: usize) -> bool {
        batch.clear();
        while !self.done {
            if self.current.is_none() {
                match (self.next_segment)() {
                    Some(mut segment) => {
                        if let Some((items, key_bytes)) = self.hint {
                            segment.reserve(items, key_bytes);
                        }
                        self.current = Some(segment);
                    }
                    None => {
                        self.done = true;
                        break;
                    }
                }
            }
            if self
                .current
                .as_mut()
                .expect("segment present")
                .fill_next(batch, limit)
            {
                return true;
            }
            // Segment exhausted: drop it and move on to the next one.
            self.current = None;
        }
        false
    }

    fn reserve(&mut self, items: usize, key_bytes: usize) {
        self.hint = Some((items, key_bytes));
        if let Some(current) = self.current.as_mut() {
            current.reserve(items, key_bytes);
        }
    }
}

/// A resumable ordered-scan cursor over an index.
///
/// Borrowing the index for `'a`, the cursor streams pairs in strictly
/// ascending key order, one [`ScanBatch`] at a time. See the
/// [module docs](self) for the consistency contract (per-batch snapshots,
/// no global snapshot) and resumability.
pub struct Cursor<'a, V> {
    source: Box<dyn CursorSource<V> + 'a>,
    batch: ScanBatch<V>,
    /// Pairs `[..pos]` of `batch` have been consumed.
    pos: usize,
    /// Start key continuing the scan after every *fully consumed* batch;
    /// `resume_key` refines it with the in-batch position.
    resume: Vec<u8>,
    /// Advisory per-batch cap passed to the source (`usize::MAX` when
    /// streaming without a bound); set by `collect_next` so a bounded
    /// window never makes the index copy more than it asked for.
    fetch_budget: usize,
    done: bool,
}

impl<'a, V> Cursor<'a, V> {
    /// Wraps an index-provided source into a cursor starting at `start`.
    pub fn new(start: &[u8], source: Box<dyn CursorSource<V> + 'a>) -> Self {
        Self {
            source,
            batch: ScanBatch::new(),
            pos: 0,
            resume: start.to_vec(),
            fetch_budget: usize::MAX,
            done: false,
        }
    }

    /// Builds a cursor over a `range_from`-style fetch function — the
    /// default adapter used by indexes without a native streaming path.
    pub fn adapt_range_from<F>(start: &[u8], fetch: F) -> Self
    where
        F: FnMut(&[u8], usize) -> Vec<(Vec<u8>, V)> + 'a,
        V: 'a,
    {
        Self::new(
            start,
            Box::new(RangeFnSource {
                fetch,
                resume: start.to_vec(),
                done: false,
                _values: std::marker::PhantomData,
            }),
        )
    }

    /// Pre-sizes the batch arena (and the source's internal buffers) for
    /// batches of `items` pairs and `key_bytes` of key payload, so even the
    /// first batches allocate nothing.
    pub fn reserve(&mut self, items: usize, key_bytes: usize) {
        self.batch.reserve(items, key_bytes);
        self.source.reserve(items, key_bytes);
        self.resume.reserve(key_bytes);
    }

    /// Fetches the next batch, recording the resume point of the one being
    /// abandoned. Returns `false` at the end of the scan.
    fn refill(&mut self) -> bool {
        if let Some(last) = self.batch.last_key() {
            crate::key::immediate_successor_into(last, &mut self.resume);
        }
        self.pos = 0;
        if self.done {
            self.batch.clear();
            return false;
        }
        if self
            .source
            .fill_next(&mut self.batch, self.fetch_budget.max(1))
        {
            true
        } else {
            self.done = true;
            false
        }
    }

    /// Yields the next pair, fetching a new batch when the current one is
    /// exhausted. The borrow ends before the next call (lending iteration),
    /// which is what lets every yielded key live in the reused arena.
    #[allow(clippy::should_implement_trait)] // lending: item borrows &mut self
    pub fn next(&mut self) -> Option<(&[u8], &V)> {
        if self.pos == self.batch.len() && !self.refill() {
            return None;
        }
        let i = self.pos;
        self.pos += 1;
        Some(self.batch.get(i))
    }

    /// Advances to the next non-empty batch and yields it whole. Any pairs
    /// of the current batch not yet taken with [`Cursor::next`] are
    /// skipped — batch iteration concedes the batch as a unit.
    pub fn next_batch(&mut self) -> Option<&ScanBatch<V>> {
        if !self.refill() {
            return None;
        }
        self.pos = self.batch.len();
        Some(&self.batch)
    }

    /// Copies up to `count` pairs into `out` (the materialising bridge that
    /// lets `range_from` be a thin wrapper over the cursor). Returns how
    /// many pairs were appended.
    pub fn collect_next(&mut self, count: usize, out: &mut Vec<(Vec<u8>, V)>) -> usize
    where
        V: Clone,
    {
        let mut appended = 0;
        while appended < count {
            // Tell the source how much of the window is left, so a short
            // window never snapshots (and clones) a whole leaf of values.
            self.fetch_budget = count - appended;
            match self.next() {
                Some((key, value)) => {
                    out.push((key.to_vec(), value.clone()));
                    appended += 1;
                }
                None => break,
            }
        }
        self.fetch_budget = usize::MAX;
        appended
    }

    /// The start key that continues this scan after everything consumed so
    /// far: pass it to a fresh `scan` (possibly after mutating the index)
    /// to resume without re-yielding any pair.
    ///
    /// # Examples
    ///
    /// Drop a cursor mid-scan, keep only its resume key, and continue from
    /// a fresh cursor without duplicating or skipping a pair:
    ///
    /// ```
    /// use index_traits::Cursor;
    /// use std::collections::BTreeMap;
    ///
    /// let map: BTreeMap<Vec<u8>, u64> =
    ///     (0u8..6).map(|i| (vec![b'k', b'0' + i], u64::from(i))).collect();
    /// let fetch = |start: &[u8], count: usize| {
    ///     map.range(start.to_vec()..).take(count)
    ///         .map(|(k, v)| (k.clone(), *v)).collect::<Vec<_>>()
    /// };
    ///
    /// // Consume the first two pairs, then abandon the cursor.
    /// let mut cursor = Cursor::adapt_range_from(b"", fetch);
    /// let mut first = Vec::new();
    /// cursor.collect_next(2, &mut first);
    /// let resume = cursor.resume_key();
    /// drop(cursor);
    ///
    /// // The resume key is the successor of the last consumed key ...
    /// assert_eq!(first.last().unwrap().0, b"k1");
    /// assert_eq!(resume, b"k1\x00");
    ///
    /// // ... so a fresh cursor picks up exactly where the old one stopped.
    /// let mut rest = Vec::new();
    /// Cursor::adapt_range_from(&resume, fetch).collect_next(usize::MAX, &mut rest);
    /// let keys: Vec<_> = first.iter().chain(&rest).map(|(k, _)| k.clone()).collect();
    /// assert_eq!(keys, [b"k0", b"k1", b"k2", b"k3", b"k4", b"k5"]);
    /// ```
    pub fn resume_key(&self) -> Vec<u8> {
        if self.pos > 0 {
            let mut key = Vec::new();
            crate::key::immediate_successor_into(self.batch.key(self.pos - 1), &mut key);
            key
        } else {
            self.resume.clone()
        }
    }

    /// Returns `true` once the scan is exhausted and fully consumed.
    pub fn is_done(&self) -> bool {
        self.done && self.pos == self.batch.len()
    }
}

/// A cursor is itself a [`CursorSource`]: one index's whole scan can serve
/// as a segment of a larger scan (see [`ChainedSource`]). In steady state
/// each batch is filled by the cursor's underlying source directly into the
/// consumer's arena — the cursor's own batch stays empty, so stacking adds
/// no copy.
impl<'a, V: Clone> CursorSource<V> for Cursor<'a, V> {
    fn fill_next(&mut self, batch: &mut ScanBatch<V>, limit: usize) -> bool {
        batch.clear();
        // Pairs already buffered but not consumed (a caller that mixed
        // `next` with source use) are handed over first, by copy.
        if self.pos < self.batch.len() {
            let take = (self.batch.len() - self.pos).min(limit.max(1));
            for i in self.pos..self.pos + take {
                let (key, value) = self.batch.get(i);
                batch.push(key, value.clone());
            }
            self.pos += take;
            return true;
        }
        if self.done {
            return false;
        }
        if self.source.fill_next(batch, limit.max(1)) {
            // Keep resumability coherent: everything filled counts as
            // consumed, so `resume_key` continues after this batch.
            if let Some(last) = batch.last_key() {
                crate::key::immediate_successor_into(last, &mut self.resume);
            }
            self.batch.clear();
            self.pos = 0;
            true
        } else {
            self.done = true;
            false
        }
    }

    fn reserve(&mut self, items: usize, key_bytes: usize) {
        Cursor::reserve(self, items, key_bytes);
    }
}

/// Blanket `scan` entry points, kept in free functions so the trait default
/// methods stay one-liners.
pub(crate) fn scan_ordered<'a, V, I>(index: &'a I, start: &[u8]) -> Cursor<'a, V>
where
    I: OrderedIndex<V> + ?Sized,
    V: Clone + 'a,
{
    Cursor::adapt_range_from(start, move |resume, count| index.range_from(resume, count))
}

pub(crate) fn scan_concurrent<'a, V, I>(index: &'a I, start: &[u8]) -> Cursor<'a, V>
where
    I: ConcurrentOrderedIndex<V> + ?Sized,
    V: Clone + 'a,
{
    Cursor::adapt_range_from(start, move |resume, count| index.range_from(resume, count))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::{IndexStats, OrderedIndex};
    use std::collections::BTreeMap;

    #[derive(Default)]
    struct Model {
        map: BTreeMap<Vec<u8>, u64>,
    }

    impl OrderedIndex<u64> for Model {
        fn name(&self) -> &'static str {
            "model"
        }
        fn get(&self, key: &[u8]) -> Option<u64> {
            self.map.get(key).copied()
        }
        fn set(&mut self, key: &[u8], value: u64) -> Option<u64> {
            self.map.insert(key.to_vec(), value)
        }
        fn del(&mut self, key: &[u8]) -> Option<u64> {
            self.map.remove(key)
        }
        fn len(&self) -> usize {
            self.map.len()
        }
        fn range_from(&self, start: &[u8], count: usize) -> Vec<(Vec<u8>, u64)> {
            self.map
                .range(start.to_vec()..)
                .take(count)
                .map(|(k, v)| (k.clone(), *v))
                .collect()
        }
        fn stats(&self) -> IndexStats {
            IndexStats::default()
        }
    }

    fn populated(n: u64) -> Model {
        let mut m = Model::default();
        for i in 0..n {
            m.set(format!("key-{i:05}").as_bytes(), i);
        }
        m
    }

    #[test]
    fn batch_arena_roundtrip() {
        let mut batch: ScanBatch<u64> = ScanBatch::new();
        assert!(batch.is_empty());
        assert_eq!(batch.last_key(), None);
        batch.push(b"alpha", 1);
        batch.push(b"beta", 2);
        batch.push(b"", 3); // empty keys are representable
        assert_eq!(batch.len(), 3);
        assert_eq!(batch.get(0), (b"alpha".as_ref(), &1));
        assert_eq!(batch.get(1), (b"beta".as_ref(), &2));
        assert_eq!(batch.get(2), (b"".as_ref(), &3));
        assert_eq!(batch.last_key(), Some(b"".as_ref()));
        let pairs: Vec<(Vec<u8>, u64)> = batch.iter().map(|(k, v)| (k.to_vec(), *v)).collect();
        assert_eq!(pairs.len(), 3);
        batch.clear();
        assert!(batch.is_empty());
    }

    #[test]
    fn batch_truncate_trims_arena_and_pairs() {
        let mut batch: ScanBatch<u64> = ScanBatch::new();
        batch.push(b"aa", 1);
        batch.push(b"bbbb", 2);
        batch.push(b"c", 3);
        batch.truncate(5); // beyond len: no-op
        assert_eq!(batch.len(), 3);
        batch.truncate(2);
        assert_eq!(batch.len(), 2);
        assert_eq!(batch.get(0), (b"aa".as_ref(), &1));
        assert_eq!(batch.get(1), (b"bbbb".as_ref(), &2));
        assert_eq!(batch.last_key(), Some(b"bbbb".as_ref()));
        // The arena end matches the kept keys, so further pushes append
        // cleanly after a truncation.
        batch.push(b"dd", 4);
        assert_eq!(batch.get(2), (b"dd".as_ref(), &4));
        batch.truncate(0);
        assert!(batch.is_empty());
        batch.push(b"e", 5);
        assert_eq!(batch.get(0), (b"e".as_ref(), &5));
    }

    #[test]
    fn default_scan_streams_every_pair_once() {
        let model = populated(500);
        let mut cursor = model.scan(b"");
        let mut seen = Vec::new();
        while let Some((k, v)) = cursor.next() {
            seen.push((k.to_vec(), *v));
        }
        assert!(cursor.is_done());
        assert_eq!(seen.len(), 500);
        assert!(seen.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(seen, model.range_from(b"", usize::MAX));
    }

    #[test]
    fn default_scan_exact_batch_multiple() {
        // A population that is an exact multiple of the adapter batch size
        // must not yield a trailing phantom batch or duplicate pairs.
        let model = populated(2 * DEFAULT_SCAN_BATCH as u64);
        let mut cursor = model.scan(b"");
        let mut n = 0usize;
        while let Some(batch) = cursor.next_batch() {
            assert!(!batch.is_empty());
            n += batch.len();
        }
        assert_eq!(n, 2 * DEFAULT_SCAN_BATCH);
    }

    #[test]
    fn scan_respects_start_bound() {
        let model = populated(300);
        let mut cursor = model.scan(b"key-00250");
        let mut seen = Vec::new();
        while let Some((k, _)) = cursor.next() {
            seen.push(k.to_vec());
        }
        assert_eq!(seen.len(), 50);
        assert_eq!(seen[0], b"key-00250".to_vec());
    }

    #[test]
    fn resume_key_continues_without_duplicates_across_mutation() {
        let mut model = populated(400);
        let mut first = Vec::new();
        let resume = {
            let mut cursor = model.scan(b"");
            cursor.collect_next(150, &mut first);
            cursor.resume_key()
        };
        assert_eq!(first.len(), 150);
        // Mutate behind and ahead of the cursor, then resume.
        model.del(b"key-00010"); // behind: already yielded, stays yielded once
        model.set(b"key-00200x", 999); // ahead: must be seen
        let mut rest = Vec::new();
        model.scan(&resume).collect_next(usize::MAX, &mut rest);
        let mut all = first;
        all.extend(rest);
        assert!(
            all.windows(2).all(|w| w[0].0 < w[1].0),
            "duplicate or disorder"
        );
        assert!(all.iter().any(|(k, _)| k == b"key-00200x"));
        assert_eq!(all.len(), 401); // 400 original + 1 insert, deletion was behind
    }

    #[test]
    fn resume_key_mid_batch_points_after_last_consumed() {
        let model = populated(100);
        let mut cursor = model.scan(b"");
        for _ in 0..7 {
            cursor.next();
        }
        let resume = cursor.resume_key();
        let mut rest = Vec::new();
        model.scan(&resume).collect_next(usize::MAX, &mut rest);
        assert_eq!(rest.len(), 93);
        assert_eq!(rest[0].0, b"key-00007".to_vec());
    }

    #[test]
    fn collect_next_matches_range_from_windows() {
        let model = populated(350);
        for (start, count) in [(&b""[..], 10usize), (b"key-00100", 77), (b"zzz", 5)] {
            let mut got = Vec::new();
            model.scan(start).collect_next(count, &mut got);
            assert_eq!(got, model.range_from(start, count));
        }
    }

    #[test]
    fn empty_index_scan_is_empty() {
        let model = Model::default();
        let mut cursor = model.scan(b"");
        assert!(cursor.next().is_none());
        assert!(cursor.next().is_none(), "exhaustion is sticky");
        assert!(cursor.is_done());
    }

    /// Three disjoint ascending key ranges chained into one stream, each
    /// segment served by a whole `Cursor` over its own model index — the
    /// shape a range-sharded index produces.
    fn chained_models() -> Vec<Model> {
        let mut shards = vec![Model::default(), Model::default(), Model::default()];
        for i in 0..90u64 {
            shards[(i / 30) as usize].set(format!("key-{i:05}").as_bytes(), i);
        }
        shards
    }

    #[test]
    fn chained_source_concatenates_disjoint_segments() {
        let shards = chained_models();
        let shards_ref = &shards;
        let mut next = 0usize;
        let factory = move || -> Option<Box<dyn CursorSource<u64> + '_>> {
            let shard = shards_ref.get(next)?;
            next += 1;
            Some(Box::new(shard.scan(b"")))
        };
        let mut cursor = Cursor::new(b"", Box::new(ChainedSource::new(Box::new(factory))));
        let mut seen = Vec::new();
        while let Some((k, v)) = cursor.next() {
            seen.push((k.to_vec(), *v));
        }
        assert_eq!(seen.len(), 90);
        assert!(seen.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(seen[0].1, 0);
        assert_eq!(seen[89].1, 89);
        assert!(cursor.is_done());
    }

    #[test]
    fn chained_source_skips_empty_segments_and_resumes() {
        let shards = chained_models();
        // Segment 1 drained empty; the chain must skip straight over it.
        let make = |start: Vec<u8>| {
            let shards = &shards;
            let mut next = 0usize;
            let mut first = Some(start);
            let factory = move || -> Option<Box<dyn CursorSource<u64> + '_>> {
                let shard = shards.get(next)?;
                next += 1;
                let from = first.take().unwrap_or_default();
                Some(Box::new(if next == 2 {
                    shard.scan(b"zzz") // exhausted immediately
                } else {
                    shard.scan(&from)
                }))
            };
            Cursor::new(b"", Box::new(ChainedSource::new(Box::new(factory))))
        };
        let mut cursor = make(Vec::new());
        let mut first_window = Vec::new();
        cursor.collect_next(10, &mut first_window);
        assert_eq!(first_window.len(), 10);
        let resume = cursor.resume_key();
        drop(cursor);
        // Resuming a fresh chain from the reported key re-yields nothing.
        let mut rest = Vec::new();
        make(resume).collect_next(usize::MAX, &mut rest);
        assert_eq!(first_window.len() + rest.len(), 60); // segment 1 skipped
        let mut all = first_window;
        all.extend(rest);
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0), "dup or disorder");
    }

    #[test]
    fn cursor_as_source_hands_over_buffered_pairs() {
        let model = populated(10);
        let mut inner = model.scan(b"");
        // Consume 3 pairs through `next`, leaving buffered pairs behind.
        for _ in 0..3 {
            inner.next();
        }
        let mut batch = ScanBatch::new();
        let mut seen = Vec::new();
        while CursorSource::fill_next(&mut inner, &mut batch, usize::MAX) {
            for (k, v) in batch.iter() {
                seen.push((k.to_vec(), *v));
            }
        }
        assert_eq!(seen.len(), 7, "buffered remainder must not be lost");
        assert_eq!(seen[0].0, b"key-00003".to_vec());
        assert!(seen.windows(2).all(|w| w[0].0 < w[1].0));
    }
}
