//! Index traits implemented by Wormhole and every baseline.

use crate::scan::Cursor;

/// Approximate memory accounting reported by an index.
///
/// The paper's Figure 16 compares resident memory of the five indexes against
/// a baseline of `Σ (key length + pointer size)`. Since a reproduction cannot
/// rely on `getrusage` giving stable numbers inside test harnesses, every
/// index in this workspace tracks its own allocations and reports them here.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexStats {
    /// Number of keys currently stored.
    pub keys: usize,
    /// Bytes used by index structure (nodes, tables, pointers), excluding the
    /// key/value payload bytes themselves.
    pub structure_bytes: usize,
    /// Bytes used by stored key payloads.
    pub key_bytes: usize,
    /// Bytes used by stored value payloads.
    pub value_bytes: usize,
}

impl IndexStats {
    /// Total tracked bytes.
    pub fn total_bytes(&self) -> usize {
        self.structure_bytes + self.key_bytes + self.value_bytes
    }

    /// The paper's baseline for a keyset: key payload plus one 8-byte pointer
    /// per key, representing the minimum space any index must spend.
    pub fn paper_baseline_bytes(&self) -> usize {
        self.key_bytes + self.keys * 8
    }
}

/// A single-threaded (or externally synchronised) ordered index.
///
/// This matches how the paper drives the thread-unsafe baselines (skip list,
/// B+ tree, ART): read-only sharing across threads, single writer otherwise.
///
/// # Examples
///
/// Implementors provide the point ops plus `range_from`; batching
/// ([`OrderedIndex::get_batch`]), membership ([`OrderedIndex::contains`]),
/// and streaming scans ([`OrderedIndex::scan`]) come with correct defaults:
///
/// ```
/// use index_traits::{IndexStats, OrderedIndex};
/// use std::collections::BTreeMap;
///
/// #[derive(Default)]
/// struct Sorted(BTreeMap<Vec<u8>, u64>);
///
/// impl OrderedIndex<u64> for Sorted {
///     fn name(&self) -> &'static str {
///         "sorted"
///     }
///     fn get(&self, key: &[u8]) -> Option<u64> {
///         self.0.get(key).copied()
///     }
///     fn set(&mut self, key: &[u8], value: u64) -> Option<u64> {
///         self.0.insert(key.to_vec(), value)
///     }
///     fn del(&mut self, key: &[u8]) -> Option<u64> {
///         self.0.remove(key)
///     }
///     fn len(&self) -> usize {
///         self.0.len()
///     }
///     fn range_from(&self, start: &[u8], count: usize) -> Vec<(Vec<u8>, u64)> {
///         self.0
///             .range(start.to_vec()..)
///             .take(count)
///             .map(|(k, v)| (k.clone(), *v))
///             .collect()
///     }
///     fn stats(&self) -> IndexStats {
///         IndexStats::default()
///     }
/// }
///
/// let mut index = Sorted::default();
/// assert_eq!(index.set(b"James", 1), None);
/// assert_eq!(index.set(b"Jason", 2), None);
/// assert_eq!(index.set(b"James", 10), Some(1)); // overwrite returns the old value
/// assert!(index.contains(b"Jason"));
/// // Ordered window starting at the smallest key >= "Jam".
/// let window = index.range_from(b"Jam", 10);
/// assert_eq!(window[0].0, b"James".to_vec());
/// // The default streaming cursor agrees with range_from.
/// let mut cursor = index.scan(b"");
/// assert_eq!(cursor.next(), Some((&b"James"[..], &10)));
/// assert_eq!(cursor.next(), Some((&b"Jason"[..], &2)));
/// assert!(cursor.next().is_none());
/// ```
pub trait OrderedIndex<V> {
    /// Human-readable name used by the benchmark harness ("skiplist", …).
    fn name(&self) -> &'static str;

    /// Returns a copy of the value stored under `key`, if present.
    fn get(&self, key: &[u8]) -> Option<V>;

    /// Returns `true` when `key` is present without copying its value.
    fn contains(&self, key: &[u8]) -> bool {
        self.get(key).is_some()
    }

    /// Point-looks-up every key of `keys`, returning one result per key in
    /// input order (duplicates allowed, each answered independently).
    ///
    /// The default is a plain per-key loop, so every baseline is correct by
    /// construction. Indexes built for memory-level parallelism (Wormhole's
    /// MetaTrieHT) override it with a software-pipelined probe engine that
    /// overlaps the cache misses of many in-flight lookups; batched and
    /// per-key results are always identical.
    fn get_batch(&self, keys: &[&[u8]]) -> Vec<Option<V>> {
        keys.iter().map(|key| self.get(key)).collect()
    }

    /// Inserts or overwrites `key`, returning the previous value if any.
    fn set(&mut self, key: &[u8], value: V) -> Option<V>;

    /// Removes `key`, returning its value if it was present.
    fn del(&mut self, key: &[u8]) -> Option<V>;

    /// Number of keys stored.
    fn len(&self) -> usize;

    /// Returns `true` when the index stores no keys.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns up to `count` key/value pairs in ascending key order, starting
    /// at the smallest key `>= start` (the paper's `RangeSearchAscending`).
    fn range_from(&self, start: &[u8], count: usize) -> Vec<(Vec<u8>, V)>;

    /// Opens a resumable streaming cursor at the smallest key `>= start`.
    ///
    /// The default adapts [`OrderedIndex::range_from`] batch by batch (see
    /// [`crate::scan`] for the contract); indexes with a native streaming
    /// path (Wormhole's leaf list) override it to stream leaf by leaf
    /// without materialising windows.
    fn scan<'a>(&'a self, start: &[u8]) -> Cursor<'a, V>
    where
        Self: Sized,
        V: Clone + 'a,
    {
        crate::scan::scan_ordered(self, start)
    }

    /// Memory accounting for Figure 16.
    fn stats(&self) -> IndexStats;
}

/// A thread-safe ordered index usable concurrently from many threads.
///
/// In the paper only Wormhole and Masstree provide built-in concurrency
/// control; in this workspace the concurrent Wormhole implements this trait,
/// and a locking wrapper can adapt any [`OrderedIndex`] when a thread-safe
/// stand-in is needed.
///
/// Read methods take `&self` and are expected to be cheap to call from many
/// threads at once; a high-quality implementation serves them without
/// blocking on writers (the workspace's Wormhole uses seqlock-validated
/// lock-free reads with a bounded-retry lock fallback). Implementations
/// must be *linearisable per key*: a `get` concurrent with structural
/// reorganisation (splits, merges, rehashing) observes the value either
/// before or after a racing write — never a torn mixture.
pub trait ConcurrentOrderedIndex<V>: Send + Sync {
    /// Human-readable name used by the benchmark harness.
    fn name(&self) -> &'static str;

    /// Returns a copy of the value stored under `key`, if present.
    fn get(&self, key: &[u8]) -> Option<V>;

    /// Returns `true` when `key` is present without copying its value.
    fn contains(&self, key: &[u8]) -> bool {
        self.get(key).is_some()
    }

    /// Point-looks-up every key of `keys`, returning one result per key in
    /// input order (duplicates allowed, each answered independently).
    ///
    /// The default is a per-key loop. Each lookup is individually
    /// linearisable; the batch as a whole is **not** a snapshot — a racing
    /// writer may land between two keys of one batch, exactly as it could
    /// between two separate `get` calls. The concurrent Wormhole overrides
    /// this with a pipelined probe engine (shared QSBR critical section,
    /// prefetched buckets, seqlock-validated leaf reads with the usual
    /// bounded-retry fallback), and the sharded front routes a whole batch
    /// inside one router epoch. Batched and per-key results are always
    /// identical.
    ///
    /// # Examples
    ///
    /// One result per input key, in input order — hits, misses, and
    /// duplicates included:
    ///
    /// ```
    /// # use index_traits::{ConcurrentOrderedIndex, IndexStats};
    /// # use std::{collections::BTreeMap, sync::Mutex};
    /// # #[derive(Default)]
    /// # struct Index(Mutex<BTreeMap<Vec<u8>, u64>>);
    /// # impl ConcurrentOrderedIndex<u64> for Index {
    /// #     fn name(&self) -> &'static str { "doc" }
    /// #     fn get(&self, key: &[u8]) -> Option<u64> { self.0.lock().unwrap().get(key).copied() }
    /// #     fn set(&self, key: &[u8], value: u64) -> Option<u64> {
    /// #         self.0.lock().unwrap().insert(key.to_vec(), value)
    /// #     }
    /// #     fn del(&self, key: &[u8]) -> Option<u64> { self.0.lock().unwrap().remove(key) }
    /// #     fn len(&self) -> usize { self.0.lock().unwrap().len() }
    /// #     fn range_from(&self, start: &[u8], count: usize) -> Vec<(Vec<u8>, u64)> {
    /// #         self.0.lock().unwrap().range(start.to_vec()..).take(count)
    /// #             .map(|(k, v)| (k.clone(), *v)).collect()
    /// #     }
    /// #     fn stats(&self) -> IndexStats { IndexStats::default() }
    /// # }
    /// let index = Index::default();
    /// index.set(b"Aaron", 1);
    /// index.set(b"Abbe", 2);
    ///
    /// let keys: Vec<&[u8]> = vec![b"Abbe", b"missing", b"Aaron", b"Abbe"];
    /// assert_eq!(
    ///     index.get_batch(&keys),
    ///     vec![Some(2), None, Some(1), Some(2)],
    /// );
    /// // A batch always answers exactly like the equivalent get loop.
    /// let looped: Vec<Option<u64>> = keys.iter().map(|k| index.get(k)).collect();
    /// assert_eq!(index.get_batch(&keys), looped);
    /// ```
    fn get_batch(&self, keys: &[&[u8]]) -> Vec<Option<V>> {
        keys.iter().map(|key| self.get(key)).collect()
    }

    /// Inserts or overwrites `key`, returning the previous value if any.
    fn set(&self, key: &[u8], value: V) -> Option<V>;

    /// Removes `key`, returning its value if it was present.
    fn del(&self, key: &[u8]) -> Option<V>;

    /// Number of keys stored.
    fn len(&self) -> usize;

    /// Returns `true` when the index stores no keys.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns up to `count` key/value pairs in ascending key order, starting
    /// at the smallest key `>= start`.
    fn range_from(&self, start: &[u8], count: usize) -> Vec<(Vec<u8>, V)>;

    /// Removes every key with `lo <= key < hi`, returning how many were
    /// removed. An empty or inverted window removes nothing.
    ///
    /// This is the bulk-drain hook behind online shard migration: after a
    /// migrated range has been copied to its new owner and republished, the
    /// donor's stale copy of the range is drained with one call. The
    /// default walks the range via `range_from` windows and deletes key by
    /// key — correct against concurrent writers (each delete is an ordinary
    /// linearisable `del`; keys inserted into the range behind the sweep
    /// position may survive, as with any non-snapshot range operation). The
    /// concurrent Wormhole overrides it with a leaf-at-a-time batched
    /// removal that reuses the merge engine to shrink the structure as it
    /// drains.
    fn delete_range(&self, lo: &[u8], hi: &[u8]) -> usize {
        if lo >= hi {
            return 0;
        }
        let mut removed = 0usize;
        let mut resume = lo.to_vec();
        loop {
            let window = self.range_from(&resume, crate::scan::DEFAULT_SCAN_BATCH);
            let mut exhausted = window.len() < crate::scan::DEFAULT_SCAN_BATCH;
            for (key, _) in window {
                if key.as_slice() >= hi {
                    exhausted = true;
                    break;
                }
                if self.del(&key).is_some() {
                    removed += 1;
                }
                crate::key::immediate_successor_into(&key, &mut resume);
            }
            if exhausted {
                return removed;
            }
        }
    }

    /// Serves one bounded page of an ordered scan — the building block of
    /// a **streaming scan RPC** (see [`crate::scan::ScanPage`]).
    ///
    /// Returns up to `limit` pairs starting at the smallest key `>= start`
    /// (a `limit` of 0 is served as 1), plus the stateless resume key that
    /// fetches the next page, or `None` once the scan is known exhausted.
    /// Unlike [`ConcurrentOrderedIndex::scan`] this is **object-safe**, so
    /// a service holding the index as `dyn ConcurrentOrderedIndex` can
    /// answer scan requests page by page; and unlike a held cursor the
    /// continuation survives anything the index does between pages
    /// (splits, merges, shard-boundary migrations) because it is just a
    /// key routed afresh by the next call.
    ///
    /// Pages have cursor consistency, not snapshot consistency: each page
    /// is served from the index state at its own call, so a racing writer
    /// may land between two pages — exactly as it may land between two
    /// batches of one [`Cursor`].
    ///
    /// # Examples
    ///
    /// Draining an index page by page, the way a scan RPC client would:
    ///
    /// ```
    /// # use index_traits::{ConcurrentOrderedIndex, IndexStats};
    /// # use std::{collections::BTreeMap, sync::Mutex};
    /// # #[derive(Default)]
    /// # struct Index(Mutex<BTreeMap<Vec<u8>, u64>>);
    /// # impl ConcurrentOrderedIndex<u64> for Index {
    /// #     fn name(&self) -> &'static str { "doc" }
    /// #     fn get(&self, key: &[u8]) -> Option<u64> { self.0.lock().unwrap().get(key).copied() }
    /// #     fn set(&self, key: &[u8], value: u64) -> Option<u64> {
    /// #         self.0.lock().unwrap().insert(key.to_vec(), value)
    /// #     }
    /// #     fn del(&self, key: &[u8]) -> Option<u64> { self.0.lock().unwrap().remove(key) }
    /// #     fn len(&self) -> usize { self.0.lock().unwrap().len() }
    /// #     fn range_from(&self, start: &[u8], count: usize) -> Vec<(Vec<u8>, u64)> {
    /// #         self.0.lock().unwrap().range(start.to_vec()..).take(count)
    /// #             .map(|(k, v)| (k.clone(), *v)).collect()
    /// #     }
    /// #     fn stats(&self) -> IndexStats { IndexStats::default() }
    /// # }
    /// let index = Index::default();
    /// for i in 0..10u64 {
    ///     index.set(format!("key-{i}").as_bytes(), i);
    /// }
    ///
    /// let mut drained = Vec::new();
    /// let mut start = Vec::new();
    /// loop {
    ///     // Three pairs per "response message".
    ///     let page = index.scan_page(&start, 3);
    ///     drained.extend(page.items);
    ///     match page.resume {
    ///         Some(resume) => start = resume,
    ///         None => break,
    ///     }
    /// }
    /// assert_eq!(drained.len(), 10);
    /// assert!(drained.windows(2).all(|w| w[0].0 < w[1].0));
    /// ```
    fn scan_page(&self, start: &[u8], limit: usize) -> crate::scan::ScanPage<V> {
        let limit = limit.max(1);
        let items = self.range_from(start, limit);
        let resume = (items.len() == limit).then(|| {
            let mut resume = Vec::new();
            let (last, _) = items.last().expect("limit >= 1 and a full page");
            crate::key::immediate_successor_into(last, &mut resume);
            resume
        });
        crate::scan::ScanPage { items, resume }
    }

    /// Opens a resumable streaming cursor at the smallest key `>= start`.
    ///
    /// Safe to advance while other threads write: each batch is an atomic
    /// snapshot of one region, with no global snapshot across batches (see
    /// [`crate::scan`]). The default adapts
    /// [`ConcurrentOrderedIndex::range_from`]; the concurrent Wormhole
    /// overrides it with a seqlock-validated leaf-by-leaf stream.
    fn scan<'a>(&'a self, start: &[u8]) -> Cursor<'a, V>
    where
        Self: Sized,
        V: Clone + 'a,
    {
        crate::scan::scan_concurrent(self, start)
    }

    /// Memory accounting for Figure 16.
    fn stats(&self) -> IndexStats;
}

/// A concurrent ordered index with crash durability.
///
/// Implementations log every mutation to stable storage before (or
/// atomically with) applying it, and can be re-opened after a crash to
/// exactly the state covered by the last durable commit. The inherited
/// [`ConcurrentOrderedIndex`] methods acknowledge an operation only once
/// it is durable under the implementation's sync policy; the methods here
/// expose the durability machinery itself — explicit barriers and
/// checkpoint triggers — without prescribing file layout or log format.
///
/// # Examples
///
/// The contract in miniature: the watermark is monotone, `wal_sync`
/// forces everything applied so far under it, and a checkpoint covers at
/// least as much as the log does (the workspace's `wh-durable` crate
/// implements this over a real group-commit WAL and rename-published
/// snapshots):
///
/// ```
/// # use index_traits::{ConcurrentOrderedIndex, DurableIndex, IndexStats};
/// # use std::collections::BTreeMap;
/// # use std::sync::atomic::{AtomicU64, Ordering};
/// # use std::sync::Mutex;
/// # /// A toy in-memory "durable" index: every applied op is assigned an
/// # /// LSN; `wal_sync` advances the durable watermark to the last one.
/// # #[derive(Default)]
/// # struct Toy {
/// #     map: Mutex<BTreeMap<Vec<u8>, u64>>,
/// #     applied: AtomicU64,
/// #     durable: AtomicU64,
/// # }
/// # impl ConcurrentOrderedIndex<u64> for Toy {
/// #     fn name(&self) -> &'static str { "toy" }
/// #     fn get(&self, key: &[u8]) -> Option<u64> { self.map.lock().unwrap().get(key).copied() }
/// #     fn set(&self, key: &[u8], value: u64) -> Option<u64> {
/// #         let mut map = self.map.lock().unwrap();
/// #         self.applied.fetch_add(1, Ordering::Relaxed);
/// #         map.insert(key.to_vec(), value)
/// #     }
/// #     fn del(&self, key: &[u8]) -> Option<u64> {
/// #         let mut map = self.map.lock().unwrap();
/// #         self.applied.fetch_add(1, Ordering::Relaxed);
/// #         map.remove(key)
/// #     }
/// #     fn len(&self) -> usize { self.map.lock().unwrap().len() }
/// #     fn range_from(&self, start: &[u8], count: usize) -> Vec<(Vec<u8>, u64)> {
/// #         self.map.lock().unwrap().range(start.to_vec()..).take(count)
/// #             .map(|(k, v)| (k.clone(), *v)).collect()
/// #     }
/// #     fn stats(&self) -> IndexStats { IndexStats::default() }
/// # }
/// # impl DurableIndex<u64> for Toy {
/// #     fn wal_sync(&self) -> std::io::Result<u64> {
/// #         let lsn = self.applied.load(Ordering::Relaxed);
/// #         self.durable.fetch_max(lsn, Ordering::Relaxed);
/// #         Ok(lsn)
/// #     }
/// #     fn durable_watermark(&self) -> u64 { self.durable.load(Ordering::Relaxed) }
/// #     fn checkpoint(&self) -> std::io::Result<u64> { self.wal_sync() }
/// # }
/// let index = Toy::default();
/// index.set(b"James", 1);
/// index.set(b"Jason", 2);
///
/// // Nothing forced yet; an explicit barrier makes both writes durable.
/// let before = index.durable_watermark();
/// let synced = index.wal_sync()?;
/// assert!(synced >= before);
/// assert_eq!(index.durable_watermark(), synced);
///
/// // A checkpoint covers everything the barrier covered.
/// let covered = index.checkpoint()?;
/// assert!(covered >= synced);
/// // The policy hook is allowed to do nothing at all.
/// assert!(matches!(index.maybe_checkpoint()?, None | Some(_)));
/// # Ok::<(), std::io::Error>(())
/// ```
pub trait DurableIndex<V>: ConcurrentOrderedIndex<V> {
    /// Forces every operation applied so far to stable storage and
    /// returns the durable watermark (an implementation-defined sequence
    /// number; operations at or below it survive a crash).
    fn wal_sync(&self) -> std::io::Result<u64>;

    /// The current durable watermark, without forcing anything.
    fn durable_watermark(&self) -> u64;

    /// Writes a full checkpoint (snapshot) and prunes log data it makes
    /// redundant. Returns the watermark the checkpoint covers.
    fn checkpoint(&self) -> std::io::Result<u64>;

    /// Checkpoint-if-warranted policy hook: like `checkpoint`, but only
    /// when the implementation's policy (log growth, elapsed work, …)
    /// says it is worth the cost, and never blocking behind another
    /// in-flight checkpoint. Returns `Ok(None)` when nothing was done.
    fn maybe_checkpoint(&self) -> std::io::Result<Option<u64>> {
        Ok(None)
    }
}

/// A point-only (unordered) index — the cuckoo hash table baseline.
///
/// Figure 13 compares Wormhole's lookup throughput against a hash table that
/// cannot serve range queries; this trait captures exactly that contract.
pub trait UnorderedIndex<V> {
    /// Human-readable name used by the benchmark harness.
    fn name(&self) -> &'static str;

    /// Returns a copy of the value stored under `key`, if present.
    fn get(&self, key: &[u8]) -> Option<V>;

    /// Returns `true` when `key` is present without copying its value.
    fn contains(&self, key: &[u8]) -> bool {
        self.get(key).is_some()
    }

    /// Inserts or overwrites `key`, returning the previous value if any.
    fn set(&mut self, key: &[u8], value: V) -> Option<V>;

    /// Removes `key`, returning its value if it was present.
    fn del(&mut self, key: &[u8]) -> Option<V>;

    /// Number of keys stored.
    fn len(&self) -> usize;

    /// Returns `true` when the index stores no keys.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Memory accounting for Figure 16-style comparisons.
    fn stats(&self) -> IndexStats;
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    /// A trivial reference implementation over `BTreeMap`, used to validate
    /// the default trait methods and to serve as a model in integration
    /// tests elsewhere in the workspace.
    #[derive(Default)]
    struct StdOrdered {
        map: BTreeMap<Vec<u8>, u64>,
    }

    impl OrderedIndex<u64> for StdOrdered {
        fn name(&self) -> &'static str {
            "std-btreemap"
        }
        fn get(&self, key: &[u8]) -> Option<u64> {
            self.map.get(key).copied()
        }
        fn set(&mut self, key: &[u8], value: u64) -> Option<u64> {
            self.map.insert(key.to_vec(), value)
        }
        fn del(&mut self, key: &[u8]) -> Option<u64> {
            self.map.remove(key)
        }
        fn len(&self) -> usize {
            self.map.len()
        }
        fn range_from(&self, start: &[u8], count: usize) -> Vec<(Vec<u8>, u64)> {
            self.map
                .range(start.to_vec()..)
                .take(count)
                .map(|(k, v)| (k.clone(), *v))
                .collect()
        }
        fn stats(&self) -> IndexStats {
            IndexStats {
                keys: self.map.len(),
                structure_bytes: self.map.len() * 48,
                key_bytes: self.map.keys().map(|k| k.len()).sum(),
                value_bytes: self.map.len() * 8,
            }
        }
    }

    #[test]
    fn default_methods_work() {
        let mut idx = StdOrdered::default();
        assert!(idx.is_empty());
        assert!(!idx.contains(b"a"));
        idx.set(b"a", 1);
        assert!(idx.contains(b"a"));
        assert!(!idx.is_empty());
    }

    #[test]
    fn default_get_batch_answers_each_key_in_order() {
        let mut idx = StdOrdered::default();
        for (i, k) in ["Aaron", "Abbe", "Andrew"].iter().enumerate() {
            idx.set(k.as_bytes(), i as u64);
        }
        // Hits, misses, and duplicates, answered in input order.
        let keys: Vec<&[u8]> = vec![b"Abbe", b"missing", b"Aaron", b"Abbe", b""];
        assert_eq!(
            idx.get_batch(&keys),
            vec![Some(1), None, Some(0), Some(1), None]
        );
        assert!(idx.get_batch(&[]).is_empty());

        let locked = LockedOrdered::default();
        locked.set(b"k", 9);
        let keys: Vec<&[u8]> = vec![b"k", b"nope", b"k"];
        assert_eq!(locked.get_batch(&keys), vec![Some(9), None, Some(9)]);
    }

    #[test]
    fn range_from_is_ordered_and_bounded() {
        let mut idx = StdOrdered::default();
        for (i, k) in ["Aaron", "Abbe", "Andrew", "Austin", "Denice"]
            .iter()
            .enumerate()
        {
            idx.set(k.as_bytes(), i as u64);
        }
        let out = idx.range_from(b"Ab", 3);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].0, b"Abbe".to_vec());
        assert_eq!(out[2].0, b"Austin".to_vec());
    }

    /// A minimal thread-safe model exercising the `ConcurrentOrderedIndex`
    /// default methods (notably `delete_range`).
    #[derive(Default)]
    struct LockedOrdered {
        map: std::sync::Mutex<BTreeMap<Vec<u8>, u64>>,
    }

    impl ConcurrentOrderedIndex<u64> for LockedOrdered {
        fn name(&self) -> &'static str {
            "locked-btreemap"
        }
        fn get(&self, key: &[u8]) -> Option<u64> {
            self.map.lock().unwrap().get(key).copied()
        }
        fn set(&self, key: &[u8], value: u64) -> Option<u64> {
            self.map.lock().unwrap().insert(key.to_vec(), value)
        }
        fn del(&self, key: &[u8]) -> Option<u64> {
            self.map.lock().unwrap().remove(key)
        }
        fn len(&self) -> usize {
            self.map.lock().unwrap().len()
        }
        fn range_from(&self, start: &[u8], count: usize) -> Vec<(Vec<u8>, u64)> {
            self.map
                .lock()
                .unwrap()
                .range(start.to_vec()..)
                .take(count)
                .map(|(k, v)| (k.clone(), *v))
                .collect()
        }
        fn stats(&self) -> IndexStats {
            IndexStats::default()
        }
    }

    #[test]
    fn default_delete_range_drains_half_open_window() {
        let idx = LockedOrdered::default();
        for i in 0..400u64 {
            idx.set(format!("dr-{i:04}").as_bytes(), i);
        }
        // Window larger than one default sweep batch, bounds exclusive on
        // the right, inclusive on the left.
        assert_eq!(idx.delete_range(b"dr-0050", b"dr-0350"), 300);
        assert_eq!(idx.len(), 100);
        assert_eq!(idx.get(b"dr-0049"), Some(49));
        assert_eq!(idx.get(b"dr-0050"), None);
        assert_eq!(idx.get(b"dr-0349"), None);
        assert_eq!(idx.get(b"dr-0350"), Some(350));
        // Degenerate windows remove nothing.
        assert_eq!(idx.delete_range(b"dr-0350", b"dr-0350"), 0);
        assert_eq!(idx.delete_range(b"dr-0350", b"dr-0000"), 0);
        assert_eq!(idx.delete_range(b"zz", b"zzz"), 0);
        assert_eq!(idx.len(), 100);
    }

    #[test]
    fn stats_arithmetic() {
        let stats = IndexStats {
            keys: 10,
            structure_bytes: 100,
            key_bytes: 200,
            value_bytes: 80,
        };
        assert_eq!(stats.total_bytes(), 380);
        assert_eq!(stats.paper_baseline_bytes(), 280);
    }
}
