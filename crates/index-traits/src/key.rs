//! Byte-key helpers shared by all index implementations.

/// Returns the length of the longest common prefix of `a` and `b`.
#[inline]
pub fn common_prefix_len(a: &[u8], b: &[u8]) -> usize {
    let max = a.len().min(b.len());
    // Compare 8 bytes at a time; keys in this workload are often tens of
    // bytes long and this path is hot in split and anchor computation.
    let mut i = 0;
    while i + 8 <= max {
        let wa = u64::from_ne_bytes(a[i..i + 8].try_into().unwrap());
        let wb = u64::from_ne_bytes(b[i..i + 8].try_into().unwrap());
        if wa != wb {
            let diff = wa ^ wb;
            return i + (diff.to_ne_bytes().iter().position(|&x| x != 0).unwrap());
        }
        i += 8;
    }
    while i < max && a[i] == b[i] {
        i += 1;
    }
    i
}

/// Returns `true` when `prefix` is a prefix of `key`.
#[inline]
pub fn is_prefix_of(prefix: &[u8], key: &[u8]) -> bool {
    prefix.len() <= key.len() && &key[..prefix.len()] == prefix
}

/// Writes the immediate successor of `key` in bytewise order — `key ++ 0x00`,
/// the smallest byte string strictly greater than `key` — into `buf`,
/// replacing its contents but reusing its allocation. Scan cursors use it
/// as a resume bound that excludes exactly the keys already streamed while
/// remaining expressible as an inclusive `>= start` search.
pub fn immediate_successor_into(key: &[u8], buf: &mut Vec<u8>) {
    buf.clear();
    buf.reserve(key.len() + 1);
    buf.extend_from_slice(key);
    buf.push(0);
}

/// Returns the smallest key strictly greater than every key having `key` as a
/// prefix, or `None` when no such key exists (all bytes are `0xFF`).
///
/// Useful for turning a prefix query into a half-open key range.
pub fn successor_key(key: &[u8]) -> Option<Vec<u8>> {
    let mut out = key.to_vec();
    while let Some(last) = out.last_mut() {
        if *last < 0xFF {
            *last += 1;
            return Some(out);
        }
        out.pop();
    }
    None
}

/// A half-open key range `[start, end)` with an unbounded-end option.
///
/// Range queries in the paper are expressed as "the next `count` keys at or
/// after a start key"; `KeyRange` additionally supports an explicit exclusive
/// upper bound so prefix scans can terminate early.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyRange {
    /// Inclusive lower bound.
    pub start: Vec<u8>,
    /// Exclusive upper bound; `None` means unbounded.
    pub end: Option<Vec<u8>>,
}

impl KeyRange {
    /// Creates a range starting at `start` with no upper bound.
    pub fn from(start: &[u8]) -> Self {
        Self {
            start: start.to_vec(),
            end: None,
        }
    }

    /// Creates a range covering exactly the keys that have `prefix` as a
    /// prefix.
    pub fn prefix(prefix: &[u8]) -> Self {
        Self {
            start: prefix.to_vec(),
            end: successor_key(prefix),
        }
    }

    /// Creates an explicit `[start, end)` range.
    pub fn between(start: &[u8], end: &[u8]) -> Self {
        Self {
            start: start.to_vec(),
            end: Some(end.to_vec()),
        }
    }

    /// Returns `true` when `key` falls inside the range.
    pub fn contains(&self, key: &[u8]) -> bool {
        key >= self.start.as_slice()
            && match &self.end {
                Some(end) => key < end.as_slice(),
                None => true,
            }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn common_prefix_basics() {
        assert_eq!(common_prefix_len(b"", b""), 0);
        assert_eq!(common_prefix_len(b"abc", b""), 0);
        assert_eq!(common_prefix_len(b"abc", b"abd"), 2);
        assert_eq!(common_prefix_len(b"abc", b"abc"), 3);
        assert_eq!(common_prefix_len(b"abc", b"abcdef"), 3);
        assert_eq!(common_prefix_len(b"xyz", b"abc"), 0);
    }

    #[test]
    fn common_prefix_long_keys() {
        let a = vec![7u8; 100];
        let mut b = a.clone();
        assert_eq!(common_prefix_len(&a, &b), 100);
        b[63] = 8;
        assert_eq!(common_prefix_len(&a, &b), 63);
        b[63] = 7;
        b[8] = 0;
        assert_eq!(common_prefix_len(&a, &b), 8);
    }

    #[test]
    fn prefix_check() {
        assert!(is_prefix_of(b"", b"anything"));
        assert!(is_prefix_of(b"ab", b"abc"));
        assert!(is_prefix_of(b"abc", b"abc"));
        assert!(!is_prefix_of(b"abcd", b"abc"));
        assert!(!is_prefix_of(b"b", b"abc"));
    }

    #[test]
    fn successor_of_simple_key() {
        assert_eq!(successor_key(b"abc").unwrap(), b"abd".to_vec());
        assert_eq!(successor_key(&[1, 0xFF]).unwrap(), vec![2]);
        assert_eq!(successor_key(&[0xFF, 0xFF]), None);
        assert_eq!(successor_key(b""), None);
    }

    #[test]
    fn prefix_range_contains_exactly_prefixed_keys() {
        let r = KeyRange::prefix(b"Jo");
        assert!(r.contains(b"Jo"));
        assert!(r.contains(b"John"));
        assert!(r.contains(b"Joseph"));
        assert!(!r.contains(b"Jim"));
        assert!(!r.contains(b"Ju"));
        assert!(!r.contains(b"K"));
    }

    #[test]
    fn between_range() {
        let r = KeyRange::between(b"Brown", b"John");
        assert!(r.contains(b"Brown"));
        assert!(r.contains(b"Denice"));
        assert!(!r.contains(b"John"));
        assert!(!r.contains(b"Aaron"));
    }

    proptest! {
        #[test]
        fn prop_common_prefix_is_symmetric(a in proptest::collection::vec(any::<u8>(), 0..64),
                                           b in proptest::collection::vec(any::<u8>(), 0..64)) {
            prop_assert_eq!(common_prefix_len(&a, &b), common_prefix_len(&b, &a));
        }

        #[test]
        fn prop_common_prefix_matches_naive(a in proptest::collection::vec(any::<u8>(), 0..64),
                                            b in proptest::collection::vec(any::<u8>(), 0..64)) {
            let naive = a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count();
            prop_assert_eq!(common_prefix_len(&a, &b), naive);
        }

        #[test]
        fn prop_successor_is_greater_than_all_prefixed(key in proptest::collection::vec(any::<u8>(), 1..16),
                                                       suffix in proptest::collection::vec(any::<u8>(), 0..8)) {
            if let Some(succ) = successor_key(&key) {
                let mut extended = key.clone();
                extended.extend_from_slice(&suffix);
                prop_assert!(succ.as_slice() > extended.as_slice());
            }
        }

        #[test]
        fn prop_prefix_range_agrees_with_is_prefix(prefix in proptest::collection::vec(any::<u8>(), 1..8),
                                                   key in proptest::collection::vec(any::<u8>(), 0..16)) {
            let r = KeyRange::prefix(&prefix);
            prop_assert_eq!(r.contains(&key), is_prefix_of(&prefix, &key));
        }
    }
}
