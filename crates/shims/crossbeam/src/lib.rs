//! Offline stand-in for the `crossbeam` crate.
//!
//! The build environment has no crates.io access, so this shim provides the
//! one piece the workspace uses: bounded MPMC-style channels under
//! [`channel`], implemented over `std::sync::mpsc::sync_channel` with the
//! receiver behind a mutex so it can be shared (std's receiver is MPSC).

pub mod channel {
    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};

    /// Error returned when the receiving side disconnected.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Like real crossbeam: Debug does not require `T: Debug` (the payload
    // is elided), so `Result::expect` works for any message type.
    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned when the sending side disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// The sending half of a bounded channel.
    pub struct Sender<T>(mpsc::SyncSender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Self(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Blocks until the message is enqueued (or every receiver is gone).
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value).map_err(|e| SendError(e.0))
        }
    }

    /// The receiving half of a bounded channel.
    pub struct Receiver<T>(Arc<Mutex<mpsc::Receiver<T>>>);

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Self(Arc::clone(&self.0))
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives (or every sender is gone).
        pub fn recv(&self) -> Result<T, RecvError> {
            let guard = self.0.lock().unwrap_or_else(|e| e.into_inner());
            guard.recv().map_err(|_| RecvError)
        }

        /// Returns a message if one is immediately available.
        pub fn try_recv(&self) -> Result<T, RecvError> {
            let guard = self.0.lock().unwrap_or_else(|e| e.into_inner());
            guard.try_recv().map_err(|_| RecvError)
        }
    }

    /// Creates a bounded channel with capacity `cap`.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(tx), Receiver(Arc::new(Mutex::new(rx))))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_round_trip() {
            let (tx, rx) = bounded(4);
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn bounded_capacity_blocks_until_drained() {
            let (tx, rx) = bounded(1);
            tx.send(1).unwrap();
            let t = std::thread::spawn(move || tx.send(2).unwrap());
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            t.join().unwrap();
        }

        #[test]
        fn cross_thread_pipeline() {
            let (tx, rx) = bounded(8);
            let producer = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let mut sum = 0;
            while let Ok(v) = rx.recv() {
                sum += v;
            }
            producer.join().unwrap();
            assert_eq!(sum, 4950);
        }
    }
}
