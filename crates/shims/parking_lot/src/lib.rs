//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this shim provides
//! the subset of the `parking_lot` API the workspace uses — [`Mutex`],
//! [`RwLock`], and [`Condvar`] with non-poisoning guards — implemented on
//! top of `std::sync`. Poisoned locks are recovered transparently, matching
//! parking_lot's behaviour of not propagating panics through locks.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::TryLockError;
use std::time::Duration;

/// A mutual-exclusion lock with parking_lot's non-poisoning API.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(|e| e.into_inner())))
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(TryLockError::Poisoned(e)) => Some(MutexGuard(Some(e.into_inner()))),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard present")
    }
}

/// A reader-writer lock with parking_lot's non-poisoning API.
///
/// The protected value lives in an [`std::cell::UnsafeCell`] *beside* the lock word
/// (mirroring parking_lot's own layout) rather than inside
/// `std::sync::RwLock`, so the lock can expose parking_lot's
/// [`RwLock::data_ptr`] — the escape hatch seqlock-style readers use to
/// read the data without acquiring the lock, at their own risk.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    lock: std::sync::RwLock<()>,
    data: std::cell::UnsafeCell<T>,
}

// SAFETY: same bounds std::sync::RwLock<T> provides — exclusive access is
// mediated by `lock`, and `data_ptr` callers opt into unsafety explicitly.
unsafe impl<T: ?Sized + Send> Send for RwLock<T> {}
// SAFETY: see above.
unsafe impl<T: ?Sized + Send + Sync> Sync for RwLock<T> {}

/// RAII guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    _guard: std::sync::RwLockReadGuard<'a, ()>,
    data: &'a T,
}

/// RAII guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    _guard: std::sync::RwLockWriteGuard<'a, ()>,
    data: &'a mut T,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            lock: std::sync::RwLock::new(()),
            data: std::cell::UnsafeCell::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let guard = self.lock.read().unwrap_or_else(|e| e.into_inner());
        // SAFETY: the shared lock is held for the guard's lifetime.
        RwLockReadGuard {
            _guard: guard,
            data: unsafe { &*self.data.get() },
        }
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let guard = self.lock.write().unwrap_or_else(|e| e.into_inner());
        // SAFETY: the exclusive lock is held for the guard's lifetime.
        RwLockWriteGuard {
            _guard: guard,
            data: unsafe { &mut *self.data.get() },
        }
    }

    /// Attempts to acquire shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        let guard = match self.lock.try_read() {
            Ok(g) => g,
            Err(TryLockError::Poisoned(e)) => e.into_inner(),
            Err(TryLockError::WouldBlock) => return None,
        };
        // SAFETY: the shared lock is held for the guard's lifetime.
        Some(RwLockReadGuard {
            _guard: guard,
            data: unsafe { &*self.data.get() },
        })
    }

    /// Attempts to acquire exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        let guard = match self.lock.try_write() {
            Ok(g) => g,
            Err(TryLockError::Poisoned(e)) => e.into_inner(),
            Err(TryLockError::WouldBlock) => return None,
        };
        // SAFETY: the exclusive lock is held for the guard's lifetime.
        Some(RwLockWriteGuard {
            _guard: guard,
            data: unsafe { &mut *self.data.get() },
        })
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }

    /// Returns a raw pointer to the protected value **without locking**
    /// (parking_lot's `data_ptr`). The caller is responsible for ensuring
    /// any access through the pointer is synchronised some other way — e.g.
    /// a seqlock validation that discards everything read during a
    /// concurrent write.
    pub fn data_ptr(&self) -> *mut T {
        self.data.get()
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_tuple("RwLock").field(&*g).finish(),
            None => f.write_str("RwLock(<locked>)"),
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.data
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.data
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.data
    }
}

/// Result of a timed wait on a [`Condvar`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Returns `true` when the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable usable with [`MutexGuard`], parking_lot style
/// (waits take `&mut guard` instead of consuming it).
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self(std::sync::Condvar::new())
    }

    /// Blocks until notified, releasing the guard's lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present");
        let inner = self.0.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.0 = Some(inner);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard present");
        let (inner, result) = match self.0.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(e) => {
                let (g, r) = e.into_inner();
                (g, r)
            }
        };
        guard.0 = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn rwlock_data_ptr_bypasses_lock() {
        let l = RwLock::new(7u32);
        let p = l.data_ptr();
        // SAFETY: no concurrent writer exists in this test.
        assert_eq!(unsafe { *p }, 7);
        *l.write() += 1;
        assert_eq!(unsafe { *p }, 8);
        // The pointer stays valid while a read guard is held.
        let g = l.read();
        assert_eq!(unsafe { *p }, *g);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(r.timed_out());
    }

    #[test]
    fn condvar_notify_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }
}
