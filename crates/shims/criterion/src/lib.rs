//! Offline stand-in for the `criterion` benchmark crate.
//!
//! The build environment has no crates.io access, so this shim provides the
//! subset of criterion's API the workspace's benches use: [`Criterion`],
//! benchmark groups with `sample_size`/`warm_up_time`/`measurement_time`,
//! [`Bencher::iter`]/[`Bencher::iter_batched`], [`black_box`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement model: each benchmark warms up for the configured warm-up
//! time, then runs timed batches until the measurement time elapses and at
//! least `sample_size` samples exist. The mean, minimum, and maximum
//! per-iteration times are printed in a criterion-like one-line format.
//! There is no statistical analysis or HTML report; the numbers are intended
//! for relative comparisons on one machine, which is all this workspace's
//! benches rely on.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting a
/// benchmarked computation.
#[inline]
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Batch-size hint for [`Bencher::iter_batched`] (accepted, not acted on —
/// the shim always re-runs the setup closure per iteration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Collected timing for one benchmark.
#[derive(Debug, Clone, Copy)]
struct Samples {
    iterations: u64,
    total: Duration,
    min: Duration,
    max: Duration,
}

/// The per-benchmark measurement driver.
pub struct Bencher<'a> {
    samples: &'a mut Option<Samples>,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl Bencher<'_> {
    /// Measures `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up phase.
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up {
            black_box(routine());
        }
        // Measurement phase.
        let mut iterations = 0u64;
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        let mut max = Duration::ZERO;
        let measure_start = Instant::now();
        while measure_start.elapsed() < self.measurement || iterations < self.sample_size as u64 {
            let t = Instant::now();
            black_box(routine());
            let dt = t.elapsed();
            iterations += 1;
            total += dt;
            min = min.min(dt);
            max = max.max(dt);
        }
        *self.samples = Some(Samples {
            iterations,
            total,
            min,
            max,
        });
    }

    /// Measures `routine` with a fresh `setup()` input per iteration; setup
    /// time is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up {
            let input = setup();
            black_box(routine(input));
        }
        let mut iterations = 0u64;
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        let mut max = Duration::ZERO;
        let measure_start = Instant::now();
        while measure_start.elapsed() < self.measurement || iterations < self.sample_size as u64 {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            let dt = t.elapsed();
            iterations += 1;
            total += dt;
            min = min.min(dt);
            max = max.max(dt);
        }
        *self.samples = Some(Samples {
            iterations,
            total,
            min,
            max,
        });
    }

    /// Like [`Bencher::iter_batched`] but passes the input by reference.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, setup: S, mut routine: R, size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        self.iter_batched(setup, |mut input| routine(&mut input), size);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the nominal sample count (also the minimum iteration count).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Sets the warm-up duration.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Sets the measurement duration.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id = id.into();
        let mut samples = None;
        let mut bencher = Bencher {
            samples: &mut samples,
            warm_up: self.warm_up,
            measurement: self.measurement,
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        let full_name = format!("{}/{}", self.name, id);
        match samples {
            Some(s) => {
                let mean = s.total.as_nanos() as f64 / s.iterations.max(1) as f64;
                println!(
                    "{full_name:<56} time: [{} {} {}] ({} iters)",
                    format_ns(s.min.as_nanos() as f64),
                    format_ns(mean),
                    format_ns(s.max.as_nanos() as f64),
                    s.iterations,
                );
                self.criterion.results.push((full_name, mean, s.iterations));
            }
            None => println!("{full_name:<56} (no measurement recorded)"),
        }
        self
    }

    /// Ends the group (printing is incremental, so this is a no-op marker).
    pub fn finish(&mut self) {}
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    /// (name, mean ns/iter, iterations) per completed benchmark.
    pub results: Vec<(String, f64, u64)>,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_millis(800),
            sample_size: 10,
        }
    }

    /// Runs a standalone benchmark (no group).
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }

    /// Applies `--bench`-style CLI filtering. The shim accepts and ignores
    /// the arguments cargo passes to bench binaries.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Prints a final summary (also a hook point for `criterion_main!`).
    pub fn final_summary(&self) {
        println!("\ncompleted {} benchmarks", self.results.len());
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares the bench binary's `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($group(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_records_samples() {
        let mut c = Criterion::default();
        {
            let mut group = c.benchmark_group("unit");
            group
                .sample_size(5)
                .warm_up_time(Duration::from_millis(1))
                .measurement_time(Duration::from_millis(5));
            group.bench_function("spin", |b| b.iter(|| black_box(3u64).wrapping_mul(7)));
            group.bench_function("batched", |b| {
                b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
            });
            group.finish();
        }
        assert_eq!(c.results.len(), 2);
        assert!(c
            .results
            .iter()
            .all(|(_, mean, iters)| *mean >= 0.0 && *iters >= 5));
    }

    #[test]
    fn format_ns_scales_units() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12_000.0).ends_with("µs"));
        assert!(format_ns(12_000_000.0).ends_with("ms"));
        assert!(format_ns(12_000_000_000.0).ends_with('s'));
    }
}
