//! Offline stand-in for the `serde` facade crate.
//!
//! The workspace uses serde only as derive annotations on workload types;
//! nothing serializes through it (the JSON artifacts in this repo are
//! written by hand). This shim re-exports no-op derive macros so those
//! annotations compile without the real serde stack.

pub use serde_derive::{Deserialize, Serialize};
