//! Collection strategies: `vec` and `btree_set`.

use std::collections::BTreeSet;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A range of collection sizes, converted from the same argument types real
/// proptest accepts where the workspace uses them.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    /// Inclusive lower bound.
    min: usize,
    /// Inclusive upper bound.
    max: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        self.min + rng.below((self.max - self.min + 1) as u64) as usize
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        Self {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { min: n, max: n }
    }
}

/// Strategy for `Vec<T>` with a length drawn from `size`.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates vectors whose elements come from `element` and whose length is
/// drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy for `BTreeSet<T>` with a target size drawn from `size`.
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.size.pick(rng);
        let mut set = BTreeSet::new();
        // Duplicates shrink the set below target; retry a bounded number of
        // times (mirrors proptest, which also gives up on tiny value spaces).
        let mut attempts = 0usize;
        let max_attempts = target * 10 + 16;
        while set.len() < target && attempts < max_attempts {
            set.insert(self.element.generate(rng));
            attempts += 1;
        }
        set
    }
}

/// Generates `BTreeSet`s whose elements come from `element` and whose size
/// is drawn from `size` (possibly smaller when duplicates dominate).
pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::any;

    #[test]
    fn vec_lengths_respect_size_range() {
        let mut rng = TestRng::for_case("vec-sizes", 0);
        let strat = vec(any::<u8>(), 2..5);
        for _ in 0..500 {
            let v = strat.generate(&mut rng);
            assert!((2..5).contains(&v.len()), "{}", v.len());
        }
    }

    #[test]
    fn btree_set_reaches_target_with_large_value_space() {
        let mut rng = TestRng::for_case("set-sizes", 0);
        let strat = btree_set(any::<u64>(), 10..11);
        for _ in 0..100 {
            assert_eq!(strat.generate(&mut rng).len(), 10);
        }
    }

    #[test]
    fn btree_set_gives_up_gracefully_on_tiny_spaces() {
        let mut rng = TestRng::for_case("set-tiny", 0);
        // Only two possible values but a target of 50: must terminate.
        let s = btree_set(0u8..2, 50..51).generate(&mut rng);
        assert!(s.len() <= 2);
    }
}
