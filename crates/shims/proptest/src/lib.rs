//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this shim reimplements
//! the subset of proptest's API the workspace uses: the [`proptest!`] macro
//! (with `#![proptest_config(...)]`), `prop_assert!`/`prop_assert_eq!`,
//! [`strategy::Strategy`] with `prop_map` and `boxed`, `any::<T>()`, range
//! strategies, tuple strategies, [`prop_oneof!`], and
//! [`collection::vec`]/[`collection::btree_set`].
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * no shrinking — a failing case panics with the case number and message;
//! * generation is driven by a fixed-seed deterministic RNG (seeded per test
//!   name and case index), so runs are reproducible across machines and CI.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob import used by tests: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares deterministic property tests.
///
/// Supports the forms the workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///     #[test]
///     fn name(input in strategy, more in other_strategy) { body }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr); $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let strategies = ($($strat,)+);
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::for_case(stringify!($name), case);
                    let ($($arg,)+) =
                        $crate::strategy::Strategy::generate(&strategies, &mut rng);
                    let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(err) = result {
                        panic!(
                            "proptest `{}` failed at case {case}/{}: {err}",
                            stringify!($name),
                            config.cases,
                        );
                    }
                }
            }
        )*
    };
}

/// Fails the current test case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Fails the current test case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right,
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                format!($($fmt)+),
                left,
                right,
            )));
        }
    }};
}

/// Fails the current test case when the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left,
            )));
        }
    }};
}

/// Picks one of several strategies, optionally weighted
/// (`prop_oneof![3 => a, 1 => b]`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
}
