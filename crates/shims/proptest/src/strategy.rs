//! The [`Strategy`] trait and the combinators the workspace uses.

use std::marker::PhantomData;
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value tree or shrinking: a strategy is
/// just a deterministic-RNG-driven generator.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erases the strategy's concrete type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased strategy (`Strategy::boxed`).
pub struct BoxedStrategy<V>(Rc<dyn Strategy<Value = V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        Self(Rc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate(rng)
    }
}

/// `Strategy::prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted choice between strategies (built by `prop_oneof!`).
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total_weight: u64,
}

impl<V> Union<V> {
    /// Creates a union from `(weight, strategy)` arms.
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total_weight = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total_weight > 0, "prop_oneof! weights must not all be zero");
        Self { arms, total_weight }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.below(self.total_weight);
        for (weight, strat) in &self.arms {
            if pick < *weight as u64 {
                return strat.generate(rng);
            }
            pick -= *weight as u64;
        }
        unreachable!("weight accounting covers the whole range");
    }
}

// ---------------------------------------------------------------------
// `any::<T>()`
// ---------------------------------------------------------------------

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[inline]
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

// ---------------------------------------------------------------------
// Ranges as strategies
// ---------------------------------------------------------------------

/// Integer types usable as range-strategy endpoints.
pub trait RangeValue: Copy {
    /// Uniform sample from `[low, high]` inclusive.
    fn sample_inclusive(rng: &mut TestRng, low: Self, high: Self) -> Self;
    /// The value immediately below `v`.
    fn step_down(v: Self) -> Self;
}

macro_rules! range_value {
    ($($t:ty),*) => {$(
        impl RangeValue for $t {
            #[inline]
            fn sample_inclusive(rng: &mut TestRng, low: Self, high: Self) -> Self {
                debug_assert!(low <= high);
                let span = (high as i128 - low as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                ((low as i128) + rng.below(span + 1) as i128) as $t
            }
            #[inline]
            fn step_down(v: Self) -> Self {
                v - 1
            }
        }
    )*};
}

range_value!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: RangeValue + PartialOrd> Strategy for std::ops::Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(self.start < self.end, "empty range strategy");
        T::sample_inclusive(rng, self.start, T::step_down(self.end))
    }
}

impl<T: RangeValue + PartialOrd> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(self.start() <= self.end(), "empty range strategy");
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

// ---------------------------------------------------------------------
// Tuples of strategies
// ---------------------------------------------------------------------

macro_rules! tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A.0);
tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_case("strategy-tests", 0)
    }

    #[test]
    fn ranges_tuples_and_map() {
        let mut rng = rng();
        let strat = (0u8..4, 10usize..=12).prop_map(|(a, b)| a as usize + b);
        for _ in 0..1000 {
            let v = strat.generate(&mut rng);
            assert!((10..16).contains(&v), "{v}");
        }
    }

    #[test]
    fn union_respects_weights() {
        let mut rng = rng();
        let strat = crate::prop_oneof![9 => Just(1u8), 1 => Just(2u8)];
        let ones = (0..10_000)
            .filter(|_| strat.generate(&mut rng) == 1)
            .count();
        assert!((8_500..9_500).contains(&ones), "{ones}");
    }

    #[test]
    fn any_generates_varied_values() {
        let mut rng = rng();
        let bools: Vec<bool> = (0..100).map(|_| any::<bool>().generate(&mut rng)).collect();
        assert!(bools.iter().any(|&b| b) && bools.iter().any(|&b| !b));
        let bytes: std::collections::HashSet<u8> =
            (0..5000).map(|_| any::<u8>().generate(&mut rng)).collect();
        assert_eq!(bytes.len(), 256);
    }
}
