//! Test configuration, errors, and the deterministic RNG driving generation.

use std::fmt;

/// Per-test configuration (the subset the workspace uses).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` generated inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Failure of one generated test case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic generator: SplitMix64 seeded from the test name and case
/// index, so every run of a test generates the same inputs.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for case number `case` of the named test.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        Self {
            state: h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Returns 64 uniformly random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)` by rejection sampling.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % bound;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_test_and_case() {
        let a: Vec<u64> = {
            let mut r = TestRng::for_case("t", 3);
            (0..10).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::for_case("t", 3);
            (0..10).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let mut c = TestRng::for_case("t", 4);
        assert_ne!(a[0], c.next_u64());
        let mut d = TestRng::for_case("other", 3);
        assert_ne!(a[0], d.next_u64());
    }

    #[test]
    fn below_is_in_bounds() {
        let mut r = TestRng::for_case("bounds", 0);
        for bound in [1u64, 2, 3, 10, 1000] {
            for _ in 0..1000 {
                assert!(r.below(bound) < bound);
            }
        }
    }
}
