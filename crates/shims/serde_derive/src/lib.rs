//! No-op `Serialize`/`Deserialize` derives.
//!
//! The workspace only uses serde derives as annotations (no code actually
//! serializes through serde), and the build environment cannot fetch the
//! real `serde`/`syn` stack, so these derives expand to nothing. Types
//! deriving them simply do not receive trait impls — which is fine, because
//! nothing requires the impls.

use proc_macro::TokenStream;

/// Expands to nothing (annotation-only `#[derive(Serialize)]`).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing (annotation-only `#[derive(Deserialize)]`).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
