//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no crates.io access, so this shim provides the
//! subset of the `bytes` API the workspace uses: [`BytesMut`] as a growable
//! write buffer with the [`BufMut`] putters, and [`Bytes`] as a cheaply
//! cloneable read view with the [`Buf`] getters (big-endian, like `bytes`).
//! Sharing is an `Arc<[u8]>` plus a cursor, so `clone` and `split_to` never
//! copy payload bytes.

use std::sync::Arc;

/// Read access to a contiguous byte cursor (subset of `bytes::Buf`).
pub trait Buf {
    /// Bytes remaining to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Skips `n` bytes.
    fn advance(&mut self, n: usize);

    /// Returns `true` when nothing remains.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_be_bytes(raw)
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_be_bytes(raw)
    }
}

/// Write access to a growable byte buffer (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

/// A growable, uniquely owned byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Number of written bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when no bytes have been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freezes the buffer into an immutable, cheaply cloneable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: Arc::from(self.data.into_boxed_slice()),
            start: 0,
            end_offset: 0,
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// An immutable, cheaply cloneable view of a byte buffer.
#[derive(Debug, Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    /// First live byte.
    start: usize,
    /// Bytes cut off the end (`data.len() - end_offset` is one past the
    /// last live byte).
    end_offset: usize,
}

impl Bytes {
    /// Creates an empty view.
    pub fn new() -> Self {
        Self {
            data: Arc::from([]),
            start: 0,
            end_offset: 0,
        }
    }

    /// Copies `slice` into a new view.
    pub fn copy_from_slice(slice: &[u8]) -> Self {
        Self {
            data: Arc::from(slice),
            start: 0,
            end_offset: 0,
        }
    }

    fn end(&self) -> usize {
        self.data.len() - self.end_offset
    }

    /// Number of live bytes.
    pub fn len(&self) -> usize {
        self.end() - self.start
    }

    /// Returns `true` when no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Splits off and returns the first `n` bytes, leaving the rest
    /// (shares storage; no copying).
    pub fn split_to(&mut self, n: usize) -> Bytes {
        assert!(n <= self.len(), "split_to out of bounds");
        let head = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end_offset: self.data.len() - (self.start + n),
        };
        self.start += n;
        head
    }

    /// Copies the live bytes into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Self::new()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data[self.start..self.end()]
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self {
            data: Arc::from(v.into_boxed_slice()),
            start: 0,
            end_offset: 0,
        }
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_ref()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance out of bounds");
        self.start += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_putters_and_getters() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u8(7);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_slice(b"key");
        buf.put_u64(42);
        assert_eq!(buf.len(), 1 + 4 + 3 + 8);
        let mut b = buf.freeze();
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u32(), 0xDEAD_BEEF);
        assert_eq!(b.split_to(3).as_ref(), b"key");
        assert_eq!(b.get_u64(), 42);
        assert!(b.is_empty());
    }

    #[test]
    fn split_to_shares_storage() {
        let b = Bytes::copy_from_slice(b"hello world");
        let mut rest = b.clone();
        let head = rest.split_to(5);
        assert_eq!(head.as_ref(), b"hello");
        assert_eq!(rest.as_ref(), b" world");
        assert_eq!(b.as_ref(), b"hello world");
    }
}
