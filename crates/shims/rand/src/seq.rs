//! Sequence helpers: `SliceRandom`.

use crate::Rng;

/// Random operations on slices (the subset of `rand::seq::SliceRandom` the
/// workspace uses).
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: Rng>(&mut self, rng: &mut R);

    /// Returns a uniformly random element, or `None` when empty.
    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_permutes() {
        let mut rng = SmallRng::seed_from_u64(42);
        let mut v: Vec<u32> = (0..100).collect();
        let orig = v.clone();
        v.shuffle(&mut rng);
        assert_ne!(v, orig, "astronomically unlikely identity shuffle");
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig);
    }

    #[test]
    fn choose_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        let v = [1, 2, 3];
        for _ in 0..100 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
