//! Offline stand-in for the `rand` crate (0.8 API surface).
//!
//! The build environment has no crates.io access, so this shim implements
//! the pieces of `rand` the workspace actually uses: [`rngs::SmallRng`]
//! (an xoshiro256++ generator), the [`Rng`]/[`SeedableRng`] traits with
//! `gen`, `gen_range`, `gen_bool`, `gen_ratio` and `sample`, the
//! [`distributions`] module with `Uniform`/`Alphanumeric`/`Standard`, and
//! [`seq::SliceRandom::shuffle`]. The streams are deterministic for a given
//! seed (Fisher–Yates shuffles, rejection-sampled uniform ranges), which is
//! all the workloads and tests rely on.

pub mod distributions;
pub mod rngs;
pub mod seq;

pub use distributions::{Distribution, Standard};

/// Core random-number-generator interface (the subset used here).
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Extension methods over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Returns a uniformly random value of `T` (via the `Standard`
    /// distribution).
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    /// Returns a uniformly random value in `range` (a `Range` or
    /// `RangeInclusive` over an integer type).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        // 53 random mantissa bits give a uniform float in [0, 1).
        let f = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        f < p
    }

    /// Returns `true` with probability `numerator / denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool
    where
        Self: Sized,
    {
        assert!(denominator > 0 && numerator <= denominator);
        self.gen_range(0..denominator) < numerator
    }

    /// Draws one value from `dist`.
    fn sample<T, D: Distribution<T>>(&mut self, dist: D) -> T
    where
        Self: Sized,
    {
        dist.sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Construction of generators from seeds, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn deterministic_streams() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: u8 = rng.gen_range(0x21u8..=0x7E);
            assert!((0x21..=0x7E).contains(&w));
            let s: usize = rng.gen_range(0..3usize);
            assert!(s < 3);
            let i: i32 = rng.gen_range(2008..2010);
            assert!((2008..2010).contains(&i));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 13];
        for _ in 0..10_000 {
            seen[rng.gen_range(0..13usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_and_ratio_are_roughly_calibrated() {
        let mut rng = SmallRng::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.15)).count();
        assert!((12_000..18_000).contains(&hits), "{hits}");
        let hits = (0..100_000).filter(|_| rng.gen_ratio(1, 4)).count();
        assert!((22_000..28_000).contains(&hits), "{hits}");
    }

    #[test]
    fn standard_u8_generation() {
        let mut rng = SmallRng::seed_from_u64(11);
        let bytes: Vec<u8> = (0..10_000).map(|_| rng.gen::<u8>()).collect();
        let distinct: std::collections::HashSet<_> = bytes.iter().collect();
        assert_eq!(distinct.len(), 256);
    }
}
