//! Distributions: `Standard`, `Uniform`, and `Alphanumeric`.

use crate::RngCore;

/// A type that produces values of `T` from a generator.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" uniform distribution over a type's full value range.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            #[inline]
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<bool> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Uniformly distributed alphanumeric ASCII bytes (`0-9A-Za-z`), matching
/// `rand 0.8` where `Alphanumeric` is a `Distribution<u8>`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Alphanumeric;

impl Distribution<u8> for Alphanumeric {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u8 {
        const CHARSET: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789";
        let idx = uniform::sample_u64_below(rng, CHARSET.len() as u64) as usize;
        CHARSET[idx]
    }
}

/// A pre-built uniform distribution over a closed or half-open range.
#[derive(Debug, Clone, Copy)]
pub struct Uniform<T> {
    low: T,
    /// Inclusive upper bound.
    high: T,
}

impl<T: uniform::SampleUniform + Copy + PartialOrd> Uniform<T> {
    /// Uniform over `[low, high)`.
    pub fn new(low: T, high: T) -> Self {
        assert!(low < high, "Uniform::new called with empty range");
        Self {
            low,
            high: T::step_down(high),
        }
    }

    /// Uniform over `[low, high]`.
    pub fn new_inclusive(low: T, high: T) -> Self {
        assert!(
            low <= high,
            "Uniform::new_inclusive called with empty range"
        );
        Self { low, high }
    }
}

impl<T: uniform::SampleUniform + Copy> Distribution<T> for Uniform<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        T::sample_inclusive(rng, self.low, self.high)
    }
}

/// Uniform-sampling machinery (the `rand::distributions::uniform` shape).
pub mod uniform {
    use crate::{Rng, RngCore};

    /// Draws a uniform value in `[0, bound)` by rejection sampling, so every
    /// value is exactly equally likely.
    #[inline]
    pub(crate) fn sample_u64_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
        loop {
            let v = rng.next_u64();
            if v <= zone {
                return v % bound;
            }
        }
    }

    /// Integer types that can be sampled uniformly from a range.
    pub trait SampleUniform: Sized {
        /// Uniform sample from `[low, high]` (inclusive).
        fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
        /// The value immediately below `v` (used to convert exclusive
        /// bounds to inclusive ones).
        fn step_down(v: Self) -> Self;
    }

    macro_rules! impl_sample_uniform {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                #[inline]
                fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                    debug_assert!(low <= high);
                    let span = (high as i128 - low as i128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    let offset = sample_u64_below(rng, span + 1);
                    ((low as i128) + offset as i128) as $t
                }
                #[inline]
                fn step_down(v: Self) -> Self {
                    v - 1
                }
            }
        )*};
    }

    impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Ranges acceptable to `Rng::gen_range`.
    pub trait SampleRange<T> {
        /// Draws one uniform value from the range.
        fn sample_single<R: Rng>(self, rng: &mut R) -> T;
    }

    impl<T: SampleUniform + Copy + PartialOrd> SampleRange<T> for std::ops::Range<T> {
        fn sample_single<R: Rng>(self, rng: &mut R) -> T {
            assert!(self.start < self.end, "cannot sample empty range");
            T::sample_inclusive(rng, self.start, T::step_down(self.end))
        }
    }

    impl<T: SampleUniform + Copy + PartialOrd> SampleRange<T> for std::ops::RangeInclusive<T> {
        fn sample_single<R: Rng>(self, rng: &mut R) -> T {
            let (low, high) = self.into_inner();
            assert!(low <= high, "cannot sample empty range");
            T::sample_inclusive(rng, low, high)
        }
    }
}
