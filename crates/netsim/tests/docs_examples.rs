//! Pins `docs/src/wire-protocol.md` to the real wire encoder: every
//! byte-layout example in the chapter is re-encoded here through the
//! public `encode` API and the rendered hex must appear in the document
//! verbatim (modulo line wrapping). If the encoding changes, or the doc's
//! examples are edited by hand, this test fails — the spec cannot drift
//! from the code. The same vectors are asserted frame-by-frame by
//! `wire::tests::known_answer_frames`.

use bytes::BytesMut;
use netsim::{WireRequest, WireResponse};

fn doc() -> String {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../docs/src/wire-protocol.md"
    );
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("read {path}: {e} (the wire-protocol chapter must exist)"));
    // Collapse all whitespace so examples wrapped across lines in the
    // document still compare equal to the one-line encoder output.
    text.split_whitespace().collect::<Vec<_>>().join(" ")
}

fn hex(bytes: &[u8]) -> String {
    bytes
        .iter()
        .map(|b| format!("{b:02X}"))
        .collect::<Vec<_>>()
        .join(" ")
}

fn request_hex(req: &WireRequest) -> String {
    let mut buf = BytesMut::new();
    req.encode(&mut buf);
    hex(buf.as_ref())
}

fn response_hex(resp: &WireResponse) -> String {
    let mut buf = BytesMut::new();
    resp.encode(&mut buf);
    hex(buf.as_ref())
}

#[test]
fn wire_protocol_doc_quotes_the_real_encodings() {
    let doc = doc();
    let requests = vec![
        WireRequest::Get {
            key: b"Jam".to_vec(),
        },
        WireRequest::Set {
            key: b"k1".to_vec(),
            value: 7,
        },
        WireRequest::Range {
            start: b"J".to_vec(),
            count: 2,
        },
        WireRequest::Stats,
        WireRequest::Scan {
            start: b"k1".to_vec(),
            limit: 2,
        },
    ];
    for req in &requests {
        let hex = request_hex(req);
        assert!(
            doc.contains(&hex),
            "wire-protocol.md must quote the encoder's bytes for {req:?}: `{hex}`"
        );
    }
    let responses = vec![
        WireResponse::Value(7),
        WireResponse::Miss,
        WireResponse::Range(vec![(b"a".to_vec(), 1)]),
        WireResponse::Stats("a 1\n".to_string()),
        WireResponse::ScanPage {
            items: vec![(b"k1".to_vec(), 7), (b"k2".to_vec(), 8)],
            resume: Some(b"k2\x00".to_vec()),
        },
        WireResponse::ScanPage {
            items: Vec::new(),
            resume: None,
        },
    ];
    for resp in &responses {
        let hex = response_hex(resp);
        assert!(
            doc.contains(&hex),
            "wire-protocol.md must quote the encoder's bytes for {resp:?}: `{hex}`"
        );
    }
}

/// The spec's stated conventions must hold of the encoder: integers are
/// big-endian and every request starts with the generic
/// tag + u32 key-length prefix.
#[test]
fn wire_protocol_doc_conventions_hold() {
    let doc = doc();
    assert!(
        doc.contains("big-endian"),
        "the endianness rule is normative"
    );
    // Big-endian: the u32 key length of a 3-byte key encodes high bytes
    // first, and the value 0x0102030405060708 keeps byte order.
    let mut buf = BytesMut::new();
    WireRequest::Set {
        key: b"abc".to_vec(),
        value: 0x0102_0304_0506_0708,
    }
    .encode(&mut buf);
    assert_eq!(
        buf.as_ref(),
        [
            0x02, 0x00, 0x00, 0x00, 0x03, b'a', b'b', b'c', 0x01, 0x02, 0x03, 0x04, 0x05, 0x06,
            0x07, 0x08
        ]
    );
    // The generic prefix: Stats still carries an (empty) key length.
    let mut buf = BytesMut::new();
    WireRequest::Stats.encode(&mut buf);
    assert_eq!(buf.as_ref(), [0x04, 0x00, 0x00, 0x00, 0x00]);
}
