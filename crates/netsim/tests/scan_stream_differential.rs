//! Differential test for the streaming-scan RPC: a scan drained over the
//! wire as many small [`WireRequest::Scan`] pages — with boundary
//! migrations forced *between* pages — must be byte-identical to one
//! in-process drain of the index's resumable cursor.
//!
//! This pins the two halves of the stateless-continuation design at once:
//! the server-side `scan_page` (full page ⇒ resume = successor of the
//! last key, short page ⇒ exhausted) and the claim that a resume key is a
//! plain global key, so the stream survives the index reorganising
//! between pages.

use std::sync::Arc;

use bytes::BytesMut;
use index_traits::ConcurrentOrderedIndex;
use netsim::{ShardServer, WireRequest, WireResponse};
use wh_shard::{ShardedConfig, ShardedWormhole};

#[test]
fn streamed_scan_matches_cursor_drain_under_migration() {
    let keys: Vec<Vec<u8>> = (0..2_000u64)
        .map(|i| format!("key-{i:08}").into_bytes())
        .collect();
    let index = Arc::new(ShardedWormhole::with_config(ShardedConfig::from_sample(
        4, &keys,
    )));
    for (i, key) in keys.iter().enumerate() {
        index.set(key, i as u64);
    }

    // Reference: one in-process drain through the resumable cursor.
    let mut direct: Vec<(Vec<u8>, u64)> = Vec::new();
    index.scan(b"").collect_next(usize::MAX, &mut direct);
    assert_eq!(direct.len(), keys.len());

    // Streamed: small pages over the wire, a boundary migration forced
    // every third page. Migrations move keys between shards but never
    // change the logical contents, and the resume key is a global key —
    // so the stream must neither skip nor duplicate a pair.
    let server = ShardServer::with_batch_size(Arc::clone(&index), 4, 8);
    let mut streamed: Vec<(Vec<u8>, u64)> = Vec::new();
    let mut next = Some(Vec::new());
    let mut pages = 0u32;
    let mut flip = false;
    while let Some(start) = next {
        let (_, responses) = server.run_collect(&[WireRequest::Scan { start, limit: 17 }]);
        match responses.into_iter().next() {
            Some(WireResponse::ScanPage { items, resume }) => {
                streamed.extend(items);
                next = resume;
            }
            other => panic!("expected a ScanPage response, got {other:?}"),
        }
        pages += 1;
        if pages.is_multiple_of(3) {
            let target = if flip {
                format!("key-{:08}", 900).into_bytes()
            } else {
                format!("key-{:08}", 1_100).into_bytes()
            };
            index.migrate_boundary(1, &target).expect("valid target");
            flip = !flip;
        }
    }
    assert!(
        pages >= (keys.len() / 17) as u32,
        "the scan must actually stream across many messages (got {pages} pages)"
    );
    assert_eq!(streamed, direct);

    // Byte-identical, through the same encoder both ways: serialising the
    // two drains with the shared wire encoding yields equal buffers.
    let mut streamed_bytes = BytesMut::new();
    WireResponse::Range(streamed).encode(&mut streamed_bytes);
    let mut direct_bytes = BytesMut::new();
    WireResponse::Range(direct).encode(&mut direct_bytes);
    assert_eq!(streamed_bytes.as_ref(), direct_bytes.as_ref());

    index.check_invariants();
}
