//! The multi-worker batched serving layer over the sharded front: a
//! [`ShardServer`] turns one `ShardedWormhole` into a pipelined
//! request/response service with shard-affine execution threads.
//!
//! # Threading model
//!
//! Three stages run as threads connected by bounded channels, so the
//! decode, execute, and reassemble work of *successive* messages overlaps
//! (while workers execute message `n`, the dispatcher is already decoding
//! and routing `n + 1`, and the collector is shipping `n - 1`):
//!
//! ```text
//! client ──► dispatcher ──► worker 0..N ──► collector ──► client
//!             (decode,        (execute,      (reassemble
//!              route_batch)    encode)        in slot order)
//! ```
//!
//! * The **dispatcher** decodes each incoming batch and routes *every*
//!   request in it against a single router-table snapshot
//!   ([`ShardedWormhole::route_batch`] — one router protection span for
//!   the whole message, the same discipline as the index's own
//!   `get_batch`), then splits the message into per-worker sub-batches.
//!   Shards map to workers contiguously (`worker = shard * workers /
//!   shards`), so each worker's working set stays range-local.
//! * Each **worker** executes its sub-batch in slot order, batching runs
//!   of consecutive point lookups through the index's pipelined
//!   `get_batch`, and encodes responses into one buffer with per-item end
//!   offsets.
//! * The **collector** receives the dispatcher's slot→worker assignment
//!   and each participating worker's buffer, and reassembles the response
//!   message by walking the slots in order — each worker's slots ascend,
//!   so reassembly is a sequential cursor per worker, no sorting.
//!
//! # Ordering and correctness under migration
//!
//! The dispatcher's routing is **advisory** — pure affinity. Workers
//! execute through the public `ShardedWormhole` API, which re-routes
//! every operation inside its own router protection span, so a boundary
//! migration between dispatch and execution can never send an operation
//! to the wrong shard.
//!
//! The consistency contract is **per-key program order**: all operations
//! on one key in one client stream execute in client order. Within a
//! message this holds because all slots were routed against one table
//! snapshot — equal keys route equally, land on the same worker, and the
//! worker executes slots in order. Across messages it holds because the
//! shard→worker map is a pure function of the routing epoch, and when
//! [`ShardedWormhole::route_batch`] reports a *new* epoch the dispatcher
//! **flushes the pipeline** (waits for every in-flight message to
//! complete) before dispatching under the new map — counted by
//! [`ShardServerMetrics::epoch_flushes`]. Operations on *different* keys
//! in one stream may execute out of order across workers; multi-key reads
//! (`Range`, `Scan`) are concurrent snapshots, ordered only against
//! same-worker neighbours. See `docs/src/adr-003-serving-threading.md`
//! for the full argument.

use std::collections::VecDeque;
use std::sync::Arc;
use std::thread::JoinHandle;

use bytes::{BufMut, Bytes, BytesMut};
use crossbeam::channel::{bounded, Receiver, Sender};
use index_traits::ConcurrentOrderedIndex;
use wh_shard::ShardedWormhole;
use wh_telemetry::{Counter, Histogram, Registry};

use crate::service::{RequestBatch, ResponseBatch, ServiceStats};
use crate::telemetry::ServiceMetrics;
use crate::wire::{WireRequest, WireResponse};

/// One worker's share of a decoded message: the original slot index of
/// each request (ascending) plus the request itself.
struct WorkBatch {
    seq: u64,
    items: Vec<(usize, WireRequest)>,
}

/// One worker's encoded output for one message: `ends[j]` is the end
/// offset of item `j`'s response in `payload` (item `j` of the worker's
/// [`WorkBatch`], not of the whole message).
struct WorkOutput {
    seq: u64,
    payload: Bytes,
    ends: Vec<usize>,
}

/// The dispatcher's reassembly directions for one message: which worker
/// owns each slot.
struct Assignment {
    seq: u64,
    worker_of_slot: Vec<usize>,
}

/// Serving-layer metrics beyond the per-op [`ServiceMetrics`].
#[derive(Clone, Debug, Default)]
pub struct ShardServerMetrics {
    /// Time the dispatcher spent routing one message's keys (one
    /// `route_batch` call — a single router protection span).
    pub dispatch_route_ns: Histogram,
    /// Pipeline flushes forced by a router-epoch change: the dispatcher
    /// saw new boundaries while messages were still in flight and waited
    /// them out before dispatching under the new shard→worker map.
    pub epoch_flushes: Counter,
    /// Items per per-worker sub-batch (the dispatch fan-out distribution).
    pub worker_items: Histogram,
}

impl ShardServerMetrics {
    /// Registers every metric under `<prefix>_…` names.
    pub fn register_into(&self, registry: &Registry, prefix: &str) {
        registry.register_histogram(
            &format!("{prefix}_dispatch_route_ns"),
            &self.dispatch_route_ns,
        );
        registry.register_counter(
            &format!("{prefix}_epoch_flushes_total"),
            &self.epoch_flushes,
        );
        registry.register_histogram(&format!("{prefix}_worker_items"), &self.worker_items);
    }
}

/// A batched serving layer over a [`ShardedWormhole`]: N shard-affine
/// worker threads behind a routing dispatcher and a reassembling
/// collector. See the [module docs](self) for the threading model and the
/// ordering contract.
pub struct ShardServer {
    index: Arc<ShardedWormhole<u64>>,
    workers: usize,
    batch_size: usize,
    registry: Arc<Registry>,
    metrics: ServiceMetrics,
    server_metrics: ShardServerMetrics,
}

/// The key a request routes by: its affinity signal. Multi-shard
/// operations (`Range`, `Scan`) route by their start key; `Stats` routes
/// to the first shard.
fn routing_key(req: &WireRequest) -> &[u8] {
    match req {
        WireRequest::Get { key } => key,
        WireRequest::Set { key, .. } => key,
        WireRequest::Range { start, .. } => start,
        WireRequest::Scan { start, .. } => start,
        WireRequest::Stats => b"",
    }
}

impl ShardServer {
    /// Creates a serving layer with the paper's batch size of 800 requests
    /// per message. `workers` is the number of execution threads.
    pub fn new(index: Arc<ShardedWormhole<u64>>, workers: usize) -> Self {
        Self::with_batch_size(index, workers, 800)
    }

    /// Creates a serving layer with an explicit wire batch size.
    ///
    /// The index's own metrics (router path counters, migration progress,
    /// per-shard op counters) are registered into the server's registry
    /// under `shard_…` names, so a wire-level [`WireRequest::Stats`] probe
    /// exposes the whole serving stack.
    pub fn with_batch_size(
        index: Arc<ShardedWormhole<u64>>,
        workers: usize,
        batch_size: usize,
    ) -> Self {
        assert!(workers > 0);
        assert!(batch_size > 0);
        let registry = Arc::new(Registry::new());
        let metrics = ServiceMetrics::default();
        metrics.register_into(&registry, "netsim");
        let server_metrics = ShardServerMetrics::default();
        server_metrics.register_into(&registry, "netsim_server");
        index.register_metrics(&registry, "shard");
        Self {
            index,
            workers,
            batch_size,
            registry,
            metrics,
            server_metrics,
        }
    }

    /// The served index.
    pub fn index(&self) -> &Arc<ShardedWormhole<u64>> {
        &self.index
    }

    /// The metrics registry the [`WireRequest::Stats`] command renders.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Per-op service metrics (shared cells with the worker threads).
    pub fn metrics(&self) -> &ServiceMetrics {
        &self.metrics
    }

    /// Serving-layer metrics (dispatch routing time, epoch flushes).
    pub fn server_metrics(&self) -> &ShardServerMetrics {
        &self.server_metrics
    }

    /// Spawns the dispatcher, the workers, and the collector; returns the
    /// request sender, the response receiver, and every join handle.
    fn spawn(
        &self,
    ) -> (
        Sender<RequestBatch>,
        Receiver<ResponseBatch>,
        Vec<JoinHandle<()>>,
    ) {
        let workers = self.workers;
        let shard_count = self.index.shard_count();
        let (req_tx, req_rx) = bounded::<RequestBatch>(16);
        let (resp_tx, resp_rx) = bounded::<ResponseBatch>(16);
        let (assign_tx, assign_rx) = bounded::<Assignment>(64);
        // Completion tokens collector → dispatcher, read eagerly each
        // dispatch and drained fully on an epoch flush. Sized above the
        // maximum number of in-flight messages (client pipeline depth +
        // request-channel capacity) so the collector never blocks on it.
        let (completed_tx, completed_rx) = bounded::<u64>(256);
        let mut work_txs = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers + 2);
        let mut out_rxs = Vec::with_capacity(workers);

        for _ in 0..workers {
            let (work_tx, work_rx) = bounded::<WorkBatch>(16);
            let (out_tx, out_rx) = bounded::<WorkOutput>(16);
            work_txs.push(work_tx);
            out_rxs.push(out_rx);
            let index = Arc::clone(&self.index);
            let registry = Arc::clone(&self.registry);
            let metrics = self.metrics.clone();
            handles.push(std::thread::spawn(move || {
                worker_loop(&work_rx, &out_tx, &index, &registry, &metrics);
            }));
        }

        {
            let index = Arc::clone(&self.index);
            let metrics = self.metrics.clone();
            let server_metrics = self.server_metrics.clone();
            handles.push(std::thread::spawn(move || {
                dispatcher_loop(
                    &req_rx,
                    &work_txs,
                    &assign_tx,
                    &completed_rx,
                    &index,
                    shard_count,
                    &metrics,
                    &server_metrics,
                );
            }));
        }

        handles.push(std::thread::spawn(move || {
            collector_loop(&assign_rx, &out_rxs, &resp_tx, &completed_tx);
        }));

        (req_tx, resp_rx, handles)
    }

    /// Runs a stream of requests through the serving layer and reports
    /// client-side statistics. Client-observed round-trip latency lands in
    /// [`ServiceMetrics::client_rtt_ns`], once per request.
    pub fn run(&self, requests: &[WireRequest]) -> ServiceStats {
        self.run_with(requests, |_| {})
    }

    /// Like [`ShardServer::run`], but also returns every decoded response
    /// in request order.
    pub fn run_collect(&self, requests: &[WireRequest]) -> (ServiceStats, Vec<WireResponse>) {
        let mut responses = Vec::with_capacity(requests.len());
        let stats = self.run_with(requests, |resp| responses.push(resp.clone()));
        (stats, responses)
    }

    fn run_with(
        &self,
        requests: &[WireRequest],
        mut on_resp: impl FnMut(&WireResponse),
    ) -> ServiceStats {
        let (req_tx, resp_rx, handles) = self.spawn();
        let start = std::time::Instant::now();
        let mut stats = ServiceStats {
            operations: 0,
            seconds: 0.0,
            request_bytes: 0,
            response_bytes: 0,
            hits: 0,
        };
        let mut in_flight: VecDeque<Option<std::time::Instant>> = VecDeque::new();
        let metrics = &self.metrics;
        let mut drain =
            |stats: &mut ServiceStats, in_flight: &mut VecDeque<Option<std::time::Instant>>| {
                let batch = resp_rx.recv().expect("server alive");
                stats.response_bytes += batch.payload.len();
                let mut payload = batch.payload;
                let mut count = 0u64;
                while let Some(resp) = WireResponse::decode(&mut payload) {
                    if !matches!(resp, WireResponse::Miss) {
                        stats.hits += 1;
                    }
                    stats.operations += 1;
                    count += 1;
                    on_resp(&resp);
                }
                let sent = in_flight.pop_front().expect("a response implies a send");
                if let Some(sent) = sent {
                    metrics
                        .client_rtt_ns
                        .record_n(sent.elapsed().as_nanos() as u64, count);
                }
            };
        for chunk in requests.chunks(self.batch_size) {
            let mut buf = BytesMut::with_capacity(chunk.len() * 32);
            for req in chunk {
                req.encode(&mut buf);
            }
            stats.request_bytes += buf.len();
            in_flight.push_back(wh_telemetry::start_timing());
            req_tx
                .send(RequestBatch {
                    payload: buf.freeze(),
                    count: chunk.len(),
                })
                .expect("server alive");
            // Keep a pipeline of outstanding messages so successive
            // decode/execute/encode stages overlap across the threads.
            if in_flight.len() >= 8 {
                drain(&mut stats, &mut in_flight);
            }
        }
        while !in_flight.is_empty() {
            drain(&mut stats, &mut in_flight);
        }
        stats.seconds = start.elapsed().as_secs_f64().max(1e-9);
        drop(req_tx);
        for handle in handles {
            handle.join().expect("serving thread");
        }
        stats
    }

    /// Convenience wrapper: runs point lookups for the given keys.
    pub fn run_lookups(&self, keys: &[Vec<u8>]) -> ServiceStats {
        let requests: Vec<WireRequest> = keys
            .iter()
            .map(|k| WireRequest::Get { key: k.clone() })
            .collect();
        self.run(&requests)
    }

    /// Scrapes the serving stack over the wire: one [`WireRequest::Stats`]
    /// round trip, returning the decoded text exposition.
    pub fn fetch_stats(&self) -> String {
        let (_, responses) = self.run_collect(&[WireRequest::Stats]);
        match responses.into_iter().next() {
            Some(WireResponse::Stats(text)) => text,
            other => panic!("expected a Stats response, got {other:?}"),
        }
    }

    /// Drains a whole streaming scan over the wire: issues
    /// [`WireRequest::Scan`] pages of `page_limit` pairs, following each
    /// response's resume key, until the server reports exhaustion.
    pub fn scan_all(&self, start: &[u8], page_limit: u32) -> Vec<(Vec<u8>, u64)> {
        let mut all = Vec::new();
        let mut next = Some(start.to_vec());
        while let Some(cursor) = next {
            let (_, responses) = self.run_collect(&[WireRequest::Scan {
                start: cursor,
                limit: page_limit,
            }]);
            match responses.into_iter().next() {
                Some(WireResponse::ScanPage { items, resume }) => {
                    all.extend(items);
                    next = resume;
                }
                other => panic!("expected a ScanPage response, got {other:?}"),
            }
        }
        all
    }
}

/// Decode + route + split. One message per iteration; one
/// `route_batch` router span per message.
#[allow(clippy::too_many_arguments)]
fn dispatcher_loop(
    req_rx: &Receiver<RequestBatch>,
    work_txs: &[Sender<WorkBatch>],
    assign_tx: &Sender<Assignment>,
    completed_rx: &Receiver<u64>,
    index: &ShardedWormhole<u64>,
    shard_count: usize,
    metrics: &ServiceMetrics,
    server_metrics: &ShardServerMetrics,
) {
    let workers = work_txs.len();
    let mut seq = 0u64;
    let mut issued = 0u64;
    let mut completed = 0u64;
    let mut last_epoch = index.router_epoch();
    let mut routes: Vec<usize> = Vec::new();
    while let Ok(batch) = req_rx.recv() {
        let mut payload = batch.payload;
        let mut requests = Vec::with_capacity(batch.count);
        while let Some(req) = WireRequest::decode(&mut payload) {
            requests.push(req);
        }
        metrics.requests.add(requests.len() as u64);
        metrics.batch_requests.record(requests.len() as u64);

        // Route the whole message against one router-table snapshot.
        routes.clear();
        let timing = wh_telemetry::start_timing();
        let epoch = {
            let keys: Vec<&[u8]> = requests.iter().map(routing_key).collect();
            index.route_batch(&keys, &mut routes)
        };
        server_metrics.dispatch_route_ns.record_elapsed(timing);

        // Keep the completion count fresh without blocking.
        while completed_rx.try_recv().is_ok() {
            completed += 1;
        }
        // Boundaries moved: the shard→worker map for these slots may
        // differ from the in-flight messages' map, so a key could hop
        // workers and execute out of program order. Flush the pipeline
        // before dispatching under the new epoch. Migrations are rare;
        // the steady state never takes this branch.
        if epoch != last_epoch {
            last_epoch = epoch;
            if completed < issued {
                server_metrics.epoch_flushes.inc();
                while completed < issued {
                    completed_rx.recv().expect("collector alive");
                    completed += 1;
                }
            }
        }

        // Split into per-worker sub-batches; slots stay ascending within
        // each worker because the scan over slots is in order.
        let worker_of_slot: Vec<usize> = routes
            .iter()
            .map(|&shard| shard * workers / shard_count)
            .collect();
        let mut per_worker: Vec<Vec<(usize, WireRequest)>> = Vec::new();
        per_worker.resize_with(workers, Vec::new);
        for (slot, req) in requests.into_iter().enumerate() {
            per_worker[worker_of_slot[slot]].push((slot, req));
        }
        for (w, items) in per_worker.into_iter().enumerate() {
            if items.is_empty() {
                continue;
            }
            server_metrics.worker_items.record(items.len() as u64);
            if work_txs[w].send(WorkBatch { seq, items }).is_err() {
                return;
            }
        }
        if assign_tx
            .send(Assignment {
                seq,
                worker_of_slot,
            })
            .is_err()
        {
            return;
        }
        seq += 1;
        issued += 1;
    }
}

/// Execute + encode. Slot order within the sub-batch; runs of consecutive
/// point lookups go through the index's pipelined `get_batch` (which
/// routes and gathers per shard internally), exactly like the
/// single-threaded [`KvService`](crate::KvService) server loop.
fn worker_loop(
    work_rx: &Receiver<WorkBatch>,
    out_tx: &Sender<WorkOutput>,
    index: &Arc<ShardedWormhole<u64>>,
    registry: &Registry,
    metrics: &ServiceMetrics,
) {
    while let Ok(batch) = work_rx.recv() {
        let items = batch.items;
        let mut out = BytesMut::with_capacity(items.len() * 16);
        let mut ends = Vec::with_capacity(items.len());
        let mut i = 0usize;
        while i < items.len() {
            match &items[i].1 {
                WireRequest::Get { .. } => {
                    let run_end = items[i..]
                        .iter()
                        .position(|(_, r)| !matches!(r, WireRequest::Get { .. }))
                        .map_or(items.len(), |off| i + off);
                    let keys: Vec<&[u8]> = items[i..run_end]
                        .iter()
                        .map(|(_, r)| match r {
                            WireRequest::Get { key } => key.as_slice(),
                            _ => unreachable!("run contains only gets"),
                        })
                        .collect();
                    let timing = wh_telemetry::start_timing();
                    let values = index.get_batch(&keys);
                    if let Some(started) = timing {
                        metrics
                            .get_ns
                            .record_n(started.elapsed().as_nanos() as u64, keys.len() as u64);
                    }
                    for value in values {
                        match value {
                            Some(v) => WireResponse::Value(v),
                            None => WireResponse::Miss,
                        }
                        .encode(&mut out);
                        ends.push(out.len());
                    }
                    i = run_end;
                }
                WireRequest::Set { key, value } => {
                    let timing = wh_telemetry::start_timing();
                    let resp = match index.set(key, *value) {
                        Some(v) => WireResponse::Value(v),
                        None => WireResponse::Miss,
                    };
                    metrics.set_ns.record_elapsed(timing);
                    resp.encode(&mut out);
                    ends.push(out.len());
                    i += 1;
                }
                WireRequest::Range { start, count } => {
                    let timing = wh_telemetry::start_timing();
                    let resp = WireResponse::Range(index.range_from(start, *count as usize));
                    metrics.range_ns.record_elapsed(timing);
                    resp.encode(&mut out);
                    ends.push(out.len());
                    i += 1;
                }
                WireRequest::Scan { start, limit } => {
                    let timing = wh_telemetry::start_timing();
                    let page = index.scan_page(start, *limit as usize);
                    metrics.scan_ns.record_elapsed(timing);
                    WireResponse::ScanPage {
                        items: page.items,
                        resume: page.resume,
                    }
                    .encode(&mut out);
                    ends.push(out.len());
                    i += 1;
                }
                WireRequest::Stats => {
                    metrics.stats_requests.inc();
                    WireResponse::Stats(registry.snapshot().render()).encode(&mut out);
                    ends.push(out.len());
                    i += 1;
                }
            }
        }
        if out_tx
            .send(WorkOutput {
                seq: batch.seq,
                payload: out.freeze(),
                ends,
            })
            .is_err()
        {
            return;
        }
    }
}

/// Reassemble. For each message: one output per participating worker,
/// then a single in-order walk over the slots, pulling sequentially from
/// each worker's buffer (a worker's slots ascend, so a per-worker cursor
/// suffices — no sorting, no per-slot allocation).
fn collector_loop(
    assign_rx: &Receiver<Assignment>,
    out_rxs: &[Receiver<WorkOutput>],
    resp_tx: &Sender<ResponseBatch>,
    completed_tx: &Sender<u64>,
) {
    let workers = out_rxs.len();
    while let Ok(assign) = assign_rx.recv() {
        let mut outputs: Vec<Option<WorkOutput>> = Vec::new();
        outputs.resize_with(workers, || None);
        for w in 0..workers {
            if assign.worker_of_slot.contains(&w) {
                let output = out_rxs[w].recv().expect("worker alive");
                debug_assert_eq!(
                    output.seq, assign.seq,
                    "per-worker FIFO preserves seq order"
                );
                outputs[w] = Some(output);
            }
        }
        let total: usize = outputs
            .iter()
            .flatten()
            .map(|o| o.payload.len())
            .sum::<usize>();
        let mut out = BytesMut::with_capacity(total);
        // (next item index, start offset of that item) per worker.
        let mut cursor = vec![(0usize, 0usize); workers];
        for &w in &assign.worker_of_slot {
            let output = outputs[w].as_ref().expect("assigned worker sent output");
            let (item, start) = cursor[w];
            let end = output.ends[item];
            out.put_slice(&output.payload.as_ref()[start..end]);
            cursor[w] = (item + 1, end);
        }
        if resp_tx
            .send(ResponseBatch {
                payload: out.freeze(),
            })
            .is_err()
        {
            return;
        }
        if completed_tx.send(assign.seq).is_err() {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::KvService;
    use wh_shard::ShardedConfig;

    fn loaded_sharded(shards: usize, n: usize) -> Arc<ShardedWormhole<u64>> {
        let sample: Vec<Vec<u8>> = (0..n as u64)
            .map(|i| format!("key-{i:08}").into_bytes())
            .collect();
        let idx = ShardedWormhole::with_config(ShardedConfig::from_sample(shards, &sample));
        for (i, key) in sample.iter().enumerate() {
            idx.set(key, i as u64);
        }
        Arc::new(idx)
    }

    #[test]
    fn lookups_round_trip_through_the_serving_layer() {
        let index = loaded_sharded(4, 5000);
        for workers in [1, 3, 4] {
            let server = ShardServer::with_batch_size(Arc::clone(&index), workers, 100);
            let keys: Vec<Vec<u8>> = (0..2000u64)
                .map(|i| format!("key-{:08}", i * 3 % 5000).into_bytes())
                .collect();
            let stats = server.run_lookups(&keys);
            assert_eq!(stats.operations, 2000);
            assert_eq!(stats.hits, 2000);
            assert!(stats.mops() > 0.0);
        }
    }

    #[test]
    fn responses_come_back_in_request_order() {
        // Values encode the request slot, so any reassembly error shows up
        // as a permuted value, not just a count mismatch.
        let index = loaded_sharded(4, 4096);
        let server = ShardServer::with_batch_size(index, 4, 64);
        let requests: Vec<WireRequest> = (0..1024u64)
            .map(|i| WireRequest::Get {
                // Stride widely so consecutive slots hit different shards.
                key: format!("key-{:08}", i * 97 % 4096).into_bytes(),
            })
            .collect();
        let (stats, responses) = server.run_collect(&requests);
        assert_eq!(stats.operations, 1024);
        for (i, resp) in responses.iter().enumerate() {
            let expected = (i as u64) * 97 % 4096;
            assert_eq!(
                *resp,
                WireResponse::Value(expected),
                "slot {i} out of order"
            );
        }
    }

    #[test]
    fn point_streams_match_single_threaded_service() {
        // Per-key program order makes point-op responses deterministic:
        // the multi-worker serving layer must answer a Get/Set stream
        // exactly like the single-threaded KvService over an equal index.
        let sharded = loaded_sharded(4, 2000);
        let unsharded = {
            let wh = wormhole::Wormhole::new();
            for i in 0..2000u64 {
                wh.set(format!("key-{i:08}").as_bytes(), i);
            }
            Arc::new(wh)
        };
        let mut requests = Vec::new();
        for i in 0..3000u64 {
            let key = format!("key-{:08}", i * 13 % 2500).into_bytes();
            if i % 5 == 0 {
                requests.push(WireRequest::Set {
                    key,
                    value: i + 10_000,
                });
            } else {
                requests.push(WireRequest::Get { key });
            }
        }
        let server = ShardServer::with_batch_size(sharded, 4, 128);
        let service = KvService::with_batch_size(unsharded, 128);
        let (_, served) = server.run_collect(&requests);
        let (_, reference) = service.run_collect(&requests);
        assert_eq!(served, reference);
    }

    #[test]
    fn mixed_ops_and_stats_round_trip() {
        let index = loaded_sharded(4, 500);
        let server = ShardServer::with_batch_size(index, 2, 64);
        let (stats, responses) = server.run_collect(&[
            WireRequest::Get {
                key: b"key-00000007".to_vec(),
            },
            WireRequest::Range {
                start: b"key-00000490".to_vec(),
                count: 5,
            },
            WireRequest::Scan {
                start: b"key-00000490".to_vec(),
                limit: 4,
            },
            WireRequest::Stats,
        ]);
        assert_eq!(stats.operations, 4);
        assert_eq!(responses[0], WireResponse::Value(7));
        match &responses[1] {
            WireResponse::Range(items) => assert_eq!(items.len(), 5),
            other => panic!("expected Range, got {other:?}"),
        }
        match &responses[2] {
            WireResponse::ScanPage { items, resume } => {
                assert_eq!(items.len(), 4);
                assert!(resume.is_some(), "more keys remain");
            }
            other => panic!("expected ScanPage, got {other:?}"),
        }
        match &responses[3] {
            WireResponse::Stats(text) => {
                assert!(text.contains("netsim_requests_total"));
                assert!(text.contains("netsim_server_dispatch_route_ns"));
                assert!(text.contains("shard_shard0_ops_total"));
            }
            other => panic!("expected Stats, got {other:?}"),
        }
        server.registry().lint().expect("well-formed metric names");
    }

    #[test]
    fn scan_all_drains_the_whole_keyspace_in_order() {
        let index = loaded_sharded(4, 1000);
        let server = ShardServer::with_batch_size(Arc::clone(&index), 4, 32);
        let streamed = server.scan_all(b"", 37);
        assert_eq!(streamed.len(), 1000);
        assert!(streamed.windows(2).all(|w| w[0].0 < w[1].0));
        let direct = index.range_from(b"", usize::MAX);
        assert_eq!(streamed, direct);
    }

    #[test]
    fn serving_survives_migration_churn() {
        // A boundary migration storms along while the serving layer
        // answers lookups: every response must stay correct, and the
        // dispatcher's epoch-flush accounting must be consistent with the
        // churn (it can only flush if an epoch change raced a pipeline).
        let index = loaded_sharded(4, 4000);
        let server = ShardServer::with_batch_size(Arc::clone(&index), 4, 64);
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let churn = {
            let index = Arc::clone(&index);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let low = format!("key-{:08}", 900).into_bytes();
                let high = format!("key-{:08}", 1100).into_bytes();
                let mut flip = false;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let target = if flip { &low } else { &high };
                    index.migrate_boundary(0, target).expect("valid target");
                    flip = !flip;
                }
            })
        };
        for _ in 0..10 {
            let keys: Vec<Vec<u8>> = (0..2000u64)
                .map(|i| format!("key-{:08}", i * 7 % 4000).into_bytes())
                .collect();
            let stats = server.run_lookups(&keys);
            assert_eq!(stats.operations, 2000);
            assert_eq!(stats.hits, 2000);
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        churn.join().expect("churn thread");
        index.check_invariants();
    }
}
