//! An in-process batched key-value service: client and server threads
//! exchanging encoded request/response batches over channels, mimicking
//! HERD's request loop.
//!
//! The server decodes each incoming batch in full before touching the index,
//! then executes every run of consecutive point lookups through the index's
//! [`get_batch`](index_traits::ConcurrentOrderedIndex::get_batch) so the
//! pipelined probe engine can overlap their cache misses; writes and range
//! scans are executed individually in arrival order, so the response stream
//! is byte-for-byte equivalent to serial per-request execution.

use std::sync::Arc;
use std::thread::JoinHandle;

use bytes::{Bytes, BytesMut};
use crossbeam::channel::{bounded, Receiver, Sender};
use index_traits::ConcurrentOrderedIndex;
use wh_telemetry::Registry;

use crate::telemetry::ServiceMetrics;
use crate::wire::{WireRequest, WireResponse};

/// One batch of encoded requests travelling client → server.
pub(crate) struct RequestBatch {
    pub(crate) payload: Bytes,
    /// Number of requests in the batch.
    pub(crate) count: usize,
}

/// One batch of encoded responses travelling server → client.
pub(crate) struct ResponseBatch {
    pub(crate) payload: Bytes,
}

/// Throughput accounting returned by [`KvService::run_lookups`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceStats {
    /// Requests completed.
    pub operations: usize,
    /// Wall-clock seconds spent (client-side, send to last response).
    pub seconds: f64,
    /// Total request payload bytes sent.
    pub request_bytes: usize,
    /// Total response payload bytes received.
    pub response_bytes: usize,
    /// Number of responses that carried a value (hits).
    pub hits: usize,
}

impl ServiceStats {
    /// Millions of operations per second observed by the client.
    pub fn mops(&self) -> f64 {
        self.operations as f64 / self.seconds / 1e6
    }

    /// Average request size in bytes.
    pub fn avg_request_bytes(&self) -> f64 {
        self.request_bytes as f64 / self.operations.max(1) as f64
    }

    /// Average response size in bytes.
    pub fn avg_response_bytes(&self) -> f64 {
        self.response_bytes as f64 / self.operations.max(1) as f64
    }
}

/// A batched key-value service over an index.
///
/// The server thread owns a reference to a [`ConcurrentOrderedIndex`] and
/// processes one encoded batch at a time; the client encodes requests,
/// batches them, and decodes responses — the same division of labour as the
/// HERD port used in the paper.
pub struct KvService<V: Clone + Send + Sync + 'static> {
    index: Arc<dyn ConcurrentOrderedIndex<V>>,
    batch_size: usize,
    registry: Arc<Registry>,
    metrics: ServiceMetrics,
}

impl KvService<u64> {
    /// Creates a service over the given index with the paper's batch size of
    /// 800 requests per message.
    pub fn new(index: Arc<dyn ConcurrentOrderedIndex<u64>>) -> Self {
        Self::with_batch_size(index, 800)
    }

    /// Creates a service with an explicit batch size.
    pub fn with_batch_size(index: Arc<dyn ConcurrentOrderedIndex<u64>>, batch_size: usize) -> Self {
        assert!(batch_size > 0);
        let registry = Arc::new(Registry::new());
        let metrics = ServiceMetrics::default();
        metrics.register_into(&registry, "netsim");
        Self {
            index,
            batch_size,
            registry,
            metrics,
        }
    }

    /// The metrics registry the [`WireRequest::Stats`] command renders.
    /// Register index-side metrics here before serving to make them
    /// scrapeable over the wire.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The service's own metrics cells (also registered in
    /// [`registry`](KvService::registry) under `netsim_…` names).
    pub fn metrics(&self) -> &ServiceMetrics {
        &self.metrics
    }

    /// Spawns the server loop, returning the request sender, the response
    /// receiver, and the join handle.
    fn spawn_server(
        &self,
    ) -> (
        Sender<RequestBatch>,
        Receiver<ResponseBatch>,
        JoinHandle<()>,
    ) {
        let (req_tx, req_rx) = bounded::<RequestBatch>(16);
        let (resp_tx, resp_rx) = bounded::<ResponseBatch>(16);
        let index = Arc::clone(&self.index);
        let registry = Arc::clone(&self.registry);
        let metrics = self.metrics.clone();
        let handle = std::thread::spawn(move || {
            let mut requests: Vec<WireRequest> = Vec::new();
            while let Ok(batch) = req_rx.recv() {
                // Decode the whole batch up front, then execute runs of
                // consecutive point lookups through `get_batch` so the index
                // can overlap their cache misses. Sets and ranges are executed
                // individually in place, preserving response order.
                let mut payload = batch.payload;
                requests.clear();
                requests.reserve(batch.count);
                while let Some(req) = WireRequest::decode(&mut payload) {
                    requests.push(req);
                }
                metrics.requests.add(requests.len() as u64);
                metrics.batch_requests.record(requests.len() as u64);
                let mut out = BytesMut::with_capacity(requests.len() * 16);
                let mut i = 0usize;
                while i < requests.len() {
                    match &requests[i] {
                        WireRequest::Get { .. } => {
                            let run_end = requests[i..]
                                .iter()
                                .position(|r| !matches!(r, WireRequest::Get { .. }))
                                .map_or(requests.len(), |off| i + off);
                            let keys: Vec<&[u8]> = requests[i..run_end]
                                .iter()
                                .map(|r| match r {
                                    WireRequest::Get { key } => key.as_slice(),
                                    _ => unreachable!("run contains only gets"),
                                })
                                .collect();
                            let timing = wh_telemetry::start_timing();
                            let values = index.get_batch(&keys);
                            if let Some(started) = timing {
                                // Every op in the run shares the run's
                                // service time: they were executed together.
                                metrics.get_ns.record_n(
                                    started.elapsed().as_nanos() as u64,
                                    keys.len() as u64,
                                );
                            }
                            for value in values {
                                match value {
                                    Some(v) => WireResponse::Value(v),
                                    None => WireResponse::Miss,
                                }
                                .encode(&mut out);
                            }
                            i = run_end;
                        }
                        WireRequest::Set { key, value } => {
                            let timing = wh_telemetry::start_timing();
                            let resp = match index.set(key, *value) {
                                Some(v) => WireResponse::Value(v),
                                None => WireResponse::Miss,
                            };
                            metrics.set_ns.record_elapsed(timing);
                            resp.encode(&mut out);
                            i += 1;
                        }
                        WireRequest::Range { start, count } => {
                            let timing = wh_telemetry::start_timing();
                            let resp =
                                WireResponse::Range(index.range_from(start, *count as usize));
                            metrics.range_ns.record_elapsed(timing);
                            resp.encode(&mut out);
                            i += 1;
                        }
                        WireRequest::Stats => {
                            metrics.stats_requests.inc();
                            WireResponse::Stats(registry.snapshot().render()).encode(&mut out);
                            i += 1;
                        }
                        WireRequest::Scan { start, limit } => {
                            let timing = wh_telemetry::start_timing();
                            let page = index.scan_page(start, *limit as usize);
                            metrics.scan_ns.record_elapsed(timing);
                            WireResponse::ScanPage {
                                items: page.items,
                                resume: page.resume,
                            }
                            .encode(&mut out);
                            i += 1;
                        }
                    }
                }
                if resp_tx
                    .send(ResponseBatch {
                        payload: out.freeze(),
                    })
                    .is_err()
                {
                    break;
                }
            }
        });
        (req_tx, resp_rx, handle)
    }

    /// Runs a stream of requests through the service and reports client-side
    /// statistics.
    pub fn run(&self, requests: &[WireRequest]) -> ServiceStats {
        self.run_with(requests, |_| {})
    }

    /// Like [`KvService::run`], but also returns every decoded response in
    /// request order — the hook differential tests use to compare the
    /// served stream against in-process execution.
    pub fn run_collect(&self, requests: &[WireRequest]) -> (ServiceStats, Vec<WireResponse>) {
        let mut responses = Vec::with_capacity(requests.len());
        let stats = self.run_with(requests, |resp| responses.push(resp.clone()));
        (stats, responses)
    }

    fn run_with(
        &self,
        requests: &[WireRequest],
        mut on_resp: impl FnMut(&WireResponse),
    ) -> ServiceStats {
        let (req_tx, resp_rx, handle) = self.spawn_server();
        let start = std::time::Instant::now();
        let mut stats = ServiceStats {
            operations: 0,
            seconds: 0.0,
            request_bytes: 0,
            response_bytes: 0,
            hits: 0,
        };
        // Send times of in-flight batches, FIFO: the single server thread
        // answers batches in arrival order, so the front entry is always
        // the one the next response completes. Each response batch records
        // its full round trip (encode, queue, execute, decode) into
        // `client_rtt_ns`, once per request it carried — the
        // client-observed latency distribution.
        let mut in_flight: std::collections::VecDeque<Option<std::time::Instant>> =
            std::collections::VecDeque::new();
        let metrics = &self.metrics;
        let mut drain = |stats: &mut ServiceStats,
                         in_flight: &mut std::collections::VecDeque<Option<std::time::Instant>>,
                         resp_rx: &Receiver<ResponseBatch>| {
            let batch = resp_rx.recv().expect("server alive");
            stats.response_bytes += batch.payload.len();
            let mut payload = batch.payload;
            let mut count = 0u64;
            while let Some(resp) = WireResponse::decode(&mut payload) {
                if !matches!(resp, WireResponse::Miss) {
                    stats.hits += 1;
                }
                stats.operations += 1;
                count += 1;
                on_resp(&resp);
            }
            let sent = in_flight.pop_front().expect("a response implies a send");
            if let Some(sent) = sent {
                metrics
                    .client_rtt_ns
                    .record_n(sent.elapsed().as_nanos() as u64, count);
            }
        };
        for chunk in requests.chunks(self.batch_size) {
            let mut buf = BytesMut::with_capacity(chunk.len() * 32);
            for req in chunk {
                req.encode(&mut buf);
            }
            stats.request_bytes += buf.len();
            in_flight.push_back(wh_telemetry::start_timing());
            req_tx
                .send(RequestBatch {
                    payload: buf.freeze(),
                    count: chunk.len(),
                })
                .expect("server alive");
            // Keep a small pipeline of outstanding batches, as HERD does.
            if in_flight.len() >= 8 {
                drain(&mut stats, &mut in_flight, &resp_rx);
            }
        }
        while !in_flight.is_empty() {
            drain(&mut stats, &mut in_flight, &resp_rx);
        }
        stats.seconds = start.elapsed().as_secs_f64().max(1e-9);
        drop(req_tx);
        handle.join().expect("server thread");
        stats
    }

    /// Scrapes the server over the wire: sends one [`WireRequest::Stats`]
    /// and returns the decoded text exposition.
    pub fn fetch_stats(&self) -> String {
        let (req_tx, resp_rx, handle) = self.spawn_server();
        let mut buf = BytesMut::new();
        WireRequest::Stats.encode(&mut buf);
        req_tx
            .send(RequestBatch {
                payload: buf.freeze(),
                count: 1,
            })
            .expect("server alive");
        let batch = resp_rx.recv().expect("server alive");
        let mut payload = batch.payload;
        let text = match WireResponse::decode(&mut payload) {
            Some(WireResponse::Stats(text)) => text,
            other => panic!("expected a Stats response, got {other:?}"),
        };
        drop(req_tx);
        handle.join().expect("server thread");
        text
    }

    /// Convenience wrapper: runs point lookups for the given keys.
    pub fn run_lookups(&self, keys: &[Vec<u8>]) -> ServiceStats {
        let requests: Vec<WireRequest> = keys
            .iter()
            .map(|k| WireRequest::Get { key: k.clone() })
            .collect();
        self.run(&requests)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wormhole::Wormhole;

    fn loaded_index(n: usize) -> Arc<Wormhole<u64>> {
        let wh = Wormhole::new();
        for i in 0..n as u64 {
            wh.set(format!("key-{i:08}").as_bytes(), i);
        }
        Arc::new(wh)
    }

    #[test]
    fn lookups_round_trip_through_the_service() {
        let index = loaded_index(5000);
        let service = KvService::with_batch_size(index, 100);
        let keys: Vec<Vec<u8>> = (0..2000u64)
            .map(|i| format!("key-{:08}", i * 3 % 5000).into_bytes())
            .collect();
        let stats = service.run_lookups(&keys);
        assert_eq!(stats.operations, 2000);
        assert_eq!(stats.hits, 2000);
        assert!(stats.seconds > 0.0);
        assert!(stats.avg_request_bytes() > 12.0);
        assert!(stats.mops() > 0.0);
    }

    #[test]
    fn misses_and_writes_are_reported() {
        let index = loaded_index(100);
        let service = KvService::with_batch_size(index.clone(), 32);
        let requests = vec![
            WireRequest::Get {
                key: b"key-00000001".to_vec(),
            },
            WireRequest::Get {
                key: b"absent".to_vec(),
            },
            WireRequest::Set {
                key: b"fresh".to_vec(),
                value: 9,
            },
            WireRequest::Get {
                key: b"fresh".to_vec(),
            },
            WireRequest::Range {
                start: b"key-00000090".to_vec(),
                count: 5,
            },
        ];
        let stats = service.run(&requests);
        assert_eq!(stats.operations, 5);
        // Hits: the first get, the get of "fresh", and the range response.
        assert_eq!(stats.hits, 3);
        // The write really landed in the index.
        use index_traits::ConcurrentOrderedIndex;
        assert_eq!(index.get(b"fresh"), Some(9));
    }

    #[test]
    fn get_runs_split_around_writes_and_observe_them_in_order() {
        // Gets after a Set in the same batch must see its effect: if the
        // server hoisted all lookups into one batched run it would answer
        // the later gets from the pre-write state and the hit count drops.
        let index = loaded_index(10);
        let service = KvService::with_batch_size(index, 800);
        let requests = vec![
            WireRequest::Get {
                key: b"fresh".to_vec(),
            },
            WireRequest::Set {
                key: b"fresh".to_vec(),
                value: 1,
            },
            WireRequest::Get {
                key: b"fresh".to_vec(),
            },
            WireRequest::Get {
                key: b"absent".to_vec(),
            },
            WireRequest::Set {
                key: b"fresh".to_vec(),
                value: 2,
            },
            WireRequest::Get {
                key: b"fresh".to_vec(),
            },
        ];
        let stats = service.run(&requests);
        assert_eq!(stats.operations, 6);
        // Hits: the get after the first set, the second set's old value, and
        // the final get. The leading get and the "absent" probe miss.
        assert_eq!(stats.hits, 3);
    }

    #[test]
    fn stats_round_trips_and_reports_service_metrics() {
        let index = loaded_index(500);
        let service = KvService::with_batch_size(index, 64);
        let keys: Vec<Vec<u8>> = (0..300u64)
            .map(|i| format!("key-{i:08}").into_bytes())
            .collect();
        service.run_lookups(&keys);
        service.run(&[
            WireRequest::Set {
                key: b"fresh".to_vec(),
                value: 1,
            },
            WireRequest::Range {
                start: b"key".to_vec(),
                count: 4,
            },
        ]);
        // A Stats request mixed into an ordinary batch round-trips and
        // counts as one operation (a hit: the response carries data).
        let stats = service.run(&[
            WireRequest::Get {
                key: b"key-00000001".to_vec(),
            },
            WireRequest::Stats,
        ]);
        assert_eq!(stats.operations, 2);
        assert_eq!(stats.hits, 2);
        let text = service.fetch_stats();
        assert!(text.contains("netsim_requests_total"));
        assert!(text.contains("netsim_batch_requests"));
        let m = service.metrics();
        // 300 lookups + set + range + get + stats, plus the fetch above.
        assert_eq!(m.requests.get(), 305);
        assert_eq!(m.stats_requests.get(), 2);
        // Histograms vanish under `telemetry-off`; the counters above stay.
        if wh_telemetry::enabled() {
            assert_eq!(m.get_ns.snapshot().count(), 301);
            assert_eq!(m.set_ns.snapshot().count(), 1);
            assert_eq!(m.range_ns.snapshot().count(), 1);
            // Batches: ceil(300/64)=5 lookup batches + 1 + 1 + 1 scrape.
            assert_eq!(m.batch_requests.snapshot().count(), 8);
        }
        service.registry().lint().expect("well-formed metric names");
    }

    #[test]
    fn batching_splits_large_request_streams() {
        let index = loaded_index(1000);
        let service = KvService::with_batch_size(index, 800);
        let keys: Vec<Vec<u8>> = (0..3000u64)
            .map(|i| format!("key-{:08}", i % 1000).into_bytes())
            .collect();
        let stats = service.run_lookups(&keys);
        assert_eq!(stats.operations, 3000);
        assert_eq!(stats.hits, 3000);
    }
}
