//! Telemetry for the simulated service: per-op-type service latency (how
//! long the server thread spent executing each decoded operation, with
//! batched lookup runs attributing the run's duration to every op in it),
//! the distribution of decoded batch sizes, and request counters.
//!
//! The service owns a [`Registry`] these register into; callers can add
//! their index's metrics to the same registry before serving, and the
//! [`WireRequest::Stats`](crate::WireRequest::Stats) command renders the
//! whole thing over the wire.

use wh_telemetry::{Counter, Histogram, Registry};

/// Server-side metrics for one [`KvService`](crate::KvService).
#[derive(Clone, Debug, Default)]
pub struct ServiceMetrics {
    /// Requests decoded and executed (all op types).
    pub requests: Counter,
    /// `Stats` probes answered.
    pub stats_requests: Counter,
    /// Service time per point lookup; a run of consecutive Gets executed
    /// through `get_batch` records the run's duration once per op.
    pub get_ns: Histogram,
    /// Service time per write.
    pub set_ns: Histogram,
    /// Service time per range scan.
    pub range_ns: Histogram,
    /// Service time per streaming-scan page
    /// ([`WireRequest::Scan`](crate::WireRequest::Scan)).
    pub scan_ns: Histogram,
    /// Requests per decoded message (the wire batch-size distribution).
    pub batch_requests: Histogram,
    /// Client-observed latency per request: each request/response batch's
    /// full round trip (encode, queue, server execution, decode) recorded
    /// once per request it carried. The tail of this distribution — not
    /// the server-side service time — is what a real client experiences,
    /// and what `BENCH_service.json` reports as p50/p99/p999.
    pub client_rtt_ns: Histogram,
}

impl ServiceMetrics {
    /// Registers every metric under `<prefix>_…` names (prefix must match
    /// `[a-z0-9_]+`, e.g. `netsim`).
    pub fn register_into(&self, registry: &Registry, prefix: &str) {
        registry.register_counter(&format!("{prefix}_requests_total"), &self.requests);
        registry.register_counter(
            &format!("{prefix}_stats_requests_total"),
            &self.stats_requests,
        );
        registry.register_histogram(&format!("{prefix}_get_ns"), &self.get_ns);
        registry.register_histogram(&format!("{prefix}_set_ns"), &self.set_ns);
        registry.register_histogram(&format!("{prefix}_range_ns"), &self.range_ns);
        registry.register_histogram(&format!("{prefix}_scan_ns"), &self.scan_ns);
        registry.register_histogram(&format!("{prefix}_batch_requests"), &self.batch_requests);
        registry.register_histogram(&format!("{prefix}_client_rtt_ns"), &self.client_rtt_ns);
    }
}
