//! Wire format and link model.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// A single request on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireRequest {
    /// Point lookup.
    Get { key: Vec<u8> },
    /// Insert or overwrite.
    Set { key: Vec<u8>, value: u64 },
    /// Range scan: up to `count` keys at or after `start`.
    Range { start: Vec<u8>, count: u32 },
    /// Telemetry probe: the server answers with its metrics registry's
    /// text exposition ([`WireResponse::Stats`]).
    Stats,
    /// One page of a streaming scan: up to `limit` pairs at or after
    /// `start`. Unlike [`WireRequest::Range`] — one shot, one response —
    /// a scan is continued by re-issuing the request at the `resume` key
    /// the server returns in [`WireResponse::ScanPage`]; the continuation
    /// is stateless on the server (no cursor is held between pages).
    Scan { start: Vec<u8>, limit: u32 },
}

/// A single response on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireResponse {
    /// Value found (or previous value for a Set).
    Value(u64),
    /// Key absent.
    Miss,
    /// Range scan results: key/value pairs.
    Range(Vec<(Vec<u8>, u64)>),
    /// Metrics text exposition (the answer to [`WireRequest::Stats`]).
    Stats(String),
    /// One page of a streaming scan (the answer to [`WireRequest::Scan`]):
    /// the pairs plus the resume key continuing the scan, `None` once the
    /// scan is known exhausted. Mirrors `index_traits::ScanPage<u64>`.
    ScanPage {
        items: Vec<(Vec<u8>, u64)>,
        resume: Option<Vec<u8>>,
    },
}

const TAG_GET: u8 = 1;
const TAG_SET: u8 = 2;
const TAG_RANGE: u8 = 3;
const TAG_STATS: u8 = 4;
const TAG_SCAN: u8 = 5;
const TAG_VALUE: u8 = 1;
const TAG_MISS: u8 = 2;
const TAG_RANGE_RESP: u8 = 3;
const TAG_STATS_RESP: u8 = 4;
const TAG_SCAN_PAGE: u8 = 5;

impl WireRequest {
    /// Appends the encoded request to `buf`.
    pub fn encode(&self, buf: &mut BytesMut) {
        match self {
            WireRequest::Get { key } => {
                buf.put_u8(TAG_GET);
                buf.put_u32(key.len() as u32);
                buf.put_slice(key);
            }
            WireRequest::Set { key, value } => {
                buf.put_u8(TAG_SET);
                buf.put_u32(key.len() as u32);
                buf.put_slice(key);
                buf.put_u64(*value);
            }
            WireRequest::Range { start, count } => {
                buf.put_u8(TAG_RANGE);
                buf.put_u32(start.len() as u32);
                buf.put_slice(start);
                buf.put_u32(*count);
            }
            WireRequest::Stats => {
                // Stats carries an empty key so the generic tag + key-length
                // prefix shared by every request still parses.
                buf.put_u8(TAG_STATS);
                buf.put_u32(0);
            }
            WireRequest::Scan { start, limit } => {
                buf.put_u8(TAG_SCAN);
                buf.put_u32(start.len() as u32);
                buf.put_slice(start);
                buf.put_u32(*limit);
            }
        }
    }

    /// Decodes one request from the front of `buf`.
    pub fn decode(buf: &mut Bytes) -> Option<WireRequest> {
        if buf.is_empty() {
            return None;
        }
        let tag = buf.get_u8();
        let klen = buf.get_u32() as usize;
        let key = buf.split_to(klen).to_vec();
        Some(match tag {
            TAG_GET => WireRequest::Get { key },
            TAG_SET => WireRequest::Set {
                key,
                value: buf.get_u64(),
            },
            TAG_RANGE => WireRequest::Range {
                start: key,
                count: buf.get_u32(),
            },
            TAG_STATS => WireRequest::Stats,
            TAG_SCAN => WireRequest::Scan {
                start: key,
                limit: buf.get_u32(),
            },
            _ => return None,
        })
    }

    /// Encoded size in bytes (excluding per-message overhead).
    pub fn wire_size(&self) -> usize {
        match self {
            WireRequest::Get { key } => 5 + key.len(),
            WireRequest::Set { key, .. } => 13 + key.len(),
            WireRequest::Range { start, .. } => 9 + start.len(),
            WireRequest::Stats => 5,
            WireRequest::Scan { start, .. } => 9 + start.len(),
        }
    }
}

impl WireResponse {
    /// Appends the encoded response to `buf`.
    pub fn encode(&self, buf: &mut BytesMut) {
        match self {
            WireResponse::Value(v) => {
                buf.put_u8(TAG_VALUE);
                buf.put_u64(*v);
            }
            WireResponse::Miss => buf.put_u8(TAG_MISS),
            WireResponse::Range(items) => {
                buf.put_u8(TAG_RANGE_RESP);
                buf.put_u32(items.len() as u32);
                for (k, v) in items {
                    buf.put_u32(k.len() as u32);
                    buf.put_slice(k);
                    buf.put_u64(*v);
                }
            }
            WireResponse::Stats(text) => {
                buf.put_u8(TAG_STATS_RESP);
                buf.put_u32(text.len() as u32);
                buf.put_slice(text.as_bytes());
            }
            WireResponse::ScanPage { items, resume } => {
                buf.put_u8(TAG_SCAN_PAGE);
                buf.put_u32(items.len() as u32);
                for (k, v) in items {
                    buf.put_u32(k.len() as u32);
                    buf.put_slice(k);
                    buf.put_u64(*v);
                }
                match resume {
                    Some(key) => {
                        buf.put_u8(1);
                        buf.put_u32(key.len() as u32);
                        buf.put_slice(key);
                    }
                    None => buf.put_u8(0),
                }
            }
        }
    }

    /// Decodes one response from the front of `buf`.
    pub fn decode(buf: &mut Bytes) -> Option<WireResponse> {
        if buf.is_empty() {
            return None;
        }
        Some(match buf.get_u8() {
            TAG_VALUE => WireResponse::Value(buf.get_u64()),
            TAG_MISS => WireResponse::Miss,
            TAG_RANGE_RESP => {
                let n = buf.get_u32() as usize;
                let mut items = Vec::with_capacity(n);
                for _ in 0..n {
                    let klen = buf.get_u32() as usize;
                    let key = buf.split_to(klen).to_vec();
                    items.push((key, buf.get_u64()));
                }
                WireResponse::Range(items)
            }
            TAG_STATS_RESP => {
                let len = buf.get_u32() as usize;
                let text = String::from_utf8(buf.split_to(len).to_vec()).ok()?;
                WireResponse::Stats(text)
            }
            TAG_SCAN_PAGE => {
                let n = buf.get_u32() as usize;
                let mut items = Vec::with_capacity(n);
                for _ in 0..n {
                    let klen = buf.get_u32() as usize;
                    let key = buf.split_to(klen).to_vec();
                    items.push((key, buf.get_u64()));
                }
                let resume = match buf.get_u8() {
                    0 => None,
                    _ => {
                        let rlen = buf.get_u32() as usize;
                        Some(buf.split_to(rlen).to_vec())
                    }
                };
                WireResponse::ScanPage { items, resume }
            }
            _ => return None,
        })
    }

    /// Encoded size in bytes.
    pub fn wire_size(&self) -> usize {
        match self {
            WireResponse::Value(_) => 9,
            WireResponse::Miss => 1,
            WireResponse::Range(items) => {
                5 + items.iter().map(|(k, _)| 12 + k.len()).sum::<usize>()
            }
            WireResponse::Stats(text) => 5 + text.len(),
            WireResponse::ScanPage { items, resume } => {
                let items_bytes = items.iter().map(|(k, _)| 12 + k.len()).sum::<usize>();
                let resume_bytes = resume.as_ref().map_or(0, |k| 4 + k.len());
                6 + items_bytes + resume_bytes
            }
        }
    }
}

/// An analytic model of the client/server link.
///
/// Defaults match the paper's testbed: one 100 Gb/s InfiniBand link
/// (Mellanox ConnectX-4), ~2 µs one-way latency, and batches of 800
/// requests per RDMA send.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkModel {
    /// Link bandwidth in gigabits per second.
    pub bandwidth_gbps: f64,
    /// One-way latency in microseconds.
    pub one_way_latency_us: f64,
    /// Fixed overhead per message (headers, RDMA verbs), in bytes.
    pub per_message_overhead_bytes: usize,
    /// Requests batched into one message.
    pub batch_size: usize,
    /// Host CPU time consumed by the networking stack per request, in
    /// nanoseconds (HERD's request dispatch cost).
    pub per_request_cpu_ns: f64,
}

impl Default for LinkModel {
    fn default() -> Self {
        Self::infiniband_100g()
    }
}

impl LinkModel {
    /// The paper's 100 Gb/s InfiniBand configuration with batch size 800.
    pub fn infiniband_100g() -> Self {
        Self {
            bandwidth_gbps: 100.0,
            one_way_latency_us: 2.0,
            per_message_overhead_bytes: 64,
            batch_size: 800,
            per_request_cpu_ns: 10.0,
        }
    }

    /// Bytes per second of usable bandwidth.
    pub fn bytes_per_second(&self) -> f64 {
        self.bandwidth_gbps * 1e9 / 8.0
    }

    /// Wire time for one request/response pair of the given sizes, averaged
    /// over a full batch (latency and per-message overhead are amortised).
    pub fn wire_seconds_per_op(&self, request_bytes: usize, response_bytes: usize) -> f64 {
        let payload = (request_bytes + response_bytes) as f64
            + 2.0 * self.per_message_overhead_bytes as f64 / self.batch_size as f64;
        let transfer = payload / self.bytes_per_second();
        let latency = 2.0 * self.one_way_latency_us * 1e-6 / self.batch_size as f64;
        transfer + latency
    }

    /// Converts a measured server-side index throughput (operations per
    /// second) into the throughput observed through the link, for operations
    /// with the given average wire sizes.
    ///
    /// The pipeline is limited by the slower of the host (index time plus
    /// per-request networking CPU) and the wire.
    pub fn delivered_ops_per_second(
        &self,
        server_ops_per_second: f64,
        request_bytes: usize,
        response_bytes: usize,
    ) -> f64 {
        assert!(server_ops_per_second > 0.0);
        let host_seconds = 1.0 / server_ops_per_second + self.per_request_cpu_ns * 1e-9;
        let wire_seconds = self.wire_seconds_per_op(request_bytes, response_bytes);
        1.0 / host_seconds.max(wire_seconds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let reqs = vec![
            WireRequest::Get {
                key: b"James".to_vec(),
            },
            WireRequest::Set {
                key: b"Jason".to_vec(),
                value: 42,
            },
            WireRequest::Range {
                start: b"J".to_vec(),
                count: 100,
            },
            WireRequest::Stats,
            WireRequest::Scan {
                start: b"Jam".to_vec(),
                limit: 64,
            },
        ];
        let mut buf = BytesMut::new();
        for r in &reqs {
            r.encode(&mut buf);
        }
        let mut bytes = buf.freeze();
        let mut decoded = Vec::new();
        while let Some(r) = WireRequest::decode(&mut bytes) {
            decoded.push(r);
        }
        assert_eq!(decoded, reqs);
    }

    #[test]
    fn response_roundtrip() {
        let resps = vec![
            WireResponse::Value(7),
            WireResponse::Miss,
            WireResponse::Range(vec![(b"a".to_vec(), 1), (b"bb".to_vec(), 2)]),
            WireResponse::Stats("netsim_requests_total 3\n".to_string()),
            WireResponse::ScanPage {
                items: vec![(b"k1".to_vec(), 7), (b"k2".to_vec(), 8)],
                resume: Some(b"k2\x00".to_vec()),
            },
            WireResponse::ScanPage {
                items: Vec::new(),
                resume: None,
            },
        ];
        let mut buf = BytesMut::new();
        for r in &resps {
            r.encode(&mut buf);
        }
        let mut bytes = buf.freeze();
        let mut decoded = Vec::new();
        while let Some(r) = WireResponse::decode(&mut bytes) {
            decoded.push(r);
        }
        assert_eq!(decoded, resps);
    }

    #[test]
    fn wire_sizes_match_encoding() {
        let req = WireRequest::Set {
            key: vec![1; 30],
            value: 9,
        };
        let mut buf = BytesMut::new();
        req.encode(&mut buf);
        assert_eq!(buf.len(), req.wire_size());
        let resp = WireResponse::Range(vec![(vec![2; 10], 1), (vec![3; 20], 2)]);
        let mut buf = BytesMut::new();
        resp.encode(&mut buf);
        assert_eq!(buf.len(), resp.wire_size());
        let req = WireRequest::Stats;
        let mut buf = BytesMut::new();
        req.encode(&mut buf);
        assert_eq!(buf.len(), req.wire_size());
        let resp = WireResponse::Stats("a 1\nb 2\n".to_string());
        let mut buf = BytesMut::new();
        resp.encode(&mut buf);
        assert_eq!(buf.len(), resp.wire_size());
        let req = WireRequest::Scan {
            start: vec![4; 12],
            limit: 500,
        };
        let mut buf = BytesMut::new();
        req.encode(&mut buf);
        assert_eq!(buf.len(), req.wire_size());
        for resume in [Some(vec![5; 7]), None] {
            let resp = WireResponse::ScanPage {
                items: vec![(vec![2; 10], 1), (vec![3; 20], 2)],
                resume,
            };
            let mut buf = BytesMut::new();
            resp.encode(&mut buf);
            assert_eq!(buf.len(), resp.wire_size());
        }
    }

    /// Encodes one frame and renders it as uppercase spaced hex — the
    /// format `docs/src/wire-protocol.md` uses for its byte-layout
    /// examples.
    pub(crate) fn encode_hex(encode: impl FnOnce(&mut BytesMut)) -> String {
        let mut buf = BytesMut::new();
        encode(&mut buf);
        buf.as_ref()
            .iter()
            .map(|b| format!("{b:02X}"))
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// Known-answer tests: the exact bytes of one example frame per tag.
    /// These vectors are the normative examples of
    /// `docs/src/wire-protocol.md`; `docs_examples::wire_protocol_doc…`
    /// asserts the doc quotes them verbatim. Integers are big-endian
    /// (network byte order).
    #[test]
    fn known_answer_frames() {
        let cases: Vec<(WireRequest, &str)> = vec![
            (
                WireRequest::Get {
                    key: b"Jam".to_vec(),
                },
                "01 00 00 00 03 4A 61 6D",
            ),
            (
                WireRequest::Set {
                    key: b"k1".to_vec(),
                    value: 7,
                },
                "02 00 00 00 02 6B 31 00 00 00 00 00 00 00 07",
            ),
            (
                WireRequest::Range {
                    start: b"J".to_vec(),
                    count: 2,
                },
                "03 00 00 00 01 4A 00 00 00 02",
            ),
            (WireRequest::Stats, "04 00 00 00 00"),
            (
                WireRequest::Scan {
                    start: b"k1".to_vec(),
                    limit: 2,
                },
                "05 00 00 00 02 6B 31 00 00 00 02",
            ),
        ];
        for (req, hex) in cases {
            assert_eq!(encode_hex(|buf| req.encode(buf)), hex, "{req:?}");
        }
        let cases: Vec<(WireResponse, &str)> = vec![
            (WireResponse::Value(7), "01 00 00 00 00 00 00 00 07"),
            (WireResponse::Miss, "02"),
            (
                WireResponse::Range(vec![(b"a".to_vec(), 1)]),
                "03 00 00 00 01 00 00 00 01 61 00 00 00 00 00 00 00 01",
            ),
            (
                WireResponse::Stats("a 1\n".to_string()),
                "04 00 00 00 04 61 20 31 0A",
            ),
            (
                WireResponse::ScanPage {
                    items: vec![(b"k1".to_vec(), 7), (b"k2".to_vec(), 8)],
                    resume: Some(b"k2\x00".to_vec()),
                },
                "05 00 00 00 02 \
                 00 00 00 02 6B 31 00 00 00 00 00 00 00 07 \
                 00 00 00 02 6B 32 00 00 00 00 00 00 00 08 \
                 01 00 00 00 03 6B 32 00",
            ),
            (
                WireResponse::ScanPage {
                    items: Vec::new(),
                    resume: None,
                },
                "05 00 00 00 00 00",
            ),
        ];
        for (resp, hex) in cases {
            let hex: String = hex.split_whitespace().collect::<Vec<_>>().join(" ");
            assert_eq!(encode_hex(|buf| resp.encode(buf)), hex, "{resp:?}");
        }
    }

    /// The forward-compatibility rule the protocol documents: a decoder
    /// that meets an unknown tag returns `None` and stops consuming the
    /// batch, rather than guessing at the frame's extent.
    #[test]
    fn unknown_tag_stops_decoding() {
        let mut buf = BytesMut::new();
        WireRequest::Get {
            key: b"ok".to_vec(),
        }
        .encode(&mut buf);
        buf.put_u8(0x7F); // unknown tag
        buf.put_u32(0); // generic empty-key prefix
        let mut bytes = buf.freeze();
        assert!(WireRequest::decode(&mut bytes).is_some());
        assert_eq!(WireRequest::decode(&mut bytes), None);
        let mut resp = BytesMut::new();
        resp.put_u8(0x7F);
        let mut bytes = resp.freeze();
        assert_eq!(WireResponse::decode(&mut bytes), None);
    }

    #[test]
    fn fast_host_is_wire_limited_only_for_large_keys() {
        let link = LinkModel::infiniband_100g();
        // A server that can do 20 Mops locally (the paper's Wormhole).
        let server = 20e6;
        // 40-byte keys: the host remains the bottleneck, so the delivered
        // throughput is within ~20% of the local number.
        let small = link.delivered_ops_per_second(server, 45, 9);
        assert!(small > 0.8 * server, "small keys should stay host-limited");
        // 1 KB keys (K10): the wire becomes the bottleneck and throughput
        // drops well below the local number, as in Figure 12.
        let large = link.delivered_ops_per_second(server, 1029, 9);
        assert!(large < 0.75 * server, "1KB keys should be wire-limited");
        assert!(large > 1e6, "the 100Gb/s link still delivers > 1 Mops");
    }

    #[test]
    fn slower_link_reduces_throughput() {
        let fast = LinkModel::infiniband_100g();
        let slow = LinkModel {
            bandwidth_gbps: 1.0,
            ..LinkModel::infiniband_100g()
        };
        let t_fast = fast.delivered_ops_per_second(10e6, 100, 9);
        let t_slow = slow.delivered_ops_per_second(10e6, 100, 9);
        assert!(t_slow < t_fast);
    }
}
