//! A simulated RDMA-style networked key-value service, standing in for the
//! HERD testbed the paper uses for Figure 12.
//!
//! The paper ports every index into HERD, a key-value store that ships
//! batches of requests over a 100 Gb/s InfiniBand link (batch size 800) and
//! serves them on the host CPU. The experiment's point is that with such a
//! fast link the *host-side index cost* still dominates — except when keys
//! are so large (the 1 KB `K10` set) that the wire becomes the bottleneck.
//!
//! This crate reproduces that setup without RDMA hardware:
//!
//! * [`wire`] — a request/response wire format and a [`wire::LinkModel`]
//!   describing bandwidth, latency, and per-message overhead of the link;
//!   the model converts a measured server-side processing rate into the
//!   throughput the client would observe through the link.
//! * [`service`] — an in-process client/server pair connected by channels
//!   that actually encodes requests into buffers, batches them (800 per
//!   message, like the paper), decodes them on the server thread, executes
//!   them against any index, and ships encoded responses back. The server
//!   decodes a whole message before executing it and feeds runs of
//!   consecutive point lookups through the index's `get_batch`, so an
//!   800-request lookup batch becomes pipelined probes with overlapped
//!   cache misses rather than 800 serial descents.
//! * [`server`] — the multi-worker serving layer over the sharded front:
//!   a [`server::ShardServer`] dispatches each decoded message across N
//!   shard-affine worker threads (routing the whole message against one
//!   router-table snapshot via `ShardedWormhole::route_batch`), overlaps
//!   the decode/execute/encode stages of successive messages, serves
//!   streaming scans as stateless [`wire::WireRequest::Scan`] pages, and
//!   reassembles responses in request order. See
//!   `docs/src/adr-003-serving-threading.md` for the threading model and
//!   `docs/src/wire-protocol.md` for the normative framing spec.
//!
//! The `figures` harness combines both: it measures real batched-service
//! throughput and applies the link model, so the reported series keeps the
//! paper's shape (small drop for most keysets, wire-limited for `K10`).

//! # Observability
//!
//! The server thread records per-op-type service latency histograms and
//! the decoded batch-size distribution into a [`wh_telemetry::Registry`]
//! the service owns ([`KvService::registry`]); index metrics can be
//! registered into the same registry before serving. The wire protocol
//! carries a [`wire::WireRequest::Stats`] command whose response is the
//! registry's full text exposition — a client can scrape the server
//! in-band, through the same batched request stream as its data traffic.

pub mod server;
pub mod service;
pub mod telemetry;
pub mod wire;

pub use server::{ShardServer, ShardServerMetrics};
pub use service::{KvService, ServiceStats};
pub use telemetry::ServiceMetrics;
pub use wire::{LinkModel, WireRequest, WireResponse};
