//! Differential check of the lock-free histogram against a locked
//! reference: concurrent recorders hammer one shared [`Histogram`] while
//! a `Mutex<Vec<u64>>` reference records the same values; after the
//! recorders quiesce, bucket counts must match *exactly*, the sum must
//! match, quantiles must be monotone in `q`, and every value at or above
//! `2^63` must have saturated into the overflow bucket.
//!
//! Runs in its own test binary so nothing here races the runtime enable
//! switch exercised by `runtime_switch.rs` (separate process).

#![cfg(not(feature = "telemetry-off"))]

use std::sync::Mutex;

use proptest::prelude::*;
use wh_telemetry::{Histogram, HistogramSnapshot, BUCKETS};

/// The reference: same bucketing rule, computed serially from a locked
/// log of every recorded value.
fn reference_snapshot(values: &[u64]) -> HistogramSnapshot {
    let mut buckets = [0u64; BUCKETS];
    let mut sum = 0u64;
    for &v in values {
        buckets[63 - (v | 1).leading_zeros() as usize] += 1;
        sum = sum.wrapping_add(v);
    }
    HistogramSnapshot { buckets, sum }
}

/// Value generator biased toward bucket edges: powers of two, their
/// neighbours, zero, and the saturating range.
fn edge_biased_value() -> impl Strategy<Value = u64> {
    prop_oneof![
        3 => any::<u64>(),
        2 => (0u32..64).prop_map(|s| 1u64 << s),
        2 => (1u32..64).prop_map(|s| (1u64 << s) - 1),
        1 => Just(0u64),
        1 => (0u64..1024).prop_map(|d| u64::MAX - d),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn concurrent_recording_matches_locked_reference(
        per_thread in proptest::collection::vec(
            proptest::collection::vec(edge_biased_value(), 1..200),
            1..4,
        )
    ) {
        let hist = Histogram::new();
        let reference = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for values in &per_thread {
                let hist = hist.clone();
                let reference = &reference;
                scope.spawn(move || {
                    for &v in values {
                        hist.record(v);
                        reference.lock().unwrap().push(v);
                    }
                });
            }
        });

        let got = hist.snapshot();
        let want = reference_snapshot(&reference.into_inner().unwrap());
        // Quiesced recorders: bucket-exact and sum-exact agreement.
        prop_assert_eq!(&got.buckets[..], &want.buckets[..]);
        prop_assert_eq!(got.sum, want.sum);
        prop_assert_eq!(got.count(), want.count());

        // Quantiles are monotone in q and bound by the extremes.
        let qs = [0.0, 0.1, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0];
        for pair in qs.windows(2) {
            prop_assert!(got.quantile(pair[0]) <= got.quantile(pair[1]));
        }

        // Saturation: every value >= 2^63 is in the overflow bucket.
        let overflow_values = per_thread
            .iter()
            .flatten()
            .filter(|&&v| v >= 1u64 << 63)
            .count() as u64;
        prop_assert!(got.buckets[BUCKETS - 1] >= overflow_values);
    }

    #[test]
    fn record_n_equals_n_records(v in edge_biased_value(), n in 0u64..500) {
        let batched = Histogram::new();
        batched.record_n(v, n);
        let looped = Histogram::new();
        for _ in 0..n {
            looped.record(v);
        }
        prop_assert_eq!(batched.snapshot().buckets, looped.snapshot().buckets);
        prop_assert_eq!(batched.snapshot().sum, looped.snapshot().sum);
    }
}
