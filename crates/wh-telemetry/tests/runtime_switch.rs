//! The runtime half of the zero-overhead contract: `set_enabled(false)`
//! must stop histogram recording and suppress clock reads, while counters
//! and gauges — load-bearing program state — keep counting. Lives in its
//! own test binary because the switch is process-global.

use wh_telemetry::{set_enabled, start_timing, Counter, Gauge, Histogram};

#[test]
fn disabling_stops_histograms_but_not_counters() {
    let c = Counter::new();
    let g = Gauge::new();
    let h = Histogram::new();

    set_enabled(false);
    assert!(
        start_timing().is_none(),
        "disabled telemetry must not read the clock"
    );
    h.record(1234);
    h.record_elapsed(start_timing());
    c.inc();
    g.add(5);
    assert_eq!(h.snapshot().count(), 0, "disabled histogram recorded");
    assert_eq!(c.get(), 1, "counters must stay live when disabled");
    assert_eq!(g.get(), 5, "gauges must stay live when disabled");

    set_enabled(true);
    h.record(1234);
    #[cfg(not(feature = "telemetry-off"))]
    {
        assert!(start_timing().is_some());
        assert_eq!(h.snapshot().count(), 1);
    }
    #[cfg(feature = "telemetry-off")]
    {
        assert!(start_timing().is_none(), "compiled-out telemetry times");
        assert_eq!(h.snapshot().count(), 0);
    }
}
