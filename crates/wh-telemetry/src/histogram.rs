//! Log₂-bucketed histograms: one fixed-size array of atomic buckets, a
//! lock-free `record`, and quantile extraction from an owned snapshot.
//!
//! Bucket `i` holds recorded values `v` with `floor(log2(max(v, 1))) == i`
//! — i.e. `v` in `[2^i, 2^(i+1))`, with `v == 0` joining bucket 0 and
//! everything at or above `2^63` saturating into the last bucket. That
//! gives ~2× worst-case quantile error over the full `u64` range with 64
//! buckets and an index computable from one `leading_zeros`, which is what
//! lets `record` stay a shift plus one relaxed `fetch_add`.
//!
//! Under the `telemetry-off` feature the bucket storage vanishes
//! (`record` compiles to nothing and the handle is a unit), so a fully
//! static build pays neither the memory nor the instruction.

use std::sync::atomic::{AtomicU64, Ordering};
#[cfg(not(feature = "telemetry-off"))]
use std::sync::Arc;
use std::time::Instant;

/// Number of buckets: one per power of two of `u64`.
pub const BUCKETS: usize = 64;

#[cfg(not(feature = "telemetry-off"))]
#[repr(align(64))]
#[derive(Debug)]
struct HistogramCell {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
}

/// A concurrent latency/size histogram. Cloning shares the cells.
///
/// `record` is wait-free: one bucket-index computation, one relaxed
/// `fetch_add` on the bucket, one on the running sum. No allocation, no
/// lock, no clock.
#[derive(Clone, Debug, Default)]
pub struct Histogram {
    #[cfg(not(feature = "telemetry-off"))]
    cell: Arc<HistogramCell>,
}

#[cfg(not(feature = "telemetry-off"))]
impl Default for HistogramCell {
    fn default() -> Self {
        Self {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            sum: AtomicU64::new(0),
        }
    }
}

/// Bucket index of a recorded value: `floor(log2(v))`, with 0 mapping to
/// bucket 0. The top bucket (index 63) doubles as the saturating overflow
/// bucket — every `v >= 2^63` lands there.
#[inline]
pub(crate) fn bucket_index(v: u64) -> usize {
    63 - (v | 1).leading_zeros() as usize
}

/// Inclusive upper bound of bucket `i` (`u64::MAX` for the top bucket).
#[inline]
pub(crate) fn bucket_upper_bound(i: usize) -> u64 {
    if i >= 63 {
        u64::MAX
    } else {
        (2u64 << i) - 1
    }
}

impl Histogram {
    /// A new, empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one value. Subject to the runtime enable switch
    /// ([`crate::set_enabled`]); compiled out entirely under
    /// `telemetry-off`.
    #[inline]
    pub fn record(&self, v: u64) {
        self.record_n(v, 1);
    }

    /// Records `n` occurrences of `v` with the same two `fetch_add`s one
    /// occurrence would cost — e.g. one service-time observation for every
    /// request in a batch that completed together.
    #[inline]
    pub fn record_n(&self, v: u64, n: u64) {
        #[cfg(not(feature = "telemetry-off"))]
        if crate::enabled() && n > 0 {
            self.cell.buckets[bucket_index(v)].fetch_add(n, Ordering::Relaxed);
            self.cell
                .sum
                .fetch_add(v.wrapping_mul(n), Ordering::Relaxed);
        }
        #[cfg(feature = "telemetry-off")]
        {
            let _ = (v, n);
        }
    }

    /// Records the elapsed nanoseconds of a timing started with
    /// [`crate::start_timing`]; a `None` start (telemetry off at start
    /// time) records nothing and reads no clock.
    #[inline]
    pub fn record_elapsed(&self, started: Option<Instant>) {
        if let Some(t) = started {
            self.record(t.elapsed().as_nanos() as u64);
        }
    }

    /// An owned, point-in-time copy of the buckets (see the crate docs
    /// for the consistency model: per-bucket atomic, not cross-bucket).
    pub fn snapshot(&self) -> HistogramSnapshot {
        #[cfg(not(feature = "telemetry-off"))]
        {
            let mut buckets = [0u64; BUCKETS];
            for (b, cell) in buckets.iter_mut().zip(&self.cell.buckets) {
                *b = cell.load(Ordering::Relaxed);
            }
            HistogramSnapshot {
                buckets,
                sum: self.cell.sum.load(Ordering::Relaxed),
            }
        }
        #[cfg(feature = "telemetry-off")]
        HistogramSnapshot {
            buckets: [0; BUCKETS],
            sum: 0,
        }
    }
}

/// An owned copy of a [`Histogram`]'s state; all derived statistics
/// (count, quantiles) are computed here, off the hot path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts; bucket `i` covers `[2^i, 2^(i+1))`.
    pub buckets: [u64; BUCKETS],
    /// Sum of all recorded values (wrapping on `u64` overflow — latency
    /// sums in nanoseconds stay far below that in practice).
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Total number of recorded values.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// The value at quantile `q` in `[0, 1]`, reported as the inclusive
    /// upper bound of the bucket containing that rank (so the estimate
    /// never understates, and is at most 2× the true value). Returns 0
    /// for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return bucket_upper_bound(i);
            }
        }
        u64::MAX
    }

    /// Median (upper-bound estimate, see [`Self::quantile`]).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum as f64 / count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_floor_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(1023), 9);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(u64::MAX), 63);
        assert_eq!(bucket_index(1 << 63), 63);
    }

    #[test]
    fn bounds_partition_the_domain() {
        assert_eq!(bucket_upper_bound(0), 1);
        assert_eq!(bucket_upper_bound(1), 3);
        assert_eq!(bucket_upper_bound(62), (2u64 << 62) - 1);
        assert_eq!(bucket_upper_bound(63), u64::MAX);
        for i in 0..63 {
            // The first value of bucket i+1 is one past bucket i's bound.
            assert_eq!(bucket_index(bucket_upper_bound(i)), i);
            assert_eq!(bucket_index(bucket_upper_bound(i) + 1), i + 1);
        }
    }

    #[cfg(not(feature = "telemetry-off"))]
    #[test]
    fn quantiles_bound_recorded_values() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), 1000);
        assert_eq!(snap.sum, 500_500);
        // Upper-bound estimates: at least the true quantile, at most 2x.
        assert!(snap.p50() >= 500 && snap.p50() <= 1023, "{}", snap.p50());
        assert!(snap.p99() >= 990 && snap.p99() <= 1023, "{}", snap.p99());
        assert!(snap.quantile(0.0) >= 1);
        // Quantiles are monotone in q.
        assert!(snap.p50() <= snap.p90());
        assert!(snap.p90() <= snap.p99());
        assert!(snap.p99() <= snap.p999());
        assert!(snap.p999() <= snap.quantile(1.0));
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let snap = Histogram::new().snapshot();
        assert_eq!(snap.count(), 0);
        assert_eq!(snap.p50(), 0);
        assert_eq!(snap.mean(), 0.0);
    }

    #[cfg(feature = "telemetry-off")]
    #[test]
    fn telemetry_off_records_nothing() {
        let h = Histogram::new();
        h.record(42);
        h.record_n(7, 100);
        assert_eq!(h.snapshot().count(), 0);
        assert_eq!(std::mem::size_of::<Histogram>(), 0);
    }
}
