//! # wh-telemetry: a zero-overhead-when-idle metrics core
//!
//! Dependency-free metrics for the Wormhole reproduction workspace:
//! cache-line-padded atomic [`Counter`]s and [`Gauge`]s, log₂-bucketed
//! latency [`Histogram`]s, and a [`Registry`] that snapshots every
//! registered metric into a [`MetricsSnapshot`] and renders a
//! Prometheus-style text exposition. Every layer of the stack —
//! `wormhole`, `wh-epoch`, `wh-shard`, `wh-durable`, `netsim` — records
//! into these primitives; the `netsim` service exposes the whole registry
//! over the wire through its `STATS` command.
//!
//! ## Recording-cost contract
//!
//! Recording is designed to be safe to leave on hot paths that are gated
//! by allocation-counting and critical-section-counting regression tests:
//!
//! * **No allocation, ever.** [`Counter::inc`], [`Gauge::set`], and
//!   [`Histogram::record`] touch only pre-allocated atomics. Allocation
//!   happens once, at metric construction.
//! * **No locks.** All recording is relaxed (or `fetch_max`) atomic RMW
//!   on `#[repr(align(64))]` cells, so two hot metrics never share a
//!   cache line and recording never contends with [`Registry::snapshot`].
//! * **No clock reads unless a histogram will consume them.** Latency
//!   measurement goes through [`start_timing`], which returns `None` —
//!   skipping the `Instant::now()` syscall/vdso call entirely — when
//!   telemetry is disabled at runtime ([`set_enabled`]) or compiled out
//!   (the `telemetry-off` feature).
//! * **Counters and gauges stay live under `telemetry-off`.** They are
//!   load-bearing program state (the shard rebalancer reads the per-shard
//!   op counters; test gates read the QSBR section-entry counter), so the
//!   feature and the runtime switch only disable the *timed* half:
//!   histogram recording and the timing helpers.
//!
//! The practical consequence: a point-read path that increments one
//! counter costs one relaxed `fetch_add` — an already-hot cache line in
//! steady state — and a disabled histogram site costs one relaxed load of
//! the global enable flag.
//!
//! ## Snapshot consistency model
//!
//! [`Registry::snapshot`] reads each metric atomically but does **not**
//! freeze the world across metrics: the snapshot is *per-metric atomic,
//! not cross-metric consistent*. Two counters bumped together on the same
//! code path may differ by in-flight increments in one snapshot. Within a
//! single histogram, the bucket array is read bucket-by-bucket, so a
//! concurrent `record` may or may not be visible — but every recorded
//! value lands in exactly one bucket, so totals never double-count, and a
//! snapshot taken after all recorders quiesce is exact.
//!
//! ## Naming
//!
//! Registered names must match the exposition grammar `[a-z0-9_]+`
//! (checked by a `debug_assert!` at registration and by
//! [`Registry::lint`], which tests run in release builds too). Suffix
//! conventions follow Prometheus: `_total` for counters, `_ns` for
//! nanosecond histograms.

mod histogram;
mod metrics;
mod registry;

pub use histogram::{Histogram, HistogramSnapshot, BUCKETS};
pub use metrics::{Counter, Gauge};
pub use registry::{Metric, MetricValue, MetricsSnapshot, Registry};

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// Runtime master switch for the *timed* half of telemetry (histograms
/// and clock reads). Counters and gauges are unaffected — see the
/// crate-level recording-cost contract.
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Enables or disables timed telemetry at runtime. Recording sites
/// observe the change on their next relaxed load; there is no
/// synchronization with in-flight recordings.
pub fn set_enabled(enabled: bool) {
    ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether timed telemetry (histograms, [`start_timing`]) is currently
/// live: compiled in *and* runtime-enabled.
#[inline]
pub fn enabled() -> bool {
    cfg!(not(feature = "telemetry-off")) && ENABLED.load(Ordering::Relaxed)
}

/// Starts a latency measurement, or returns `None` — without reading the
/// clock — when timed telemetry is off. Pair with
/// [`Histogram::record_elapsed`]:
///
/// ```
/// let hist = wh_telemetry::Histogram::new();
/// let timing = wh_telemetry::start_timing();
/// // ... the measured section ...
/// hist.record_elapsed(timing);
/// ```
#[inline]
pub fn start_timing() -> Option<Instant> {
    if enabled() {
        Some(Instant::now())
    } else {
        None
    }
}
