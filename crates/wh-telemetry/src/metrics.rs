//! Counters and gauges: cache-line-padded atomic cells behind cheaply
//! cloneable `Arc` handles, so the owning structure and the [`Registry`]
//! (and any test) can all hold the same metric.
//!
//! [`Registry`]: crate::registry::Registry

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One atomic on its own cache line: two hot metrics updated by different
/// threads never false-share, and recording never contends with the
/// neighbours a `Vec` would give it.
#[repr(align(64))]
#[derive(Debug, Default)]
struct PaddedAtomic(AtomicU64);

/// A monotonically increasing event counter.
///
/// `inc`/`add` are single relaxed `fetch_add`s — allocation-free and
/// lock-free, safe on paths gated by the workspace's counting-allocator
/// tests. Cloning shares the underlying cell.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    cell: Arc<PaddedAtomic>,
}

impl Counter {
    /// A new counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cell.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.cell.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down, with a monotonic high-water
/// mark tracked alongside (`fetch_max` on every raise).
///
/// Used for instantaneous depths — e.g. the QSBR deferred-callback queue
/// — where both the live value and the worst case seen matter.
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    value: Arc<PaddedAtomic>,
    high_water: Arc<PaddedAtomic>,
}

impl Gauge {
    /// A new gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the gauge to `v`, raising the high-water mark if needed.
    #[inline]
    pub fn set(&self, v: u64) {
        self.value.0.store(v, Ordering::Relaxed);
        self.high_water.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Adds `n`, raising the high-water mark to the new value.
    #[inline]
    pub fn add(&self, n: u64) {
        let now = self.value.0.fetch_add(n, Ordering::Relaxed) + n;
        self.high_water.0.fetch_max(now, Ordering::Relaxed);
    }

    /// Subtracts `n` (saturating at zero under racing subtractions via
    /// wrapping semantics: callers pair every `sub` with a prior `add`).
    #[inline]
    pub fn sub(&self, n: u64) {
        self.value.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.0.load(Ordering::Relaxed)
    }

    /// Highest value ever set/reached through this gauge.
    #[inline]
    pub fn high_water(&self) -> u64 {
        self.high_water.0.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts_and_shares() {
        let c = Counter::new();
        let c2 = c.clone();
        c.inc();
        c2.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c2.get(), 5);
    }

    #[test]
    fn gauge_tracks_high_water() {
        let g = Gauge::new();
        g.add(3);
        g.add(4);
        g.sub(6);
        assert_eq!(g.get(), 1);
        assert_eq!(g.high_water(), 7);
        g.set(2);
        assert_eq!(g.get(), 2);
        assert_eq!(g.high_water(), 7);
    }

    #[test]
    fn cells_are_cache_line_aligned() {
        assert_eq!(std::mem::align_of::<PaddedAtomic>(), 64);
        assert_eq!(std::mem::size_of::<PaddedAtomic>(), 64);
    }

    #[test]
    fn concurrent_counting_is_exact() {
        let c = Counter::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 40_000);
    }
}
