//! The [`Registry`]: a named collection of metric handles, snapshotted
//! into a [`MetricsSnapshot`] and rendered as a Prometheus-style text
//! exposition.
//!
//! Registration is cold-path (a `Mutex<Vec>` append); recording never
//! touches the registry — metric handles are `Arc`-shared clones, so the
//! owning structure records into the same cells the registry reads.

use std::sync::Mutex;

use crate::histogram::{bucket_upper_bound, Histogram, HistogramSnapshot};
use crate::metrics::{Counter, Gauge};

/// Any registered metric handle.
#[derive(Clone, Debug)]
pub enum Metric {
    /// Monotonic event counter.
    Counter(Counter),
    /// Up/down value with a high-water mark.
    Gauge(Gauge),
    /// Log₂-bucketed distribution.
    Histogram(Histogram),
}

/// A named collection of metrics. Cheap to lock: registration happens at
/// construction time, snapshots on demand, and recording bypasses the
/// registry entirely.
#[derive(Debug, Default)]
pub struct Registry {
    entries: Mutex<Vec<(String, Metric)>>,
}

/// `[a-z0-9_]+`, non-empty — the subset of the Prometheus grammar the
/// workspace uses (no capitals, no colons, so names compose with `_ns` /
/// `_total` suffixes and per-shard prefixes without surprises).
fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .bytes()
            .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_')
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an existing metric handle under `name`.
    ///
    /// Name validity and uniqueness are `debug_assert`ed here (cheap,
    /// cold path) and re-checkable in release builds via [`Self::lint`].
    pub fn register(&self, name: &str, metric: Metric) {
        let mut entries = self.entries.lock().unwrap();
        debug_assert!(
            valid_name(name),
            "metric name {name:?} violates the [a-z0-9_]+ exposition grammar"
        );
        debug_assert!(
            !entries.iter().any(|(n, _)| n == name),
            "metric name {name:?} registered twice"
        );
        entries.push((name.to_string(), metric));
    }

    /// Creates, registers, and returns a new [`Counter`].
    pub fn counter(&self, name: &str) -> Counter {
        let c = Counter::new();
        self.register(name, Metric::Counter(c.clone()));
        c
    }

    /// Creates, registers, and returns a new [`Gauge`].
    pub fn gauge(&self, name: &str) -> Gauge {
        let g = Gauge::new();
        self.register(name, Metric::Gauge(g.clone()));
        g
    }

    /// Creates, registers, and returns a new [`Histogram`].
    pub fn histogram(&self, name: &str) -> Histogram {
        let h = Histogram::new();
        self.register(name, Metric::Histogram(h.clone()));
        h
    }

    /// Registers a counter handle under `name` (convenience for the
    /// per-crate metrics structs that pre-create their handles).
    pub fn register_counter(&self, name: &str, c: &Counter) {
        self.register(name, Metric::Counter(c.clone()));
    }

    /// Registers a gauge handle under `name`.
    pub fn register_gauge(&self, name: &str, g: &Gauge) {
        self.register(name, Metric::Gauge(g.clone()));
    }

    /// Registers a histogram handle under `name`.
    pub fn register_histogram(&self, name: &str, h: &Histogram) {
        self.register(name, Metric::Histogram(h.clone()));
    }

    /// Release-mode re-check of the registration `debug_assert`s: every
    /// name matches `[a-z0-9_]+` and no name repeats. Returns the first
    /// offence found.
    pub fn lint(&self) -> Result<(), String> {
        let entries = self.entries.lock().unwrap();
        let mut seen = std::collections::BTreeSet::new();
        for (name, _) in entries.iter() {
            if !valid_name(name) {
                return Err(format!(
                    "metric name {name:?} violates the [a-z0-9_]+ grammar"
                ));
            }
            if !seen.insert(name.as_str()) {
                return Err(format!("metric name {name:?} registered twice"));
            }
        }
        Ok(())
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap().len()
    }

    /// Whether no metric has been registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reads every registered metric into an owned snapshot. Per-metric
    /// atomic, not cross-metric consistent (see the crate docs).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let entries = self.entries.lock().unwrap();
        MetricsSnapshot {
            metrics: entries
                .iter()
                .map(|(name, metric)| {
                    let value = match metric {
                        Metric::Counter(c) => MetricValue::Counter(c.get()),
                        Metric::Gauge(g) => MetricValue::Gauge {
                            value: g.get(),
                            high_water: g.high_water(),
                        },
                        Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                    };
                    (name.clone(), value)
                })
                .collect(),
        }
    }

    /// Renders the current state as a Prometheus-style text exposition
    /// (`# TYPE` lines, cumulative `_bucket{le=...}` series, `_sum` and
    /// `_count` per histogram, `_high_water` per gauge).
    pub fn render(&self) -> String {
        self.snapshot().render()
    }
}

/// A point-in-time reading of one metric.
// The histogram variant carries its full bucket array inline: snapshots
// are cold-path (scrapes, dumps) and short-lived, so locality beats the
// extra allocation boxing would add.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value and its high-water mark.
    Gauge {
        /// Instantaneous value.
        value: u64,
        /// Highest value ever reached.
        high_water: u64,
    },
    /// Full histogram state.
    Histogram(HistogramSnapshot),
}

/// An owned snapshot of a whole [`Registry`], in registration order.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// `(name, value)` per registered metric.
    pub metrics: Vec<(String, MetricValue)>,
}

impl MetricsSnapshot {
    /// Looks up a snapshotted metric by name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.metrics.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// Counter value by name (0 when absent or not a counter — the
    /// convenience shape dashboards and the examples want).
    pub fn counter(&self, name: &str) -> u64 {
        match self.get(name) {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Histogram snapshot by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.get(name) {
            Some(MetricValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Prometheus-style text exposition of this snapshot.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (name, value) in &self.metrics {
            match value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "# TYPE {name} counter");
                    let _ = writeln!(out, "{name} {v}");
                }
                MetricValue::Gauge { value, high_water } => {
                    let _ = writeln!(out, "# TYPE {name} gauge");
                    let _ = writeln!(out, "{name} {value}");
                    let _ = writeln!(out, "# TYPE {name}_high_water gauge");
                    let _ = writeln!(out, "{name}_high_water {high_water}");
                }
                MetricValue::Histogram(h) => {
                    let _ = writeln!(out, "# TYPE {name} histogram");
                    let mut cumulative = 0u64;
                    for (i, &b) in h.buckets.iter().enumerate() {
                        cumulative += b;
                        // Only emit buckets up to the last non-empty one;
                        // 64 mostly-empty le-lines per histogram would
                        // drown the exposition.
                        if b != 0 {
                            let _ = writeln!(
                                out,
                                "{name}_bucket{{le=\"{}\"}} {cumulative}",
                                bucket_upper_bound(i)
                            );
                        }
                    }
                    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
                    let _ = writeln!(out, "{name}_sum {}", h.sum);
                    let _ = writeln!(out, "{name}_count {cumulative}");
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registers_snapshots_and_renders() {
        let reg = Registry::new();
        let c = reg.counter("demo_ops_total");
        let g = reg.gauge("demo_depth");
        let h = reg.histogram("demo_latency_ns");
        c.add(7);
        g.add(3);
        g.sub(1);
        h.record(100);
        h.record(100_000);

        let snap = reg.snapshot();
        assert_eq!(snap.counter("demo_ops_total"), 7);
        match snap.get("demo_depth") {
            Some(MetricValue::Gauge { value, high_water }) => {
                assert_eq!(*value, 2);
                assert_eq!(*high_water, 3);
            }
            other => panic!("unexpected {other:?}"),
        }

        let text = snap.render();
        assert!(text.contains("# TYPE demo_ops_total counter"));
        assert!(text.contains("demo_ops_total 7"));
        assert!(text.contains("demo_depth 2"));
        assert!(text.contains("demo_depth_high_water 3"));
        #[cfg(not(feature = "telemetry-off"))]
        {
            assert!(text.contains("# TYPE demo_latency_ns histogram"));
            assert!(text.contains("demo_latency_ns_count 2"));
            assert!(text.contains("demo_latency_ns_sum 100100"));
            assert!(text.contains("demo_latency_ns_bucket{le=\"+Inf\"} 2"));
        }
        assert!(reg.lint().is_ok());
    }

    #[test]
    fn lint_rejects_bad_names_in_release_too() {
        // Bypass the debug_asserts by constructing entries directly in a
        // release build; in debug builds, assert the asserts fire.
        let reg = Registry::new();
        if cfg!(debug_assertions) {
            assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                reg.counter("Bad-Name");
            }))
            .is_err());
        } else {
            reg.counter("Bad-Name");
            assert!(reg.lint().is_err());
        }

        let dup = Registry::new();
        if cfg!(debug_assertions) {
            dup.counter("twice");
            assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                dup.counter("twice");
            }))
            .is_err());
        } else {
            dup.counter("twice");
            dup.counter("twice");
            assert!(dup.lint().is_err());
        }
    }
}
