//! The bucketized cuckoo hash table.

use index_traits::{IndexStats, UnorderedIndex};
use wh_hash::{crc32c, mix64, tag16, xorshift_mix};

use crate::{MAX_BFS_DEPTH, SLOTS_PER_BUCKET};

/// One stored item.
struct Entry<V> {
    tag: u16,
    key: Box<[u8]>,
    value: V,
}

/// A 4-way set-associative bucket.
struct Bucket<V> {
    slots: [Option<Entry<V>>; SLOTS_PER_BUCKET],
}

impl<V> Default for Bucket<V> {
    fn default() -> Self {
        Self {
            slots: [None, None, None, None],
        }
    }
}

impl<V> Bucket<V> {
    fn empty_slot(&self) -> Option<usize> {
        self.slots.iter().position(|s| s.is_none())
    }

    fn find(&self, tag: u16, key: &[u8]) -> Option<usize> {
        self.slots.iter().position(|s| match s {
            Some(e) => e.tag == tag && e.key.as_ref() == key,
            None => false,
        })
    }
}

/// A bucketized cuckoo hash table keyed by byte strings.
pub struct CuckooHashTable<V> {
    buckets: Vec<Bucket<V>>,
    /// `buckets.len() - 1`; the bucket count is always a power of two so the
    /// partial-key alternate-bucket computation is an involution.
    mask: usize,
    len: usize,
    key_bytes: usize,
}

impl<V> Default for CuckooHashTable<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> CuckooHashTable<V> {
    /// Creates a table with a small initial capacity.
    pub fn new() -> Self {
        Self::with_capacity(1024)
    }

    /// Creates a table sized for roughly `capacity` keys.
    pub fn with_capacity(capacity: usize) -> Self {
        // Target ~85% load at the requested capacity.
        let want_buckets = (capacity.max(SLOTS_PER_BUCKET) * 100 / 85) / SLOTS_PER_BUCKET;
        let nbuckets = want_buckets.next_power_of_two().max(2);
        Self {
            buckets: (0..nbuckets).map(|_| Bucket::default()).collect(),
            mask: nbuckets - 1,
            len: 0,
            key_bytes: 0,
        }
    }

    /// Current number of buckets.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Current load factor.
    pub fn load_factor(&self) -> f64 {
        self.len as f64 / (self.buckets.len() * SLOTS_PER_BUCKET) as f64
    }

    fn hash_key(key: &[u8]) -> (usize, u16) {
        let crc = crc32c(key);
        let h = mix64(crc as u64 ^ ((key.len() as u64) << 32));
        (h as usize, tag16(crc))
    }

    fn primary_bucket(&self, h: usize) -> usize {
        h & self.mask
    }

    /// The alternate bucket, derived only from the current bucket and the
    /// tag (partial-key cuckoo hashing). Applying it twice returns the
    /// original bucket.
    fn alt_bucket(&self, bucket: usize, tag: u16) -> usize {
        (bucket ^ (xorshift_mix(tag as u64 + 1) as usize)) & self.mask
    }
}

impl<V: Clone> CuckooHashTable<V> {
    fn find_slot(&self, key: &[u8]) -> Option<(usize, usize)> {
        let (h, tag) = Self::hash_key(key);
        let b1 = self.primary_bucket(h);
        if let Some(s) = self.buckets[b1].find(tag, key) {
            return Some((b1, s));
        }
        let b2 = self.alt_bucket(b1, tag);
        if let Some(s) = self.buckets[b2].find(tag, key) {
            return Some((b2, s));
        }
        None
    }

    /// Attempts to place `entry` whose candidate buckets are `b1`/`b2`,
    /// displacing other entries along a BFS path if needed. Returns the entry
    /// back when no path of bounded depth exists.
    fn place(&mut self, entry: Entry<V>, b1: usize, b2: usize) -> Result<(), Entry<V>> {
        if let Some(s) = self.buckets[b1].empty_slot() {
            self.buckets[b1].slots[s] = Some(entry);
            return Ok(());
        }
        if let Some(s) = self.buckets[b2].empty_slot() {
            self.buckets[b2].slots[s] = Some(entry);
            return Ok(());
        }

        // BFS over displacement paths. Each node records which (bucket, slot)
        // would be vacated by pushing its occupant to the occupant's
        // alternate bucket.
        struct PathNode {
            bucket: usize,
            slot: usize,
            parent: Option<usize>,
            depth: usize,
        }
        let mut nodes: Vec<PathNode> = Vec::new();
        let mut frontier: Vec<usize> = Vec::new();
        for &start in &[b1, b2] {
            for slot in 0..SLOTS_PER_BUCKET {
                nodes.push(PathNode {
                    bucket: start,
                    slot,
                    parent: None,
                    depth: 0,
                });
                frontier.push(nodes.len() - 1);
            }
        }

        let mut found: Option<(usize, usize)> = None; // (node idx, free slot in target)
        'bfs: while let Some(node_idx) = frontier.first().copied() {
            frontier.remove(0);
            let (bucket, slot, depth) = {
                let n = &nodes[node_idx];
                (n.bucket, n.slot, n.depth)
            };
            let occupant_tag = match &self.buckets[bucket].slots[slot] {
                Some(e) => e.tag,
                None => {
                    // The slot freed up concurrently with path construction
                    // (possible only via earlier displacement bookkeeping);
                    // treat it as the landing spot directly.
                    found = Some((node_idx, slot));
                    break 'bfs;
                }
            };
            let target = self.alt_bucket(bucket, occupant_tag);
            if let Some(free) = self.buckets[target].empty_slot() {
                found = Some((node_idx, free));
                break 'bfs;
            }
            if depth + 1 >= MAX_BFS_DEPTH {
                continue;
            }
            for slot in 0..SLOTS_PER_BUCKET {
                nodes.push(PathNode {
                    bucket: target,
                    slot,
                    parent: Some(node_idx),
                    depth: depth + 1,
                });
                frontier.push(nodes.len() - 1);
            }
        }

        let Some((mut node_idx, mut free_slot)) = found else {
            return Err(entry);
        };

        // Walk the path from the end back to the start, moving each occupant
        // into the slot freed after it.
        loop {
            let (bucket, slot, parent) = {
                let n = &nodes[node_idx];
                (n.bucket, n.slot, n.parent)
            };
            let occupant = self.buckets[bucket].slots[slot].take();
            if let Some(occ) = occupant {
                let target = self.alt_bucket(bucket, occ.tag);
                debug_assert!(self.buckets[target].slots[free_slot].is_none());
                self.buckets[target].slots[free_slot] = Some(occ);
            }
            free_slot = slot;
            match parent {
                Some(p) => node_idx = p,
                None => {
                    // The first displaced slot is now free for the new entry.
                    debug_assert!(self.buckets[bucket].slots[free_slot].is_none());
                    self.buckets[bucket].slots[free_slot] = Some(entry);
                    return Ok(());
                }
            }
        }
    }

    /// Doubles the bucket array and re-places every entry, doubling again in
    /// the (extremely unlikely) event that re-placement still fails.
    fn grow(&mut self) {
        // Pull every entry out of the current table.
        let mut entries: Vec<Entry<V>> = Vec::with_capacity(self.len);
        for bucket in std::mem::take(&mut self.buckets) {
            for entry in bucket.slots.into_iter().flatten() {
                entries.push(entry);
            }
        }
        let mut new_size = (self.mask + 1) * 2;
        'retry: loop {
            self.buckets = (0..new_size).map(|_| Bucket::default()).collect();
            self.mask = new_size - 1;
            for (i, entry) in entries.iter().enumerate() {
                let placed = Entry {
                    tag: entry.tag,
                    key: entry.key.clone(),
                    value: entry.value.clone(),
                };
                let (h, tag) = Self::hash_key(&placed.key);
                let b1 = self.primary_bucket(h);
                let b2 = self.alt_bucket(b1, tag);
                if self.place(placed, b1, b2).is_err() {
                    // Re-placement failed even in the bigger table; double
                    // again and restart from scratch.
                    let _ = i;
                    new_size *= 2;
                    continue 'retry;
                }
            }
            return;
        }
    }
}

impl<V: Clone> UnorderedIndex<V> for CuckooHashTable<V> {
    fn name(&self) -> &'static str {
        "cuckoo"
    }

    fn get(&self, key: &[u8]) -> Option<V> {
        self.find_slot(key)
            .map(|(b, s)| self.buckets[b].slots[s].as_ref().unwrap().value.clone())
    }

    fn set(&mut self, key: &[u8], value: V) -> Option<V> {
        if let Some((b, s)) = self.find_slot(key) {
            let entry = self.buckets[b].slots[s].as_mut().unwrap();
            return Some(std::mem::replace(&mut entry.value, value));
        }
        let (h, tag) = Self::hash_key(key);
        let mut entry = Entry {
            tag,
            key: key.to_vec().into_boxed_slice(),
            value,
        };
        loop {
            let b1 = self.primary_bucket(h);
            let b2 = self.alt_bucket(b1, tag);
            match self.place(entry, b1, b2) {
                Ok(()) => {
                    self.len += 1;
                    self.key_bytes += key.len();
                    return None;
                }
                Err(e) => {
                    entry = e;
                    self.grow();
                }
            }
        }
    }

    fn del(&mut self, key: &[u8]) -> Option<V> {
        let (b, s) = self.find_slot(key)?;
        let entry = self.buckets[b].slots[s].take().unwrap();
        self.len -= 1;
        self.key_bytes -= entry.key.len();
        Some(entry.value)
    }

    fn len(&self) -> usize {
        self.len
    }

    fn stats(&self) -> IndexStats {
        IndexStats {
            keys: self.len,
            structure_bytes: self.buckets.len()
                * SLOTS_PER_BUCKET
                * std::mem::size_of::<Option<Entry<V>>>(),
            key_bytes: self.key_bytes,
            value_bytes: self.len * std::mem::size_of::<V>(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashMap;

    #[test]
    fn empty_table() {
        let mut t: CuckooHashTable<u64> = CuckooHashTable::new();
        assert!(t.is_empty());
        assert_eq!(t.get(b"x"), None);
        assert_eq!(t.del(b"x"), None);
    }

    #[test]
    fn insert_get_delete() {
        let mut t = CuckooHashTable::new();
        assert_eq!(t.set(b"alpha", 1u64), None);
        assert_eq!(t.set(b"beta", 2), None);
        assert_eq!(t.get(b"alpha"), Some(1));
        assert_eq!(t.get(b"beta"), Some(2));
        assert_eq!(t.get(b"gamma"), None);
        assert_eq!(t.set(b"alpha", 10), Some(1));
        assert_eq!(t.del(b"alpha"), Some(10));
        assert_eq!(t.get(b"alpha"), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn grows_beyond_initial_capacity() {
        let mut t = CuckooHashTable::with_capacity(16);
        let initial_buckets = t.bucket_count();
        for i in 0..10_000u64 {
            t.set(format!("key-{i}").as_bytes(), i);
        }
        assert!(t.bucket_count() > initial_buckets);
        assert_eq!(t.len(), 10_000);
        for i in 0..10_000u64 {
            assert_eq!(t.get(format!("key-{i}").as_bytes()), Some(i), "key-{i}");
        }
        assert!(t.load_factor() > 0.2);
    }

    #[test]
    fn alt_bucket_is_involution() {
        let t: CuckooHashTable<u64> = CuckooHashTable::with_capacity(4096);
        for tag in [0u16, 1, 7, 255, 30000, u16::MAX] {
            for b in [0usize, 1, 17, 1023] {
                let b = b & t.mask;
                let alt = t.alt_bucket(b, tag);
                assert_eq!(t.alt_bucket(alt, tag), b);
            }
        }
    }

    #[test]
    fn binary_and_empty_keys() {
        let mut t = CuckooHashTable::new();
        t.set(b"", 0u64);
        t.set(&[0], 1);
        t.set(&[0, 0], 2);
        t.set(&[255, 0, 255], 3);
        assert_eq!(t.get(b""), Some(0));
        assert_eq!(t.get(&[0]), Some(1));
        assert_eq!(t.get(&[0, 0]), Some(2));
        assert_eq!(t.get(&[255, 0, 255]), Some(3));
    }

    #[test]
    fn long_keys() {
        let mut t = CuckooHashTable::new();
        let k1 = vec![b'a'; 1024];
        let mut k2 = k1.clone();
        k2[1023] = b'b';
        t.set(&k1, 1u64);
        t.set(&k2, 2);
        assert_eq!(t.get(&k1), Some(1));
        assert_eq!(t.get(&k2), Some(2));
    }

    #[test]
    fn stats_track_size() {
        let mut t = CuckooHashTable::new();
        for i in 0..100u64 {
            t.set(format!("{i:05}").as_bytes(), i);
        }
        let s = t.stats();
        assert_eq!(s.keys, 100);
        assert_eq!(s.key_bytes, 500);
        assert!(s.structure_bytes > 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn prop_matches_hashmap_model(ops in proptest::collection::vec(
            (proptest::collection::vec(any::<u8>(), 0..12), any::<u64>(), any::<bool>()), 1..400)) {
            let mut t = CuckooHashTable::with_capacity(8);
            let mut model: HashMap<Vec<u8>, u64> = HashMap::new();
            for (key, value, is_delete) in ops {
                if is_delete {
                    prop_assert_eq!(t.del(&key), model.remove(&key));
                } else {
                    prop_assert_eq!(t.set(&key, value), model.insert(key.clone(), value));
                }
                prop_assert_eq!(t.len(), model.len());
            }
            for (k, v) in &model {
                prop_assert_eq!(t.get(k), Some(*v));
            }
        }
    }
}
