//! A bucketized cuckoo hash table in the style of libcuckoo / MemC3, used as
//! the unordered-index comparison point in the Wormhole evaluation
//! (Figures 13 and 14).
//!
//! * 4-way set-associative buckets;
//! * partial-key cuckoo hashing: the alternate bucket is derived from the
//!   primary bucket and a 16-bit tag, so displacements never need to rehash
//!   the full key;
//! * breadth-first search for an eviction path (bounded depth), falling back
//!   to doubling the table when no path exists;
//! * 16-bit tags stored inline so most negative lookups never touch the key
//!   bytes — the same trick Wormhole applies in its MetaTrieHT and leaves.

pub mod table;

pub use table::CuckooHashTable;

/// Slots per bucket (libcuckoo's default associativity).
pub const SLOTS_PER_BUCKET: usize = 4;

/// Maximum depth of the BFS eviction search before the table resizes.
pub const MAX_BFS_DEPTH: usize = 5;
