//! Command-line harness that regenerates every table and figure of the
//! paper's evaluation section.
//!
//! ```text
//! cargo run -p bench --release --bin figures -- all
//! cargo run -p bench --release --bin figures -- fig10 --keys 1000000 --threads 16
//! ```
//!
//! Output is a plain-text table per experiment (one row per x-axis category,
//! one column per series), which is what `EXPERIMENTS.md` records.

use std::env;
use std::process::ExitCode;

use bench::figures::{self, FigureScale, Row};

fn print_usage() {
    eprintln!(
        "usage: figures [table1|fig9|fig10|fig11|fig12|fig13|fig14|fig15|fig16|fig17|fig18|all]\n\
         options:\n\
           --keys N      keys per keyset (default {})\n\
           --probes N    lookup probes per measurement (default 2x keys)\n\
           --threads N   maximum threads (default: min(16, cores))\n\
           --seed N      RNG seed (default 42)",
        workloads::DEFAULT_SCALE
    );
}

fn parse_args() -> Option<(Vec<String>, FigureScale)> {
    let mut scale = FigureScale::default();
    let mut selected: Vec<String> = Vec::new();
    let mut args = env::args().skip(1);
    let mut probes_overridden = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--keys" => {
                scale.keys = args.next()?.parse().ok()?;
                if !probes_overridden {
                    scale.probes = scale.keys * 2;
                }
            }
            "--probes" => {
                scale.probes = args.next()?.parse().ok()?;
                probes_overridden = true;
            }
            "--threads" => scale.threads = args.next()?.parse().ok()?,
            "--seed" => scale.seed = args.next()?.parse().ok()?,
            "--help" | "-h" => return None,
            name => selected.push(name.to_string()),
        }
    }
    if selected.is_empty() {
        selected.push("all".to_string());
    }
    Some((selected, scale))
}

/// Prints a set of rows as an aligned text table.
fn print_rows(title: &str, unit: &str, rows: &[Row]) {
    println!("\n=== {title} ===  (values in {unit})");
    if rows.is_empty() {
        println!("(no data)");
        return;
    }
    let series: Vec<String> = rows[0].values.iter().map(|(n, _)| n.clone()).collect();
    let label_width = rows
        .iter()
        .map(|r| r.label.len())
        .chain(std::iter::once(4))
        .max()
        .unwrap();
    print!("{:<width$}", "", width = label_width + 2);
    for s in &series {
        print!("{s:>22}");
    }
    println!();
    for row in rows {
        print!("{:<width$}", row.label, width = label_width + 2);
        for s in &series {
            match row.value(s) {
                Some(v) => print!("{v:>22.3}"),
                None => print!("{:>22}", "-"),
            }
        }
        println!();
    }
}

fn print_table1(scale: &FigureScale) {
    let rows = figures::table1(scale);
    println!("\n=== Table 1: keysets ===");
    println!(
        "{:<6} {:<55} {:>12} {:>10} {:>12} {:>12} {:>12}",
        "Name", "Description", "Paper keys", "Paper GB", "Gen keys", "Avg len", "Gen MB"
    );
    for r in rows {
        println!(
            "{:<6} {:<55} {:>10.0}M {:>10.1} {:>12} {:>12.1} {:>12.1}",
            r.name,
            r.description,
            r.paper_keys_millions,
            r.paper_size_gb,
            r.generated_keys,
            r.generated_avg_len,
            r.generated_mb
        );
    }
}

fn run(name: &str, scale: &FigureScale) -> bool {
    match name {
        "table1" => print_table1(scale),
        "fig9" => print_rows(
            "Figure 9: lookup throughput vs threads (Az1)",
            "MOPS",
            &figures::fig9(scale),
        ),
        "fig10" => print_rows(
            "Figure 10: lookup throughput on local CPU",
            "MOPS",
            &figures::fig10(scale),
        ),
        "fig11" => print_rows(
            "Figure 11: throughput with optimizations applied",
            "MOPS",
            &figures::fig11(scale),
        ),
        "fig12" => print_rows(
            "Figure 12: lookup throughput on a networked key-value store",
            "MOPS",
            &figures::fig12(scale),
        ),
        "fig13" => print_rows(
            "Figure 13: Wormhole vs cuckoo hash table",
            "MOPS",
            &figures::fig13(scale),
        ),
        "fig14" => print_rows(
            "Figure 14: lookup throughput for keysets of short and long common prefixes",
            "MOPS",
            &figures::fig14(scale),
        ),
        "fig15" => print_rows(
            "Figure 15: throughput of continuous insertions (1 thread)",
            "MOPS",
            &figures::fig15(scale),
        ),
        "fig16" => print_rows(
            "Figure 16: memory usage of the indexes",
            "MB",
            &figures::fig16(scale),
        ),
        "fig17" => print_rows(
            "Figure 17: throughput of mixed lookups and insertions",
            "MOPS",
            &figures::fig17(scale),
        ),
        "fig18" => print_rows(
            "Figure 18: throughput of range lookups (100-key scans)",
            "M queries/s",
            &figures::fig18(scale),
        ),
        other => {
            eprintln!("unknown experiment: {other}");
            return false;
        }
    }
    true
}

fn main() -> ExitCode {
    let Some((selected, scale)) = parse_args() else {
        print_usage();
        return ExitCode::FAILURE;
    };
    println!(
        "wormhole-repro figures: keys={} probes={} threads={} seed={}",
        scale.keys, scale.probes, scale.threads, scale.seed
    );
    let all = [
        "table1", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17",
        "fig18",
    ];
    let list: Vec<&str> = if selected.iter().any(|s| s == "all") {
        all.to_vec()
    } else {
        selected.iter().map(|s| s.as_str()).collect()
    };
    for name in list {
        if !run(name, &scale) {
            print_usage();
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
