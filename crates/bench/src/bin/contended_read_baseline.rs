//! Writes `BENCH_concurrent.json`: reader throughput of the concurrent
//! Wormhole under a splitting/merging writer, per-leaf `RwLock` read path
//! vs the seqlock optimistic read path, at two reader-thread counts.
//!
//! ```text
//! cargo run -p bench --release --bin contended_read_baseline
//! ```
//!
//! Set `WH_BENCH_QUICK=1` for CI's smoke mode (seconds, numbers not
//! comparable to tracked baselines).

use std::fmt::Write as _;
use std::time::Duration;

use bench::contended::measure_modes;
use bench::quick_or;

fn main() {
    let keys = quick_or(100_000usize, 8_000);
    let duration = Duration::from_millis(quick_or(500, 40));
    let rounds = quick_or(3, 1);
    let reader_counts: &[usize] = quick_or(&[4usize, 8], &[2]);
    let mut rows = Vec::new();
    for &readers in reader_counts {
        eprintln!("measuring {readers} readers ({rounds} interleaved rounds)...");
        for s in measure_modes(readers, keys, duration, rounds) {
            eprintln!(
                "  {:<10} writer={:<5} {:6.1} ns/read  {:7.2} Mreads/s  (writer ops {})",
                s.mode, s.writer, s.read_ns, s.mreads_per_sec, s.writer_ops,
            );
            rows.push(s);
        }
    }

    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"contended_read\",\n");
    json.push_str(
        "  \"description\": \"Concurrent Wormhole point-lookup throughput, N reader threads \
         with/without one structural writer churning splits+merges (best of 3 interleaved \
         500ms rounds, 100k resident ~20B keys, leaf capacity 64). rwlock = per-leaf \
         RwLock::read path; optimistic = seqlock-validated lock-free read path. On a \
         single-CPU host the threads time-slice, so the deltas understate the multicore \
         benefit of taking no lock (no RMW on the leaf lock word, no reader convoy behind \
         a preempted writer).\",\n",
    );
    let _ = writeln!(json, "  \"host_cpus\": {host_cpus},");
    json.push_str("  \"series\": [\n");
    for (i, s) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"mode\": \"{}\", \"readers\": {}, \"writer\": {}, \
             \"read_ns\": {:.1}, \"mreads_per_sec\": {:.2}, \"writer_ops\": {}}}{comma}",
            s.mode, s.readers, s.writer, s.read_ns, s.mreads_per_sec, s.writer_ops,
        );
    }
    json.push_str("  ]\n");
    json.push_str("}\n");

    std::fs::write("BENCH_concurrent.json", &json).expect("write BENCH_concurrent.json");
    println!("{json}");
}
