//! Writes `BENCH_shard.json`: aggregate throughput of N worker threads
//! over the unsharded concurrent Wormhole vs the range-partitioned
//! `ShardedWormhole` at 1/2/4/8 shards, under a read-heavy (90/10) and a
//! structural write-heavy (split+merge churn) mix.
//!
//! ```text
//! cargo run -p bench --release --bin shard_scale_baseline
//! ```

use std::fmt::Write as _;
use std::time::Duration;

use bench::shard_scale::measure_scaling;

fn main() {
    let threads = 8usize;
    let keys = 100_000usize;
    let duration = Duration::from_millis(500);
    let rounds = 3;
    eprintln!(
        "measuring {threads} workers over {keys} residents \
         ({rounds} rounds of {duration:?} per cell)..."
    );
    let samples = measure_scaling(threads, keys, duration, rounds);
    for s in &samples {
        eprintln!(
            "  {:<11} shards={:<2} {:<12} {:8.3} Mops/s  ({} ops)",
            s.frontend, s.shards, s.mix, s.mops, s.ops,
        );
    }

    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"shard_scale\",\n");
    json.push_str(
        "  \"description\": \"Aggregate throughput of 8 worker threads over one shared ordered \
         index, 100k resident ~20B keys, leaf capacity 64, best of 3 interleaved 500ms rounds. \
         unsharded = one concurrent Wormhole (single MetaTrieHT writer mutex); sharded = \
         ShardedWormhole with sample-quantile boundaries at the given shard count. read_heavy = \
         90% point gets / 10% overwrites; write_heavy = split+merge churn waves (64 inserts + \
         64 deletes around a random resident, each wave taking the owning shard's writer mutex \
         and an RCU grace period) plus 8 gets. On a single-CPU host the threads time-slice, so \
         the sharded win comes from eliminating writer-mutex convoys and cross-thread grace-\
         period waits rather than true parallelism; multicore hosts add the latter on top.\",\n",
    );
    let _ = writeln!(json, "  \"host_cpus\": {host_cpus},");
    let _ = writeln!(json, "  \"threads\": {threads},");
    json.push_str("  \"series\": [\n");
    for (i, s) in samples.iter().enumerate() {
        let comma = if i + 1 == samples.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"frontend\": \"{}\", \"shards\": {}, \"mix\": \"{}\", \
             \"threads\": {}, \"ops\": {}, \"mops\": {:.3}}}{comma}",
            s.frontend, s.shards, s.mix, s.threads, s.ops, s.mops,
        );
    }
    json.push_str("  ]\n");
    json.push_str("}\n");

    std::fs::write("BENCH_shard.json", &json).expect("write BENCH_shard.json");
    println!("{json}");
}
