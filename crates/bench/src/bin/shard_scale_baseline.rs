//! Writes `BENCH_shard.json`: aggregate throughput of N worker threads
//! over the unsharded concurrent Wormhole vs the range-partitioned
//! `ShardedWormhole` at 1/2/4/8 shards with the router fast path on and
//! off, under a read-heavy (90/10), a mixed (50/50), and a structural
//! write-heavy (split+merge churn) mix — plus the skew-shift
//! scenario measuring how online rebalancing recovers write-heavy
//! throughput after the hot range collapses onto one shard.
//!
//! ```text
//! cargo run -p bench --release --bin shard_scale_baseline
//! ```
//!
//! Set `WH_BENCH_QUICK=1` for CI's smoke mode (seconds, numbers not
//! comparable to tracked baselines).

use std::fmt::Write as _;
use std::time::Duration;

use bench::shard_scale::{measure_scaling, measure_skew_shift, measure_telemetry_ab};
use bench::{quick_mode, quick_or};

fn main() {
    let threads = quick_or(8usize, 4);
    let keys = quick_or(100_000usize, 8_000);
    let duration = Duration::from_millis(quick_or(500, 40));
    let rounds = quick_or(3, 1);
    eprintln!(
        "measuring {threads} workers over {keys} residents \
         ({rounds} rounds of {duration:?} per cell, quick={})...",
        quick_mode(),
    );
    let samples = measure_scaling(threads, keys, duration, rounds);
    for s in &samples {
        eprintln!(
            "  {:<11} shards={:<2} fast={:<5} {:<12} {:8.3} Mops/s  ({} ops)",
            s.frontend, s.shards, s.router_fast_path, s.mix, s.mops, s.ops,
        );
    }
    eprintln!("measuring telemetry on/off A/B (read-heavy, 4 shards)...");
    let telemetry_ab = measure_telemetry_ab(threads, keys, duration, rounds);
    for s in &telemetry_ab {
        eprintln!(
            "  telemetry={:<3} {:<12} {:8.3} Mops/s  ({} ops)",
            s.telemetry, s.mix, s.mops, s.ops,
        );
    }
    eprintln!("measuring skew-shift recovery (rebalance off / on)...");
    let mut skew = Vec::new();
    for rebalance in [false, true] {
        for s in measure_skew_shift(threads, keys, duration, rebalance) {
            eprintln!(
                "  rebalance={:<5} {:<10} {:8.3} Mops/s  \
                 (migrations {} moved {})",
                s.rebalance, s.phase, s.mops, s.migrations, s.moved_keys,
            );
            skew.push(s);
        }
    }

    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"shard_scale\",\n");
    json.push_str(
        "  \"description\": \"Aggregate throughput of 8 worker threads over one shared ordered \
         index, 100k resident ~20B keys, leaf capacity 64, best of 3 interleaved 500ms rounds. \
         unsharded = one concurrent Wormhole (single MetaTrieHT writer mutex); sharded = \
         ShardedWormhole with sample-quantile boundaries at the given shard count, with \
         router_fast_path recording whether point ops used the migration-idle biased fast \
         path (no router critical section while no migration runs) or the classic per-op \
         critical-section path (the pre-fast-path read tax; vacuously true on the unsharded \
         rows, which have no router). read_heavy = \
         90% point gets / 10% overwrites; mixed = 50% gets / 50% overwrites of resident \
         keys; write_heavy = split+merge churn waves (64 inserts + \
         64 deletes around a random resident, each wave taking the owning shard's writer mutex \
         and an RCU grace period) plus 8 gets. skew_shift = a 4-shard front whose write-heavy \
         churn collapses onto the first quarter of the keyset (one shard): balanced = pre-shift \
         rate, shifted = right after the collapse, recovered = after a recovery window of \
         traffic bursts interleaved with maybe_rebalance() decisions (rebalance=true) or plain \
         traffic (rebalance=false); migrations/moved_keys count the boundary moves the online \
         rebalancer performed. telemetry_ab = the read-heavy 4-shard fast-path cell with \
         wh-telemetry recording enabled vs disabled at runtime, rounds interleaved on/off: the \
         observability tax, expected within a few percent (counters stay live in both states; \
         only histograms and clock reads toggle). On a single-CPU host the threads time-slice, \
         so the sharded win \
         comes from eliminating writer-mutex convoys and cross-thread grace-period waits rather \
         than true parallelism; multicore hosts add the latter on top.\",\n",
    );
    let _ = writeln!(json, "  \"host_cpus\": {host_cpus},");
    let _ = writeln!(json, "  \"threads\": {threads},");
    json.push_str("  \"series\": [\n");
    for (i, s) in samples.iter().enumerate() {
        let comma = if i + 1 == samples.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"frontend\": \"{}\", \"shards\": {}, \"router_fast_path\": {}, \
             \"mix\": \"{}\", \"threads\": {}, \"ops\": {}, \"mops\": {:.3}}}{comma}",
            s.frontend, s.shards, s.router_fast_path, s.mix, s.threads, s.ops, s.mops,
        );
    }
    json.push_str("  ],\n");
    json.push_str("  \"telemetry_ab\": [\n");
    for (i, s) in telemetry_ab.iter().enumerate() {
        let comma = if i + 1 == telemetry_ab.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"telemetry\": \"{}\", \"mix\": \"{}\", \"shards\": 4, \
             \"router_fast_path\": true, \"threads\": {}, \"ops\": {}, \"mops\": {:.3}}}{comma}",
            s.telemetry, s.mix, s.threads, s.ops, s.mops,
        );
    }
    json.push_str("  ],\n");
    json.push_str("  \"skew_shift\": [\n");
    for (i, s) in skew.iter().enumerate() {
        let comma = if i + 1 == skew.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"phase\": \"{}\", \"rebalance\": {}, \"ops\": {}, \"mops\": {:.3}, \
             \"migrations\": {}, \"moved_keys\": {}}}{comma}",
            s.phase, s.rebalance, s.ops, s.mops, s.migrations, s.moved_keys,
        );
    }
    json.push_str("  ]\n");
    json.push_str("}\n");

    std::fs::write("BENCH_shard.json", &json).expect("write BENCH_shard.json");
    println!("{json}");
}
