//! Writes `BENCH_service.json`: client-observed round-trip latency
//! (p50/p99/p999) and throughput of the batched serving layer
//! (`netsim::ShardServer`) over a 4-shard front, for 1 and 4 execution
//! workers under a read-heavy and a mixed point mix, plus a
//! tail-under-migration-churn cell where boundary migrations bounce for
//! the whole run.
//!
//! ```text
//! cargo run -p bench --release --bin service_latency_baseline
//! ```
//!
//! Set `WH_BENCH_QUICK=1` for CI's smoke mode (seconds, numbers not
//! comparable to tracked baselines).

use std::fmt::Write as _;

use bench::service_latency::measure_service_sweep;
use bench::{quick_mode, quick_or};

fn main() {
    let worker_counts = [1usize, 4];
    let keys = quick_or(100_000usize, 4_000);
    let ops = quick_or(1_000_000usize, 20_000);
    eprintln!(
        "measuring serving-layer latency: workers {worker_counts:?} x \
         {{read_heavy, mixed}} + churn cell, {keys} residents, {ops} ops \
         per cell (quick={})...",
        quick_mode(),
    );
    let samples = measure_service_sweep(&worker_counts, keys, ops);
    for s in &samples {
        eprintln!(
            "  workers={} {:<11} churn={:<5} {:8.3} Mops/s  \
             p50={}ns p99={}ns p999={}ns flushes={}",
            s.workers, s.mix, s.churn, s.mops, s.p50_ns, s.p99_ns, s.p999_ns, s.epoch_flushes,
        );
    }

    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"service_latency\",\n");
    json.push_str(
        "  \"description\": \"Client-observed round-trip latency of the batched serving layer \
         (netsim::ShardServer) over a 4-shard ShardedWormhole: one dispatcher routing each \
         800-request message against a single router-table snapshot (route_batch), N shard-affine \
         execution workers, one reassembling collector, client pipeline depth 8. Quantiles are \
         the client_rtt_ns histogram (log2-bucketed upper bounds, nanoseconds) of full message \
         round trips — encode, queue, execute, reassemble, decode — recorded once per request. \
         read_heavy = 90% point gets / 10% overwrites, mixed = 50/50, over 100k resident ~20B \
         keys. churn=true bounces one shard boundary back and forth (migrate_boundary) for the \
         whole run, so the tail includes migration freezes and router-epoch pipeline flushes \
         (epoch_flushes counts them). Single-CPU hosts time-slice the stages, inflating \
         latency vs a multicore host; the tracked claims are the relative shape: more workers \
         should not inflate p50, and churn should cost tail (p999), not the median.\",\n",
    );
    let _ = writeln!(json, "  \"host_cpus\": {host_cpus},");
    let _ = writeln!(json, "  \"keys\": {keys},");
    let _ = writeln!(json, "  \"ops_per_cell\": {ops},");
    json.push_str("  \"series\": [\n");
    for (i, s) in samples.iter().enumerate() {
        let comma = if i + 1 == samples.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"workers\": {}, \"mix\": \"{}\", \"churn\": {}, \"ops\": {}, \
             \"mops\": {:.3}, \"p50_ns\": {}, \"p99_ns\": {}, \"p999_ns\": {}, \
             \"epoch_flushes\": {}}}{comma}",
            s.workers,
            s.mix,
            s.churn,
            s.ops,
            s.mops,
            s.p50_ns,
            s.p99_ns,
            s.p999_ns,
            s.epoch_flushes,
        );
    }
    json.push_str("  ]\n");
    json.push_str("}\n");

    std::fs::write("BENCH_service.json", &json).expect("write BENCH_service.json");
    println!("{json}");
}
