//! Writes `BENCH_batch.json`: `get_batch` vs a loop of single `get`s over
//! the single-threaded `WormholeUnsafe`, the concurrent `Wormhole`, and a
//! 4-shard `ShardedWormhole` with the router fast path on and off, at
//! batch sizes 1/8/32/128/800 — plus a
//! Figure-12-style series of client-observed throughput through the netsim
//! service loop at the paper's 800-request message size.
//!
//! ```text
//! cargo run -p bench --release --bin batch_lookup_baseline
//! ```
//!
//! Set `WH_BENCH_QUICK=1` for CI's smoke mode (seconds, numbers not
//! comparable to tracked baselines).

use std::fmt::Write as _;

use bench::batch_lookup::{measure_batch_lookup, measure_service_batches};
use bench::{quick_mode, quick_or};

fn main() {
    let batches = [1usize, 8, 32, 128, 800];
    let rounds = quick_or(3, 1);
    let sizes: &[usize] = if quick_mode() {
        &[8_000]
    } else {
        &[100_000, 1_200_000]
    };
    let mut samples = Vec::new();
    for &keys in sizes {
        eprintln!(
            "measuring batched lookups over {keys} residents \
             (batches {batches:?}, best of {rounds} rounds, quick={})...",
            quick_mode(),
        );
        let run = measure_batch_lookup(keys, &batches, rounds);
        for s in &run {
            eprintln!(
                "  {:<10} keys={:<8} batch={:<4} {:<15} {:8.1} ns/key  {:7.3} Mops/s",
                s.frontend, s.keys, s.batch, s.mode, s.ns_per_key, s.mops,
            );
        }
        samples.extend(run);
    }
    let service_keys = quick_or(100_000, 8_000);
    eprintln!("measuring service-loop throughput over {service_keys} residents (batch 800)...");
    let service = measure_service_batches(service_keys, 800);
    for s in &service {
        eprintln!(
            "  service {:<10} keys={:<8} batch={:<4} {:7.3} Mops/s",
            s.frontend, s.keys, s.batch, s.mops,
        );
    }

    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"batch_lookup\",\n");
    json.push_str(
        "  \"description\": \"Point-lookup cost of get_batch vs a loop of single gets over the \
         same shuffled probe stream (every resident visited once, ~20B keys, leaf capacity 64, \
         best round). frontends: single = WormholeUnsafe, concurrent = Wormhole (optimistic \
         seqlock reads), sharded = 4-shard ShardedWormhole routing through the migration-idle \
         biased fast path (no router critical section while no migration is in flight), \
         sharded_nofast = the same front with the fast path disabled (one router critical \
         section per op or batch). get_batch pipelines up to BATCH_WINDOW=16 probes: hashes computed up front, \
         MetaTrieHT buckets prefetched, LPM binary-search steps round-robined so concurrent \
         cache misses overlap; batch=1 degenerates to the windowed engine with one probe. The \
         service series is the netsim client/server loop (encode, channel, decode, batched \
         execution) at the paper's 800-request message size, client-observed. The speedup from \
         overlap depends on how much of the probe working set misses cache: small keysets fit \
         in LLC and show mostly the reduced per-key dispatch cost; the 1.2M-key set is where \
         memory-level parallelism shows. Single-vCPU hosts still benefit: the overlap is \
         per-core memory parallelism, not thread parallelism.\",\n",
    );
    let _ = writeln!(json, "  \"host_cpus\": {host_cpus},");
    json.push_str("  \"series\": [\n");
    for (i, s) in samples.iter().enumerate() {
        let comma = if i + 1 == samples.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"frontend\": \"{}\", \"keys\": {}, \"batch\": {}, \"mode\": \"{}\", \
             \"ns_per_key\": {:.1}, \"mops\": {:.3}}}{comma}",
            s.frontend, s.keys, s.batch, s.mode, s.ns_per_key, s.mops,
        );
    }
    json.push_str("  ],\n");
    json.push_str("  \"service\": [\n");
    for (i, s) in service.iter().enumerate() {
        let comma = if i + 1 == service.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"frontend\": \"{}\", \"keys\": {}, \"batch\": {}, \"mops\": {:.3}, \
             \"stats_bytes\": {}}}{comma}",
            s.frontend, s.keys, s.batch, s.mops, s.stats_bytes,
        );
    }
    json.push_str("  ]\n");
    json.push_str("}\n");

    std::fs::write("BENCH_batch.json", &json).expect("write BENCH_batch.json");
    println!("{json}");
}
