//! Writes `BENCH_meta.json`: the MetaTrieHT probe-latency baseline
//! comparing the seed's `Vec<Vec<_>>` layout with the flat cache-line
//! bucket layout, at 1e5 and 1e6 resident anchors.
//!
//! Four metrics per layout: exact hit/miss probes (`get`), and tag-only
//! hit/miss probes (the optimistic probe the LPM binary search runs, which
//! never touches item records).
//!
//! ```text
//! cargo run -p bench --release --bin meta_probe_baseline
//! ```
//!
//! Set `WH_BENCH_QUICK=1` for CI's smoke mode (seconds, numbers not
//! comparable to tracked baselines).

use std::fmt::Write as _;

use bench::meta_layouts::measure_layouts;
use bench::quick_or;

fn main() {
    let anchor_counts: &[usize] = quick_or(&[100_000usize, 1_000_000], &[20_000]);
    let rounds = quick_or(9, 1);
    let mut rows = Vec::new();
    for &anchors in anchor_counts {
        eprintln!("measuring {anchors} anchors ({rounds} interleaved rounds)...");
        for t in measure_layouts(anchors, rounds) {
            eprintln!(
                "  {:<12} get hit {:6.1}  get miss {:6.1}  tag hit {:6.1}  tag miss {:6.1}  (ns/op)",
                t.layout, t.hit_ns, t.miss_ns, t.tag_hit_ns, t.tag_miss_ns,
            );
            rows.push((anchors, t));
        }
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"meta_probe\",\n");
    json.push_str(
        "  \"description\": \"MetaTrieHT point-probe latency (ns/op, best of 9 interleaved \
         rounds, 16384 uniform probes, Az1 ~40B keys). get_* = exact probe; tag_* = \
         optimistic tag-only probe (the LPM binary-search hot path).\",\n",
    );
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let _ = writeln!(json, "  \"host_cpus\": {host_cpus},");
    json.push_str("  \"series\": [\n");
    for (i, (anchors, t)) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"layout\": \"{}\", \"anchors\": {anchors}, \
             \"get_hit_ns\": {:.1}, \"get_miss_ns\": {:.1}, \
             \"tag_hit_ns\": {:.1}, \"tag_miss_ns\": {:.1}}}{comma}",
            t.layout, t.hit_ns, t.miss_ns, t.tag_hit_ns, t.tag_miss_ns,
        );
    }
    json.push_str("  ]\n");
    json.push_str("}\n");

    std::fs::write("BENCH_meta.json", &json).expect("write BENCH_meta.json");
    println!("{json}");
}
