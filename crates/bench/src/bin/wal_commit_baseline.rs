//! Writes `BENCH_wal.json`: durable SET throughput of the group-commit
//! write-ahead log at several writer counts, against real files.
//!
//! Each writer loops `set` + per-operation commit on one shared
//! `DurableWormhole` (`SyncPolicy::Always`), so every acknowledged
//! operation is covered by a synced `Commit` frame. The interesting
//! number is `ops_per_fsync`: with one writer every commit pays its own
//! fsync (≈1.0); with contending writers the batch leader seals the whole
//! pending buffer, so the cost is shared and the ratio climbs.
//!
//! ```text
//! cargo run -p bench --release --bin wal_commit_baseline
//! ```
//!
//! Set `WH_BENCH_QUICK=1` for CI's smoke mode (seconds, numbers not
//! comparable to tracked baselines).

use std::fmt::Write as _;
use std::time::Instant;

use bench::{quick_mode, quick_or};
use index_traits::ConcurrentOrderedIndex;
use wh_durable::{DurableOptions, DurableWormhole};

struct Sample {
    writers: usize,
    ops: u64,
    mops: f64,
    fsyncs: u64,
    ops_per_fsync: f64,
}

fn measure(writers: usize, per_writer: u64, dir: &std::path::Path) -> Sample {
    let _ = std::fs::remove_dir_all(dir);
    let idx: DurableWormhole<u64> =
        DurableWormhole::open_with(dir, DurableOptions::default()).expect("open durable index");
    let start = Instant::now();
    std::thread::scope(|scope| {
        for w in 0..writers {
            let idx = &idx;
            scope.spawn(move || {
                for i in 0..per_writer {
                    let key = format!("w{w:02}-{i:08}");
                    idx.set(key.as_bytes(), i);
                }
            });
        }
    });
    let secs = start.elapsed().as_secs_f64();
    let ops = writers as u64 * per_writer;
    let fsyncs = idx.sync_count();
    let _ = std::fs::remove_dir_all(dir);
    Sample {
        writers,
        ops,
        mops: ops as f64 / secs / 1e6,
        fsyncs,
        ops_per_fsync: ops as f64 / fsyncs.max(1) as f64,
    }
}

fn main() {
    let per_writer = quick_or(20_000u64, 1_500);
    let writer_counts: &[usize] = if quick_mode() { &[1, 4] } else { &[1, 2, 4, 8] };
    let dir = std::env::temp_dir().join(format!("wal_commit_baseline_{}", std::process::id()));
    eprintln!(
        "measuring durable SET throughput, {per_writer} ops/writer, quick={}...",
        quick_mode(),
    );
    let mut samples = Vec::new();
    for &writers in writer_counts {
        let s = measure(writers, per_writer, &dir);
        eprintln!(
            "  writers={:<2} {:8.3} Mops/s  {:>8} fsyncs  {:6.1} ops/fsync",
            s.writers, s.mops, s.fsyncs, s.ops_per_fsync,
        );
        samples.push(s);
    }

    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"wal_commit\",\n");
    json.push_str(
        "  \"description\": \"Durable SET throughput of DurableWormhole (write-ahead log with \
         group commit, SyncPolicy::Always, real files under the OS temp dir) at increasing \
         writer-thread counts, ~13B keys, 20k acknowledged ops per writer, fresh directory per \
         cell. Every op is logged, applied, and covered by a synced Commit frame before set() \
         returns; fsyncs counts the storage sync barriers actually paid, so ops_per_fsync is the \
         group-commit batching factor (1.0 = every commit paid its own fsync; higher = the batch \
         leader amortised the barrier over concurrent writers). Absolute Mops/s tracks the \
         fsync latency of the host's temp filesystem more than anything else; the batching \
         factor is the portable signal. On a single-CPU host writers time-slice, which caps how \
         many commits pile up behind one leader.\",\n",
    );
    let _ = writeln!(json, "  \"host_cpus\": {host_cpus},");
    let _ = writeln!(json, "  \"ops_per_writer\": {per_writer},");
    json.push_str("  \"series\": [\n");
    for (i, s) in samples.iter().enumerate() {
        let comma = if i + 1 == samples.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"writers\": {}, \"ops\": {}, \"mops\": {:.3}, \"fsyncs\": {}, \
             \"ops_per_fsync\": {:.2}}}{comma}",
            s.writers, s.ops, s.mops, s.fsyncs, s.ops_per_fsync,
        );
    }
    json.push_str("  ]\n");
    json.push_str("}\n");

    std::fs::write("BENCH_wal.json", &json).expect("write BENCH_wal.json");
    println!("{json}");
}
