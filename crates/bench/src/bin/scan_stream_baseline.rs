//! Writes `BENCH_scan.json`: ordered-window scan latency of the concurrent
//! Wormhole, streaming the window through the resumable cursor vs
//! materialising it with `range_from`, at short, long, and full-index
//! window lengths.
//!
//! ```text
//! cargo run -p bench --release --bin scan_stream_baseline
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use bench::scan_stream::{build_scan_index, materialise_window, stream_window};
use workloads::uniform_indices;

struct Row {
    mode: &'static str,
    label: &'static str,
    window: usize,
    pairs: usize,
    ns_per_key: f64,
    mkeys_per_sec: f64,
}

fn main() {
    let keys_n = bench::quick_or(100_000usize, 10_000);
    let rounds = bench::quick_or(5usize, 1);
    eprintln!("building index over {keys_n} Az1 keys...");
    let (wh, keys) = build_scan_index(keys_n, 7);
    // (label, window length, scan starts per round, rounds)
    let cells = [
        ("short", 100usize, bench::quick_or(256usize, 32), rounds),
        ("long", keys_n / 10, bench::quick_or(16, 4), rounds),
        ("full", keys_n, 1, rounds),
    ];
    let mut rows = Vec::new();
    for (label, window, n_starts, rounds) in cells {
        let starts = uniform_indices(n_starts, keys.len(), 13);
        for mode in ["cursor", "range_from"] {
            // Interleave rounds across modes is unnecessary here (no
            // background writer); best-of-N bounds scheduler noise.
            let mut best = f64::INFINITY;
            let mut pairs = 0usize;
            for _ in 0..rounds {
                let t = Instant::now();
                pairs = 0;
                for &p in &starts {
                    pairs += match mode {
                        "cursor" => stream_window(&wh, &keys[p], window).0,
                        _ => materialise_window(&wh, &keys[p], window).0,
                    };
                }
                best = best.min(t.elapsed().as_secs_f64());
            }
            let ns_per_key = best * 1e9 / pairs as f64;
            let row = Row {
                mode,
                label,
                window,
                pairs,
                ns_per_key,
                mkeys_per_sec: 1e3 / ns_per_key,
            };
            eprintln!(
                "  {label:<6} window={window:<7} {mode:<10} {:8.1} ns/key  {:7.2} Mkeys/s  ({} pairs/round)",
                row.ns_per_key, row.mkeys_per_sec, row.pairs,
            );
            rows.push(row);
        }
    }

    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"scan_stream\",\n");
    json.push_str(
        "  \"description\": \"Ordered-window scans over the concurrent Wormhole (100k Az1 \
         composite keys, leaf capacity 128, quiesced index, best of 5 rounds). cursor = \
         resumable scan cursor streaming borrowed pairs from one reused per-leaf batch arena; \
         range_from = same seqlock-validated read path but materialising the window as a \
         Vec of owned pairs (one key allocation per pair). short = 256 scans of 100 keys, \
         long = 16 scans of 10k keys, full = one full-index drain.\",\n",
    );
    let _ = writeln!(json, "  \"host_cpus\": {host_cpus},");
    json.push_str("  \"series\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"mode\": \"{}\", \"window_label\": \"{}\", \"window\": {}, \
             \"pairs_per_round\": {}, \"ns_per_key\": {:.1}, \"mkeys_per_sec\": {:.2}}}{comma}",
            r.mode, r.label, r.window, r.pairs, r.ns_per_key, r.mkeys_per_sec,
        );
    }
    json.push_str("  ]\n");
    json.push_str("}\n");

    std::fs::write("BENCH_scan.json", &json).expect("write BENCH_scan.json");
    println!("{json}");
}
