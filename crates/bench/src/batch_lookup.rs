//! Batched point-lookup measurement: `get_batch` vs a loop of single
//! `get`s over the same probe stream, per frontend and batch size.
//!
//! The batched path computes every probe's hash up front, prefetches the
//! MetaTrieHT buckets of all in-flight probes, and round-robins the LPM
//! binary-search steps across the window so each probe's next cache miss
//! overlaps the others' (memory-level parallelism). This module quantifies
//! that overlap: identical probe order, identical keys, the only variable
//! is whether lookups are issued one at a time or `BATCH_WINDOW` at a time.
//! `BENCH_batch.json` (written by `cargo run -p bench --release --bin
//! batch_lookup_baseline`) records the tracked baseline.

use std::sync::Arc;
use std::time::Instant;

use index_traits::{ConcurrentOrderedIndex, OrderedIndex};
use netsim::KvService;
use wormhole::WormholeUnsafe;

use crate::shard_scale::{build_sharded, build_unsharded, resident_keys, shard_bench_config};

/// One measured cell of the single-loop vs batched comparison.
#[derive(Debug, Clone)]
pub struct BatchSample {
    /// `"single"`, `"concurrent"`, `"sharded"` (router fast path on, the
    /// default), or `"sharded_nofast"` (every batch through the classic
    /// router critical section).
    pub frontend: &'static str,
    /// Resident keys in the index.
    pub keys: usize,
    /// Lookups issued per `get_batch` call (1 degenerates to the engine's
    /// windowed path with a one-entry window).
    pub batch: usize,
    /// `"single_get_loop"` or `"get_batch"`.
    pub mode: &'static str,
    /// Nanoseconds per looked-up key (best round).
    pub ns_per_key: f64,
    /// Million lookups per second (best round).
    pub mops: f64,
}

/// One measured cell of the Figure-12-style service-loop series.
#[derive(Debug, Clone)]
pub struct ServiceBatchSample {
    /// `"concurrent"` or `"sharded"`.
    pub frontend: &'static str,
    /// Resident keys in the index.
    pub keys: usize,
    /// Requests per service message (the paper's 800).
    pub batch: usize,
    /// Client-observed million operations per second.
    pub mops: f64,
    /// Size in bytes of the STATS exposition scraped over the wire after
    /// the run (0 would mean the scrape failed; CI schema-checks it).
    pub stats_bytes: usize,
}

/// A shuffled probe stream over the resident keys: every resident is
/// visited once, in an order that defeats the hardware prefetcher.
fn probe_order(keys: usize) -> Vec<usize> {
    fn gcd(a: usize, b: usize) -> usize {
        if b == 0 {
            a
        } else {
            gcd(b, a % b)
        }
    }
    // Stride by a large constant coprime with `keys`, so `i * stride mod
    // keys` walks every resident exactly once.
    let mut stride = (keys / 2 + 12_345) | 1;
    while keys > 1 && gcd(stride % keys, keys) != 1 {
        stride += 2;
    }
    (0..keys).map(|i| i.wrapping_mul(stride) % keys).collect()
}

fn time_round<F: FnMut() -> u64>(mut f: F) -> (f64, u64) {
    let start = Instant::now();
    let hits = f();
    (start.elapsed().as_secs_f64(), hits)
}

fn push_pair(
    out: &mut Vec<BatchSample>,
    frontend: &'static str,
    keys: usize,
    batch: usize,
    rounds: usize,
    mut single: impl FnMut() -> u64,
    mut batched: impl FnMut() -> u64,
) {
    for (mode, f) in [
        ("single_get_loop", &mut single as &mut dyn FnMut() -> u64),
        ("get_batch", &mut batched),
    ] {
        let mut best = f64::INFINITY;
        for _ in 0..rounds {
            let (secs, hits) = time_round(&mut *f);
            assert_eq!(hits as usize, keys, "{frontend}/{mode}: every probe hits");
            best = best.min(secs);
        }
        out.push(BatchSample {
            frontend,
            keys,
            batch,
            mode,
            ns_per_key: best * 1e9 / keys as f64,
            mops: keys as f64 / best / 1e6,
        });
    }
}

/// Measures single-get loops vs `get_batch` over four frontends: the
/// single-threaded `WormholeUnsafe`, the concurrent `Wormhole`, and a
/// 4-shard `ShardedWormhole` with the migration-idle router fast path on
/// (`"sharded"`) and off (`"sharded_nofast"`). Returns one sample per
/// frontend × batch size × mode, best of `rounds` full passes over the
/// keyset.
pub fn measure_batch_lookup(keys: usize, batches: &[usize], rounds: usize) -> Vec<BatchSample> {
    let resident = resident_keys(keys);
    let order = probe_order(keys);
    let probes: Vec<&[u8]> = order.iter().map(|&i| resident[i].as_slice()).collect();

    let single = {
        let mut wh = WormholeUnsafe::with_config(shard_bench_config());
        for (i, key) in resident.iter().enumerate() {
            wh.set(key, i as u64);
        }
        wh
    };
    let concurrent = build_unsharded(keys);
    let sharded = build_sharded(4, keys, true);
    let sharded_nofast = build_sharded(4, keys, false);

    let mut out = Vec::new();
    for &batch in batches {
        push_pair(
            &mut out,
            "single",
            keys,
            batch,
            rounds,
            || probes.iter().filter(|k| single.get(k).is_some()).count() as u64,
            || {
                let mut hits = 0u64;
                for chunk in probes.chunks(batch) {
                    hits += single.get_batch(chunk).iter().flatten().count() as u64;
                }
                hits
            },
        );
        push_pair(
            &mut out,
            "concurrent",
            keys,
            batch,
            rounds,
            || {
                probes
                    .iter()
                    .filter(|k| ConcurrentOrderedIndex::get(&concurrent, k).is_some())
                    .count() as u64
            },
            || {
                let mut hits = 0u64;
                for chunk in probes.chunks(batch) {
                    hits += ConcurrentOrderedIndex::get_batch(&concurrent, chunk)
                        .iter()
                        .flatten()
                        .count() as u64;
                }
                hits
            },
        );
        for (frontend, front) in [("sharded", &sharded), ("sharded_nofast", &sharded_nofast)] {
            push_pair(
                &mut out,
                frontend,
                keys,
                batch,
                rounds,
                || {
                    probes
                        .iter()
                        .filter(|k| ConcurrentOrderedIndex::get(front, k).is_some())
                        .count() as u64
                },
                || {
                    let mut hits = 0u64;
                    for chunk in probes.chunks(batch) {
                        hits += ConcurrentOrderedIndex::get_batch(front, chunk)
                            .iter()
                            .flatten()
                            .count() as u64;
                    }
                    hits
                },
            );
        }
    }
    out
}

/// Figure-12-style series: client-observed throughput of the netsim
/// service loop (decode → batched `get_batch` execution → encode) at the
/// paper's 800-request message size, per concurrent frontend.
pub fn measure_service_batches(keys: usize, batch: usize) -> Vec<ServiceBatchSample> {
    let resident = resident_keys(keys);
    let order = probe_order(keys);
    let probe_keys: Vec<Vec<u8>> = order.iter().map(|&i| resident[i].clone()).collect();

    let mut out = Vec::new();
    let frontends: Vec<(&'static str, Arc<dyn ConcurrentOrderedIndex<u64>>)> = vec![
        ("concurrent", Arc::new(build_unsharded(keys))),
        ("sharded", Arc::new(build_sharded(4, keys, true))),
        ("sharded_nofast", Arc::new(build_sharded(4, keys, false))),
    ];
    for (frontend, index) in frontends {
        let service = KvService::with_batch_size(index, batch);
        let stats = service.run_lookups(&probe_keys);
        assert_eq!(stats.hits, keys, "{frontend}: every service probe hits");
        // Scrape the server in-band after the run: the STATS wire command
        // must round-trip and carry the service's own counters.
        let exposition = service.fetch_stats();
        assert!(
            exposition.contains("netsim_requests_total"),
            "{frontend}: STATS exposition missing service counters"
        );
        out.push(ServiceBatchSample {
            frontend,
            keys,
            batch,
            mops: stats.mops(),
            stats_bytes: exposition.len(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_order_is_a_permutation() {
        for keys in [1usize, 7, 100, 4096] {
            let mut seen = vec![false; keys];
            for i in probe_order(keys) {
                assert!(!seen[i], "duplicate probe index {i}");
                seen[i] = true;
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn small_measurement_produces_consistent_samples() {
        let samples = measure_batch_lookup(2_000, &[1, 8], 1);
        assert_eq!(samples.len(), 4 * 2 * 2);
        for s in &samples {
            assert!(s.ns_per_key > 0.0 && s.mops > 0.0, "{s:?}");
        }
        let service = measure_service_batches(2_000, 100);
        assert_eq!(service.len(), 3);
        assert!(service.iter().all(|s| s.mops > 0.0));
    }
}
