//! Uniform drivers over every index in the workspace.

use baseline_art::Art;
use baseline_btree::BPlusTree;
use baseline_cuckoo::CuckooHashTable;
use baseline_masstree::Masstree;
use baseline_skiplist::SkipList;
use index_traits::{ConcurrentOrderedIndex, IndexStats, OrderedIndex, UnorderedIndex};
use parking_lot::RwLock;
use wormhole::{Wormhole, WormholeConfig, WormholeUnsafe};

/// The index implementations compared in the paper's figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    /// LevelDB-style skip list.
    SkipList,
    /// STX-style B+ tree (fanout 128).
    BTree,
    /// Adaptive radix tree.
    Art,
    /// Masstree (trie of B+ trees).
    Masstree,
    /// Thread-safe Wormhole.
    Wormhole,
    /// Thread-unsafe Wormhole.
    WormholeUnsafe,
    /// Cuckoo hash table (unordered, Figures 13–14 only).
    Cuckoo,
}

impl IndexKind {
    /// The five ordered indexes of Figures 10, 12, 15, 16.
    pub fn ordered_five() -> [IndexKind; 5] {
        [
            IndexKind::SkipList,
            IndexKind::BTree,
            IndexKind::Art,
            IndexKind::Masstree,
            IndexKind::Wormhole,
        ]
    }

    /// Display name used in figure output.
    pub fn name(&self) -> &'static str {
        match self {
            IndexKind::SkipList => "SkipList",
            IndexKind::BTree => "B+tree",
            IndexKind::Art => "ART",
            IndexKind::Masstree => "Masstree",
            IndexKind::Wormhole => "Wormhole",
            IndexKind::WormholeUnsafe => "Wormhole-unsafe",
            IndexKind::Cuckoo => "Cuckoo",
        }
    }
}

/// An instantiated index of any kind, with a uniform API for the harness.
pub enum AnyIndex {
    /// LevelDB-style skip list.
    SkipList(SkipList<u64>),
    /// STX-style B+ tree.
    BTree(BPlusTree<u64>),
    /// Adaptive radix tree.
    Art(Art<u64>),
    /// Masstree.
    Masstree(Masstree<u64>),
    /// Thread-safe Wormhole.
    Wormhole(Wormhole<u64>),
    /// Thread-unsafe Wormhole.
    WormholeUnsafe(WormholeUnsafe<u64>),
    /// Cuckoo hash table.
    Cuckoo(CuckooHashTable<u64>),
}

impl AnyIndex {
    /// Creates an empty index of the given kind.
    pub fn new(kind: IndexKind) -> Self {
        match kind {
            IndexKind::SkipList => AnyIndex::SkipList(SkipList::new()),
            IndexKind::BTree => AnyIndex::BTree(BPlusTree::new()),
            IndexKind::Art => AnyIndex::Art(Art::new()),
            IndexKind::Masstree => AnyIndex::Masstree(Masstree::new()),
            IndexKind::Wormhole => AnyIndex::Wormhole(Wormhole::new()),
            IndexKind::WormholeUnsafe => AnyIndex::WormholeUnsafe(WormholeUnsafe::new()),
            IndexKind::Cuckoo => AnyIndex::Cuckoo(CuckooHashTable::new()),
        }
    }

    /// Creates an empty Wormhole (thread-unsafe) with a specific
    /// configuration — used by the Figure 11 ablation.
    pub fn wormhole_with_config(config: WormholeConfig) -> Self {
        AnyIndex::WormholeUnsafe(WormholeUnsafe::with_config(config))
    }

    /// Which kind this instance is.
    pub fn kind(&self) -> IndexKind {
        match self {
            AnyIndex::SkipList(_) => IndexKind::SkipList,
            AnyIndex::BTree(_) => IndexKind::BTree,
            AnyIndex::Art(_) => IndexKind::Art,
            AnyIndex::Masstree(_) => IndexKind::Masstree,
            AnyIndex::Wormhole(_) => IndexKind::Wormhole,
            AnyIndex::WormholeUnsafe(_) => IndexKind::WormholeUnsafe,
            AnyIndex::Cuckoo(_) => IndexKind::Cuckoo,
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        self.kind().name()
    }

    /// Inserts a key (single-threaded build phase).
    pub fn insert(&mut self, key: &[u8], value: u64) {
        match self {
            AnyIndex::SkipList(i) => {
                i.set(key, value);
            }
            AnyIndex::BTree(i) => {
                i.set(key, value);
            }
            AnyIndex::Art(i) => {
                i.set(key, value);
            }
            AnyIndex::Masstree(i) => {
                i.set(key, value);
            }
            AnyIndex::Wormhole(i) => {
                i.set(key, value);
            }
            AnyIndex::WormholeUnsafe(i) => {
                i.set(key, value);
            }
            AnyIndex::Cuckoo(i) => {
                i.set(key, value);
            }
        }
    }

    /// Point lookup (shared access).
    pub fn get(&self, key: &[u8]) -> Option<u64> {
        match self {
            AnyIndex::SkipList(i) => i.get(key),
            AnyIndex::BTree(i) => i.get(key),
            AnyIndex::Art(i) => i.get(key),
            AnyIndex::Masstree(i) => i.get(key),
            AnyIndex::Wormhole(i) => i.get(key),
            AnyIndex::WormholeUnsafe(i) => i.get(key),
            AnyIndex::Cuckoo(i) => i.get(key),
        }
    }

    /// Range query (shared access); panics for the cuckoo hash table, which
    /// cannot serve ordered scans — exactly the limitation Figure 13 is
    /// about.
    pub fn range_from(&self, start: &[u8], count: usize) -> Vec<(Vec<u8>, u64)> {
        match self {
            AnyIndex::SkipList(i) => i.range_from(start, count),
            AnyIndex::BTree(i) => i.range_from(start, count),
            AnyIndex::Art(i) => i.range_from(start, count),
            AnyIndex::Masstree(i) => i.range_from(start, count),
            AnyIndex::Wormhole(i) => i.range_from(start, count),
            AnyIndex::WormholeUnsafe(i) => i.range_from(start, count),
            AnyIndex::Cuckoo(_) => panic!("a hash table cannot serve range queries"),
        }
    }

    /// Number of stored keys.
    pub fn len(&self) -> usize {
        match self {
            AnyIndex::SkipList(i) => i.len(),
            AnyIndex::BTree(i) => i.len(),
            AnyIndex::Art(i) => i.len(),
            AnyIndex::Masstree(i) => i.len(),
            AnyIndex::Wormhole(i) => ConcurrentOrderedIndex::len(i),
            AnyIndex::WormholeUnsafe(i) => i.len(),
            AnyIndex::Cuckoo(i) => i.len(),
        }
    }

    /// Returns `true` when the index stores no keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Memory accounting.
    pub fn stats(&self) -> IndexStats {
        match self {
            AnyIndex::SkipList(i) => i.stats(),
            AnyIndex::BTree(i) => i.stats(),
            AnyIndex::Art(i) => i.stats(),
            AnyIndex::Masstree(i) => i.stats(),
            AnyIndex::Wormhole(i) => ConcurrentOrderedIndex::stats(i),
            AnyIndex::WormholeUnsafe(i) => i.stats(),
            AnyIndex::Cuckoo(i) => i.stats(),
        }
    }

    /// Builds an index of `kind` over `keys` (values are the key positions).
    pub fn build(kind: IndexKind, keys: &[Vec<u8>]) -> Self {
        let mut index = Self::new(kind);
        for (i, key) in keys.iter().enumerate() {
            index.insert(key, i as u64);
        }
        index
    }
}

/// A Masstree wrapped in a reader/writer lock so it can stand in for the
/// original's internally synchronised implementation in the multi-threaded
/// read/write experiment (Figure 17). The substitution is recorded in
/// `DESIGN.md`; it penalises Masstree under write-heavy mixes, which is noted
/// alongside the Figure 17 results.
pub struct LockedMasstree {
    inner: RwLock<Masstree<u64>>,
}

impl Default for LockedMasstree {
    fn default() -> Self {
        Self::new()
    }
}

impl LockedMasstree {
    /// Creates an empty locked Masstree.
    pub fn new() -> Self {
        Self {
            inner: RwLock::new(Masstree::new()),
        }
    }
}

impl ConcurrentOrderedIndex<u64> for LockedMasstree {
    fn name(&self) -> &'static str {
        "masstree-rwlock"
    }

    fn get(&self, key: &[u8]) -> Option<u64> {
        self.inner.read().get(key)
    }

    fn set(&self, key: &[u8], value: u64) -> Option<u64> {
        self.inner.write().set(key, value)
    }

    fn del(&self, key: &[u8]) -> Option<u64> {
        self.inner.write().del(key)
    }

    fn len(&self) -> usize {
        self.inner.read().len()
    }

    fn range_from(&self, start: &[u8], count: usize) -> Vec<(Vec<u8>, u64)> {
        self.inner.read().range_from(start, count)
    }

    fn stats(&self) -> IndexStats {
        self.inner.read().stats()
    }
}

/// A thread-safe driver for the read/write experiments (Figure 17).
pub enum ConcurrentDriver {
    /// The thread-safe Wormhole.
    Wormhole(Wormhole<u64>),
    /// Masstree behind a reader/writer lock (see [`LockedMasstree`]).
    Masstree(LockedMasstree),
}

impl ConcurrentDriver {
    /// Display name used in figure output.
    pub fn name(&self) -> &'static str {
        match self {
            ConcurrentDriver::Wormhole(_) => "WH",
            ConcurrentDriver::Masstree(_) => "MT",
        }
    }

    /// Point lookup.
    pub fn get(&self, key: &[u8]) -> Option<u64> {
        match self {
            ConcurrentDriver::Wormhole(i) => i.get(key),
            ConcurrentDriver::Masstree(i) => i.get(key),
        }
    }

    /// Insert or overwrite.
    pub fn set(&self, key: &[u8], value: u64) -> Option<u64> {
        match self {
            ConcurrentDriver::Wormhole(i) => i.set(key, value),
            ConcurrentDriver::Masstree(i) => i.set(key, value),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kinds_build_and_serve_lookups() {
        let keys: Vec<Vec<u8>> = (0..500u32)
            .map(|i| format!("key-{i:05}").into_bytes())
            .collect();
        for kind in [
            IndexKind::SkipList,
            IndexKind::BTree,
            IndexKind::Art,
            IndexKind::Masstree,
            IndexKind::Wormhole,
            IndexKind::WormholeUnsafe,
            IndexKind::Cuckoo,
        ] {
            let index = AnyIndex::build(kind, &keys);
            assert_eq!(index.len(), keys.len(), "{}", index.name());
            for (i, k) in keys.iter().enumerate() {
                assert_eq!(index.get(k), Some(i as u64), "{}", index.name());
            }
            assert_eq!(index.get(b"missing"), None);
        }
    }

    #[test]
    fn ordered_kinds_agree_on_ranges() {
        let keys: Vec<Vec<u8>> = (0..300u32)
            .map(|i| format!("k{i:04}").into_bytes())
            .collect();
        let reference = AnyIndex::build(IndexKind::BTree, &keys).range_from(b"k0100", 20);
        for kind in IndexKind::ordered_five() {
            let index = AnyIndex::build(kind, &keys);
            assert_eq!(
                index.range_from(b"k0100", 20),
                reference,
                "{}",
                index.name()
            );
        }
    }

    #[test]
    #[should_panic(expected = "cannot serve range queries")]
    fn cuckoo_rejects_ranges() {
        let index = AnyIndex::build(IndexKind::Cuckoo, &[b"a".to_vec()]);
        let _ = index.range_from(b"", 1);
    }

    #[test]
    fn locked_masstree_is_thread_safe() {
        use std::sync::Arc;
        let index = Arc::new(LockedMasstree::new());
        let mut handles = Vec::new();
        for t in 0..4 {
            let index = Arc::clone(&index);
            handles.push(std::thread::spawn(move || {
                for i in 0..500u64 {
                    index.set(format!("t{t}-{i:04}").as_bytes(), i);
                    assert_eq!(index.get(format!("t{t}-{i:04}").as_bytes()), Some(i));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(ConcurrentOrderedIndex::len(&*index), 2000);
    }
}
