//! Benchmark harness for the Wormhole reproduction.
//!
//! The crate has two faces:
//!
//! * a library ([`drivers`], [`measure`], [`figures`]) with a uniform driver
//!   over every index, thread-scaling measurement helpers, and one function
//!   per table/figure of the paper's evaluation that returns the data series
//!   the paper plots;
//! * the `figures` binary (`cargo run -p bench --release --bin figures`)
//!   which runs those functions and prints paper-style rows, and the
//!   Criterion benches under `benches/` which track the same workloads with
//!   statistical rigour at micro scale.
//!
//! Absolute numbers depend on the machine; the paper's claims are about the
//! *relative* ordering and trends, which is what `EXPERIMENTS.md` records.

pub mod batch_lookup;
pub mod contended;
pub mod drivers;
pub mod figures;
pub mod measure;
pub mod meta_layouts;
pub mod scan_stream;
pub mod service_latency;
pub mod shard_scale;

pub use batch_lookup::{
    measure_batch_lookup, measure_service_batches, BatchSample, ServiceBatchSample,
};
pub use contended::{measure_contended, measure_modes, ContendedSample};
pub use drivers::{AnyIndex, ConcurrentDriver, IndexKind, LockedMasstree};
pub use measure::{mops, parallel_lookup_mops, quick_mode, quick_or, Timer};
pub use meta_layouts::{measure_layouts, ProbeWorkload, SeedMetaTable};
pub use service_latency::{measure_service_latency, measure_service_sweep, ServiceLatencySample};
pub use shard_scale::{measure_scaling, measure_skew_shift, Mix, ShardSample, SkewShiftSample};
