//! One function per table/figure of the paper's evaluation section.
//!
//! Every function takes a [`FigureScale`] so the same code can run at test
//! scale (thousands of keys), laptop scale (the default 100 k keys), or
//! paper scale (hundreds of millions of keys, given enough memory and time).

use std::sync::Arc;

use index_traits::ConcurrentOrderedIndex;
use netsim::{KvService, LinkModel};
use wormhole::{Wormhole, WormholeConfig};

use workloads::{
    generate, mixed_ops, paper_keysets, prefix_keyset, uniform_indices, Keyset, KeysetId, Op, OpMix,
};

use crate::drivers::{AnyIndex, ConcurrentDriver, IndexKind, LockedMasstree};
use crate::measure::{insert_mops, mops, parallel_lookup_mops, parallel_range_mops, Timer};

/// Scale parameters shared by all figure functions.
#[derive(Debug, Clone, Copy)]
pub struct FigureScale {
    /// Keys per keyset.
    pub keys: usize,
    /// Number of point-lookup probes per measurement.
    pub probes: usize,
    /// Maximum number of threads for the multi-threaded experiments.
    pub threads: usize,
    /// RNG seed for keyset and probe generation.
    pub seed: u64,
}

impl Default for FigureScale {
    fn default() -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .min(16);
        Self {
            keys: workloads::DEFAULT_SCALE,
            probes: workloads::DEFAULT_SCALE * 2,
            threads,
            seed: 42,
        }
    }
}

impl FigureScale {
    /// A very small scale used by tests.
    pub fn tiny() -> Self {
        Self {
            keys: 2_000,
            probes: 4_000,
            threads: 2,
            seed: 42,
        }
    }
}

/// One output row: a label (x-axis category) plus named series values.
#[derive(Debug, Clone)]
pub struct Row {
    /// X-axis label (keyset name, thread count, key length, …).
    pub label: String,
    /// (series name, value) pairs. Values are MOPS unless stated otherwise.
    pub values: Vec<(String, f64)>,
}

impl Row {
    fn new(label: impl Into<String>) -> Self {
        Self {
            label: label.into(),
            values: Vec::new(),
        }
    }

    fn push(&mut self, name: impl Into<String>, value: f64) {
        self.values.push((name.into(), value));
    }

    /// Returns the value of a named series, if present.
    pub fn value(&self, name: &str) -> Option<f64> {
        self.values.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }
}

/// A generated keyset bundled with a uniform probe sequence.
struct Workload {
    keyset: Keyset,
    probes: Vec<usize>,
}

fn workload(id: KeysetId, scale: &FigureScale) -> Workload {
    let keyset = generate(id, scale.keys, scale.seed);
    let probes = uniform_indices(scale.probes, keyset.keys.len(), scale.seed ^ 0x9E37);
    Workload { keyset, probes }
}

// ---------------------------------------------------------------------
// Table 1
// ---------------------------------------------------------------------

/// One row of Table 1: keyset description, paper-scale statistics, and the
/// statistics of the keyset actually generated at this scale.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Keyset name.
    pub name: &'static str,
    /// Paper's description.
    pub description: &'static str,
    /// Keys in the paper's keyset (millions).
    pub paper_keys_millions: f64,
    /// Size of the paper's keyset (GB).
    pub paper_size_gb: f64,
    /// Keys generated at this scale.
    pub generated_keys: usize,
    /// Average generated key length (bytes).
    pub generated_avg_len: f64,
    /// Total generated key bytes (MB).
    pub generated_mb: f64,
}

/// Reproduces Table 1: the keysets and their measured shape.
pub fn table1(scale: &FigureScale) -> Vec<Table1Row> {
    paper_keysets()
        .into_iter()
        .map(|spec| {
            let keyset = generate(spec.id, scale.keys, scale.seed);
            Table1Row {
                name: spec.name,
                description: spec.description,
                paper_keys_millions: spec.paper_keys_millions,
                paper_size_gb: spec.paper_size_gb,
                generated_keys: keyset.keys.len(),
                generated_avg_len: keyset.avg_len(),
                generated_mb: keyset.total_bytes() as f64 / 1e6,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Figure 9: lookup throughput vs. thread count (Az1).
// ---------------------------------------------------------------------

/// Reproduces Figure 9: lookup throughput on Az1 with 1..=N threads for the
/// five ordered indexes plus the thread-unsafe Wormhole.
pub fn fig9(scale: &FigureScale) -> Vec<Row> {
    let wl = workload(KeysetId::Az1, scale);
    let kinds = [
        IndexKind::SkipList,
        IndexKind::BTree,
        IndexKind::Art,
        IndexKind::Masstree,
        IndexKind::Wormhole,
        IndexKind::WormholeUnsafe,
    ];
    let indexes: Vec<AnyIndex> = kinds
        .iter()
        .map(|&k| AnyIndex::build(k, &wl.keyset.keys))
        .collect();
    let mut thread_counts = vec![1usize, 2, 4, 8, 16];
    thread_counts.retain(|&t| t <= scale.threads);
    if !thread_counts.contains(&scale.threads) {
        thread_counts.push(scale.threads);
    }
    let mut rows = Vec::new();
    for &threads in &thread_counts {
        let mut row = Row::new(threads.to_string());
        for index in &indexes {
            let tput = parallel_lookup_mops(index, &wl.keyset.keys, &wl.probes, threads);
            row.push(index.name(), tput);
        }
        rows.push(row);
    }
    rows
}

// ---------------------------------------------------------------------
// Figure 10: lookup throughput per keyset (all threads).
// ---------------------------------------------------------------------

/// Reproduces Figure 10: lookup throughput on every keyset with the five
/// ordered indexes, using the full thread count.
pub fn fig10(scale: &FigureScale) -> Vec<Row> {
    KeysetId::all()
        .iter()
        .map(|&id| {
            let wl = workload(id, scale);
            let mut row = Row::new(id.name());
            for kind in IndexKind::ordered_five() {
                let index = AnyIndex::build(kind, &wl.keyset.keys);
                let tput = parallel_lookup_mops(&index, &wl.keyset.keys, &wl.probes, scale.threads);
                row.push(index.name(), tput);
            }
            row
        })
        .collect()
}

// ---------------------------------------------------------------------
// Figure 11: optimisation ablation.
// ---------------------------------------------------------------------

/// Reproduces Figure 11: lookup throughput of B+ tree and of Wormhole with
/// optimisations applied incrementally (BaseWormhole, +TagMatching,
/// +IncHashing, +SortByTag, +DirectPos).
pub fn fig11(scale: &FigureScale) -> Vec<Row> {
    KeysetId::all()
        .iter()
        .map(|&id| {
            let wl = workload(id, scale);
            let mut row = Row::new(id.name());
            let btree = AnyIndex::build(IndexKind::BTree, &wl.keyset.keys);
            row.push(
                "B+tree",
                parallel_lookup_mops(&btree, &wl.keyset.keys, &wl.probes, scale.threads),
            );
            for (name, config) in WormholeConfig::ablation_ladder() {
                let mut index = AnyIndex::wormhole_with_config(config);
                for (i, key) in wl.keyset.keys.iter().enumerate() {
                    index.insert(key, i as u64);
                }
                row.push(
                    name,
                    parallel_lookup_mops(&index, &wl.keyset.keys, &wl.probes, scale.threads),
                );
            }
            row
        })
        .collect()
}

// ---------------------------------------------------------------------
// Figure 12: lookup throughput on a networked key-value store.
// ---------------------------------------------------------------------

/// Reproduces Figure 12: the Figure 10 experiment served through the
/// simulated 100 Gb/s batched key-value service. Host-side throughput is
/// measured, then the link model converts it into delivered client
/// throughput; a real (in-process) batched service run for Wormhole keeps
/// the measurement honest.
pub fn fig12(scale: &FigureScale) -> Vec<Row> {
    let link = LinkModel::infiniband_100g();
    KeysetId::all()
        .iter()
        .map(|&id| {
            let wl = workload(id, scale);
            let avg_key = wl.keyset.avg_len().ceil() as usize;
            let request_bytes = 5 + avg_key;
            let response_bytes = 9;
            let mut row = Row::new(id.name());
            for kind in IndexKind::ordered_five() {
                let index = AnyIndex::build(kind, &wl.keyset.keys);
                let local =
                    parallel_lookup_mops(&index, &wl.keyset.keys, &wl.probes, scale.threads);
                let delivered =
                    link.delivered_ops_per_second(local * 1e6, request_bytes, response_bytes) / 1e6;
                row.push(index.name(), delivered);
            }
            // Sanity-check the model against a real batched service pass over
            // the thread-safe Wormhole (recorded as its own series).
            let wh: Arc<Wormhole<u64>> = Arc::new(Wormhole::new());
            for (i, key) in wl.keyset.keys.iter().enumerate() {
                wh.set(key, i as u64);
            }
            let service = KvService::new(wh);
            let sample: Vec<Vec<u8>> = wl
                .probes
                .iter()
                .take(scale.probes.min(20_000))
                .map(|&p| wl.keyset.keys[p].clone())
                .collect();
            let stats = service.run_lookups(&sample);
            row.push("Wormhole-service-measured", stats.mops());
            row
        })
        .collect()
}

// ---------------------------------------------------------------------
// Figure 13: Wormhole vs. a cuckoo hash table.
// ---------------------------------------------------------------------

/// Reproduces Figure 13: point-lookup throughput of Wormhole and the cuckoo
/// hash table on every keyset.
pub fn fig13(scale: &FigureScale) -> Vec<Row> {
    KeysetId::all()
        .iter()
        .map(|&id| {
            let wl = workload(id, scale);
            let mut row = Row::new(id.name());
            for kind in [IndexKind::Wormhole, IndexKind::Cuckoo] {
                let index = AnyIndex::build(kind, &wl.keyset.keys);
                row.push(
                    index.name(),
                    parallel_lookup_mops(&index, &wl.keyset.keys, &wl.probes, scale.threads),
                );
            }
            row
        })
        .collect()
}

// ---------------------------------------------------------------------
// Figure 14: anchor-length sensitivity (Kshort vs Klong).
// ---------------------------------------------------------------------

/// Reproduces Figure 14: lookup throughput of Wormhole and the cuckoo hash
/// table on fixed-length keysets whose content is fully random (Kshort) or
/// random only in the last four bytes (Klong), for key lengths 8–512 bytes.
pub fn fig14(scale: &FigureScale) -> Vec<Row> {
    let lengths = [8usize, 16, 32, 64, 128, 256, 512];
    lengths
        .iter()
        .map(|&len| {
            let mut row = Row::new(len.to_string());
            for (variant, long_prefix) in [("Kshort", false), ("Klong", true)] {
                let keyset = prefix_keyset(len, scale.keys, long_prefix, scale.seed);
                let probes = uniform_indices(scale.probes, keyset.keys.len(), scale.seed ^ 0x14);
                for kind in [IndexKind::Wormhole, IndexKind::Cuckoo] {
                    let index = AnyIndex::build(kind, &keyset.keys);
                    row.push(
                        format!("{}, {}", index.name(), variant),
                        parallel_lookup_mops(&index, &keyset.keys, &probes, scale.threads),
                    );
                }
            }
            row
        })
        .collect()
}

// ---------------------------------------------------------------------
// Figure 15: insertion-only throughput (single thread).
// ---------------------------------------------------------------------

/// Reproduces Figure 15: single-threaded insertion throughput building each
/// index from empty, per keyset.
pub fn fig15(scale: &FigureScale) -> Vec<Row> {
    KeysetId::all()
        .iter()
        .map(|&id| {
            let keyset = generate(id, scale.keys, scale.seed);
            let mut row = Row::new(id.name());
            for kind in IndexKind::ordered_five() {
                let mut index = AnyIndex::new(kind);
                row.push(index.name(), insert_mops(&mut index, &keyset.keys));
            }
            row
        })
        .collect()
}

// ---------------------------------------------------------------------
// Figure 16: memory usage.
// ---------------------------------------------------------------------

/// Reproduces Figure 16: memory usage (MB at this scale) of each index per
/// keyset, plus the paper's baseline of key bytes + one pointer per key.
pub fn fig16(scale: &FigureScale) -> Vec<Row> {
    KeysetId::all()
        .iter()
        .map(|&id| {
            let keyset = generate(id, scale.keys, scale.seed);
            let mut row = Row::new(id.name());
            for kind in IndexKind::ordered_five() {
                let index = AnyIndex::build(kind, &keyset.keys);
                row.push(index.name(), index.stats().total_bytes() as f64 / 1e6);
            }
            let baseline = keyset.total_bytes() + keyset.keys.len() * 8;
            row.push("Baseline", baseline as f64 / 1e6);
            row
        })
        .collect()
}

// ---------------------------------------------------------------------
// Figure 17: mixed lookups and insertions.
// ---------------------------------------------------------------------

/// Reproduces Figure 17: multi-threaded throughput under mixed
/// lookup/insert workloads (5%, 50%, 95% insertions) for Masstree (behind a
/// reader/writer lock — see `DESIGN.md`) and the thread-safe Wormhole.
pub fn fig17(scale: &FigureScale) -> Vec<Row> {
    KeysetId::all()
        .iter()
        .map(|&id| {
            let keyset = generate(id, scale.keys, scale.seed);
            let mut row = Row::new(id.name());
            for mix in OpMix::figure17() {
                let ops = mixed_ops(scale.probes, mix, keyset.keys.len(), scale.seed ^ 0x17);
                let builders: [fn() -> ConcurrentDriver; 2] = [
                    || ConcurrentDriver::Masstree(LockedMasstree::new()),
                    || ConcurrentDriver::Wormhole(Wormhole::new()),
                ];
                for build in builders {
                    let driver = build();
                    // Preload the first half of the keyset (lookups target it).
                    for (i, key) in keyset.keys.iter().take(keyset.keys.len() / 2).enumerate() {
                        driver.set(key, i as u64);
                    }
                    let tput = run_mixed(&driver, &keyset.keys, &ops, scale.threads);
                    row.push(
                        format!("{} ({}% insert)", driver.name(), mix.insert_pct),
                        tput,
                    );
                }
            }
            row
        })
        .collect()
}

/// Runs a mixed operation stream across `threads` threads and returns MOPS.
fn run_mixed(driver: &ConcurrentDriver, keys: &[Vec<u8>], ops: &[Op], threads: usize) -> f64 {
    let timer = Timer::new();
    let chunk = ops.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for part in ops.chunks(chunk.max(1)) {
            scope.spawn(move || {
                for op in part {
                    match op {
                        Op::Get(i) => {
                            let _ = driver.get(&keys[*i]);
                        }
                        Op::Set(i) => {
                            driver.set(&keys[*i], *i as u64);
                        }
                    }
                }
            });
        }
    });
    mops(ops.len(), timer.seconds())
}

// ---------------------------------------------------------------------
// Figure 18: range queries.
// ---------------------------------------------------------------------

/// Reproduces Figure 18: throughput of range queries scanning up to 100 keys
/// from a random existing start key, for skip list, B+ tree, Masstree, and
/// Wormhole (ART is omitted, as in the paper).
pub fn fig18(scale: &FigureScale) -> Vec<Row> {
    KeysetId::all()
        .iter()
        .map(|&id| {
            let wl = workload(id, scale);
            // Range queries are ~100x the work of a point lookup; scale the
            // query count down so the figure completes in reasonable time.
            let starts: Vec<usize> = wl.probes.iter().copied().take(scale.probes / 20).collect();
            let mut row = Row::new(id.name());
            for kind in [
                IndexKind::SkipList,
                IndexKind::BTree,
                IndexKind::Masstree,
                IndexKind::Wormhole,
            ] {
                let index = AnyIndex::build(kind, &wl.keyset.keys);
                row.push(
                    index.name(),
                    parallel_range_mops(&index, &wl.keyset.keys, &starts, 100, scale.threads),
                );
            }
            row
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> FigureScale {
        FigureScale::tiny()
    }

    #[test]
    fn table1_has_eight_rows_with_generated_stats() {
        let rows = table1(&tiny());
        assert_eq!(rows.len(), 8);
        for row in &rows {
            assert_eq!(row.generated_keys, tiny().keys);
            assert!(row.generated_avg_len > 0.0);
            assert!(row.generated_mb > 0.0);
        }
        // K10 keys are 1024 bytes.
        assert!((rows[7].generated_avg_len - 1024.0).abs() < 1.0);
    }

    #[test]
    fn fig9_scales_thread_counts() {
        let rows = fig9(&tiny());
        assert!(!rows.is_empty());
        assert_eq!(rows[0].label, "1");
        for row in &rows {
            assert_eq!(row.values.len(), 6);
            for (name, tput) in &row.values {
                assert!(*tput > 0.0, "{name} reported zero throughput");
            }
        }
    }

    #[test]
    fn fig10_and_fig13_cover_all_keysets() {
        let rows = fig10(&tiny());
        assert_eq!(rows.len(), 8);
        assert_eq!(rows[0].values.len(), 5);
        let rows = fig13(&tiny());
        assert_eq!(rows.len(), 8);
        assert_eq!(rows[0].values.len(), 2);
    }

    #[test]
    fn fig11_reports_the_ablation_ladder() {
        let rows = fig11(&FigureScale {
            keys: 1_500,
            probes: 3_000,
            threads: 2,
            seed: 1,
        });
        assert_eq!(rows.len(), 8);
        let names: Vec<&str> = rows[0].values.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "B+tree",
                "BaseWormhole",
                "+TagMatching",
                "+IncHashing",
                "+SortByTag",
                "+DirectPos"
            ]
        );
    }

    #[test]
    fn fig14_reports_both_variants() {
        let scale = FigureScale {
            keys: 1_000,
            probes: 2_000,
            threads: 2,
            seed: 3,
        };
        let rows = fig14(&scale);
        assert_eq!(rows.len(), 7);
        assert_eq!(rows[0].label, "8");
        assert_eq!(rows[0].values.len(), 4);
    }

    #[test]
    fn fig15_16_17_18_run_at_tiny_scale() {
        let scale = FigureScale {
            keys: 1_000,
            probes: 1_000,
            threads: 2,
            seed: 4,
        };
        assert_eq!(fig15(&scale).len(), 8);
        let mem = fig16(&scale);
        assert_eq!(mem.len(), 8);
        // Every index uses at least the baseline's key bytes.
        for row in &mem {
            let baseline = row.value("Baseline").unwrap();
            for (name, v) in &row.values {
                if name != "Baseline" {
                    assert!(*v > baseline * 0.5, "{name} reports implausible memory");
                }
            }
        }
        let rows = fig17(&scale);
        assert_eq!(rows.len(), 8);
        assert_eq!(rows[0].values.len(), 6);
        let rows = fig18(&scale);
        assert_eq!(rows.len(), 8);
        assert_eq!(rows[0].values.len(), 4);
    }

    #[test]
    fn fig12_applies_the_link_model() {
        let scale = FigureScale {
            keys: 1_500,
            probes: 2_000,
            threads: 2,
            seed: 5,
        };
        let rows = fig12(&scale);
        assert_eq!(rows.len(), 8);
        for row in &rows {
            assert!(row.value("Wormhole").unwrap() > 0.0);
            assert!(row.value("Wormhole-service-measured").unwrap() > 0.0);
        }
    }
}
