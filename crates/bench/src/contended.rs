//! Contended-read measurement: N reader threads racing one structural
//! writer, comparing the per-leaf `RwLock` read path against the seqlock
//! optimistic read path of the concurrent Wormhole.
//!
//! The writer continuously inserts a run of sibling keys into a random
//! region (forcing leaf splits) and deletes them again (forcing merges), so
//! readers constantly encounter leaves whose write locks are held and whose
//! seqlock counters are churning. Readers hammer point lookups over the
//! stable resident keys; their aggregate throughput is the measurement.
//! `BENCH_concurrent.json` (written by
//! `cargo run -p bench --release --bin contended_read_baseline`) records the
//! tracked baseline.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use index_traits::ConcurrentOrderedIndex;
use wormhole::{Wormhole, WormholeConfig};

/// One measured configuration.
#[derive(Debug, Clone)]
pub struct ContendedSample {
    /// `"rwlock"` or `"optimistic"`.
    pub mode: &'static str,
    /// Number of reader threads.
    pub readers: usize,
    /// Whether the splitting/merging writer ran during the measurement.
    pub writer: bool,
    /// Mean wall-clock nanoseconds per lookup per reader thread.
    pub read_ns: f64,
    /// Aggregate reader throughput in million lookups per second.
    pub mreads_per_sec: f64,
    /// Writer operations completed during the window (0 without a writer).
    pub writer_ops: u64,
}

/// The resident key for slot `i` (stable across the whole run).
pub fn resident_key(i: usize) -> Vec<u8> {
    format!("user:{i:08}:profile").into_bytes()
}

/// Seed for the churn writer's xorshift region picker.
pub const CHURN_SEED: u64 = 0x9e37_79b9_7f4a_7c15;

/// One churn wave of the structural writer: pick a random resident region,
/// blow its leaf up with sibling keys (forcing a split), then drain them
/// (forcing a merge). `x` is the xorshift state; returns operations
/// performed. Shared by the measurement harness and the Criterion bench so
/// both exercise the identical contention pattern.
pub fn churn_wave(wh: &Wormhole<u64>, keys: usize, x: &mut u64) -> u64 {
    *x ^= *x << 13;
    *x ^= *x >> 7;
    *x ^= *x << 17;
    let base = (*x as usize) % keys;
    let mut ops = 0u64;
    for j in 1..=64u8 {
        let mut k = resident_key(base);
        k.push(b'~');
        k.push(j);
        wh.set(&k, u64::from(j));
        ops += 1;
    }
    for j in 1..=64u8 {
        let mut k = resident_key(base);
        k.push(b'~');
        k.push(j);
        wh.del(&k);
        ops += 1;
    }
    ops
}

/// Builds the index under test with the given read mode.
pub fn build_index(keys: usize, optimistic: bool) -> Wormhole<u64> {
    let config = WormholeConfig::optimized()
        .with_leaf_capacity(64)
        .with_optimistic_reads(optimistic);
    let wh = Wormhole::with_config(config);
    for i in 0..keys {
        wh.set(&resident_key(i), i as u64);
    }
    wh
}

/// Runs one measurement window: `readers` lookup threads over `keys`
/// resident keys for `duration`, optionally with the churn writer.
pub fn measure_contended(
    readers: usize,
    keys: usize,
    duration: Duration,
    optimistic: bool,
    with_writer: bool,
) -> ContendedSample {
    let wh = Arc::new(build_index(keys, optimistic));
    let probe_keys: Arc<Vec<Vec<u8>>> = Arc::new((0..keys).map(resident_key).collect());
    let stop = Arc::new(AtomicBool::new(false));
    let total_reads = Arc::new(AtomicU64::new(0));
    let writer_ops = Arc::new(AtomicU64::new(0));
    let started = Instant::now();
    std::thread::scope(|scope| {
        if with_writer {
            let wh = Arc::clone(&wh);
            let stop = Arc::clone(&stop);
            let writer_ops = Arc::clone(&writer_ops);
            scope.spawn(move || {
                let mut x = CHURN_SEED;
                let mut ops = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    ops += churn_wave(&wh, keys, &mut x);
                }
                writer_ops.store(ops, Ordering::Relaxed);
            });
        }
        for r in 0..readers {
            let wh = Arc::clone(&wh);
            let stop = Arc::clone(&stop);
            let total_reads = Arc::clone(&total_reads);
            let probe_keys = Arc::clone(&probe_keys);
            scope.spawn(move || {
                let mut i = r * 7919;
                let mut local = 0u64;
                let mut hits = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    // A small batch per stop-flag check keeps the flag out
                    // of the measured loop.
                    for _ in 0..256 {
                        i = (i + 1) % probe_keys.len();
                        hits += u64::from(wh.get(&probe_keys[i]).is_some());
                        local += 1;
                    }
                }
                assert_eq!(hits, local, "resident keys must never be missed");
                total_reads.fetch_add(local, Ordering::Relaxed);
            });
        }
        std::thread::sleep(duration);
        stop.store(true, Ordering::Relaxed);
    });
    let elapsed = started.elapsed();
    let reads = total_reads.load(Ordering::Relaxed).max(1);
    ContendedSample {
        mode: if optimistic { "optimistic" } else { "rwlock" },
        readers,
        writer: with_writer,
        read_ns: elapsed.as_nanos() as f64 * readers as f64 / reads as f64,
        mreads_per_sec: reads as f64 / elapsed.as_secs_f64() / 1e6,
        writer_ops: writer_ops.load(Ordering::Relaxed),
    }
}

/// Best-of-`rounds` interleaved comparison of both read modes for one
/// reader count, with and without the churn writer.
pub fn measure_modes(
    readers: usize,
    keys: usize,
    duration: Duration,
    rounds: usize,
) -> Vec<ContendedSample> {
    let mut best: Vec<Option<ContendedSample>> = vec![None; 4];
    for _ in 0..rounds {
        for (slot, (optimistic, with_writer)) in
            [(false, false), (true, false), (false, true), (true, true)]
                .into_iter()
                .enumerate()
        {
            let sample = measure_contended(readers, keys, duration, optimistic, with_writer);
            let better = match &best[slot] {
                Some(prev) => sample.mreads_per_sec > prev.mreads_per_sec,
                None => true,
            };
            if better {
                best[slot] = Some(sample);
            }
        }
    }
    best.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contended_measurement_smoke() {
        // Tiny run (debug builds are slow): both modes produce non-zero
        // throughput and the writer actually performs structural churn.
        let samples = measure_modes(2, 2_000, Duration::from_millis(40), 1);
        assert_eq!(samples.len(), 4);
        for s in &samples {
            assert!(s.mreads_per_sec > 0.0, "{s:?}");
            assert!(s.read_ns > 0.0);
            assert_eq!(s.writer_ops > 0, s.writer, "{s:?}");
        }
        assert!(samples.iter().any(|s| s.mode == "optimistic" && s.writer));
        assert!(samples.iter().any(|s| s.mode == "rwlock" && !s.writer));
    }
}
