//! Shard-scaling measurement: N worker threads driving one shared ordered
//! index — the unsharded concurrent `Wormhole` vs `ShardedWormhole` at
//! increasing shard counts — under a read-heavy and a write-heavy mix.
//!
//! The write-heavy mix is deliberately *structural*: each wave inserts a
//! run of sibling keys next to a random resident key (forcing a leaf
//! split) and deletes them again (forcing a merge), so every wave takes
//! the owning index's MetaTrieHT writer mutex and runs an RCU grace
//! period. On the unsharded index all workers serialise on that one
//! mutex; sharding gives each range its own, which is exactly the
//! contention this benchmark quantifies. `BENCH_shard.json` (written by
//! `cargo run -p bench --release --bin shard_scale_baseline`) records the
//! tracked baseline.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use index_traits::ConcurrentOrderedIndex;
use wh_shard::{RebalanceConfig, ShardedWormhole};
use wormhole::{Wormhole, WormholeConfig};

/// One measured cell.
#[derive(Debug, Clone)]
pub struct ShardSample {
    /// `"unsharded"` or `"sharded"`.
    pub frontend: &'static str,
    /// Shard count (1 for the unsharded baseline).
    pub shards: usize,
    /// Whether the migration-idle router fast path was enabled for this
    /// cell (vacuously `true` for the unsharded frontend, which has no
    /// router at all).
    pub router_fast_path: bool,
    /// `"read_heavy"`, `"mixed"`, or `"write_heavy"`.
    pub mix: &'static str,
    /// Worker threads driving the index.
    pub threads: usize,
    /// Operations completed inside the window.
    pub ops: u64,
    /// Aggregate throughput in million operations per second.
    pub mops: f64,
}

/// The workload mixes of the scaling comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mix {
    /// 90% point lookups, 10% overwrites of resident keys: the sharded
    /// router's overhead with almost no writer-mutex pressure.
    ReadHeavy,
    /// 50% point lookups, 50% overwrites of resident keys: the router tax
    /// paid on both sides of a balanced point workload, still without
    /// structural writer-mutex pressure.
    Mixed,
    /// Structural churn waves (split + merge per wave) with a sprinkle of
    /// lookups: the writer-mutex contention sharding removes.
    WriteHeavy,
}

impl Mix {
    /// Label used in samples and JSON.
    pub fn label(self) -> &'static str {
        match self {
            Mix::ReadHeavy => "read_heavy",
            Mix::Mixed => "mixed",
            Mix::WriteHeavy => "write_heavy",
        }
    }
}

/// The resident key for slot `i`.
pub fn resident_key(i: usize) -> Vec<u8> {
    format!("user:{i:07}:profile").into_bytes()
}

/// Precomputes every resident key once, so the measured loops never pay
/// key formatting or allocation.
pub fn resident_keys(keys: usize) -> Vec<Vec<u8>> {
    (0..keys).map(resident_key).collect()
}

/// Per-shard configuration used by every frontend in the comparison.
pub fn shard_bench_config() -> WormholeConfig {
    WormholeConfig::optimized().with_leaf_capacity(64)
}

/// Builds the unsharded baseline index over `keys` resident keys.
pub fn build_unsharded(keys: usize) -> Wormhole<u64> {
    let wh = Wormhole::with_config(shard_bench_config());
    for i in 0..keys {
        wh.set(&resident_key(i), i as u64);
    }
    wh
}

/// Builds a `shards`-way sharded index over the same residents, with
/// boundaries sampled from the keyset so the shards are balanced, routing
/// through the migration-idle fast path or the classic critical-section
/// path per `fast_path`.
pub fn build_sharded(shards: usize, keys: usize, fast_path: bool) -> ShardedWormhole<u64> {
    let sample: Vec<Vec<u8>> = (0..keys)
        .step_by(16.max(keys / 4096))
        .map(resident_key)
        .collect();
    let config = wh_shard::ShardedConfig::from_sample(shards, &sample)
        .with_inner(shard_bench_config())
        .with_router_fast_path(fast_path);
    let sharded = ShardedWormhole::with_config(config);
    for i in 0..keys {
        sharded.set(&resident_key(i), i as u64);
    }
    sharded
}

/// One structural churn wave around a resident key: insert 64 siblings
/// (splitting the resident leaf), then drain them (merging it back).
/// `buf` is a reusable key buffer so the wave allocates nothing itself.
/// Returns operations performed.
fn churn_wave<I: ConcurrentOrderedIndex<u64> + ?Sized>(
    index: &I,
    base: &[u8],
    buf: &mut Vec<u8>,
) -> u64 {
    let mut ops = 0u64;
    buf.clear();
    buf.extend_from_slice(base);
    buf.push(b'~');
    buf.push(0);
    let last = buf.len() - 1;
    for j in 1..=64u8 {
        buf[last] = j;
        index.set(buf, u64::from(j));
        ops += 1;
    }
    for j in 1..=64u8 {
        buf[last] = j;
        index.del(buf);
        ops += 1;
    }
    ops
}

/// Runs one measurement window: `threads` workers over `keys` residents
/// for `duration`, with the given mix. Returns total operations and the
/// elapsed wall-clock seconds.
pub fn run_window<I: ConcurrentOrderedIndex<u64> + ?Sized>(
    index: &I,
    threads: usize,
    keys: &[Vec<u8>],
    duration: Duration,
    mix: Mix,
) -> (u64, f64) {
    let stop = AtomicBool::new(false);
    let total = AtomicU64::new(0);
    let started = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let stop = &stop;
            let total = &total;
            scope.spawn(move || {
                let mut x = 0x9e37_79b9_7f4a_7c15u64 ^ (t as u64).wrapping_mul(0xdead_beef);
                let mut buf = Vec::with_capacity(64);
                let mut local = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let slot = (x as usize) % keys.len();
                    match mix {
                        Mix::ReadHeavy | Mix::Mixed => {
                            // 64-op batch of point ops: 90/10 or 50/50
                            // gets vs overwrites.
                            let write_every = if mix == Mix::ReadHeavy { 10 } else { 2 };
                            for j in 0..64usize {
                                let probe = (slot + j * 131) % keys.len();
                                if j % write_every == 0 {
                                    index.set(&keys[probe], x);
                                } else {
                                    std::hint::black_box(index.get(&keys[probe]));
                                }
                                local += 1;
                            }
                        }
                        Mix::WriteHeavy => {
                            // One split+merge wave plus a sprinkle of reads.
                            local += churn_wave(index, &keys[slot], &mut buf);
                            for j in 0..8usize {
                                let probe = (slot + j * 977) % keys.len();
                                std::hint::black_box(index.get(&keys[probe]));
                                local += 1;
                            }
                        }
                    }
                }
                total.fetch_add(local, Ordering::Relaxed);
            });
        }
        std::thread::sleep(duration);
        stop.store(true, Ordering::Relaxed);
    });
    (
        total.load(Ordering::Relaxed),
        started.elapsed().as_secs_f64(),
    )
}

/// Best-of-`rounds` measurement of one frontend × mix cell.
#[allow(clippy::too_many_arguments)] // a flat description of one bench cell
pub fn measure_frontend<I: ConcurrentOrderedIndex<u64> + ?Sized>(
    index: &I,
    frontend: &'static str,
    shards: usize,
    router_fast_path: bool,
    threads: usize,
    keys: &[Vec<u8>],
    duration: Duration,
    rounds: usize,
    mix: Mix,
) -> ShardSample {
    let mut best_ops = 0u64;
    let mut best_mops = 0.0f64;
    for _ in 0..rounds {
        let (ops, secs) = run_window(index, threads, keys, duration, mix);
        let mops = ops as f64 / secs / 1e6;
        if mops > best_mops {
            best_mops = mops;
            best_ops = ops;
        }
    }
    ShardSample {
        frontend,
        shards,
        router_fast_path,
        mix: mix.label(),
        threads,
        ops: best_ops,
        mops: best_mops,
    }
}

/// The full scaling sweep of `BENCH_shard.json`: the unsharded baseline
/// plus 1/2/4/8-shard fronts with the router fast path on and off, for
/// every mix, interleaved round-robin so scheduler drift hits every cell
/// equally.
pub fn measure_scaling(
    threads: usize,
    keys: usize,
    duration: Duration,
    rounds: usize,
) -> Vec<ShardSample> {
    let probes = resident_keys(keys);
    let unsharded = build_unsharded(keys);
    let fronts: Vec<(usize, bool, ShardedWormhole<u64>)> = [1usize, 2, 4, 8]
        .into_iter()
        .flat_map(|n| {
            [true, false]
                .into_iter()
                .map(move |fast| (n, fast, build_sharded(n, keys, fast)))
        })
        .collect();
    let mut samples = Vec::new();
    for mix in [Mix::ReadHeavy, Mix::Mixed, Mix::WriteHeavy] {
        samples.push(measure_frontend(
            &unsharded,
            "unsharded",
            1,
            true,
            threads,
            &probes,
            duration,
            rounds,
            mix,
        ));
        for (n, fast, front) in &fronts {
            samples.push(measure_frontend(
                front, "sharded", *n, *fast, threads, &probes, duration, rounds, mix,
            ));
        }
    }
    samples
}

/// One cell of the telemetry overhead A/B pair.
#[derive(Debug, Clone)]
pub struct TelemetryAbSample {
    /// `"on"` or `"off"` — the runtime state of `wh_telemetry` recording
    /// during the window.
    pub telemetry: &'static str,
    /// Workload mix label (the pair measures `read_heavy`).
    pub mix: &'static str,
    /// Worker threads driving the index.
    pub threads: usize,
    /// Operations completed inside the window.
    pub ops: u64,
    /// Aggregate throughput in million operations per second.
    pub mops: f64,
}

/// Measures the telemetry tax on the hottest cell: the read-heavy mix on
/// a 4-shard front with the router fast path on, with recording enabled
/// vs disabled via the runtime switch ([`wh_telemetry::set_enabled`]).
/// Rounds are interleaved on/off so scheduler drift hits both states
/// equally; recording is left enabled afterwards. The tracked baseline
/// pins the pair within a few percent of each other — the "zero overhead
/// when idle" budget.
pub fn measure_telemetry_ab(
    threads: usize,
    keys: usize,
    duration: Duration,
    rounds: usize,
) -> Vec<TelemetryAbSample> {
    let probes = resident_keys(keys);
    let front = build_sharded(4, keys, true);
    // (ops, mops) best-of per state: [on, off].
    let mut best = [(0u64, 0.0f64); 2];
    for _ in 0..rounds {
        for (slot, enabled) in [(0usize, true), (1usize, false)] {
            wh_telemetry::set_enabled(enabled);
            let (ops, secs) = run_window(&front, threads, &probes, duration, Mix::ReadHeavy);
            let mops = ops as f64 / secs / 1e6;
            if mops > best[slot].1 {
                best[slot] = (ops, mops);
            }
        }
    }
    wh_telemetry::set_enabled(true);
    [("on", best[0]), ("off", best[1])]
        .into_iter()
        .map(|(telemetry, (ops, mops))| TelemetryAbSample {
            telemetry,
            mix: Mix::ReadHeavy.label(),
            threads,
            ops,
            mops,
        })
        .collect()
}

/// One phase of the skew-shift scenario.
#[derive(Debug, Clone)]
pub struct SkewShiftSample {
    /// `"balanced"` (uniform churn over the whole keyset), `"shifted"`
    /// (churn confined to the first quarter, right after the shift), or
    /// `"recovered"` (same confined churn after the recovery window).
    pub phase: &'static str,
    /// Whether `maybe_rebalance` ran during the recovery window.
    pub rebalance: bool,
    /// Operations completed inside the window.
    pub ops: u64,
    /// Aggregate throughput in million operations per second.
    pub mops: f64,
    /// Boundary migrations executed so far in this scenario run.
    pub migrations: usize,
    /// Keys moved by those migrations.
    pub moved_keys: usize,
}

/// The skew-shift scenario: a 4-shard front built balanced for the whole
/// keyset, hit with structural write-heavy churn that suddenly confines
/// itself to the first quarter of the key space (one shard's range). With
/// `rebalance` off the front degenerates toward a single writer mutex;
/// with it on, a recovery window of traffic interleaved with
/// [`ShardedWormhole::maybe_rebalance`] migrates boundaries into the hot
/// range and spreads the load back out. Returns the three measured phases.
pub fn measure_skew_shift(
    threads: usize,
    keys: usize,
    duration: Duration,
    rebalance: bool,
) -> Vec<SkewShiftSample> {
    let all_keys = resident_keys(keys);
    let hot_keys: Vec<Vec<u8>> = all_keys[..keys / 4].to_vec();
    let sample: Vec<Vec<u8>> = (0..keys)
        .step_by(16.max(keys / 4096))
        .map(resident_key)
        .collect();
    let config = wh_shard::ShardedConfig::from_sample(4, &sample)
        .with_inner(shard_bench_config())
        .with_rebalance(RebalanceConfig {
            // Low friction: the recovery window's short traffic bursts
            // must be enough signal to act on (they are tiny in the debug
            // smoke test).
            min_pair_ops: 512,
            imbalance_percent: 150,
            batch_keys: 512,
            sample_cap: 2_048,
            min_move_keys: 64,
        });
    let front: ShardedWormhole<u64> = ShardedWormhole::with_config(config);
    for i in 0..keys {
        front.set(&resident_key(i), i as u64);
    }
    let mut migrations = 0usize;
    let mut moved_keys = 0usize;
    let mut samples = Vec::new();
    let mut record = |phase, ops: u64, secs: f64, migrations: usize, moved_keys: usize| {
        samples.push(SkewShiftSample {
            phase,
            rebalance,
            ops,
            mops: ops as f64 / secs / 1e6,
            migrations,
            moved_keys,
        });
    };

    // Phase 1: the workload the boundaries were built for.
    let (ops, secs) = run_window(&front, threads, &all_keys, duration, Mix::WriteHeavy);
    record("balanced", ops, secs, migrations, moved_keys);

    // Phase 2: the hot range shifts onto one shard.
    let (ops, secs) = run_window(&front, threads, &hot_keys, duration, Mix::WriteHeavy);
    record("shifted", ops, secs, migrations, moved_keys);

    // Recovery window: short bursts of the shifted traffic feed the op
    // counters, each followed by one rebalance decision. Disabled runs
    // burn the same wall-clock on traffic alone, so the phase-3 windows
    // are comparable.
    let burst = Duration::from_millis((duration.as_millis() as u64 / 5).max(20));
    for _ in 0..12 {
        run_window(&front, threads, &hot_keys, burst, Mix::WriteHeavy);
        if rebalance {
            if let wh_shard::RebalanceOutcome::Migrated(report) = front.maybe_rebalance() {
                migrations += 1;
                moved_keys += report.moved_keys;
            }
        }
    }

    // Phase 3: the same shifted traffic after the recovery window.
    let (ops, secs) = run_window(&front, threads, &hot_keys, duration, Mix::WriteHeavy);
    record("recovered", ops, secs, migrations, moved_keys);
    samples
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skew_shift_measurement_smoke() {
        // Tiny windows: all three phases produce throughput, the
        // rebalancing run records its migrations, and the index stays
        // consistent afterwards.
        let samples = measure_skew_shift(2, 4_000, Duration::from_millis(40), true);
        assert_eq!(samples.len(), 3);
        assert_eq!(
            samples.iter().map(|s| s.phase).collect::<Vec<_>>(),
            vec!["balanced", "shifted", "recovered"]
        );
        for s in &samples {
            assert!(s.ops > 0, "phase {} did no work", s.phase);
            assert!(s.rebalance);
        }
        assert!(
            samples[2].migrations > 0,
            "confined churn must trigger at least one migration"
        );
        let disabled = measure_skew_shift(2, 4_000, Duration::from_millis(40), false);
        assert_eq!(disabled[2].migrations, 0, "disabled run must not migrate");
    }

    #[test]
    fn telemetry_ab_measurement_smoke() {
        let samples = measure_telemetry_ab(2, 2_000, Duration::from_millis(30), 1);
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[0].telemetry, "on");
        assert_eq!(samples[1].telemetry, "off");
        for s in &samples {
            assert!(s.ops > 0, "telemetry={} cell did no work", s.telemetry);
            assert_eq!(s.mix, "read_heavy");
        }
        // The A/B run leaves recording enabled for everyone else.
        assert!(wh_telemetry::enabled());
    }

    #[test]
    fn scaling_measurement_smoke() {
        // Tiny windows (debug builds are slow): every cell produces
        // non-zero throughput and the sharded fronts stay consistent.
        let keys = 2_000usize;
        let probes = resident_keys(keys);
        let unsharded = build_unsharded(keys);
        let sharded = build_sharded(4, keys, true);
        let sharded_nofast = build_sharded(4, keys, false);
        assert_eq!(unsharded.len(), keys);
        assert_eq!(sharded.len(), keys);
        assert_eq!(sharded_nofast.len(), keys);
        for (index, frontend) in [
            (&unsharded as &dyn ConcurrentOrderedIndex<u64>, "unsharded"),
            (&sharded as &dyn ConcurrentOrderedIndex<u64>, "sharded"),
            (
                &sharded_nofast as &dyn ConcurrentOrderedIndex<u64>,
                "sharded_nofast",
            ),
        ] {
            for mix in [Mix::ReadHeavy, Mix::Mixed, Mix::WriteHeavy] {
                let (ops, secs) = run_window(index, 2, &probes, Duration::from_millis(30), mix);
                assert!(ops > 0, "{frontend}/{} did no work", mix.label());
                assert!(secs > 0.0);
            }
        }
        // Churn left no garbage behind: every resident still present (the
        // read-heavy mix overwrites values, so only presence is stable),
        // and no churn key survived its wave's delete half... unless a
        // window cut a wave short, which the population count tolerates.
        for i in (0..keys).step_by(97) {
            assert!(unsharded.get(&resident_key(i)).is_some());
            assert!(sharded.get(&resident_key(i)).is_some());
            assert!(sharded_nofast.get(&resident_key(i)).is_some());
        }
        sharded.check_invariants();
        sharded_nofast.check_invariants();
    }
}
