//! Shared driver for the `scan_stream` Criterion bench and the
//! `scan_stream_baseline` bin: ordered-window scans over the concurrent
//! Wormhole, streamed through the resumable cursor vs materialised with
//! `range_from`.
//!
//! Both paths run the same seqlock-validated leaf snapshots underneath; the
//! difference under measurement is purely the output discipline — the
//! cursor hands out borrowed pairs from one reused batch arena, while
//! `range_from` clones every key into a fresh `Vec` of pairs.

use index_traits::ConcurrentOrderedIndex;
use workloads::{generate, KeysetId};
use wormhole::Wormhole;

/// Builds the benched index over `n` Az1 composite keys (item-user-time,
/// the paper's ordered-analytics keyset) and returns it with the keyset —
/// scan starts are drawn from the latter.
pub fn build_scan_index(n: usize, seed: u64) -> (Wormhole<u64>, Vec<Vec<u8>>) {
    let keyset = generate(KeysetId::Az1, n, seed);
    let wh = Wormhole::new();
    for (i, key) in keyset.keys.iter().enumerate() {
        wh.set(key, i as u64);
    }
    (wh, keyset.keys)
}

/// Streams up to `window` pairs starting at `start` through the cursor.
/// Returns `(pairs, checksum)`; the checksum folds every key length and
/// value so the compiler cannot elide the reads.
pub fn stream_window(wh: &Wormhole<u64>, start: &[u8], window: usize) -> (usize, u64) {
    let mut cursor = wh.scan(start);
    let mut pairs = 0usize;
    let mut sum = 0u64;
    while pairs < window {
        match cursor.next() {
            Some((key, value)) => {
                pairs += 1;
                sum = sum.wrapping_add(*value).wrapping_add(key.len() as u64);
            }
            None => break,
        }
    }
    (pairs, sum)
}

/// Materialises the same window with `range_from` and folds the identical
/// checksum over the returned pairs.
pub fn materialise_window(wh: &Wormhole<u64>, start: &[u8], window: usize) -> (usize, u64) {
    let out = wh.range_from(start, window);
    let mut sum = 0u64;
    for (key, value) in &out {
        sum = sum.wrapping_add(*value).wrapping_add(key.len() as u64);
    }
    (out.len(), sum)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_paths_agree() {
        let (wh, keys) = build_scan_index(3_000, 5);
        for p in [0usize, 500, 2_999] {
            let (n1, s1) = stream_window(&wh, &keys[p], 200);
            let (n2, s2) = materialise_window(&wh, &keys[p], 200);
            assert_eq!(n1, n2);
            assert_eq!(s1, s2);
        }
        let (n, _) = stream_window(&wh, b"", usize::MAX);
        assert_eq!(n, 3_000);
    }
}
