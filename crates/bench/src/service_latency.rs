//! Client-observed latency of the batched serving layer
//! (`netsim::ShardServer`): the full request→response round trip a client
//! sees — encode, queue, dispatch, shard-affine execution, reassembly,
//! decode — summarised as p50/p99/p999 per worker count and workload mix,
//! plus a tail-under-migration-churn cell where boundary migrations storm
//! while the server answers. `BENCH_service.json` (written by `cargo run
//! -p bench --release --bin service_latency_baseline`) records the
//! tracked baseline.
//!
//! The quantiles come from the service's `client_rtt_ns` histogram
//! (log₂-bucketed, so values are bucket upper bounds — coarse but stable
//! across runs), recorded once per request with the whole message's round
//! trip: what a real client of the batched protocol experiences, as
//! opposed to the server-side per-op service times the `netsim_get_ns`
//! family tracks.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use netsim::{ShardServer, WireRequest};
use wh_shard::ShardedWormhole;

use crate::shard_scale::{build_sharded, resident_keys, Mix};

/// One measured cell of the serving-layer latency sweep.
#[derive(Debug, Clone)]
pub struct ServiceLatencySample {
    /// Worker (execution) threads behind the dispatcher.
    pub workers: usize,
    /// `"read_heavy"` (90% gets) or `"mixed"` (50/50).
    pub mix: &'static str,
    /// Whether boundary migrations were bouncing during the run.
    pub churn: bool,
    /// Requests completed.
    pub ops: u64,
    /// Client-observed throughput in million operations per second.
    pub mops: f64,
    /// Client-observed round-trip quantiles in nanoseconds.
    pub p50_ns: u64,
    pub p99_ns: u64,
    pub p999_ns: u64,
    /// Router-epoch pipeline flushes the dispatcher performed (non-zero
    /// only when churn raced the pipeline).
    pub epoch_flushes: u64,
}

/// Builds the request stream of one cell: point ops over the resident
/// keyset, 90/10 or 50/50 gets vs overwrites, slots strided so
/// consecutive requests spread across shards.
pub fn service_requests(keys: &[Vec<u8>], ops: usize, mix: Mix) -> Vec<WireRequest> {
    let write_every = match mix {
        Mix::ReadHeavy => 10,
        Mix::Mixed => 2,
        Mix::WriteHeavy => 1,
    };
    let mut x = 0x9e37_79b9_7f4a_7c15u64;
    (0..ops)
        .map(|j| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let key = keys[(x as usize) % keys.len()].clone();
            if j % write_every == 0 {
                WireRequest::Set { key, value: x }
            } else {
                WireRequest::Get { key }
            }
        })
        .collect()
}

/// Measures one cell: a fresh 4-shard front behind a fresh
/// [`ShardServer`] with `workers` execution threads, driven with `ops`
/// requests of the given mix. With `churn`, a background thread bounces
/// one boundary back and forth for the whole run, so the tail includes
/// migration freezes, router-epoch flushes, and scan re-routing.
pub fn measure_service_latency(
    workers: usize,
    keys: usize,
    ops: usize,
    mix: Mix,
    churn: bool,
) -> ServiceLatencySample {
    let resident = resident_keys(keys);
    let index: Arc<ShardedWormhole<u64>> = Arc::new(build_sharded(4, keys, true));
    let server = ShardServer::new(Arc::clone(&index), workers);
    let requests = service_requests(&resident, ops, mix);

    let stop = Arc::new(AtomicBool::new(false));
    let churn_thread = churn.then(|| {
        let index = Arc::clone(&index);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            // Bounce the first boundary between two targets inside shard
            // 0/1's joint range; every publication bumps the router epoch.
            let low = crate::shard_scale::resident_key(keys / 8);
            let high = crate::shard_scale::resident_key(keys * 3 / 8);
            let mut flip = false;
            while !stop.load(Ordering::Relaxed) {
                let target = if flip { &low } else { &high };
                index.migrate_boundary(0, target).expect("valid target");
                flip = !flip;
            }
        })
    });

    let stats = server.run(&requests);

    stop.store(true, Ordering::Relaxed);
    if let Some(handle) = churn_thread {
        handle.join().expect("churn thread");
    }
    index.check_invariants();

    let rtt = server.metrics().client_rtt_ns.snapshot();
    ServiceLatencySample {
        workers,
        mix: mix.label(),
        churn,
        ops: stats.operations as u64,
        mops: stats.mops(),
        p50_ns: rtt.p50(),
        p99_ns: rtt.p99(),
        p999_ns: rtt.p999(),
        epoch_flushes: server.server_metrics().epoch_flushes.get(),
    }
}

/// The full sweep of `BENCH_service.json`: worker counts × mixes, plus
/// the churn cell at the highest worker count under the read-heavy mix.
pub fn measure_service_sweep(
    worker_counts: &[usize],
    keys: usize,
    ops: usize,
) -> Vec<ServiceLatencySample> {
    let mut samples = Vec::new();
    for &workers in worker_counts {
        for mix in [Mix::ReadHeavy, Mix::Mixed] {
            samples.push(measure_service_latency(workers, keys, ops, mix, false));
        }
    }
    let top = worker_counts.iter().copied().max().unwrap_or(1);
    samples.push(measure_service_latency(
        top,
        keys,
        ops,
        Mix::ReadHeavy,
        true,
    ));
    samples
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_latency_measurement_smoke() {
        let sample = measure_service_latency(2, 2_000, 4_000, Mix::ReadHeavy, false);
        assert_eq!(sample.ops, 4_000);
        assert!(sample.mops > 0.0);
        assert_eq!(sample.mix, "read_heavy");
        assert!(!sample.churn);
        if wh_telemetry::enabled() {
            assert!(sample.p50_ns > 0, "round trips must be recorded");
            assert!(sample.p999_ns >= sample.p99_ns);
            assert!(sample.p99_ns >= sample.p50_ns);
        }
    }

    #[test]
    fn churn_cell_smoke() {
        let sample = measure_service_latency(2, 2_000, 4_000, Mix::Mixed, true);
        assert_eq!(sample.ops, 4_000);
        assert!(sample.churn);
    }
}
