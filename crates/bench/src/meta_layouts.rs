//! The MetaTrieHT probe microbenchmark: workload, the seed's hash-table
//! layout as a reference implementation, and timing helpers.
//!
//! The `meta_probe` criterion bench and the `meta_probe_baseline` binary
//! both measure point probes against two layouts holding identical items:
//!
//! * [`SeedMetaTable`] — the repo's original layout: `Vec<Vec<Slot>>`
//!   buckets, each probe chasing a heap-allocated slot vector before
//!   touching the item side-array (two dependent cache misses per probe);
//! * `wormhole::meta::MetaTable` — the cache-line-bucketized layout this
//!   repo now ships: one flat array of 64-byte buckets probed with a SWAR
//!   tag comparison.
//!
//! `BENCH_meta.json` records the baseline numbers so later PRs can track
//! the probe-latency trajectory.

use std::time::Instant;

use wh_hash::{crc32c, mix64, tag16};
use wormhole::meta::{MetaKind, MetaTable};

/// One slot of the seed layout.
#[derive(Debug, Clone, Copy)]
struct SeedSlot {
    tag: u16,
    item: u32,
}

/// A stored item of the seed layout, mirroring the real `MetaItem`'s full
/// footprint (key, cached hash, and the bitmap/leaf-pointer payload) so the
/// side-array behaves like the seed's — item records spanning the same
/// number of cache lines.
#[derive(Debug, Clone)]
struct SeedItem {
    key: Box<[u8]>,
    #[allow(dead_code)]
    hash: u32,
    /// Stand-in for `MetaKind::Internal`'s 256-bit bitmap.
    #[allow(dead_code)]
    bitmap: [u64; 4],
    /// Stand-in for the leftmost/rightmost leaf handles.
    #[allow(dead_code)]
    bounds: (u32, u32),
}

/// The seed's MetaTrieHT storage layout, preserved as the benchmark
/// reference: per-bucket slot `Vec`s over an item side-array.
#[derive(Debug, Default)]
pub struct SeedMetaTable {
    buckets: Vec<Vec<SeedSlot>>,
    items: Vec<Option<SeedItem>>,
    len: usize,
}

impl SeedMetaTable {
    /// Creates an empty table with the seed's initial 64 buckets.
    pub fn new() -> Self {
        Self {
            buckets: vec![Vec::new(); 64],
            items: Vec::new(),
            len: 0,
        }
    }

    fn bucket_of(&self, hash: u32) -> usize {
        (mix64(hash as u64) as usize) & (self.buckets.len() - 1)
    }

    /// Inserts `key` (no-op when present), with the seed's load factor and
    /// rehash strategy.
    pub fn insert(&mut self, key: &[u8]) {
        let hash = crc32c(key);
        if self.find(key, hash).is_some() {
            return;
        }
        if self.len + 1 > self.buckets.len() * 6 {
            self.grow();
        }
        self.items.push(Some(SeedItem {
            key: key.to_vec().into_boxed_slice(),
            hash,
            bitmap: [0; 4],
            bounds: (0, 0),
        }));
        let idx = (self.items.len() - 1) as u32;
        let bucket = self.bucket_of(hash);
        self.buckets[bucket].push(SeedSlot {
            tag: tag16(hash),
            item: idx,
        });
        self.len += 1;
    }

    fn grow(&mut self) {
        let new_size = self.buckets.len() * 2;
        let mut buckets: Vec<Vec<SeedSlot>> = vec![Vec::new(); new_size];
        for (idx, item) in self.items.iter().enumerate() {
            if let Some(item) = item {
                let hash = crc32c(&item.key);
                let b = (mix64(hash as u64) as usize) & (new_size - 1);
                buckets[b].push(SeedSlot {
                    tag: tag16(hash),
                    item: idx as u32,
                });
            }
        }
        self.buckets = buckets;
    }

    fn find(&self, key: &[u8], hash: u32) -> Option<u32> {
        let tag = tag16(hash);
        let bucket = &self.buckets[self.bucket_of(hash)];
        for slot in bucket {
            if slot.tag == tag {
                let item = self.items[slot.item as usize].as_ref().expect("live item");
                if item.key.as_ref() == key {
                    return Some(slot.item);
                }
            }
        }
        None
    }

    /// Exact point probe (the seed's `find` through `get`).
    pub fn get(&self, key: &[u8]) -> bool {
        self.find(key, crc32c(key)).is_some()
    }

    /// Tag-only probe (the seed's optimistic *TagMatching* probe): first
    /// tag match in the bucket's slot vector, items never touched.
    pub fn probe_optimistic(&self, key: &[u8]) -> bool {
        let hash = crc32c(key);
        let tag = tag16(hash);
        self.buckets[self.bucket_of(hash)]
            .iter()
            .any(|slot| slot.tag == tag)
    }
}

/// The probe workload: `anchors` resident keys plus an equally sized miss
/// set, both from the Az1 keyset generator (realistic ~40-byte keys), and a
/// shuffled probe order large enough to defeat the CPU cache.
pub struct ProbeWorkload {
    /// Keys resident in the tables.
    pub resident: Vec<Vec<u8>>,
    /// Keys guaranteed absent.
    pub absent: Vec<Vec<u8>>,
    /// Probe order into `resident`.
    pub order: Vec<usize>,
}

impl ProbeWorkload {
    /// Builds the workload deterministically.
    pub fn new(anchors: usize, seed: u64) -> Self {
        let keyset = workloads::generate(workloads::KeysetId::Az1, anchors * 2, seed);
        let mut keys = keyset.keys;
        let absent = keys.split_off(anchors);
        let order = workloads::uniform_indices(1 << 14, anchors, seed ^ 0xBEEF);
        Self {
            resident: keys,
            absent,
            order,
        }
    }

    /// Loads both layouts with the resident keys.
    pub fn build_tables(&self) -> (SeedMetaTable, MetaTable<u32>) {
        let mut seed_table = SeedMetaTable::new();
        let mut flat_table: MetaTable<u32> = MetaTable::new();
        for (i, key) in self.resident.iter().enumerate() {
            seed_table.insert(key);
            flat_table.insert(key, MetaKind::Leaf(i as u32));
        }
        (seed_table, flat_table)
    }
}

/// Runs `probes` through `probe` and returns (hits, ns per probe).
pub fn time_probes(
    probe: impl Fn(&[u8]) -> bool,
    keys: &[Vec<u8>],
    order: &[usize],
) -> (usize, f64) {
    let start = Instant::now();
    let mut hits = 0usize;
    for &i in order {
        hits += usize::from(probe(&keys[i % keys.len()]));
    }
    let elapsed = start.elapsed();
    (hits, elapsed.as_nanos() as f64 / order.len() as f64)
}

/// One probe measurement: destination slot, probe function, key set, and
/// the expected all-hits outcome (`None` disables the check).
type Measurement<'a> = (
    &'a mut f64,
    &'a dyn Fn(&[u8]) -> bool,
    &'a [Vec<u8>],
    Option<bool>,
);

/// One layout's measured probe latencies (ns per probe, best across
/// rounds).
#[derive(Debug, Clone, Copy)]
pub struct LayoutTiming {
    /// Layout name.
    pub layout: &'static str,
    /// Exact probe, key resident.
    pub hit_ns: f64,
    /// Exact probe, key absent.
    pub miss_ns: f64,
    /// Tag-only (optimistic) probe, key resident — the LPM hot path.
    pub tag_hit_ns: f64,
    /// Tag-only (optimistic) probe, key absent.
    pub tag_miss_ns: f64,
}

/// Measures exact and tag-only probe latency for both layouts at `anchors`
/// residents. Rounds are interleaved across the two layouts so slow drift
/// of the machine cancels out of the comparison; each metric keeps its
/// fastest round.
pub fn measure_layouts(anchors: usize, rounds: usize) -> Vec<LayoutTiming> {
    let workload = ProbeWorkload::new(anchors, 42);
    let (seed_table, flat_table) = workload.build_tables();
    let seed_get = |k: &[u8]| seed_table.get(k);
    let flat_get = |k: &[u8]| flat_table.get(k).is_some();
    let seed_tag = |k: &[u8]| seed_table.probe_optimistic(k);
    let flat_tag = |k: &[u8]| flat_table.probe_optimistic(k);
    let mut seed = LayoutTiming {
        layout: "seed-vecvec",
        hit_ns: f64::INFINITY,
        miss_ns: f64::INFINITY,
        tag_hit_ns: f64::INFINITY,
        tag_miss_ns: f64::INFINITY,
    };
    let mut flat = LayoutTiming {
        layout: "flat-bucket",
        ..seed
    };
    for _ in 0..rounds {
        // Exact probes verify their hit/miss counts; tag probes may carry
        // rare 16-bit false positives on the miss side.
        let measurements: [Measurement<'_>; 8] = [
            (&mut seed.hit_ns, &seed_get, &workload.resident, Some(true)),
            (&mut flat.hit_ns, &flat_get, &workload.resident, Some(true)),
            (&mut seed.miss_ns, &seed_get, &workload.absent, Some(false)),
            (&mut flat.miss_ns, &flat_get, &workload.absent, Some(false)),
            (
                &mut seed.tag_hit_ns,
                &seed_tag,
                &workload.resident,
                Some(true),
            ),
            (
                &mut flat.tag_hit_ns,
                &flat_tag,
                &workload.resident,
                Some(true),
            ),
            (&mut seed.tag_miss_ns, &seed_tag, &workload.absent, None),
            (&mut flat.tag_miss_ns, &flat_tag, &workload.absent, None),
        ];
        for (slot, probe, keys, expect_all_hits) in measurements {
            let (hits, ns) = time_probes(probe, keys, &workload.order);
            if let Some(expect) = expect_all_hits {
                assert_eq!(hits == workload.order.len(), expect, "probe disagreement");
            }
            *slot = slot.min(ns);
        }
    }
    vec![seed, flat]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layouts_agree_on_membership() {
        let workload = ProbeWorkload::new(2000, 7);
        let (seed_table, flat_table) = workload.build_tables();
        for key in &workload.resident {
            assert!(seed_table.get(key));
            assert!(flat_table.get(key).is_some());
        }
        for key in &workload.absent {
            assert!(!seed_table.get(key));
            assert!(flat_table.get(key).is_none());
        }
    }

    #[test]
    fn measure_layouts_produces_sane_numbers() {
        let rows = measure_layouts(5_000, 1);
        assert_eq!(rows.len(), 2);
        for t in rows {
            for (metric, ns) in [
                ("hit", t.hit_ns),
                ("miss", t.miss_ns),
                ("tag_hit", t.tag_hit_ns),
                ("tag_miss", t.tag_miss_ns),
            ] {
                assert!(ns > 0.0 && ns < 100_000.0, "{}/{metric}: {ns}", t.layout);
            }
        }
    }
}
