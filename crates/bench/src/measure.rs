//! Timing and thread-scaling helpers.

use std::time::Instant;

use crate::drivers::AnyIndex;

/// `true` when `WH_BENCH_QUICK` is set (and not `0`): the baseline bins
/// shrink their keysets, windows, and round counts so a full run finishes
/// in seconds. CI's bench-smoke job uses this to validate that every
/// `BENCH_*.json` still parses and carries its expected keys on every PR;
/// the numbers produced in quick mode are *not* comparable to tracked
/// baselines and must never be committed.
pub fn quick_mode() -> bool {
    std::env::var_os("WH_BENCH_QUICK").is_some_and(|v| v != "0")
}

/// `full` normally, `quick` under [`quick_mode`] — the one-line dial the
/// baseline bins size every parameter through.
pub fn quick_or<T>(full: T, quick: T) -> T {
    if quick_mode() {
        quick
    } else {
        full
    }
}

/// A simple wall-clock timer.
#[derive(Debug)]
pub struct Timer {
    start: Instant,
}

impl Default for Timer {
    fn default() -> Self {
        Self::new()
    }
}

impl Timer {
    /// Starts the timer.
    pub fn new() -> Self {
        Self {
            start: Instant::now(),
        }
    }

    /// Elapsed seconds.
    pub fn seconds(&self) -> f64 {
        self.start.elapsed().as_secs_f64().max(1e-9)
    }
}

/// Converts an operation count and elapsed seconds to millions of operations
/// per second.
pub fn mops(operations: usize, seconds: f64) -> f64 {
    operations as f64 / seconds / 1e6
}

/// Measures multi-threaded point-lookup throughput over a prebuilt index.
///
/// `probes` contains key indices (into `keys`) to look up; it is split evenly
/// across `threads` worker threads that share the index read-only, the same
/// methodology as the paper's lookup experiments.
pub fn parallel_lookup_mops(
    index: &AnyIndex,
    keys: &[Vec<u8>],
    probes: &[usize],
    threads: usize,
) -> f64 {
    assert!(threads > 0);
    let timer = Timer::new();
    let chunk = probes.len().div_ceil(threads);
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for part in probes.chunks(chunk.max(1)) {
            handles.push(scope.spawn(move || {
                let mut hits = 0usize;
                for &p in part {
                    if index.get(&keys[p]).is_some() {
                        hits += 1;
                    }
                }
                hits
            }));
        }
        let hits: usize = handles.into_iter().map(|h| h.join().expect("worker")).sum();
        assert_eq!(hits, probes.len(), "every probed key must be present");
    });
    mops(probes.len(), timer.seconds())
}

/// Measures single-threaded insertion throughput into an empty index.
pub fn insert_mops(index: &mut AnyIndex, keys: &[Vec<u8>]) -> f64 {
    let timer = Timer::new();
    for (i, key) in keys.iter().enumerate() {
        index.insert(key, i as u64);
    }
    mops(keys.len(), timer.seconds())
}

/// Measures multi-threaded range-query throughput (queries per second, in
/// millions): each query scans up to `scan_len` keys starting at a random
/// existing key, as in Figure 18.
pub fn parallel_range_mops(
    index: &AnyIndex,
    keys: &[Vec<u8>],
    starts: &[usize],
    scan_len: usize,
    threads: usize,
) -> f64 {
    let timer = Timer::new();
    let chunk = starts.len().div_ceil(threads);
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for part in starts.chunks(chunk.max(1)) {
            handles.push(scope.spawn(move || {
                let mut returned = 0usize;
                for &p in part {
                    returned += index.range_from(&keys[p], scan_len).len();
                }
                returned
            }));
        }
        let total: usize = handles.into_iter().map(|h| h.join().expect("worker")).sum();
        assert!(
            total >= starts.len(),
            "each scan returns at least its start key"
        );
    });
    mops(starts.len(), timer.seconds())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drivers::IndexKind;

    #[test]
    fn mops_arithmetic() {
        assert!((mops(2_000_000, 1.0) - 2.0).abs() < 1e-9);
        assert!((mops(500_000, 0.5) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn parallel_lookup_counts_all_probes() {
        let keys: Vec<Vec<u8>> = (0..2000u32)
            .map(|i| format!("{i:06}").into_bytes())
            .collect();
        let index = AnyIndex::build(IndexKind::Wormhole, &keys);
        let probes: Vec<usize> = (0..4000).map(|i| i % keys.len()).collect();
        for threads in [1, 2, 4] {
            let tput = parallel_lookup_mops(&index, &keys, &probes, threads);
            assert!(tput > 0.0);
        }
    }

    #[test]
    fn insert_and_range_measurements_run() {
        let keys: Vec<Vec<u8>> = (0..1000u32)
            .map(|i| format!("{i:06}").into_bytes())
            .collect();
        let mut index = AnyIndex::new(IndexKind::BTree);
        let tput = insert_mops(&mut index, &keys);
        assert!(tput > 0.0);
        assert_eq!(index.len(), 1000);
        let starts: Vec<usize> = (0..200).map(|i| (i * 7) % keys.len()).collect();
        let tput = parallel_range_mops(&index, &keys, &starts, 100, 2);
        assert!(tput > 0.0);
    }
}
