//! Criterion bench: shard-scaling of the range-partitioned front vs the
//! unsharded concurrent Wormhole, read-heavy and write-heavy mixes at
//! micro scale. `BENCH_shard.json` (written by
//! `cargo run -p bench --release --bin shard_scale_baseline`) records the
//! tracked full-scale baseline.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

use bench::shard_scale::{build_sharded, build_unsharded, resident_keys, run_window, Mix};

const KEYS: usize = 20_000;
const THREADS: usize = 4;

fn bench_shard_scale(c: &mut Criterion) {
    let probes = resident_keys(KEYS);
    let unsharded = build_unsharded(KEYS);
    let sharded = build_sharded(4, KEYS, true);
    let sharded_nofast = build_sharded(4, KEYS, false);
    for mix in [Mix::ReadHeavy, Mix::Mixed, Mix::WriteHeavy] {
        let mut group = c.benchmark_group(format!("shard_scale/{}", mix.label()));
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(200))
            .measurement_time(Duration::from_millis(900));
        group.bench_function("unsharded", |b| {
            b.iter(|| run_window(&unsharded, THREADS, &probes, Duration::from_millis(25), mix).0)
        });
        group.bench_function("sharded-4", |b| {
            b.iter(|| run_window(&sharded, THREADS, &probes, Duration::from_millis(25), mix).0)
        });
        group.bench_function("sharded-4-nofast", |b| {
            b.iter(|| {
                run_window(
                    &sharded_nofast,
                    THREADS,
                    &probes,
                    Duration::from_millis(25),
                    mix,
                )
                .0
            })
        });
        group.finish();
    }
}

criterion_group!(benches, bench_shard_scale);
criterion_main!(benches);
