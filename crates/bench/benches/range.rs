//! Criterion bench: 100-key range scans (Figure 18 at micro scale).

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

use bench::drivers::{AnyIndex, IndexKind};
use workloads::{generate, uniform_indices, KeysetId};

const KEYS: usize = 20_000;
const SCAN_LEN: usize = 100;

fn bench_range(c: &mut Criterion) {
    for id in [KeysetId::Az1, KeysetId::K4] {
        let keyset = generate(id, KEYS, 42);
        let starts = uniform_indices(256, keyset.keys.len(), 13);
        let mut group = c.benchmark_group(format!("range/{}", id.name()));
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(300))
            .measurement_time(Duration::from_millis(800));
        for kind in [
            IndexKind::SkipList,
            IndexKind::BTree,
            IndexKind::Masstree,
            IndexKind::Wormhole,
        ] {
            let index = AnyIndex::build(kind, &keyset.keys);
            group.bench_function(kind.name(), |b| {
                b.iter(|| {
                    let mut total = 0usize;
                    for &p in &starts {
                        total += index.range_from(&keyset.keys[p], SCAN_LEN).len();
                    }
                    total
                })
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_range);
criterion_main!(benches);
