//! Criterion bench: mixed lookup/insert workloads on the two thread-safe
//! indexes (Figure 17 at micro scale, single-threaded latency flavour).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::time::Duration;

use bench::drivers::{ConcurrentDriver, LockedMasstree};
use workloads::{generate, mixed_ops, KeysetId, Op, OpMix};
use wormhole::Wormhole;

const KEYS: usize = 10_000;
const OPS: usize = 8_192;

fn run_ops(driver: &ConcurrentDriver, keys: &[Vec<u8>], ops: &[Op]) -> usize {
    let mut hits = 0usize;
    for op in ops {
        match op {
            Op::Get(i) => {
                if driver.get(&keys[*i]).is_some() {
                    hits += 1;
                }
            }
            Op::Set(i) => {
                driver.set(&keys[*i], *i as u64);
            }
        }
    }
    hits
}

fn bench_mixed(c: &mut Criterion) {
    let keyset = generate(KeysetId::Az1, KEYS, 42);
    for mix in OpMix::figure17() {
        let ops = mixed_ops(OPS, mix, keyset.keys.len(), 3);
        let mut group = c.benchmark_group(format!("mixed/insert{}pct", mix.insert_pct));
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(300))
            .measurement_time(Duration::from_millis(1000));
        type Builder = (&'static str, fn() -> ConcurrentDriver);
        let builders: [Builder; 2] = [
            ("Masstree-rwlock", || {
                ConcurrentDriver::Masstree(LockedMasstree::new())
            }),
            ("Wormhole", || ConcurrentDriver::Wormhole(Wormhole::new())),
        ];
        for (name, build) in builders {
            group.bench_function(name, |b| {
                b.iter_batched(
                    || {
                        let driver = build();
                        for (i, key) in keyset.keys.iter().take(KEYS / 2).enumerate() {
                            driver.set(key, i as u64);
                        }
                        driver
                    },
                    |driver| run_ops(&driver, &keyset.keys, &ops),
                    BatchSize::LargeInput,
                )
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_mixed);
criterion_main!(benches);
