//! Criterion bench: Wormhole vs the cuckoo hash table (Figures 13/14 at
//! micro scale), including the Kshort/Klong anchor-length sensitivity.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

use bench::drivers::{AnyIndex, IndexKind};
use workloads::{generate, prefix_keyset, uniform_indices, KeysetId};

const KEYS: usize = 20_000;

fn bench_vs_cuckoo(c: &mut Criterion) {
    for id in [KeysetId::Az1, KeysetId::K3, KeysetId::K8] {
        let keyset = generate(id, KEYS, 42);
        let probes = uniform_indices(4096, keyset.keys.len(), 17);
        let mut group = c.benchmark_group(format!("hash_vs_ordered/{}", id.name()));
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(300))
            .measurement_time(Duration::from_millis(800));
        for kind in [IndexKind::Wormhole, IndexKind::Cuckoo] {
            let index = AnyIndex::build(kind, &keyset.keys);
            group.bench_function(kind.name(), |b| {
                b.iter(|| {
                    let mut hits = 0usize;
                    for &p in &probes {
                        if index.get(&keyset.keys[p]).is_some() {
                            hits += 1;
                        }
                    }
                    hits
                })
            });
        }
        group.finish();
    }
}

fn bench_prefix_sensitivity(c: &mut Criterion) {
    // Figure 14: 64-byte keys, random (Kshort) vs filler-prefixed (Klong).
    for (variant, long_prefix) in [("Kshort", false), ("Klong", true)] {
        let keyset = prefix_keyset(64, KEYS, long_prefix, 42);
        let probes = uniform_indices(4096, keyset.keys.len(), 19);
        let mut group = c.benchmark_group(format!("prefix_sensitivity/{variant}"));
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(300))
            .measurement_time(Duration::from_millis(800));
        for kind in [IndexKind::Wormhole, IndexKind::Cuckoo] {
            let index = AnyIndex::build(kind, &keyset.keys);
            group.bench_function(kind.name(), |b| {
                b.iter(|| {
                    let mut hits = 0usize;
                    for &p in &probes {
                        if index.get(&keyset.keys[p]).is_some() {
                            hits += 1;
                        }
                    }
                    hits
                })
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_vs_cuckoo, bench_prefix_sensitivity);
criterion_main!(benches);
