//! Criterion bench: ordered-scan window latency on the concurrent
//! Wormhole, streaming cursor vs materialising `range_from`, short and
//! long windows. `BENCH_scan.json` (written by
//! `cargo run -p bench --release --bin scan_stream_baseline`) records the
//! tracked baseline at full scale.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

use bench::scan_stream::{build_scan_index, materialise_window, stream_window};
use workloads::uniform_indices;

const KEYS: usize = 50_000;

fn bench_scan_stream(c: &mut Criterion) {
    let (wh, keys) = build_scan_index(KEYS, 7);
    for (label, window, n_starts) in [("short", 100usize, 64usize), ("long", 10_000, 4)] {
        let starts = uniform_indices(n_starts, keys.len(), 13);
        let mut group = c.benchmark_group(format!("scan_stream/{label}"));
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(300))
            .measurement_time(Duration::from_millis(800));
        group.bench_function("cursor", |b| {
            b.iter(|| {
                let mut total = 0usize;
                for &p in &starts {
                    total += stream_window(&wh, &keys[p], window).0;
                }
                total
            })
        });
        group.bench_function("range_from", |b| {
            b.iter(|| {
                let mut total = 0usize;
                for &p in &starts {
                    total += materialise_window(&wh, &keys[p], window).0;
                }
                total
            })
        });
        group.finish();
    }
}

criterion_group!(benches, bench_scan_stream);
criterion_main!(benches);
