//! Criterion bench: point-lookup latency per index (Figures 9/10 at micro
//! scale). One group per keyset; one benchmark per index.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::time::Duration;

use bench::drivers::{AnyIndex, IndexKind};
use workloads::{generate, uniform_indices, KeysetId};

const KEYS: usize = 20_000;

fn bench_lookup(c: &mut Criterion) {
    for id in [KeysetId::Az1, KeysetId::Url, KeysetId::K3, KeysetId::K8] {
        let keyset = generate(id, KEYS, 42);
        let probes = uniform_indices(4096, keyset.keys.len(), 7);
        let mut group = c.benchmark_group(format!("lookup/{}", id.name()));
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(300))
            .measurement_time(Duration::from_millis(800));
        for kind in [
            IndexKind::SkipList,
            IndexKind::BTree,
            IndexKind::Art,
            IndexKind::Masstree,
            IndexKind::Wormhole,
            IndexKind::WormholeUnsafe,
        ] {
            let index = AnyIndex::build(kind, &keyset.keys);
            group.bench_function(kind.name(), |b| {
                b.iter_batched(
                    || 0usize,
                    |_| {
                        let mut hits = 0usize;
                        for &p in &probes {
                            if index.get(&keyset.keys[p]).is_some() {
                                hits += 1;
                            }
                        }
                        hits
                    },
                    BatchSize::SmallInput,
                )
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_lookup);
criterion_main!(benches);
