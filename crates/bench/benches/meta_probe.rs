//! Criterion bench: MetaTrieHT point-probe latency, new cache-line-bucket
//! layout vs the seed's `Vec<Vec<_>>` layout, at 1e5 and 1e6 resident
//! anchors, hit and miss probes. `BENCH_meta.json` (written by
//! `cargo run -p bench --release --bin meta_probe_baseline`) records the
//! tracked baseline.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

use bench::meta_layouts::ProbeWorkload;

fn bench_meta_probe(c: &mut Criterion) {
    for &anchors in &[100_000usize, 1_000_000] {
        let workload = ProbeWorkload::new(anchors, 42);
        let (seed_table, flat_table) = workload.build_tables();
        for (mode, keys) in [("hit", &workload.resident), ("miss", &workload.absent)] {
            let mut group = c.benchmark_group(format!("meta_probe/get/{mode}/{anchors}"));
            group
                .sample_size(10)
                .warm_up_time(Duration::from_millis(300))
                .measurement_time(Duration::from_millis(800));
            group.bench_function("seed-vecvec", |b| {
                b.iter(|| {
                    let mut hits = 0usize;
                    for &i in &workload.order {
                        hits += usize::from(seed_table.get(&keys[i % keys.len()]));
                    }
                    hits
                })
            });
            group.bench_function("flat-bucket", |b| {
                b.iter(|| {
                    let mut hits = 0usize;
                    for &i in &workload.order {
                        hits += usize::from(flat_table.get(&keys[i % keys.len()]).is_some());
                    }
                    hits
                })
            });
            group.finish();

            let mut group = c.benchmark_group(format!("meta_probe/tag/{mode}/{anchors}"));
            group
                .sample_size(10)
                .warm_up_time(Duration::from_millis(300))
                .measurement_time(Duration::from_millis(800));
            group.bench_function("seed-vecvec", |b| {
                b.iter(|| {
                    let mut hits = 0usize;
                    for &i in &workload.order {
                        hits += usize::from(seed_table.probe_optimistic(&keys[i % keys.len()]));
                    }
                    hits
                })
            });
            group.bench_function("flat-bucket", |b| {
                b.iter(|| {
                    let mut hits = 0usize;
                    for &i in &workload.order {
                        hits += usize::from(flat_table.probe_optimistic(&keys[i % keys.len()]));
                    }
                    hits
                })
            });
            group.finish();
        }
    }
}

criterion_group!(benches, bench_meta_probe);
criterion_main!(benches);
