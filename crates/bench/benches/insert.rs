//! Criterion bench: single-threaded insertion throughput (Figure 15 at micro
//! scale).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::time::Duration;

use bench::drivers::{AnyIndex, IndexKind};
use workloads::{generate, KeysetId};

const KEYS: usize = 10_000;

fn bench_insert(c: &mut Criterion) {
    for id in [KeysetId::Az1, KeysetId::K3, KeysetId::Url] {
        let keyset = generate(id, KEYS, 42);
        let mut group = c.benchmark_group(format!("insert/{}", id.name()));
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(300))
            .measurement_time(Duration::from_millis(1200));
        for kind in IndexKind::ordered_five() {
            group.bench_function(kind.name(), |b| {
                b.iter_batched(
                    || AnyIndex::new(kind),
                    |mut index| {
                        for (i, key) in keyset.keys.iter().enumerate() {
                            index.insert(key, i as u64);
                        }
                        index
                    },
                    BatchSize::LargeInput,
                )
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_insert);
criterion_main!(benches);
