//! Criterion bench: Wormhole design-choice ablations.
//!
//! * Figure 11's optimisation ladder (BaseWormhole → +TagMatching →
//!   +IncHashing → +SortByTag → +DirectPos);
//! * the leaf-capacity sweep called out in DESIGN.md (the paper fixes the
//!   leaf size at 128; this bench shows how sensitive lookups are to it);
//! * the thread-safe vs thread-unsafe variants (the cost of the RCU/locking
//!   machinery on a single thread, paper §4.1's ~8% gap).

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

use bench::drivers::{AnyIndex, IndexKind};
use index_traits::{ConcurrentOrderedIndex, OrderedIndex};
use workloads::{generate, uniform_indices, KeysetId};
use wormhole::{Wormhole, WormholeConfig, WormholeUnsafe};

const KEYS: usize = 20_000;

fn bench_optimization_ladder(c: &mut Criterion) {
    let keyset = generate(KeysetId::Az1, KEYS, 42);
    let probes = uniform_indices(4096, keyset.keys.len(), 9);
    let mut group = c.benchmark_group("ablation/optimizations");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800));
    for (name, config) in WormholeConfig::ablation_ladder() {
        let mut index = AnyIndex::wormhole_with_config(config);
        for (i, key) in keyset.keys.iter().enumerate() {
            index.insert(key, i as u64);
        }
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut hits = 0usize;
                for &p in &probes {
                    if index.get(&keyset.keys[p]).is_some() {
                        hits += 1;
                    }
                }
                hits
            })
        });
    }
    group.finish();
}

fn bench_leaf_capacity(c: &mut Criterion) {
    let keyset = generate(KeysetId::Az1, KEYS, 42);
    let probes = uniform_indices(4096, keyset.keys.len(), 11);
    let mut group = c.benchmark_group("ablation/leaf_capacity");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800));
    for capacity in [16usize, 32, 64, 128, 256] {
        let config = WormholeConfig::optimized().with_leaf_capacity(capacity);
        let mut index = WormholeUnsafe::with_config(config);
        for (i, key) in keyset.keys.iter().enumerate() {
            index.set(key, i as u64);
        }
        group.bench_function(format!("capacity{capacity}"), |b| {
            b.iter(|| {
                let mut hits = 0usize;
                for &p in &probes {
                    if index.get(&keyset.keys[p]).is_some() {
                        hits += 1;
                    }
                }
                hits
            })
        });
    }
    group.finish();
}

fn bench_safe_vs_unsafe(c: &mut Criterion) {
    let keyset = generate(KeysetId::Az1, KEYS, 42);
    let probes = uniform_indices(4096, keyset.keys.len(), 13);
    let mut group = c.benchmark_group("ablation/concurrency_control");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800));
    let safe = AnyIndex::build(IndexKind::Wormhole, &keyset.keys);
    let unsafe_ = AnyIndex::build(IndexKind::WormholeUnsafe, &keyset.keys);
    for (name, index) in [("thread-safe", &safe), ("thread-unsafe", &unsafe_)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut hits = 0usize;
                for &p in &probes {
                    if index.get(&keyset.keys[p]).is_some() {
                        hits += 1;
                    }
                }
                hits
            })
        });
    }
    group.finish();
    // Keep the concurrent variant exercised through its trait too, so the
    // bench fails to compile if the public API regresses.
    let wh: Wormhole<u64> = Wormhole::new();
    wh.set(b"smoke", 1);
    assert_eq!(wh.get(b"smoke"), Some(1));
}

criterion_group!(
    benches,
    bench_optimization_ladder,
    bench_leaf_capacity,
    bench_safe_vs_unsafe
);
criterion_main!(benches);
