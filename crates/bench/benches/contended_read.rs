//! Criterion bench: point-lookup latency of the concurrent Wormhole while a
//! structural writer churns splits and merges, RwLock read path vs seqlock
//! optimistic read path. `BENCH_concurrent.json` (written by
//! `cargo run -p bench --release --bin contended_read_baseline`) records the
//! tracked baseline with full reader-thread fan-out.

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bench::contended::{build_index, churn_wave, resident_key, CHURN_SEED};
use index_traits::ConcurrentOrderedIndex;

const KEYS: usize = 50_000;

fn bench_contended_read(c: &mut Criterion) {
    for (mode, optimistic) in [("rwlock", false), ("optimistic", true)] {
        let wh = Arc::new(build_index(KEYS, optimistic));
        let probe: Vec<Vec<u8>> = (0..KEYS).map(resident_key).collect();
        let stop = Arc::new(AtomicBool::new(false));
        let writer = {
            let wh = Arc::clone(&wh);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut x = CHURN_SEED;
                while !stop.load(Ordering::Relaxed) {
                    churn_wave(&wh, KEYS, &mut x);
                }
            })
        };

        let mut group = c.benchmark_group(format!("contended_read/{mode}"));
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(300))
            .measurement_time(Duration::from_millis(800));
        group.bench_function("get_under_churn", |b| {
            let mut i = 0usize;
            b.iter(|| {
                let mut hits = 0usize;
                for _ in 0..1024 {
                    i = (i + 1) % probe.len();
                    hits += usize::from(wh.get(&probe[i]).is_some());
                }
                hits
            })
        });
        group.finish();

        stop.store(true, Ordering::Relaxed);
        writer.join().unwrap();
    }
}

criterion_group!(benches, bench_contended_read);
criterion_main!(benches);
