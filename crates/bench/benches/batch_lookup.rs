//! Criterion bench: batched point lookups (`get_batch`) vs a loop of
//! single `get`s, per frontend and batch size, at micro scale. The tracked
//! large-keyset baseline lives in `BENCH_batch.json` (see
//! `bench::batch_lookup`); this bench watches the same shapes with
//! Criterion's statistics on a keyset small enough for CI.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::time::Duration;

use bench::shard_scale::{build_sharded, build_unsharded, resident_keys, shard_bench_config};
use index_traits::{ConcurrentOrderedIndex, OrderedIndex};
use workloads::uniform_indices;
use wormhole::WormholeUnsafe;

const KEYS: usize = 20_000;
const PROBES: usize = 4096;

fn bench_batch_lookup(c: &mut Criterion) {
    let resident = resident_keys(KEYS);
    let order = uniform_indices(PROBES, KEYS, 7);
    let probes: Vec<&[u8]> = order.iter().map(|&i| resident[i].as_slice()).collect();

    let single = {
        let mut wh = WormholeUnsafe::with_config(shard_bench_config());
        for (i, key) in resident.iter().enumerate() {
            wh.set(key, i as u64);
        }
        wh
    };
    let concurrent = build_unsharded(KEYS);
    let sharded = build_sharded(4, KEYS, true);

    for batch in [8usize, 32, 128] {
        let mut group = c.benchmark_group(format!("batch_lookup/batch={batch}"));
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(300))
            .measurement_time(Duration::from_millis(800));
        group.bench_function("single/get_loop", |b| {
            b.iter_batched(
                || (),
                |()| probes.iter().filter(|k| single.get(k).is_some()).count(),
                BatchSize::SmallInput,
            )
        });
        group.bench_function("single/get_batch", |b| {
            b.iter_batched(
                || (),
                |()| {
                    probes
                        .chunks(batch)
                        .map(|chunk| single.get_batch(chunk).iter().flatten().count())
                        .sum::<usize>()
                },
                BatchSize::SmallInput,
            )
        });
        group.bench_function("concurrent/get_loop", |b| {
            b.iter_batched(
                || (),
                |()| {
                    probes
                        .iter()
                        .filter(|k| ConcurrentOrderedIndex::get(&concurrent, k).is_some())
                        .count()
                },
                BatchSize::SmallInput,
            )
        });
        group.bench_function("concurrent/get_batch", |b| {
            b.iter_batched(
                || (),
                |()| {
                    probes
                        .chunks(batch)
                        .map(|chunk| {
                            ConcurrentOrderedIndex::get_batch(&concurrent, chunk)
                                .iter()
                                .flatten()
                                .count()
                        })
                        .sum::<usize>()
                },
                BatchSize::SmallInput,
            )
        });
        group.bench_function("sharded/get_batch", |b| {
            b.iter_batched(
                || (),
                |()| {
                    probes
                        .chunks(batch)
                        .map(|chunk| {
                            ConcurrentOrderedIndex::get_batch(&sharded, chunk)
                                .iter()
                                .flatten()
                                .count()
                        })
                        .sum::<usize>()
                },
                BatchSize::SmallInput,
            )
        });
        group.finish();
    }
}

criterion_group!(benches, bench_batch_lookup);
criterion_main!(benches);
