//! Keyset generators (the paper's Table 1 plus Figure 14's Kshort/Klong).

use rand::distributions::{Alphanumeric, Distribution, Uniform};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Default number of keys generated when a benchmark does not override the
/// scale. The paper uses 10–500 million keys per set; the default here keeps
/// the full figure suite runnable on a laptop while preserving each keyset's
/// structure. Every harness accepts a `--scale` multiplier.
pub const DEFAULT_SCALE: usize = 100_000;

/// Identifier of one of the paper's keysets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KeysetId {
    /// Amazon review metadata, item-user-time composition (~40 B).
    Az1,
    /// Amazon review metadata, user-item-time composition (~40 B).
    Az2,
    /// MemeTracker URLs (~82 B, heavy shared prefixes).
    Url,
    /// Random 8-byte keys.
    K3,
    /// Random 16-byte keys.
    K4,
    /// Random 64-byte keys.
    K6,
    /// Random 256-byte keys.
    K8,
    /// Random 1024-byte keys.
    K10,
}

impl KeysetId {
    /// All eight keysets in the paper's presentation order.
    pub fn all() -> [KeysetId; 8] {
        [
            KeysetId::Az1,
            KeysetId::Az2,
            KeysetId::Url,
            KeysetId::K3,
            KeysetId::K4,
            KeysetId::K6,
            KeysetId::K8,
            KeysetId::K10,
        ]
    }

    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            KeysetId::Az1 => "Az1",
            KeysetId::Az2 => "Az2",
            KeysetId::Url => "Url",
            KeysetId::K3 => "K3",
            KeysetId::K4 => "K4",
            KeysetId::K6 => "K6",
            KeysetId::K8 => "K8",
            KeysetId::K10 => "K10",
        }
    }
}

/// Static description of a keyset (Table 1).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KeysetSpec {
    /// Which keyset this is.
    pub id: KeysetId,
    /// Display name.
    pub name: &'static str,
    /// Paper's description of the keyset.
    pub description: &'static str,
    /// Number of keys in the paper's full-size keyset (millions).
    pub paper_keys_millions: f64,
    /// Total size of the paper's keyset in GB.
    pub paper_size_gb: f64,
    /// Nominal (average) key length in bytes.
    pub avg_key_len: usize,
}

/// Returns the Table 1 rows.
pub fn paper_keysets() -> Vec<KeysetSpec> {
    vec![
        KeysetSpec {
            id: KeysetId::Az1,
            name: "Az1",
            description: "Amazon reviews metadata, format: item-user-time",
            paper_keys_millions: 142.0,
            paper_size_gb: 8.5,
            avg_key_len: 40,
        },
        KeysetSpec {
            id: KeysetId::Az2,
            name: "Az2",
            description: "Amazon reviews metadata, format: user-item-time",
            paper_keys_millions: 142.0,
            paper_size_gb: 8.5,
            avg_key_len: 40,
        },
        KeysetSpec {
            id: KeysetId::Url,
            name: "Url",
            description: "URLs in Memetracker",
            paper_keys_millions: 192.0,
            paper_size_gb: 20.0,
            avg_key_len: 82,
        },
        KeysetSpec {
            id: KeysetId::K3,
            name: "K3",
            description: "Random keys, length: 8 B",
            paper_keys_millions: 500.0,
            paper_size_gb: 11.2,
            avg_key_len: 8,
        },
        KeysetSpec {
            id: KeysetId::K4,
            name: "K4",
            description: "Random keys, length: 16 B",
            paper_keys_millions: 300.0,
            paper_size_gb: 8.9,
            avg_key_len: 16,
        },
        KeysetSpec {
            id: KeysetId::K6,
            name: "K6",
            description: "Random keys, length: 64 B",
            paper_keys_millions: 120.0,
            paper_size_gb: 8.9,
            avg_key_len: 64,
        },
        KeysetSpec {
            id: KeysetId::K8,
            name: "K8",
            description: "Random keys, length: 256 B",
            paper_keys_millions: 40.0,
            paper_size_gb: 10.1,
            avg_key_len: 256,
        },
        KeysetSpec {
            id: KeysetId::K10,
            name: "K10",
            description: "Random keys, length: 1024 B",
            paper_keys_millions: 10.0,
            paper_size_gb: 9.7,
            avg_key_len: 1024,
        },
    ]
}

/// A generated keyset.
#[derive(Debug, Clone)]
pub struct Keyset {
    /// Which keyset was generated.
    pub id: KeysetId,
    /// The keys, deduplicated, in generation order (not sorted).
    pub keys: Vec<Vec<u8>>,
}

impl Keyset {
    /// Average key length in bytes.
    pub fn avg_len(&self) -> f64 {
        if self.keys.is_empty() {
            return 0.0;
        }
        self.keys.iter().map(|k| k.len()).sum::<usize>() as f64 / self.keys.len() as f64
    }

    /// Total key bytes.
    pub fn total_bytes(&self) -> usize {
        self.keys.iter().map(|k| k.len()).sum()
    }
}

/// Generates `count` unique keys of the requested keyset, deterministically
/// from `seed`.
pub fn generate(id: KeysetId, count: usize, seed: u64) -> Keyset {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x574F_524D_484F_4C45);
    let mut keys: Vec<Vec<u8>> = Vec::with_capacity(count);
    let mut seen = std::collections::HashSet::with_capacity(count * 2);
    while keys.len() < count {
        let key = match id {
            KeysetId::Az1 => amazon_key(&mut rng, true),
            KeysetId::Az2 => amazon_key(&mut rng, false),
            KeysetId::Url => url_key(&mut rng),
            KeysetId::K3 => random_key(&mut rng, 8),
            KeysetId::K4 => random_key(&mut rng, 16),
            KeysetId::K6 => random_key(&mut rng, 64),
            KeysetId::K8 => random_key(&mut rng, 256),
            KeysetId::K10 => random_key(&mut rng, 1024),
        };
        if seen.insert(key.clone()) {
            keys.push(key);
        }
    }
    Keyset { id, keys }
}

/// One synthetic Amazon review-metadata key.
///
/// The real dataset concatenates an item id (ASIN, 10 alphanumerics), a user
/// id ("A" + 13 alphanumerics), and a 10-digit Unix review time. `Az1` orders
/// the fields item-user-time; `Az2` orders them user-item-time. Item and user
/// populations are much smaller than the number of reviews, so many keys
/// share an item (Az1) or user (Az2) prefix — exactly the property that makes
/// the two orderings behave differently in trie-based indexes.
fn amazon_key(rng: &mut SmallRng, item_first: bool) -> Vec<u8> {
    // Draw items/users from bounded populations so prefixes repeat. The
    // pools are sized against DEFAULT_SCALE (not the paper's 142M reviews)
    // so that shared item/user prefixes actually occur at the key counts
    // this reproduction generates.
    let item_pool = 100_000u64;
    let user_pool = 200_000u64;
    let item = rng.gen_range(0..item_pool);
    let user = rng.gen_range(0..user_pool);
    let time = 1_100_000_000u64 + rng.gen_range(0..300_000_000u64);
    let item_s = format!("B{item:09}");
    let user_s = format!("A{user:013}");
    let key = if item_first {
        format!("{item_s}-{user_s}-{time:010}")
    } else {
        format!("{user_s}-{item_s}-{time:010}")
    };
    key.into_bytes()
}

/// One synthetic MemeTracker-style URL (~82 bytes on average, long shared
/// prefixes from a bounded set of sites and path stems).
fn url_key(rng: &mut SmallRng) -> Vec<u8> {
    const SITES: &[&str] = &[
        "http://news.example.com",
        "http://blog.dailymedia.org",
        "http://www.socialnetwork.net",
        "http://feeds.aggregator.io",
        "http://video.streaming-site.tv",
        "http://forum.discussion-board.org",
        "http://www.online-magazine.com",
        "http://cdn.content-host.net",
    ];
    const SECTIONS: &[&str] = &[
        "politics",
        "technology",
        "entertainment",
        "sports",
        "science",
        "business",
        "world",
        "opinion",
        "health",
        "culture",
    ];
    let site = SITES[rng.gen_range(0..SITES.len())];
    let section = SECTIONS[rng.gen_range(0..SECTIONS.len())];
    let year = rng.gen_range(2008..2010);
    let month = rng.gen_range(1..13);
    let day = rng.gen_range(1..29);
    let slug_len = rng.gen_range(18..40);
    let slug: String = (0..slug_len)
        .map(|_| {
            let c = rng.sample(Alphanumeric) as char;
            if rng.gen_bool(0.15) {
                '-'
            } else {
                c.to_ascii_lowercase()
            }
        })
        .collect();
    let id = rng.gen_range(100_000..10_000_000u64);
    format!("{site}/{section}/{year}/{month:02}/{day:02}/{slug}-{id}.html").into_bytes()
}

/// A fixed-length key of uniformly random printable bytes.
fn random_key(rng: &mut SmallRng, len: usize) -> Vec<u8> {
    let dist = Uniform::new_inclusive(0x21u8, 0x7Eu8);
    (0..len).map(|_| dist.sample(rng)).collect()
}

/// Generates the Figure 14 keysets: `count` keys of exactly `len` bytes.
///
/// With `long_prefix` false (*Kshort*) the whole key is random, so anchors
/// stay short. With `long_prefix` true (*Klong*) the first `len - 4` bytes
/// are the filler byte `'0'` and only the last four bytes carry entropy,
/// which forces long anchors in Wormhole's MetaTrie.
pub fn prefix_keyset(len: usize, count: usize, long_prefix: bool, seed: u64) -> Keyset {
    assert!(len >= 8, "Figure 14 keys are at least 8 bytes");
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x4B53_484F_5254);
    let mut keys = Vec::with_capacity(count);
    let mut seen = std::collections::HashSet::with_capacity(count * 2);
    while keys.len() < count {
        let key: Vec<u8> = if long_prefix {
            let mut k = vec![b'0'; len - 4];
            // Random printable tail so keys stay unique.
            k.extend((0..4).map(|_| rng.gen_range(0x21u8..=0x7Eu8)));
            k
        } else {
            random_key(&mut rng, len)
        };
        if seen.insert(key.clone()) {
            keys.push(key);
        }
    }
    Keyset {
        id: if len == 8 { KeysetId::K3 } else { KeysetId::K4 },
        keys,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn table1_lists_eight_keysets() {
        let specs = paper_keysets();
        assert_eq!(specs.len(), 8);
        assert_eq!(specs[0].name, "Az1");
        assert_eq!(specs[7].avg_key_len, 1024);
        let names: HashSet<_> = specs.iter().map(|s| s.name).collect();
        assert_eq!(names.len(), 8);
    }

    #[test]
    fn generation_is_deterministic_and_unique() {
        for id in KeysetId::all() {
            let a = generate(id, 500, 42);
            let b = generate(id, 500, 42);
            assert_eq!(a.keys, b.keys, "{id:?} not deterministic");
            let unique: HashSet<_> = a.keys.iter().collect();
            assert_eq!(unique.len(), 500, "{id:?} produced duplicates");
            let c = generate(id, 500, 43);
            assert_ne!(a.keys, c.keys, "{id:?} ignores the seed");
        }
    }

    #[test]
    fn fixed_length_keysets_have_exact_lengths() {
        for (id, len) in [
            (KeysetId::K3, 8),
            (KeysetId::K4, 16),
            (KeysetId::K6, 64),
            (KeysetId::K8, 256),
            (KeysetId::K10, 1024),
        ] {
            let ks = generate(id, 100, 7);
            assert!(ks.keys.iter().all(|k| k.len() == len), "{id:?}");
        }
    }

    #[test]
    fn amazon_keysets_have_realistic_shape() {
        let az1 = generate(KeysetId::Az1, 2000, 1);
        let az2 = generate(KeysetId::Az2, 2000, 1);
        // ~40 byte keys, composed of three dash-separated fields.
        assert!((36.0..=44.0).contains(&az1.avg_len()), "{}", az1.avg_len());
        assert!((36.0..=44.0).contains(&az2.avg_len()));
        assert!(az1.keys.iter().all(|k| k.starts_with(b"B")));
        assert!(az2.keys.iter().all(|k| k.starts_with(b"A")));
        assert!(az1.keys[0].iter().filter(|&&c| c == b'-').count() >= 2);
        // Field composition changes prefix sharing: Az1 shares item prefixes.
        let shared_prefix_pairs = |keys: &[Vec<u8>], plen: usize| {
            let mut prefixes = HashSet::new();
            let mut repeats = 0usize;
            for k in keys {
                if !prefixes.insert(k[..plen].to_vec()) {
                    repeats += 1;
                }
            }
            repeats
        };
        // Item ids repeat across reviews, so 10-byte prefixes collide in Az1.
        assert!(shared_prefix_pairs(&az1.keys, 10) > 0);
    }

    #[test]
    fn url_keyset_has_long_keys_and_shared_prefixes() {
        let url = generate(KeysetId::Url, 2000, 5);
        assert!((60.0..=100.0).contains(&url.avg_len()), "{}", url.avg_len());
        assert!(url.keys.iter().all(|k| k.starts_with(b"http://")));
        // Many keys share a full site prefix (bounded site population).
        let mut sites = HashSet::new();
        for k in &url.keys {
            let slash = k.iter().skip(7).position(|&c| c == b'/').unwrap() + 7;
            sites.insert(k[..slash].to_vec());
        }
        assert!(sites.len() <= 8);
    }

    #[test]
    fn kshort_and_klong_differ_only_in_prefix_structure() {
        let kshort = prefix_keyset(64, 500, false, 9);
        let klong = prefix_keyset(64, 500, true, 9);
        assert!(kshort.keys.iter().all(|k| k.len() == 64));
        assert!(klong.keys.iter().all(|k| k.len() == 64));
        assert!(klong
            .keys
            .iter()
            .all(|k| k[..60].iter().all(|&c| c == b'0')));
        // Kshort keys diverge within the first few bytes.
        let first_bytes: HashSet<u8> = kshort.keys.iter().map(|k| k[0]).collect();
        assert!(first_bytes.len() > 10);
    }

    #[test]
    #[should_panic(expected = "at least 8 bytes")]
    fn prefix_keyset_rejects_tiny_lengths() {
        let _ = prefix_keyset(4, 10, false, 0);
    }
}
