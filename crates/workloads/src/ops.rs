//! Operation streams: lookup-only, insert-only, and mixed workloads
//! (Figures 9, 10, 15, 17).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One index operation, referring to a key by its position in a keyset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Op {
    /// Point lookup of the key at the given index.
    Get(usize),
    /// Insert (or overwrite) the key at the given index.
    Set(usize),
}

/// Description of a mixed workload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpMix {
    /// Percentage of operations that are insertions (0–100); the paper uses
    /// 5, 50, and 95 for Figure 17.
    pub insert_pct: u8,
}

impl OpMix {
    /// The three mixes of Figure 17.
    pub fn figure17() -> [OpMix; 3] {
        [
            OpMix { insert_pct: 5 },
            OpMix { insert_pct: 50 },
            OpMix { insert_pct: 95 },
        ]
    }
}

/// Generates `count` uniformly random key indices in `[0, n_keys)`.
///
/// The paper selects search keys uniformly from the keyset "to generate a
/// large working set so that an index's performance is not overshadowed by
/// the effect of the CPU cache".
pub fn uniform_indices(count: usize, n_keys: usize, seed: u64) -> Vec<usize> {
    assert!(n_keys > 0, "keyset must not be empty");
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x554E49464F524D);
    (0..count).map(|_| rng.gen_range(0..n_keys)).collect()
}

/// Generates a mixed lookup/insert stream over a keyset of `n_keys` keys.
///
/// Insertions target the second half of the keyset (initially absent), and
/// lookups target the first half (preloaded), mirroring how the paper mixes
/// a preloaded index with ongoing insertions.
pub fn mixed_ops(count: usize, mix: OpMix, n_keys: usize, seed: u64) -> Vec<Op> {
    assert!(mix.insert_pct <= 100, "insert percentage out of range");
    assert!(n_keys >= 2, "need at least two keys to build a mix");
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x4D49_5845_444F_5053);
    let preload = n_keys / 2;
    (0..count)
        .map(|_| {
            if rng.gen_range(0..100u8) < mix.insert_pct {
                Op::Set(preload + rng.gen_range(0..n_keys - preload))
            } else {
                Op::Get(rng.gen_range(0..preload))
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_indices_cover_range() {
        let idx = uniform_indices(10_000, 100, 3);
        assert_eq!(idx.len(), 10_000);
        assert!(idx.iter().all(|&i| i < 100));
        // All slots hit with overwhelming probability at this sample size.
        let hit: std::collections::HashSet<_> = idx.iter().collect();
        assert_eq!(hit.len(), 100);
        assert_eq!(idx, uniform_indices(10_000, 100, 3));
        assert_ne!(idx, uniform_indices(10_000, 100, 4));
    }

    #[test]
    fn figure17_mixes() {
        let mixes = OpMix::figure17();
        assert_eq!(mixes.map(|m| m.insert_pct), [5, 50, 95]);
    }

    #[test]
    fn mixed_ops_respect_ratio_and_partition() {
        for mix in OpMix::figure17() {
            let ops = mixed_ops(20_000, mix, 1000, 11);
            let inserts = ops.iter().filter(|o| matches!(o, Op::Set(_))).count();
            let pct = inserts as f64 / ops.len() as f64 * 100.0;
            assert!(
                (pct - mix.insert_pct as f64).abs() < 2.0,
                "mix {} produced {pct:.1}% inserts",
                mix.insert_pct
            );
            for op in &ops {
                match op {
                    Op::Get(i) => assert!(*i < 500),
                    Op::Set(i) => assert!(*i >= 500 && *i < 1000),
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "keyset must not be empty")]
    fn empty_keyset_rejected() {
        let _ = uniform_indices(10, 0, 0);
    }
}
