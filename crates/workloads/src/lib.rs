//! Keyset generators and operation mixes for the Wormhole evaluation.
//!
//! The paper evaluates on eight keysets (its Table 1): two derived from
//! Amazon review metadata (`Az1`, `Az2`), one from MemeTracker URLs (`Url`),
//! and five synthetic fixed-length random keysets (`K3`–`K10`). The original
//! datasets are not redistributable, so this crate generates synthetic
//! keysets that reproduce the *structural* properties the paper identifies
//! as performance-relevant: key length distribution, field composition order
//! (which controls shared-prefix structure), and the heavy common prefixes of
//! URLs. See `DESIGN.md` ("Substitutions") for the full rationale.
//!
//! It also provides the `Kshort`/`Klong` filler-prefix keysets of Figure 14
//! and the mixed lookup/insert operation streams of Figure 17.

pub mod keysets;
pub mod ops;

pub use keysets::{
    generate, paper_keysets, prefix_keyset, Keyset, KeysetId, KeysetSpec, DEFAULT_SCALE,
};
pub use ops::{mixed_ops, uniform_indices, Op, OpMix};
