//! Structural-event counters: splits and merges observed through
//! [`WormholeMetrics`], plus the registry round-trip for the exposition
//! names. Retry/fallback/restart counters are race-dependent and only
//! sanity-checked for registration here; their recording sites are
//! exercised (not asserted non-zero) by the concurrent stress tests.

use index_traits::ConcurrentOrderedIndex;
use wh_telemetry::Registry;
use wormhole::{Wormhole, WormholeConfig, WormholeMetrics};

#[test]
fn splits_and_merges_are_counted() {
    let index: Wormhole<u64> = Wormhole::new();
    let n = 4 * index.config().leaf_capacity as u64;
    for i in 0..n {
        index.set(format!("key{i:08}").as_bytes(), i);
    }
    let splits = index.metrics().splits.get();
    assert!(splits > 0, "inserting {n} keys must split at least once");
    assert_eq!(index.metrics().merges.get(), 0);

    for i in 0..n {
        index.del(format!("key{i:08}").as_bytes());
    }
    assert!(
        index.metrics().merges.get() > 0,
        "deleting every key must merge leaves back"
    );
    // No writers raced the single thread: reads never conflicted.
    assert_eq!(index.metrics().seqlock_retries.get(), 0);
    assert_eq!(index.metrics().locked_fallbacks.get(), 0);
    assert_eq!(index.metrics().lpm_restarts.get(), 0);
}

#[test]
fn shared_metrics_aggregate_across_instances() {
    let metrics = std::sync::Arc::new(WormholeMetrics::default());
    let a: Wormhole<u64> =
        Wormhole::with_config_and_metrics(WormholeConfig::default(), metrics.clone());
    let b: Wormhole<u64> =
        Wormhole::with_config_and_metrics(WormholeConfig::default(), metrics.clone());
    let n = 2 * a.config().leaf_capacity as u64;
    for i in 0..n {
        a.set(format!("a{i:08}").as_bytes(), i);
        b.set(format!("b{i:08}").as_bytes(), i);
    }
    let single: Wormhole<u64> = Wormhole::new();
    for i in 0..n {
        single.set(format!("a{i:08}").as_bytes(), i);
    }
    assert_eq!(metrics.splits.get(), 2 * single.metrics().splits.get());
}

#[test]
fn metrics_register_and_render() {
    let index: Wormhole<u64> = Wormhole::new();
    index.set(b"k", 7);
    let registry = Registry::new();
    index.metrics().register_into(&registry, "wormhole");
    index
        .epoch_metrics()
        .register_into(&registry, "wormhole_epoch");
    registry.lint().expect("names well-formed and unique");
    let text = registry.snapshot().render();
    assert!(text.contains("wormhole_splits_total"));
    assert!(text.contains("wormhole_seqlock_retries_total"));
    assert!(text.contains("wormhole_epoch_section_entries_total"));
}
