//! Property tests for the cache-line-bucketized MetaTrieHT, plus the
//! allocation guard proving the lookup hot path stays allocation-free.
//!
//! * randomized insert/remove sequences must keep the hash-table layer in
//!   agreement with a `HashMap` model across `grow()` boundaries;
//! * randomized anchor sets driven through the structural API
//!   (`apply_split`/`apply_merge`) must produce identical `search_target`
//!   outcomes in optimistic (TagMatching) and exact probe modes;
//! * `Wormhole::get` / `WormholeUnsafe::get` — and therefore the LPM binary
//!   search and trie sibling step under them — must perform **zero** heap
//!   allocations per call, enforced by a counting `#[global_allocator]`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::collections::HashMap;

use index_traits::{ConcurrentOrderedIndex, OrderedIndex};
use proptest::prelude::*;
use wormhole::meta::{MetaKind, MetaTable, TargetOutcome};
use wormhole::{Wormhole, WormholeConfig, WormholeUnsafe};

// ---------------------------------------------------------------------
// Counting allocator
// ---------------------------------------------------------------------

thread_local! {
    /// Allocations made by the current thread (counts `alloc` and
    /// `realloc`; `dealloc` is free).
    static THREAD_ALLOCS: Cell<usize> = const { Cell::new(0) };
}

/// Wraps the system allocator, counting per-thread allocation events so a
/// test can assert a code path allocates nothing — regardless of what other
/// test threads do concurrently.
struct CountingAllocator;

// SAFETY: defers entirely to `System`; the thread-local counter is a plain
// `Cell<usize>` with const init, so touching it never allocates or drops.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        THREAD_ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        THREAD_ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn thread_allocs() -> usize {
    THREAD_ALLOCS.with(|c| c.get())
}

// ---------------------------------------------------------------------
// Allocation guards: the lookup hot path
// ---------------------------------------------------------------------

/// Keys covering the shapes that stress the MetaTrieHT: short, long,
/// prefix-heavy, and binary.
fn lookup_keyset() -> Vec<Vec<u8>> {
    let mut keys: Vec<Vec<u8>> = Vec::new();
    for i in 0..3000u32 {
        keys.push(format!("user:{:06}:profile", i * 37 % 3000).into_bytes());
        if i % 3 == 0 {
            keys.push(format!("url/http/site-{}/deep/path/{i:08}", i % 7).into_bytes());
        }
        if i % 5 == 0 {
            keys.push(vec![(i % 251) as u8, (i / 251) as u8, 0, 1, (i % 17) as u8]);
        }
    }
    keys.sort();
    keys.dedup();
    keys
}

#[test]
fn concurrent_get_is_allocation_free() {
    let wh: Wormhole<u64> = Wormhole::new();
    let keys = lookup_keyset();
    for (i, k) in keys.iter().enumerate() {
        wh.set(k, i as u64);
    }
    let misses: Vec<Vec<u8>> = (0..512u32)
        .map(|i| format!("absent-key-{i:05}/nothing-here").into_bytes())
        .collect();
    // Warm-up: registers this thread's QSBR handle (first use allocates a
    // thread-local entry) and faults in lazily initialised TLS.
    for k in keys.iter().take(16) {
        assert!(wh.get(k).is_some());
    }
    assert_eq!(wh.get(&misses[0]), None);

    let before = thread_allocs();
    let mut hits = 0usize;
    for k in &keys {
        hits += usize::from(wh.get(k).is_some());
    }
    for k in &misses {
        hits += usize::from(wh.get(k).is_some());
    }
    let after = thread_allocs();
    assert_eq!(hits, keys.len());
    assert_eq!(
        after - before,
        0,
        "Wormhole::get allocated ({} allocations over {} lookups)",
        after - before,
        keys.len() + misses.len(),
    );
}

#[test]
fn concurrent_get_retry_path_is_allocation_free() {
    // The seqlock read path must stay allocation-free even when reads race
    // writers and retry (or fall through to the locked fallback): a churn
    // thread keeps splitting and merging the probed leaves for the whole
    // measured window. Allocations are counted per-thread, so the writer's
    // own allocations do not pollute the reader's count.
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let wh: Arc<Wormhole<u64>> = Arc::new(Wormhole::with_config(
        WormholeConfig::optimized().with_leaf_capacity(8),
    ));
    assert!(wh.config().optimistic_reads);
    let keys = lookup_keyset();
    for (i, k) in keys.iter().enumerate() {
        wh.set(k, i as u64);
    }
    let stop = Arc::new(AtomicBool::new(false));
    let churn = {
        let wh = Arc::clone(&wh);
        let stop = Arc::clone(&stop);
        let churn_keys: Vec<Vec<u8>> = keys
            .iter()
            .step_by(5)
            .map(|k| {
                let mut c = k.clone();
                c.extend_from_slice(b"~churn");
                c
            })
            .collect();
        std::thread::spawn(move || {
            let mut round = 0u64;
            while !stop.load(Ordering::Relaxed) {
                for k in &churn_keys {
                    wh.set(k, round);
                }
                for k in &churn_keys {
                    wh.del(k);
                }
                round += 1;
            }
        })
    };
    // Warm-up: registers this thread's QSBR handle and faults in TLS.
    for k in keys.iter().take(16) {
        assert!(wh.get(k).is_some());
    }

    let before = thread_allocs();
    let mut hits = 0usize;
    for _ in 0..3 {
        for k in &keys {
            hits += usize::from(wh.get(k).is_some());
        }
    }
    let after = thread_allocs();
    stop.store(true, Ordering::Relaxed);
    churn.join().unwrap();
    assert_eq!(hits, 3 * keys.len(), "resident keys must never be missed");
    assert_eq!(
        after - before,
        0,
        "Wormhole::get allocated under churn ({} allocations over {} lookups)",
        after - before,
        3 * keys.len(),
    );
}

// ---------------------------------------------------------------------
// Allocation guards: the streaming scan cursor
// ---------------------------------------------------------------------

/// Uniform-length keys for the cursor scans, so buffer demand per batch is
/// bounded by `leaf_capacity * key_len` and the pre-sizing below is exact.
fn scan_keyset(n: u64) -> Vec<Vec<u8>> {
    (0..n)
        .map(|i| format!("scan-{i:08}").into_bytes())
        .collect()
}

#[test]
fn concurrent_cursor_batch_advancement_is_allocation_free() {
    // Steady-state batch advancement of the concurrent scan cursor —
    // locate the leaf, snapshot it into the batch arena, validate, advance
    // the resume bound — must reuse every buffer: zero allocations per
    // batch once the arenas have reached their working size.
    let wh: Wormhole<u64> =
        Wormhole::with_config(WormholeConfig::optimized().with_leaf_capacity(16));
    let keys = scan_keyset(12_000);
    for (i, k) in keys.iter().enumerate() {
        wh.set(k, i as u64);
    }
    // Warm-up: QSBR handle + TLS.
    assert!(wh.get(&keys[0]).is_some());

    let mut cursor = wh.scan(b"");
    // Pre-size the arenas for a full leaf (16 keys x 13 bytes), then let two
    // batches bring every remaining scratch buffer to its working size.
    cursor.reserve(64, 4096);
    let mut streamed = 0usize;
    for _ in 0..2 {
        streamed += cursor.next_batch().expect("population not exhausted").len();
    }

    let before = thread_allocs();
    while let Some(batch) = cursor.next_batch() {
        streamed += batch.len();
    }
    let after = thread_allocs();
    assert_eq!(streamed, keys.len(), "cursor lost pairs");
    assert_eq!(
        after - before,
        0,
        "concurrent cursor allocated ({} allocations while streaming)",
        after - before,
    );
}

#[test]
fn single_threaded_cursor_batch_advancement_is_allocation_free() {
    let mut wh: WormholeUnsafe<u64> =
        WormholeUnsafe::with_config(WormholeConfig::optimized().with_leaf_capacity(16));
    let keys = scan_keyset(12_000);
    for (i, k) in keys.iter().enumerate() {
        wh.set(k, i as u64);
    }
    let mut cursor = wh.scan(b"");
    cursor.reserve(64, 4096);
    let mut streamed = 0usize;
    for _ in 0..2 {
        streamed += cursor.next_batch().expect("population not exhausted").len();
    }

    let before = thread_allocs();
    while let Some(batch) = cursor.next_batch() {
        streamed += batch.len();
    }
    let after = thread_allocs();
    assert_eq!(streamed, keys.len(), "cursor lost pairs");
    assert_eq!(
        after - before,
        0,
        "single-threaded cursor allocated ({} allocations while streaming)",
        after - before,
    );
}

#[test]
fn concurrent_full_range_from_allocates_only_per_pair_output() {
    // `range_from(b"", usize::MAX)` now streams through the cursor, so its
    // per-leaf-hop machinery (resume bound, batch arena, tail snapshot)
    // must reuse buffers: the only O(n) allocation left is the unavoidable
    // one key-`Vec` per materialised pair, plus a logarithmic number of
    // buffer growths. A regression that clones the resume key (or any
    // other per-hop state) per leaf would add ~one allocation per leaf hop
    // (750 leaves here) and break the bound.
    let wh: Wormhole<u64> =
        Wormhole::with_config(WormholeConfig::optimized().with_leaf_capacity(16));
    let keys = scan_keyset(12_000);
    for (i, k) in keys.iter().enumerate() {
        wh.set(k, i as u64);
    }
    assert!(wh.get(&keys[0]).is_some()); // QSBR/TLS warm-up

    let before = thread_allocs();
    let scan = wh.range_from(b"", usize::MAX);
    let after = thread_allocs();
    assert_eq!(scan.len(), keys.len());
    assert!(
        after - before <= keys.len() + 64,
        "range_from allocated {} times for {} pairs (> 1 per pair + slack)",
        after - before,
        keys.len(),
    );
}

#[test]
fn short_window_range_from_does_not_copy_whole_leaves() {
    // The cursor threads the window budget down to the per-leaf collectors,
    // so a count-1 range on heap values (String forces the locked scan
    // path, where every collected value is a real clone) must stay O(1):
    // a whole-leaf snapshot would cost ~leaf_capacity allocations instead.
    let wh: Wormhole<String> =
        Wormhole::with_config(WormholeConfig::optimized().with_leaf_capacity(64));
    for i in 0..2_000u32 {
        wh.set(
            format!("short-{i:06}").as_bytes(),
            format!("value-payload-{i:06}-{}", "x".repeat(24)),
        );
    }
    assert!(wh.get(b"short-000000").is_some()); // warm-up

    let before = thread_allocs();
    let out = wh.range_from(b"short-001000", 1);
    let after = thread_allocs();
    assert_eq!(out.len(), 1);
    assert_eq!(out[0].0, b"short-001000".to_vec());
    assert!(
        after - before <= 24,
        "count-1 range_from allocated {} times (whole-leaf copy?)",
        after - before,
    );
}

#[test]
fn single_threaded_get_is_allocation_free() {
    let mut wh: WormholeUnsafe<u64> = WormholeUnsafe::new();
    let keys = lookup_keyset();
    for (i, k) in keys.iter().enumerate() {
        wh.set(k, i as u64);
    }
    let misses: Vec<Vec<u8>> = (0..512u32)
        .map(|i| format!("missing/{i:06}").into_bytes())
        .collect();
    for k in keys.iter().take(16) {
        assert!(wh.get(k).is_some());
    }

    let before = thread_allocs();
    let mut hits = 0usize;
    for k in &keys {
        hits += usize::from(wh.get(k).is_some());
    }
    for k in &misses {
        hits += usize::from(wh.get(k).is_some());
    }
    let after = thread_allocs();
    assert_eq!(hits, keys.len());
    assert_eq!(
        after - before,
        0,
        "WormholeUnsafe::get allocated ({} allocations)",
        after - before,
    );
}

#[test]
fn single_threaded_get_batch_allocates_only_the_result_vector() {
    // Steady-state batched lookups: all pipeline scratch (probe windows,
    // hash state, located leaves) lives on the stack, so the only
    // allocation a `get_batch` call may make is the returned `Vec` itself
    // — exactly one allocation per call, regardless of batch size.
    let mut wh: WormholeUnsafe<u64> = WormholeUnsafe::new();
    let keys = lookup_keyset();
    for (i, k) in keys.iter().enumerate() {
        wh.set(k, i as u64);
    }
    let mut probes: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
    let misses: Vec<Vec<u8>> = (0..64u32)
        .map(|i| format!("missing/{i:06}").into_bytes())
        .collect();
    probes.extend(misses.iter().map(|k| k.as_slice()));
    for k in keys.iter().take(16) {
        assert!(wh.get(k).is_some());
    }

    let mut calls = 0usize;
    let before = thread_allocs();
    let mut hits = 0usize;
    for batch in [1usize, 7, 16, 128] {
        for chunk in probes.chunks(batch) {
            hits += wh.get_batch(chunk).iter().flatten().count();
            calls += 1;
        }
    }
    let after = thread_allocs();
    assert_eq!(hits, 4 * keys.len());
    assert_eq!(
        after - before,
        calls,
        "WormholeUnsafe::get_batch allocated beyond the result vector \
         ({} allocations over {} calls)",
        after - before,
        calls,
    );
}

#[test]
fn concurrent_get_batch_allocates_only_the_result_vector() {
    // Same guard for the concurrent seqlock path: the shared QSBR critical
    // section, the pipelined window, and the optimistic leaf reads must
    // not allocate; one allocation per call for the returned `Vec`.
    let wh: Wormhole<u64> = Wormhole::new();
    assert!(wh.config().optimistic_reads);
    let keys = lookup_keyset();
    for (i, k) in keys.iter().enumerate() {
        wh.set(k, i as u64);
    }
    let mut probes: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
    let misses: Vec<Vec<u8>> = (0..64u32)
        .map(|i| format!("missing/{i:06}").into_bytes())
        .collect();
    probes.extend(misses.iter().map(|k| k.as_slice()));
    // Warm-up registers the QSBR handle and faults in TLS.
    for k in keys.iter().take(16) {
        assert!(wh.get(k).is_some());
    }
    assert_eq!(wh.get(&misses[0]), None);

    let mut calls = 0usize;
    let before = thread_allocs();
    let mut hits = 0usize;
    for batch in [1usize, 7, 16, 128] {
        for chunk in probes.chunks(batch) {
            hits += wh.get_batch(chunk).iter().flatten().count();
            calls += 1;
        }
    }
    let after = thread_allocs();
    assert_eq!(hits, 4 * keys.len());
    assert_eq!(
        after - before,
        calls,
        "Wormhole::get_batch allocated beyond the result vector \
         ({} allocations over {} calls)",
        after - before,
        calls,
    );
}

#[test]
fn meta_search_target_is_allocation_free() {
    // Drive search_target directly (both probe modes), covering the LPM
    // binary search and the trie sibling step without the leaf layer.
    let mut wh: WormholeUnsafe<u64> = WormholeUnsafe::new();
    let keys = lookup_keyset();
    for (i, k) in keys.iter().enumerate() {
        wh.set(k, i as u64);
    }
    let optimistic = WormholeConfig::optimized();
    let exact = WormholeConfig::base();
    let meta = wh.meta_table();
    let probes: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();

    let before = thread_allocs();
    for key in &probes {
        let a = meta.search_target(key, &optimistic);
        let b = meta.search_target(key, &exact);
        assert!(a == b);
    }
    let after = thread_allocs();
    assert_eq!(
        after - before,
        0,
        "search_target allocated ({} allocations)",
        after - before,
    );
}

// ---------------------------------------------------------------------
// Property: hash-table layer agrees with a HashMap model across grow()
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn meta_table_matches_hashmap_model(ops in proptest::collection::vec(
        (proptest::collection::vec(0u8..6, 0..7), any::<bool>()), 800..1400)) {
        let mut table: MetaTable<u32> = MetaTable::new();
        let mut model: HashMap<Vec<u8>, u32> = HashMap::new();
        for (i, (key, is_remove)) in ops.iter().enumerate() {
            if *is_remove {
                let removed = table.remove(key).is_some();
                prop_assert_eq!(removed, model.remove(key).is_some());
            } else {
                let replaced = table.insert(key, MetaKind::Leaf(i as u32)).is_some();
                prop_assert_eq!(replaced, model.insert(key.clone(), i as u32).is_some());
            }
            prop_assert_eq!(table.len(), model.len());
        }
        // Every surviving key maps to its latest value; the small alphabet
        // plus several hundred live items drives the table through at least
        // one grow() (the initial 64-bucket array resizes at 384 items).
        for (key, value) in &model {
            match table.get(key).map(|item| &item.kind) {
                Some(MetaKind::Leaf(leaf)) => prop_assert_eq!(*leaf, *value),
                other => return Err(TestCaseError::fail(format!("missing {key:?}: {other:?}"))),
            }
        }
    }
}

// ---------------------------------------------------------------------
// Property: optimistic and exact probe modes agree through splits/merges
// ---------------------------------------------------------------------

/// A model of the leaf list: `(table_key, leaf_id)` sorted by table key.
/// Drives the MetaTrieHT through its structural API the same way the index
/// does, without needing real leaves.
struct LeafListModel {
    table: MetaTable<u32>,
    leaves: Vec<(Vec<u8>, u32)>,
    next_leaf: u32,
}

impl LeafListModel {
    fn new() -> Self {
        let mut table = MetaTable::new();
        table.install_root_leaf(0);
        Self {
            table,
            leaves: vec![(Vec::new(), 0)],
            next_leaf: 1,
        }
    }

    /// Splits the covering leaf at `anchor`, registering a fresh leaf.
    fn split(&mut self, anchor: &[u8]) {
        if anchor.is_empty() {
            return;
        }
        let table_key = self.table.reserve_anchor_key(anchor);
        // Predecessor = last leaf whose table key sorts before the new one.
        let pos = self.leaves.partition_point(|(k, _)| k < &table_key);
        // A real split anchor is strictly greater than the covering leaf's
        // table key (`choose_split` candidates exceed every key of the left
        // half, and the ⊥-extension gap below the table key holds only
        // zero-terminated strings, which are rejected). An anchor violating
        // that cannot arise, so the model skips it.
        if self.leaves[pos - 1].0.as_slice() >= anchor {
            return;
        }
        let split_leaf = self.leaves[pos - 1].1;
        let old_right = self.leaves.get(pos).map(|(_, l)| *l);
        let leaf = self.next_leaf;
        self.next_leaf += 1;
        let relocations = self
            .table
            .apply_split(&table_key, leaf, &split_leaf, old_right.as_ref());
        for (moved, new_key) in relocations {
            let entry = self
                .leaves
                .iter_mut()
                .find(|(_, l)| *l == moved)
                .expect("relocated leaf is registered");
            entry.0 = new_key;
        }
        self.leaves.insert(pos, (table_key, leaf));
        // Relocations append ⊥ tokens, which never reorders the list; keep
        // the invariant checkable.
        debug_assert!(self.leaves.windows(2).all(|w| w[0].0 < w[1].0));
    }

    /// Merges the leaf at (1-based) position `pos mod live leaves` into its
    /// left neighbour, unregistering it.
    fn merge(&mut self, pos: usize) {
        if self.leaves.len() < 2 {
            return;
        }
        let victim_pos = 1 + pos % (self.leaves.len() - 1);
        let (victim_key, victim) = self.leaves.remove(victim_pos);
        let left = self.leaves[victim_pos - 1].1;
        let right = self.leaves.get(victim_pos).map(|(_, l)| *l);
        self.table
            .apply_merge(&victim_key, &victim, &left, right.as_ref());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn optimistic_and_exact_probes_agree(
        // Anchors may contain interior ⊥ (zero) tokens but never end in
        // one — `choose_split` skips zero-terminated candidates (§3.3), and
        // the relocation invariant of Algorithm 4 depends on it.
        anchors in proptest::collection::vec(
            (proptest::collection::vec(0u8..5, 0..7), 1u8..5)
                .prop_map(|(mut head, last)| { head.push(last); head }),
            80..160),
        merges in proptest::collection::vec(any::<u16>(), 0..30),
        probes in proptest::collection::vec(
            proptest::collection::vec(0u8..6, 0..10), 64..128)) {
        let mut model = LeafListModel::new();
        for anchor in &anchors {
            model.split(anchor);
        }
        for merge in &merges {
            model.merge(*merge as usize);
        }
        let optimistic = WormholeConfig::optimized();
        let exact = WormholeConfig::base();
        // With ~100 live anchors over a 5-token alphabet the table holds
        // several hundred prefix items, crossing the 384-item grow()
        // boundary of the initial 64-bucket array.
        for (table_key, leaf) in &model.leaves {
            // find: every registered anchor resolves exactly.
            match model.table.get(table_key).map(|item| &item.kind) {
                Some(MetaKind::Leaf(found)) => prop_assert_eq!(*found, *leaf),
                other => return Err(TestCaseError::fail(format!(
                    "anchor {table_key:?} lost: {other:?}"))),
            }
            // LPM on the anchor itself lands on its own leaf in both modes.
            prop_assert_eq!(
                model.table.search_target(table_key, &optimistic),
                TargetOutcome::Target(*leaf)
            );
            prop_assert_eq!(
                model.table.search_target(table_key, &exact),
                TargetOutcome::Target(*leaf)
            );
        }
        // Arbitrary probe keys: optimistic (tag-trusting) and exact probe
        // modes must produce identical trie-search outcomes.
        for probe in &probes {
            prop_assert_eq!(
                model.table.search_target(probe, &optimistic),
                model.table.search_target(probe, &exact),
                "probe {:?}", probe
            );
        }
    }
}
