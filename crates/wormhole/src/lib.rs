//! # Wormhole: a fast ordered index for in-memory data management
//!
//! A from-scratch Rust implementation of the Wormhole index (Xingbo Wu,
//! Fan Ni, Song Jiang — EuroSys 2019). Wormhole is an ordered key/value
//! index whose point lookups cost `O(log L)` in the *key length* `L` rather
//! than `O(log N)` in the number of keys, while still supporting ordered
//! range queries, insertion, and deletion.
//!
//! ## How it works
//!
//! The index combines three structures:
//!
//! * a **LeafList** of B⁺-tree-style leaf nodes, each holding up to 128 keys
//!   and linked in key order — range queries are a lookup plus a linear scan;
//! * a **MetaTrie** over per-leaf *anchor* keys, replacing the B⁺ tree's
//!   internal levels so the search cost no longer depends on `N`;
//! * a **hash table (MetaTrieHT)** that stores every anchor prefix, so the
//!   trie descent becomes a binary search over prefix lengths — `O(log L)`
//!   hash probes.
//!
//! The MetaTrieHT uses the paper's cache-line bucket layout (§3.1/§3.4):
//! one flat allocation of 64-byte buckets, each packing eight 16-bit tags
//! and eight item indices, with a small overflow chain for the rare bucket
//! holding more than eight residents. A probe SWAR-compares all eight tags
//! of a line at once and touches an item record only on a tag match, so the
//! LPM binary search costs a handful of cache-line fills; see
//! [`meta`] for the full layout. On top of that layout the
//! point-lookup path — the [`Wormhole`] `get`, the LPM search, and the trie
//! sibling step — performs **zero heap allocations per call**, and ordered
//! scans stream through a resumable cursor (`scan(start)` on both index
//! traits) whose batch-per-leaf arena makes steady-state batch advancement
//! allocation-free; `range_from` is a thin materialising wrapper over it.
//!
//! The implementation optimisations of §3 — 16-bit tag matching, incremental
//! CRC hashing, hash-ordered leaf tag arrays, and speculative leaf
//! positioning — are all implemented and individually switchable through
//! [`WormholeConfig`] (the paper's Figure 11 ablation).
//!
//! ## Batched lookups (memory-level parallelism)
//!
//! Both variants additionally expose `get_batch(&[&[u8]]) -> Vec<Option<V>>`
//! (defaulted on the index traits, overridden here with a pipelined
//! implementation). A single `get` serialises one DRAM miss chain: each LPM
//! binary-search step must finish its bucket-line fill before the next
//! prefix can be probed. The batched path instead processes a window of up
//! to [`meta::BATCH_WINDOW`] keys at once and **round-robins** the search
//! steps across them: every in-flight probe first computes its next prefix
//! hash and issues a software prefetch ([`prefetch::prefetch_read`]) for the
//! corresponding MetaTrieHT bucket, and only then are the probes executed in
//! turn — so while probe *i* waits for its cache line, the lines of probes
//! *i+1..* are already in flight. The trie sibling step and the final leaf
//! probes are overlapped the same way. On the concurrent index the leaf
//! reads stay seqlock-validated with the usual per-key bounded-retry
//! fallback, and the whole window shares one QSBR critical section.
//!
//! Prefetching is a pure hint: on targets without the intrinsic it is a
//! no-op (see [`prefetch`]) and `get_batch` degrades to a correct, merely
//! unaccelerated loop. Like single-key `get`, the steady-state batched path
//! performs zero heap allocations per call beyond the returned result
//! vector (all per-probe scratch lives in fixed-size stack arrays).
//!
//! ## Variants
//!
//! * [`Wormhole`] — thread-safe: seqlock-validated **lock-free reads** (no
//!   per-leaf lock on the `get`/`range_from` hot path, with a bounded-retry
//!   fallback to the leaf reader lock), per-leaf writer locks, a writer
//!   mutex over the MetaTrieHT, and a QSBR-based RCU double-table scheme
//!   with version-checked restarts (§2.5, extended).
//! * [`WormholeUnsafe`] — the thread-unsafe variant used by the paper's
//!   single-thread comparisons (Figure 9's "Wormhole-unsafe").
//!
//! For multi-writer scaling beyond one writer mutex, the `wh-shard` crate
//! layers a range-partitioned sharded front (`ShardedWormhole`) over `N`
//! independent [`Wormhole`] instances built from the same
//! [`WormholeConfig`]; it is re-exported as `wormhole_repro::sharded` by
//! the umbrella crate.
//!
//! Both variants share one split/merge engine: [`core`] owns
//! split-point selection, anchor formation, and merge eligibility, and the
//! MetaTrieHT changes of a split or merge are computed once as a
//! declarative [`meta::MetaPlan`] that the single-threaded index applies to
//! its one table and the concurrent index applies to T2-then-T1 under the
//! writer mutex.
//!
//! ## Quick start
//!
//! ```
//! use index_traits::ConcurrentOrderedIndex;
//! use wormhole::Wormhole;
//!
//! let index: Wormhole<u64> = Wormhole::new();
//! index.set(b"James", 1);
//! index.set(b"Jason", 2);
//! index.set(b"Aaron", 3);
//! assert_eq!(index.get(b"James"), Some(1));
//! // Range query: first two keys at or after "J".
//! let range = index.range_from(b"J", 2);
//! assert_eq!(range[0].0, b"James".to_vec());
//! assert_eq!(range[1].0, b"Jason".to_vec());
//! ```

pub mod concurrent;
pub mod config;
pub mod core;
pub mod leaf;
pub mod meta;
pub mod prefetch;
pub mod single;
pub mod telemetry;

pub use concurrent::Wormhole;
pub use config::WormholeConfig;
pub use single::WormholeUnsafe;
pub use telemetry::WormholeMetrics;

#[cfg(test)]
mod tests {
    use super::*;
    use index_traits::{ConcurrentOrderedIndex, OrderedIndex};

    #[test]
    fn crate_level_reexports() {
        let concurrent: Wormhole<u32> = Wormhole::new();
        concurrent.set(b"a", 1);
        assert_eq!(concurrent.get(b"a"), Some(1));

        let mut single: WormholeUnsafe<u32> = WormholeUnsafe::new();
        single.set(b"a", 2);
        assert_eq!(single.get(b"a"), Some(2));

        assert_eq!(WormholeConfig::default(), WormholeConfig::optimized());
    }
}
