//! The thread-safe Wormhole index (§2.5 of the paper, with lock-free reads).
//!
//! Concurrency control combines four mechanisms:
//!
//! * a **seqlock per leaf node** — every leaf carries a version counter
//!   (even = stable, odd = being written). `get` and the scan cursor
//!   behind `scan`/`range_from` read the leaf **without taking any
//!   lock**: they snapshot the counter, perform a bounds-checked read of
//!   the leaf, and accept the result only if the counter is unchanged and
//!   still even. Writers bump the counter (odd on entry, even on exit)
//!   inside the write lock they already hold, so a racing read always
//!   fails validation and retries. After a bounded number of conflicts a
//!   reader falls back to the leaf's reader lock, which bounds worst-case
//!   latency under heavy write contention. Ordered scans stream one
//!   validated leaf snapshot per batch (`ScanSource`) — per-leaf
//!   atomicity, no global snapshot across batches;
//! * a **writer lock per leaf node** — in-place inserts, deletes, and the
//!   structural operations serialise on it exactly as in the paper;
//! * a single **writer mutex over the MetaTrieHT** — only split and merge
//!   operations take it. They ask the shared core engine
//!   ([`crate::core`]) for a declarative [`crate::meta::MetaPlan`]
//!   and apply it to a second hash table (T2), atomically publish it, and
//!   *start* an RCU grace period (QSBR) that retires the old table (T1)
//!   with the plan still pending. The **next** structural operation
//!   completes the grace period — by then it has almost always elapsed for
//!   free — replays the plan onto T1, and uses it as its spare, so no
//!   split or merge blocks on reader quiescence in steady state. All
//!   split-point selection, anchor formation, and meta-item bookkeeping
//!   lives in the core engine — this module only wires leaves into the
//!   list and runs the publication protocol;
//! * **version numbers** — every published MetaTrieHT carries a version,
//!   and a leaf about to be split or merged records `version + 1` as its
//!   *expected version*. A lookup that reaches a leaf whose expected
//!   version is newer than the table it searched restarts, which prevents
//!   reads through a stale table from observing half-moved keys. The
//!   optimistic read path applies the same gate between its seqlock
//!   snapshot and validation.
//!
//! Readers never take the writer mutex and never wait for grace periods.
//! On the hot path they take no lock at all; the only blocking they can
//! ever experience is on an individual leaf lock after
//! [`OPTIMISTIC_READ_RETRIES`] consecutive seqlock conflicts.
//!
//! # Safety model of the optimistic read
//!
//! A racing read may observe a leaf mid-mutation. Three layers make that
//! tolerable: **every heap block a reader can reach stays allocated for
//! the whole critical section** — the read runs inside a QSBR critical
//! section, and writers retire not just tables and leaf nodes but every
//! *leaf-interior* block they unlink (storage vectors that outgrew their
//! buffer, removed items' key boxes, merged-away siblings' storage)
//! through [`LeafGarbage`] and `wh_epoch::Qsbr::defer`, reclaiming it only
//! after a grace period; the leaf read uses the `*_checked` methods of
//! [`LeafNode`], which bounds-check every index step and treat implausible
//! key lengths as conflicts instead of panicking or over-copying; and the
//! seqlock validation discards everything read during a write. Like every
//! seqlock (including the kernel's), the transient read of in-flux data is
//! a deliberate race — but it is a race over *live* memory only, never
//! freed memory. The residual exposure is torn multi-word reads (a fat
//! pointer observed half-updated), which the bounds checks and the
//! `MAX_OPTIMISTIC_KEY_LEN` guard contain until validation discards
//! them; to keep discarded speculative value clones harmless, the
//! lock-free path is enabled only for value types without drop glue (see
//! `optimistic_reads_safe` for why deferral alone cannot admit pointer
//! values), while heap-owning value types transparently fall back to the
//! per-leaf reader lock.

use std::sync::atomic::{fence, AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};

use index_traits::{ConcurrentOrderedIndex, Cursor, CursorSource, IndexStats, ScanBatch};
use parking_lot::{Mutex, RwLock};
use wh_epoch::Qsbr;
use wh_hash::crc32c;

use crate::config::WormholeConfig;
use crate::core;
use crate::leaf::{LeafGarbage, LeafNode, ReadConflict, TailScratch};
use crate::meta::{LeafRef, MetaPlan, MetaTable, TargetOutcome, BATCH_WINDOW};
use crate::prefetch::prefetch_read;
use crate::telemetry::WormholeMetrics;

/// Seqlock conflicts tolerated before a point read falls back to the leaf
/// reader lock.
pub const OPTIMISTIC_READ_RETRIES: usize = 8;

/// Seqlock conflicts tolerated before a scan cursor (and therefore
/// `range_from`, which streams through one) falls back to leaf reader
/// locks for the remainder of the scan.
const OPTIMISTIC_SCAN_RETRIES: usize = 8;

/// Keys longer than this are treated as torn state by the optimistic range
/// reader rather than copied (a racing read of a key's length field could
/// otherwise provoke an enormous allocation). Legitimate keys of this size
/// are still served — through the locked fallback.
const MAX_OPTIMISTIC_KEY_LEN: usize = 1 << 20;

/// Deferred-reclamation callbacks tolerated before a point mutation forces
/// a grace period itself (splits and merges run one anyway and drain the
/// queue for free).
const GARBAGE_FLUSH_PENDING: usize = 1024;

/// Shared state of one leaf: its data behind a reader/writer lock, the
/// seqlock counter, and the expected-version gate of the start-over
/// protocol.
struct LeafShared<V> {
    /// A lookup that searched a MetaTrieHT older than this value must
    /// restart (§2.5).
    expected_version: AtomicU64,
    /// Seqlock counter: even = stable, odd = a writer is mutating `data`.
    /// Only ever modified while the `data` write lock is held.
    seq: AtomicU64,
    data: RwLock<LeafData<V>>,
}

impl<V> LeafShared<V> {
    /// Begins an optimistic read: returns the current (even) counter, or
    /// `None` when a write is in progress.
    #[inline]
    fn seq_enter(&self) -> Option<u64> {
        let s = self.seq.load(Ordering::Acquire);
        (s & 1 == 0).then_some(s)
    }

    /// Ends an optimistic read: `true` when no write started since
    /// [`LeafShared::seq_enter`] returned `snapshot`, i.e. everything read
    /// in between is consistent.
    #[inline]
    fn seq_validate(&self, snapshot: u64) -> bool {
        fence(Ordering::Acquire);
        self.seq.load(Ordering::Relaxed) == snapshot
    }
}

/// RAII section marking a leaf as being written (seqlock odd) for the
/// duration of a mutation. Must only be created — and dropped — while the
/// leaf's write lock is held.
struct SeqWriteSection<'a>(&'a AtomicU64);

impl<'a> SeqWriteSection<'a> {
    fn new(seq: &'a AtomicU64) -> Self {
        let s = seq.load(Ordering::Relaxed);
        debug_assert_eq!(s & 1, 0, "nested seqlock write section");
        seq.store(s + 1, Ordering::Relaxed);
        fence(Ordering::Release);
        Self(seq)
    }
}

impl Drop for SeqWriteSection<'_> {
    fn drop(&mut self) {
        let s = self.0.load(Ordering::Relaxed);
        debug_assert_eq!(s & 1, 1, "unbalanced seqlock write section");
        self.0.store(s + 1, Ordering::Release);
    }
}

/// Lock-protected contents of a leaf.
struct LeafData<V> {
    leaf: LeafNode<V>,
    /// Previous leaf on the LeafList (weak to avoid a reference cycle).
    prev: Weak<LeafShared<V>>,
    /// Next leaf on the LeafList.
    next: Option<LeafHandle<V>>,
}

/// A reference-counted handle to a leaf, used both by the LeafList links and
/// by the MetaTrieHT items.
pub struct LeafHandle<V>(Arc<LeafShared<V>>);

impl<V> Clone for LeafHandle<V> {
    fn clone(&self) -> Self {
        Self(Arc::clone(&self.0))
    }
}

impl<V> LeafRef for LeafHandle<V> {
    fn same(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

impl<V> std::fmt::Debug for LeafHandle<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "LeafHandle({:p})", Arc::as_ptr(&self.0))
    }
}

impl<V> LeafHandle<V> {
    fn new(leaf: LeafNode<V>, prev: Weak<LeafShared<V>>, next: Option<LeafHandle<V>>) -> Self {
        Self(Arc::new(LeafShared {
            expected_version: AtomicU64::new(0),
            seq: AtomicU64::new(0),
            data: RwLock::new(LeafData { leaf, prev, next }),
        }))
    }

    fn expected_version(&self) -> u64 {
        self.0.expected_version.load(Ordering::Acquire)
    }

    fn set_expected_version(&self, v: u64) {
        self.0.expected_version.store(v, Ordering::Release);
    }

    fn downgrade(&self) -> Weak<LeafShared<V>> {
        Arc::downgrade(&self.0)
    }

    /// Optimistically reads this leaf's `prev` link without the lock.
    ///
    /// The `Weak` is cloned from a raw view of the leaf data and the clone
    /// is kept only if the seqlock validates; the pointee is protected by
    /// the caller's QSBR critical section (an unlinked neighbour stays
    /// strongly referenced by the retired MetaTrieHT until a grace period
    /// the caller is part of).
    fn prev_optimistic(&self) -> Result<Option<LeafHandle<V>>, ReadConflict> {
        let shared = &*self.0;
        let snapshot = shared.seq_enter().ok_or(ReadConflict)?;
        // SAFETY: the pointer is valid (we hold the Arc); the racy read of
        // the Weak is validated below and discarded on conflict.
        let prev = unsafe { (*shared.data.data_ptr()).prev.clone() };
        if !shared.seq_validate(snapshot) {
            return Err(ReadConflict);
        }
        Ok(prev.upgrade().map(LeafHandle))
    }
}

/// A published MetaTrieHT together with its version number.
struct VersionedMeta<V> {
    version: u64,
    table: MetaTable<LeafHandle<V>>,
}

/// A table retired by a publication whose grace period is still aging.
///
/// The T2-then-T1 protocol does not need the retired table until the
/// *next* structural operation, so instead of blocking on a grace period
/// inside every split and merge, the publication merely starts one
/// ([`Qsbr::start_grace`]) and parks the table here with the plan still to
/// be replayed. The next structural operation completes the wait
/// ([`Qsbr::wait_grace`]) — by then every reader has usually announced
/// quiescence and the wait costs one atomic load per registered thread.
struct RetiringTable<V> {
    /// The just-unpublished table; exclusively owned once `grace` elapses.
    table: *mut VersionedMeta<V>,
    /// The plan already applied to the published table, pending replay.
    plan: MetaPlan<LeafHandle<V>>,
    /// Version the replay brings the table to.
    version: u64,
    /// Grace-period token from publication time.
    grace: u64,
}

/// Writer-side state protected by the MetaTrieHT mutex.
struct WriterState<V> {
    /// The spare table (the paper's "second hash table"). While the mutex
    /// is not held, either this is an exact logical copy of the published
    /// table, or it is `None` and `retiring` holds the previous table plus
    /// the plan whose replay makes it one.
    spare: Option<Box<VersionedMeta<V>>>,
    /// The previously published table, aging through its grace period.
    retiring: Option<RetiringTable<V>>,
}

/// The thread-safe Wormhole ordered index.
pub struct Wormhole<V> {
    config: WormholeConfig,
    /// The currently published MetaTrieHT. Readers dereference it inside a
    /// QSBR critical section; writers retire it only after a grace period.
    current: AtomicPtr<VersionedMeta<V>>,
    writer: Mutex<WriterState<V>>,
    qsbr: Qsbr,
    /// Leftmost leaf of the LeafList (never merged away).
    head: LeafHandle<V>,
    len: AtomicUsize,
    key_bytes: AtomicUsize,
    /// Event counters; shared (`Arc`) so a sharded front can aggregate all
    /// its shards into one set of cells.
    metrics: Arc<WormholeMetrics>,
}

// SAFETY: all interior state is either atomic, lock-protected, or reclaimed
// through the QSBR domain; `V` crosses threads inside those structures.
unsafe impl<V: Send + Sync> Send for Wormhole<V> {}
// SAFETY: see above — shared access only goes through locks, atomics, and
// seqlock-validated reads.
unsafe impl<V: Send + Sync> Sync for Wormhole<V> {}

impl<V: Clone + Send + Sync + 'static> Default for Wormhole<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: Clone + Send + Sync + 'static> Wormhole<V> {
    /// Creates an empty index with the default (fully optimised) configuration.
    pub fn new() -> Self {
        Self::with_config(WormholeConfig::default())
    }

    /// Creates an empty index with an explicit configuration.
    pub fn with_config(config: WormholeConfig) -> Self {
        Self::with_config_and_metrics(config, Arc::new(WormholeMetrics::default()))
    }

    /// Creates an empty index with an explicit configuration recording into
    /// caller-supplied metrics cells — a sharded front passes the same
    /// `Arc` to every shard so their events aggregate.
    pub fn with_config_and_metrics(config: WormholeConfig, metrics: Arc<WormholeMetrics>) -> Self {
        let head = LeafHandle::new(LeafNode::new(Vec::new(), Vec::new()), Weak::new(), None);
        let mut t1 = MetaTable::new();
        t1.install_root_leaf(head.clone());
        let mut t2 = MetaTable::new();
        t2.install_root_leaf(head.clone());
        let current = Box::into_raw(Box::new(VersionedMeta {
            version: 0,
            table: t1,
        }));
        Self {
            config,
            current: AtomicPtr::new(current),
            writer: Mutex::new(WriterState {
                spare: Some(Box::new(VersionedMeta {
                    version: 0,
                    table: t2,
                })),
                retiring: None,
            }),
            qsbr: Qsbr::new(),
            head,
            len: AtomicUsize::new(0),
            key_bytes: AtomicUsize::new(0),
            metrics,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &WormholeConfig {
        &self.config
    }

    /// The index's event counters (possibly shared with sibling shards).
    pub fn metrics(&self) -> &Arc<WormholeMetrics> {
        &self.metrics
    }

    /// The QSBR domain's metrics (section entries, grace waits, deferred
    /// queue depth).
    pub fn epoch_metrics(&self) -> &wh_epoch::EpochMetrics {
        self.qsbr.metrics()
    }

    /// Bulk-loads a **strictly ascending** stream of key/value pairs into
    /// a fresh index by packing leaves directly — the snapshot-restore
    /// path: instead of `set`-ing every pair through the split machinery
    /// (O(n) splits, each publishing a table), leaves are greedy-packed to
    /// ~¾ of the configured capacity, linked into the leaf list, and
    /// registered in both hash tables as they are produced.
    ///
    /// Anchor formation follows the same §2.2 rule as a live split (common
    /// prefix of the boundary pair plus one byte, never ending in a ⊥
    /// token); when no valid anchor exists at the target boundary the
    /// current leaf keeps growing past the target — the §3.3 fat-node
    /// relaxation, arising here for the same reason it does under `set`.
    ///
    /// # Panics
    ///
    /// Panics when the input is not strictly ascending (equal keys
    /// included) — callers stream from an ordered source (a snapshot file
    /// written by an ordered cursor), so an out-of-order pair means the
    /// source is corrupt.
    pub fn from_sorted(
        config: WormholeConfig,
        pairs: impl IntoIterator<Item = (Vec<u8>, V)>,
    ) -> Self {
        let head = LeafHandle::new(LeafNode::new(Vec::new(), Vec::new()), Weak::new(), None);
        let mut t1 = MetaTable::new();
        t1.install_root_leaf(head.clone());
        let mut t2 = MetaTable::new();
        t2.install_root_leaf(head.clone());

        // Pack to ¾ capacity so post-restore inserts do not immediately
        // split every leaf, while staying well above the merge threshold.
        let target = (config.leaf_capacity * 3 / 4).max(1);
        let mut tail = head.clone();
        let mut in_leaf = 0usize;
        let mut last_key: Option<Vec<u8>> = None;
        let mut len = 0usize;
        let mut key_bytes = 0usize;

        for (key, value) in pairs {
            if let Some(last) = &last_key {
                assert!(key > *last, "from_sorted requires strictly ascending keys");
                if in_leaf >= target {
                    let cpl = index_traits::common_prefix_len(last, &key);
                    // A candidate anchor ending in ⊥ is invalid (§3.3):
                    // keep extending the current leaf instead.
                    if key[cpl] != 0 {
                        let anchor = key[..=cpl].to_vec();
                        let table_key = t1.reserve_anchor_key(&anchor);
                        let leaf = LeafNode::new(anchor, table_key.clone());
                        let handle = LeafHandle::new(leaf, tail.downgrade(), None);
                        tail.0.data.write().next = Some(handle.clone());
                        let relocations = t1.apply_split(&table_key, handle.clone(), &tail, None);
                        let relocations_t2 =
                            t2.apply_split(&table_key, handle.clone(), &tail, None);
                        debug_assert_eq!(relocations.len(), relocations_t2.len());
                        for (leaf, new_key) in relocations {
                            leaf.0.data.write().leaf.set_table_key(new_key);
                        }
                        tail = handle;
                        in_leaf = 0;
                    }
                }
            }
            key_bytes += key.len();
            len += 1;
            in_leaf += 1;
            let old = tail
                .0
                .data
                .write()
                .leaf
                .insert(&key, crc32c(&key), value, &config);
            debug_assert!(old.is_none());
            last_key = Some(key);
        }

        let current = Box::into_raw(Box::new(VersionedMeta {
            version: 0,
            table: t1,
        }));
        Self {
            config,
            current: AtomicPtr::new(current),
            writer: Mutex::new(WriterState {
                spare: Some(Box::new(VersionedMeta {
                    version: 0,
                    table: t2,
                })),
                retiring: None,
            }),
            qsbr: Qsbr::new(),
            head,
            len: AtomicUsize::new(len),
            key_bytes: AtomicUsize::new(key_bytes),
            metrics: Arc::new(WormholeMetrics::default()),
        }
    }

    /// Whether the optimistic read path is usable for this value type.
    ///
    /// A racing read may clone a value from a leaf mid-mutation and
    /// discard the clone after seqlock validation fails. The lock-free
    /// path is reserved for values **without drop glue** (`u64`, small
    /// PODs — exactly what the paper stores): a garbage speculative clone
    /// of such a value owns nothing, so reading and discarding it is
    /// harmless. Heap-owning value types transparently fall back to the
    /// per-leaf reader lock. The check is const-folded.
    ///
    /// The QSBR-deferred reclamation of leaf-interior blocks
    /// ([`LeafGarbage`]) is *not* enough to relax this gate to pointer
    /// values like `Box<T>`: deferral guarantees a speculative read never
    /// touches **freed** memory, but a racing `Clone` of a pointer value
    /// would dereference it *before* validation, and the insert/remove
    /// windows can expose a **never-initialised** slot word (a fresh
    /// buffer's spare capacity racing `Vec::push`'s element/len stores) or
    /// a mid-`memmove` word that is neither old nor new — a wild pointer
    /// the bounds checks cannot contain. Only a value whose every bit
    /// pattern is inert to read and drop survives that window.
    ///
    /// Caveat (part of the documented seqlock race budget): absence of drop
    /// glue does not prove every bit pattern is valid — a no-drop type with
    /// a validity invariant (`char`, niche-carrying enums) could still
    /// observe a torn value before validation discards it. A `Pod`-style
    /// marker bound would close that gap; stable Rust has none built in, so
    /// store plain integers (as the paper does) or disable
    /// `optimistic_reads`.
    #[inline]
    fn optimistic_reads_safe() -> bool {
        !std::mem::needs_drop::<V>()
    }

    /// Whether reads of this index actually run lock-free (configuration
    /// flag and value-type gate combined). Mutations must defer their heap
    /// frees exactly when this holds.
    #[inline]
    fn uses_optimistic(&self) -> bool {
        self.config.optimistic_reads && Self::optimistic_reads_safe()
    }

    /// A garbage bin matching the read mode: deferred reclamation when
    /// lock-free readers may race, immediate drops otherwise.
    #[inline]
    fn new_bin(&self) -> LeafGarbage<V> {
        if self.uses_optimistic() {
            LeafGarbage::deferred()
        } else {
            LeafGarbage::immediate()
        }
    }

    /// Queues a filled garbage bin for reclamation after the next grace
    /// period. The caller must not be inside a QSBR critical section.
    fn defer_garbage(&self, bin: LeafGarbage<V>) {
        if bin.is_empty() {
            return;
        }
        self.qsbr.defer(Box::new(move || drop(bin)));
    }

    /// [`Wormhole::defer_garbage`], plus a bound on the queue: point
    /// mutations never run a grace period themselves, so once enough
    /// garbage has accumulated without an intervening structural operation
    /// (whose grace-period completion drains the queue as a side effect),
    /// force one here. An empty bin returns without touching any shared
    /// state, keeping garbage-free mutations (the common overwrite) off
    /// the queue's lock entirely.
    fn retire_garbage(&self, bin: LeafGarbage<V>) {
        if bin.is_empty() {
            return;
        }
        self.qsbr.defer(Box::new(move || drop(bin)));
        if self.qsbr.pending() >= GARBAGE_FLUSH_PENDING {
            self.qsbr.synchronize();
        }
    }

    /// Ensures `writer.spare` is available: completes the previous
    /// publication's (usually long-elapsed) grace period and replays its
    /// plan onto the retired table. Must be called while holding the
    /// writer mutex and no QSBR critical section.
    fn reclaim_spare(&self, writer: &mut WriterState<V>) {
        if writer.spare.is_some() {
            return;
        }
        let retiring = writer
            .retiring
            .take()
            .expect("either spare or retiring table present");
        self.qsbr.wait_grace(retiring.grace);
        // SAFETY: the grace period has elapsed, so no reader that could
        // have observed the pre-swap published pointer is still inside its
        // critical section; the mutex makes the table exclusively ours.
        let mut table = unsafe { Box::from_raw(retiring.table) };
        table.table.apply_plan(&retiring.plan);
        table.version = retiring.version;
        writer.spare = Some(table);
    }

    /// Number of deferred-reclamation callbacks still waiting for a grace
    /// period (tests and diagnostics).
    pub fn pending_reclamation(&self) -> usize {
        self.qsbr.pending()
    }

    /// Number of leaf nodes currently on the LeafList.
    pub fn leaf_count(&self) -> usize {
        let mut n = 0;
        let mut cur = Some(self.head.clone());
        while let Some(leaf) = cur {
            n += 1;
            cur = leaf.0.data.read().next.clone();
        }
        n
    }

    /// Resolves the MetaTrieHT search outcome to a leaf handle, taking the
    /// neighbours' reader locks. Used by writers and the locked fallback;
    /// `meta` must stay valid for the duration of the call (guard or writer
    /// mutex held).
    fn resolve_outcome(
        &self,
        outcome: TargetOutcome<LeafHandle<V>>,
        key: &[u8],
    ) -> Option<LeafHandle<V>> {
        match outcome {
            TargetOutcome::Target(leaf) => Some(leaf),
            TargetOutcome::LeftOf(leaf) => {
                let prev = leaf.0.data.read().prev.clone();
                // When the left neighbour disappeared under us (merge racing
                // with this lookup), return None and let the caller restart.
                prev.upgrade().map(LeafHandle)
            }
            TargetOutcome::CompareAnchor(leaf) => {
                let data = leaf.0.data.read();
                if key < data.leaf.anchor() {
                    let prev = data.prev.clone();
                    drop(data);
                    prev.upgrade().map(LeafHandle)
                } else {
                    drop(data);
                    Some(leaf)
                }
            }
        }
    }

    /// Lock-free variant of [`Wormhole::resolve_outcome`]: neighbour and
    /// anchor reads go through the seqlock. Must run inside a QSBR critical
    /// section.
    fn resolve_outcome_optimistic(
        &self,
        outcome: TargetOutcome<LeafHandle<V>>,
        key: &[u8],
    ) -> Result<LeafHandle<V>, ReadConflict> {
        match outcome {
            TargetOutcome::Target(leaf) => Ok(leaf),
            TargetOutcome::LeftOf(leaf) => leaf.prev_optimistic()?.ok_or(ReadConflict),
            TargetOutcome::CompareAnchor(leaf) => {
                let shared = &*leaf.0;
                let snapshot = shared.seq_enter().ok_or(ReadConflict)?;
                // SAFETY: pointer valid (handle held); the racy reads are
                // validated below and discarded on conflict. The anchor
                // comparison reads at most `key.len()` bytes.
                let data = unsafe { &*shared.data.data_ptr() };
                let below = key < data.leaf.anchor();
                let prev = below.then(|| data.prev.clone());
                if !shared.seq_validate(snapshot) {
                    return Err(ReadConflict);
                }
                match prev {
                    None => Ok(leaf),
                    Some(weak) => weak.upgrade().map(LeafHandle).ok_or(ReadConflict),
                }
            }
        }
    }

    /// Searches the published MetaTrieHT for `key`'s target leaf inside a
    /// QSBR critical section and returns the leaf together with the version
    /// of the table that produced it.
    fn locate(&self, key: &[u8]) -> (LeafHandle<V>, u64) {
        loop {
            let found = self.qsbr.with_local_handle(|handle| {
                let _guard = handle.enter();
                // SAFETY: `current` always points to a live VersionedMeta;
                // writers retire a table only after a grace period, and we
                // are inside a read-side critical section.
                let meta = unsafe { &*self.current.load(Ordering::Acquire) };
                let outcome = meta.table.search_target(key, &self.config);
                self.resolve_outcome(outcome, key)
                    .map(|leaf| (leaf, meta.version))
            });
            if let Some(found) = found {
                return found;
            }
            // The LPM search resolved to a leaf a racing merge retired
            // before the neighbour step completed; search the new table.
            self.metrics.lpm_restarts.inc();
        }
    }

    /// One lock-free attempt to find `key`'s target leaf: table search plus
    /// seqlock-validated neighbour resolution, no reader locks anywhere.
    /// Must run inside a QSBR critical section.
    fn locate_optimistic(&self, key: &[u8]) -> Result<(LeafHandle<V>, u64), ReadConflict> {
        // SAFETY: inside the caller's QSBR critical section; see `locate`.
        let meta = unsafe { &*self.current.load(Ordering::Acquire) };
        let outcome = meta.table.search_target(key, &self.config);
        let leaf = self.resolve_outcome_optimistic(outcome, key)?;
        Ok((leaf, meta.version))
    }

    /// One attempt of the lock-free point read. Must run inside a QSBR
    /// critical section (the caller keeps it open across retries so the
    /// published table and every leaf reachable from it stay live).
    fn try_get_optimistic(&self, key: &[u8], hash: u32) -> Result<Option<V>, ReadConflict> {
        let (leaf, version) = self.locate_optimistic(key)?;
        self.leaf_read_optimistic(&leaf, key, hash, version)
    }

    /// The seqlock-validated leaf read of the lock-free point path, shared
    /// by the per-key and batched lookups: snapshot the counter, apply the
    /// expected-version gate against the searched table's `version`, do the
    /// bounds-checked read, and keep the result only if the counter is
    /// unchanged. Must run inside a QSBR critical section.
    fn leaf_read_optimistic(
        &self,
        leaf: &LeafHandle<V>,
        key: &[u8],
        hash: u32,
        version: u64,
    ) -> Result<Option<V>, ReadConflict> {
        let shared = &*leaf.0;
        let snapshot = shared.seq_enter().ok_or(ReadConflict)?;
        if leaf.expected_version() > version {
            return Err(ReadConflict);
        }
        // SAFETY: pointer valid (handle held); `get_checked` bounds-checks
        // every access, and the result is discarded unless the seqlock
        // validates.
        let data = unsafe { &*shared.data.data_ptr() };
        let value = data.leaf.get_checked(key, hash, &self.config)?.cloned();
        if !shared.seq_validate(snapshot) {
            return Err(ReadConflict);
        }
        Ok(value)
    }

    /// Runs `f` under the target leaf's read lock, restarting the search when
    /// the version check detects a concurrent split/merge. The contended
    /// fallback of the optimistic read, and the whole read path when
    /// `optimistic_reads` is disabled.
    fn with_leaf_read<R>(&self, key: &[u8], mut f: impl FnMut(&LeafNode<V>) -> R) -> R {
        loop {
            let (leaf, version) = self.locate(key);
            let data = leaf.0.data.read();
            if leaf.expected_version() > version {
                continue;
            }
            return f(&data.leaf);
        }
    }

    /// Runs `f` under the target leaf's write lock (for in-place updates that
    /// do not change the set of leaves), restarting on version conflicts.
    /// The leaf's seqlock is held odd while `f` runs.
    fn with_leaf_write<R>(&self, key: &[u8], mut f: impl FnMut(&mut LeafData<V>) -> R) -> R {
        loop {
            let (leaf, version) = self.locate(key);
            let mut data = leaf.0.data.write();
            if leaf.expected_version() > version {
                continue;
            }
            let _section = SeqWriteSection::new(&leaf.0.seq);
            return f(&mut data);
        }
    }

    // ------------------------------------------------------------------
    // Split and merge (the third operation group of §2.5). The logic —
    // split-point selection, anchor formation, meta-item bookkeeping —
    // lives in the shared core engine; this code owns only the leaf
    // linking, the seqlock/version marking, and the T2-then-T1 protocol.
    // ------------------------------------------------------------------

    /// Inserts `key` via the split path: takes the writer mutex, re-locates
    /// the leaf, splits it when (still) necessary, and publishes the new
    /// MetaTrieHT with the RCU double-table protocol.
    fn insert_with_split(&self, key: &[u8], hash: u32, value: V) -> Option<V> {
        let mut bin = self.new_bin();
        let mut writer = self.writer.lock();
        // Finish the previous publication's grace period first (usually
        // already elapsed, so this is one atomic load per reader).
        self.reclaim_spare(&mut writer);
        // While the mutex is held the published table cannot change or be
        // retired, so it is safe to read it without a QSBR guard.
        // SAFETY: see above; only mutex holders swap or free `current`.
        let current = unsafe { &*self.current.load(Ordering::Acquire) };
        let version = current.version;
        let outcome = current.table.search_target(key, &self.config);
        let Some(leaf) = self.resolve_outcome(outcome, key) else {
            // A merge retired the neighbour we needed; drop the mutex and let
            // the caller's retry loop run the fast path again.
            drop(writer);
            return self.set(key, value);
        };
        let mut left_guard = leaf.0.data.write();
        debug_assert!(leaf.expected_version() <= version);
        let left_section = SeqWriteSection::new(&leaf.0.seq);

        // The situation may have changed between the fast path giving up and
        // the mutex being acquired: re-run the cheap cases first.
        if let Some(slot) = left_guard.leaf.get_mut(key, hash, &self.config) {
            let old = bin.replace_value(slot, value);
            drop(left_section);
            drop(left_guard);
            drop(writer);
            self.retire_garbage(bin);
            return Some(old);
        }
        if left_guard.leaf.len() < self.config.leaf_capacity {
            let old = left_guard
                .leaf
                .insert_retiring(key, hash, value, &self.config, &mut bin);
            debug_assert!(old.is_none());
            self.len.fetch_add(1, Ordering::Relaxed);
            self.key_bytes.fetch_add(key.len(), Ordering::Relaxed);
            drop(left_section);
            drop(left_guard);
            drop(writer);
            self.retire_garbage(bin);
            return None;
        }
        // Split point, anchor, table key, and the carved right half all come
        // from the core engine.
        let Some(prepared) = core::prepare_split(&mut left_guard.leaf, &current.table, &mut bin)
        else {
            // Fat node (§3.3): grow past the nominal capacity.
            let old = left_guard
                .leaf
                .insert_retiring(key, hash, value, &self.config, &mut bin);
            debug_assert!(old.is_none());
            self.len.fetch_add(1, Ordering::Relaxed);
            self.key_bytes.fetch_add(key.len(), Ordering::Relaxed);
            drop(left_section);
            drop(left_guard);
            drop(writer);
            self.retire_garbage(bin);
            return None;
        };
        let core::PreparedSplit {
            anchor,
            table_key,
            right,
        } = prepared;

        // Wire the new leaf into the list while holding the leaf locks.
        let old_right = left_guard.next.clone();
        let new_handle = LeafHandle::new(right, leaf.downgrade(), old_right.clone());
        let mut right_guard = new_handle.0.data.write();
        let right_section = SeqWriteSection::new(&new_handle.0.seq);
        left_guard.next = Some(new_handle.clone());
        leaf.set_expected_version(version + 1);
        new_handle.set_expected_version(version + 1);

        // Insert the pending key into whichever half now covers it.
        let old = if key >= anchor.as_slice() {
            right_guard
                .leaf
                .insert_retiring(key, hash, value, &self.config, &mut bin)
        } else {
            left_guard
                .leaf
                .insert_retiring(key, hash, value, &self.config, &mut bin)
        };
        debug_assert!(old.is_none());
        self.len.fetch_add(1, Ordering::Relaxed);
        self.key_bytes.fetch_add(key.len(), Ordering::Relaxed);

        // Fix the right neighbour's back link (lock ordering: left to right).
        if let Some(right) = &old_right {
            let mut neighbour = right.0.data.write();
            let _section = SeqWriteSection::new(&right.0.seq);
            neighbour.prev = new_handle.downgrade();
        }

        // One plan, two applications: computed against the published table,
        // applied to its logical copy (the spare), published, and — after
        // the grace period — applied to the retired original.
        let plan = core::split_plan(
            &current.table,
            &table_key,
            new_handle.clone(),
            &leaf,
            old_right.as_ref(),
        );
        for (relocated, new_key) in &plan.relocations {
            // The only anchor that can be a proper prefix of the new anchor
            // is the split leaf's own anchor, whose lock we hold.
            assert!(relocated.same(&leaf), "unexpected anchor relocation");
            left_guard
                .leaf
                .set_table_key_retiring(new_key.clone(), &mut bin);
        }
        let mut spare = writer.spare.take().expect("spare table present");
        spare.table.apply_plan(&plan);
        spare.version = version + 1;
        let old_table = self.current.swap(Box::into_raw(spare), Ordering::AcqRel);

        // Release the seqlock sections and leaf locks so that readers
        // blocked on them can finish against the new table (§2.5), queue
        // the garbage, and start — without waiting for — the grace period
        // that retires the old table. The next structural operation
        // completes it and replays the plan (`reclaim_spare`).
        drop(right_section);
        drop(left_section);
        drop(right_guard);
        drop(left_guard);
        self.defer_garbage(bin);
        writer.retiring = Some(RetiringTable {
            table: old_table,
            plan,
            version: version + 1,
            grace: self.qsbr.start_grace(),
        });
        self.metrics.splits.inc();
        None
    }

    /// Attempts to merge the leaf owning `key` with one of its neighbours
    /// (Algorithm 2, DEL). Runs entirely under the writer mutex.
    fn try_merge(&self, key: &[u8]) {
        let mut writer = self.writer.lock();
        // Finish the previous publication's grace period first (usually
        // already elapsed; see `reclaim_spare`).
        self.reclaim_spare(&mut writer);
        // SAFETY: only mutex holders swap or free `current`.
        let current = unsafe { &*self.current.load(Ordering::Acquire) };
        let version = current.version;
        let outcome = current.table.search_target(key, &self.config);
        let Some(leaf) = self.resolve_outcome(outcome, key) else {
            return;
        };
        // Choose the merge pair: (left, leaf) if the left neighbour is small
        // enough, otherwise (leaf, right). Locks are taken left-to-right.
        let (prev_weak, next) = {
            let data = leaf.0.data.read();
            (data.prev.clone(), data.next.clone())
        };
        let prev = prev_weak.upgrade().map(LeafHandle);

        let mut merge_into_left = |left: &LeafHandle<V>, victim: &LeafHandle<V>| -> bool {
            let mut left_guard = left.0.data.write();
            // Verify adjacency (the list may have changed before the mutex
            // was taken).
            match &left_guard.next {
                Some(next) if next.same(victim) => {}
                _ => return false,
            }
            let mut victim_guard = victim.0.data.write();
            if !core::merge_eligible(left_guard.leaf.len(), victim_guard.leaf.len(), &self.config) {
                return false;
            }
            left.set_expected_version(version + 1);
            victim.set_expected_version(version + 1);
            let mut bin = self.new_bin();
            let left_section = SeqWriteSection::new(&left.0.seq);
            let victim_section = SeqWriteSection::new(&victim.0.seq);
            // Move the items and unlink the victim.
            let victim_leaf = std::mem::replace(
                &mut victim_guard.leaf,
                LeafNode::new(Vec::new(), Vec::new()),
            );
            let victim_table_key = victim_leaf.table_key().to_vec();
            left_guard.leaf.absorb_retiring(victim_leaf, &mut bin);
            let right = victim_guard.next.clone();
            left_guard.next = right.clone();
            if let Some(right) = &right {
                // Lock ordering: left < victim < right.
                let mut neighbour = right.0.data.write();
                let _section = SeqWriteSection::new(&right.0.seq);
                neighbour.prev = left.downgrade();
            }
            // One plan, two applications (see `insert_with_split`).
            let plan = core::merge_plan(
                &current.table,
                &victim_table_key,
                victim,
                left,
                right.as_ref(),
            );
            drop(victim_section);
            drop(left_section);
            drop(victim_guard);
            drop(left_guard);
            // Queued before the publication's grace period, which therefore
            // reclaims it.
            self.defer_garbage(bin);

            let mut spare = writer.spare.take().expect("spare table present");
            spare.table.apply_plan(&plan);
            spare.version = version + 1;
            let old_table = self.current.swap(Box::into_raw(spare), Ordering::AcqRel);
            // Start — without waiting for — the grace period retiring the
            // old table; the next structural operation completes it.
            writer.retiring = Some(RetiringTable {
                table: old_table,
                plan,
                version: version + 1,
                grace: self.qsbr.start_grace(),
            });
            self.metrics.merges.inc();
            true
        };

        // Try merging this leaf into its left neighbour first, then absorbing
        // the right neighbour, mirroring Algorithm 2.
        if let Some(prev) = prev {
            if merge_into_left(&prev, &leaf) {
                return;
            }
        }
        if let Some(next) = next {
            let _ = merge_into_left(&leaf, &next);
        }
    }

    /// Removes every key with `lo <= key < hi`, returning how many were
    /// removed — the batched range removal behind
    /// [`ConcurrentOrderedIndex::delete_range`].
    ///
    /// The range is drained **one leaf per batch**: locate the leaf
    /// covering the sweep position, unlink its in-range run under the leaf
    /// write lock (inside a seqlock write section, retiring every key box
    /// through the QSBR garbage bin so racing optimistic readers never
    /// touch freed memory), then advance to the right sibling's anchor.
    /// A leaf left below the merge threshold is handed straight to the
    /// ordinary merge engine (`try_merge`), so the structure shrinks with
    /// the same MetaPlan/T2-then-T1 publication path as point deletes —
    /// there is no separate structural protocol to get wrong.
    ///
    /// Concurrent-semantics note: like the trait default, this is a sweep,
    /// not a snapshot — keys inserted into the range behind the sweep
    /// position survive, keys inserted ahead of it are removed.
    pub fn remove_range(&self, lo: &[u8], hi: &[u8]) -> usize {
        if lo >= hi {
            return 0;
        }
        let mut removed_total = 0usize;
        let mut pos = lo.to_vec();
        loop {
            let mut bin = self.new_bin();
            let (removed, key_bytes, leaf_len, next_anchor) = loop {
                let (leaf, version) = self.locate(&pos);
                let mut data = leaf.0.data.write();
                if leaf.expected_version() > version {
                    continue;
                }
                let (n, kb) = {
                    let _section = SeqWriteSection::new(&leaf.0.seq);
                    data.leaf.remove_range_retiring(&pos, hi, &mut bin)
                };
                // Right sibling's anchor = the next sweep position (lock
                // order left → right, same as the merge engine).
                let next_anchor = data
                    .next
                    .as_ref()
                    .map(|next| next.0.data.read().leaf.anchor().to_vec());
                break (n, kb, data.leaf.len(), next_anchor);
            };
            self.len.fetch_sub(removed, Ordering::Relaxed);
            self.key_bytes.fetch_sub(key_bytes, Ordering::Relaxed);
            removed_total += removed;
            self.retire_garbage(bin);
            if removed > 0 && leaf_len < self.config.merge_size {
                // `pos` lies inside the drained leaf's range, so the merge
                // engine re-locates the same leaf and runs the ordinary
                // Algorithm-2 eligibility checks and plan publication.
                self.try_merge(&pos);
            }
            match next_anchor {
                Some(anchor) if anchor.as_slice() < hi => pos = anchor,
                _ => break,
            }
        }
        removed_total
    }

    /// Memory accounting (Figure 16).
    pub fn stats(&self) -> IndexStats {
        let mut stats = IndexStats {
            keys: self.len.load(Ordering::Relaxed),
            key_bytes: self.key_bytes.load(Ordering::Relaxed),
            value_bytes: self.len.load(Ordering::Relaxed) * std::mem::size_of::<V>(),
            structure_bytes: 0,
        };
        // Meta structure: both tables.
        {
            let writer = self.writer.lock();
            // SAFETY: holding the writer mutex pins the published table.
            let current = unsafe { &*self.current.load(Ordering::Acquire) };
            stats.structure_bytes += current.table.structure_bytes();
            if let Some(spare) = &writer.spare {
                stats.structure_bytes += spare.table.structure_bytes();
            } else if let Some(retiring) = &writer.retiring {
                // SAFETY: the mutex is held, so the retiring table cannot be
                // reclaimed or mutated (its plan is replayed only under this
                // mutex); shared reads of it are fine.
                stats.structure_bytes += unsafe { &*retiring.table }.table.structure_bytes();
            }
        }
        let mut cur = Some(self.head.clone());
        while let Some(leaf) = cur {
            let data = leaf.0.data.read();
            stats.structure_bytes +=
                data.leaf.structure_bytes() + std::mem::size_of::<LeafShared<V>>();
            cur = data.next.clone();
        }
        stats
    }

    /// Walks the LeafList and validates structural invariants (tests only).
    pub fn check_invariants(&self) {
        let mut cur = Some(self.head.clone());
        let mut prev_anchor: Option<Vec<u8>> = None;
        let mut total = 0usize;
        while let Some(leaf) = cur {
            let data = leaf.0.data.read();
            assert_eq!(
                leaf.0.seq.load(Ordering::Acquire) & 1,
                0,
                "leaf seqlock left odd outside a write"
            );
            let anchor = data.leaf.anchor().to_vec();
            if let Some(prev) = &prev_anchor {
                assert!(prev < &anchor, "anchors out of order");
            }
            total += data.leaf.len();
            prev_anchor = Some(anchor);
            cur = data.next.clone();
        }
        assert_eq!(
            total,
            self.len.load(Ordering::Relaxed),
            "key count mismatch"
        );
    }
}

/// Seqlock-validated batch-per-leaf [`CursorSource`] over the concurrent
/// index — the engine under both `scan` and `range_from`.
///
/// Every batch snapshots exactly one leaf inside a QSBR critical section
/// with the same discipline as the optimistic `get`: locate the leaf
/// through the published MetaTrieHT, enter its seqlock, apply the
/// expected-version gate, collect the covered range through the
/// bounds-checked [`LeafNode::collect_leaf_checked`], and keep the batch
/// only if the seqlock validates (validate-then-yield). A conflicted batch
/// is discarded and retried; after [`OPTIMISTIC_SCAN_RETRIES`] conflicts
/// the remainder of the scan reads leaves under their reader locks.
///
/// Between batches the cursor holds **no position inside the structure**:
/// it records the snapshotted leaf's right-sibling anchor (clamped to the
/// successor of the last streamed key) as the next inclusive lower bound
/// and re-descends the MetaTrieHT from it, so leaves split, merged, or
/// retired between batches are simply re-resolved by the next descent.
/// This is what makes the stream safe to run for minutes under structural
/// churn: correctness never depends on a cached leaf link staying current.
struct ScanSource<'a, V: Clone + Send + Sync> {
    wh: &'a Wormhole<V>,
    /// Inclusive lower bound of the next batch; strictly greater than every
    /// key already streamed. Reused across batches and restarts.
    resume: Vec<u8>,
    /// Scratch used to assemble the next bound before swapping it in.
    bound_buf: Vec<u8>,
    /// Scratch holding the right sibling's anchor read.
    anchor_buf: Vec<u8>,
    /// Snapshot arena for lazily-sorted leaf tails (optimistic mode).
    tail: TailScratch,
    /// Index scratch for the locked fallback's lazy-tail merge.
    scratch16: Vec<u16>,
    /// Seqlock conflicts so far across the whole scan.
    conflicts: usize,
    done: bool,
}

impl<V: Clone + Send + Sync + 'static> ScanSource<'_, V> {
    /// One optimistic batch attempt: snapshot the leaf covering `resume` —
    /// up to `limit` pairs of it — and its successor link, all validated by
    /// the leaf's seqlock. Runs inside one QSBR critical section so the
    /// published table and the leaf stay live. The `bool` reports whether
    /// the budget may have truncated the batch mid-leaf, in which case the
    /// successor link is not meaningful and the caller must resume from the
    /// last streamed key instead of the sibling anchor.
    fn try_fill_optimistic(
        &mut self,
        batch: &mut ScanBatch<V>,
        limit: usize,
    ) -> Result<(Option<LeafHandle<V>>, bool), ReadConflict> {
        let Self {
            wh, resume, tail, ..
        } = self;
        let wh = *wh;
        wh.qsbr.with_local_handle(|handle| {
            handle.critical(|| {
                let (leaf, version) = wh.locate_optimistic(resume)?;
                let shared = &*leaf.0;
                let snapshot = shared.seq_enter().ok_or(ReadConflict)?;
                if leaf.expected_version() > version {
                    return Err(ReadConflict);
                }
                // SAFETY: pointer valid (handle held); every access is
                // bounds-checked and the batch is discarded unless the
                // seqlock validates.
                let data = unsafe { &*shared.data.data_ptr() };
                let appended = data.leaf.collect_leaf_checked(
                    resume,
                    limit,
                    batch,
                    tail,
                    MAX_OPTIMISTIC_KEY_LEN,
                )?;
                let truncated = appended == limit;
                let next = if truncated { None } else { data.next.clone() };
                if !shared.seq_validate(snapshot) {
                    return Err(ReadConflict);
                }
                Ok((next, truncated))
            })
        })
    }

    /// Reads `leaf`'s anchor into `buf` under its seqlock, without taking
    /// any lock. `false` means no clean read was obtained; the caller falls
    /// back to the successor of the last streamed key.
    fn read_anchor(leaf: &LeafHandle<V>, buf: &mut Vec<u8>) -> bool {
        let shared = &*leaf.0;
        for _ in 0..4 {
            let Some(snapshot) = shared.seq_enter() else {
                std::hint::spin_loop();
                continue;
            };
            // SAFETY: pointer valid (handle held). The racy anchor read is
            // length-guarded and discarded when validation fails — the same
            // discipline as the anchor comparison in
            // `resolve_outcome_optimistic`; the anchor bytes stay allocated
            // for the leaf's whole lifetime.
            let data = unsafe { &*shared.data.data_ptr() };
            let anchor = data.leaf.anchor();
            if anchor.len() > MAX_OPTIMISTIC_KEY_LEN {
                continue;
            }
            buf.clear();
            buf.extend_from_slice(anchor);
            if shared.seq_validate(snapshot) {
                return true;
            }
        }
        false
    }

    /// Sets `resume` to `max(anchor, last_key ++ 0x00)` when that strictly
    /// advances it; returns whether it advanced. The clamp keeps a stale
    /// anchor (a sibling merged away between batches reports an outdated —
    /// possibly empty — anchor) from ever moving the bound backwards and
    /// re-streaming keys.
    fn bump_resume(
        resume: &mut Vec<u8>,
        bound_buf: &mut Vec<u8>,
        last_key: Option<&[u8]>,
        anchor: Option<&[u8]>,
    ) -> bool {
        bound_buf.clear();
        if let Some(last) = last_key {
            // The successor bound excludes exactly the keys already streamed.
            index_traits::immediate_successor_into(last, bound_buf);
        }
        if let Some(anchor) = anchor {
            if anchor > bound_buf.as_slice() {
                bound_buf.clear();
                bound_buf.extend_from_slice(anchor);
            }
        }
        if bound_buf.as_slice() > resume.as_slice() {
            std::mem::swap(resume, bound_buf);
            true
        } else {
            false
        }
    }

    /// Reader-lock fallback: reads the leaf covering `resume` under its
    /// read lock (restarting on version conflicts) and advances the bound
    /// from its right sibling's anchor, which is exact here — holding the
    /// current leaf's read lock pins the link, since any split or merge
    /// involving either leaf needs this leaf's write lock.
    fn fill_locked(&mut self, batch: &mut ScanBatch<V>, limit: usize) {
        loop {
            let (leaf, version) = self.wh.locate(&self.resume);
            let data = leaf.0.data.read();
            if leaf.expected_version() > version {
                continue;
            }
            batch.clear();
            let appended =
                data.leaf
                    .collect_leaf_unsorted(&self.resume, limit, batch, &mut self.scratch16);
            if appended == limit {
                // Possibly truncated mid-leaf by the window budget: resume
                // just past the last streamed key, within the same leaf.
                let progressed = Self::bump_resume(
                    &mut self.resume,
                    &mut self.bound_buf,
                    batch.last_key(),
                    None,
                );
                debug_assert!(progressed, "truncated batch holds pairs");
                return;
            }
            match &data.next {
                None => self.done = true,
                Some(next) => {
                    let next_data = next.0.data.read();
                    let progressed = Self::bump_resume(
                        &mut self.resume,
                        &mut self.bound_buf,
                        batch.last_key(),
                        Some(next_data.leaf.anchor()),
                    );
                    debug_assert!(progressed, "locked scan failed to advance its bound");
                }
            }
            return;
        }
    }
}

impl<V: Clone + Send + Sync + 'static> CursorSource<V> for ScanSource<'_, V> {
    fn fill_next(&mut self, batch: &mut ScanBatch<V>, limit: usize) -> bool {
        let limit = limit.max(1);
        batch.clear();
        while !self.done {
            let optimistic = self.wh.uses_optimistic() && self.conflicts < OPTIMISTIC_SCAN_RETRIES;
            if !optimistic {
                self.fill_locked(batch, limit);
                if !batch.is_empty() {
                    return true;
                }
                continue;
            }
            batch.clear();
            match self.try_fill_optimistic(batch, limit) {
                Err(ReadConflict) => {
                    self.conflicts += 1;
                    std::hint::spin_loop();
                }
                Ok((_, true)) => {
                    // Truncated mid-leaf by the window budget: resume just
                    // past the last streamed pair; the next batch
                    // re-descends into the remainder of the same leaf.
                    let progressed = Self::bump_resume(
                        &mut self.resume,
                        &mut self.bound_buf,
                        batch.last_key(),
                        None,
                    );
                    debug_assert!(progressed, "truncated batch holds pairs");
                    return true;
                }
                Ok((None, false)) => {
                    self.done = true;
                }
                Ok((Some(next_leaf), false)) => {
                    let have_anchor = Self::read_anchor(&next_leaf, &mut self.anchor_buf);
                    let anchor = if have_anchor {
                        Some(self.anchor_buf.as_slice())
                    } else {
                        None
                    };
                    let progressed = Self::bump_resume(
                        &mut self.resume,
                        &mut self.bound_buf,
                        batch.last_key(),
                        anchor,
                    );
                    if !progressed {
                        // Only reachable with an empty snapshot and a stale
                        // (or unreadable) sibling anchor: count it as a
                        // conflict so the locked mode — whose anchors are
                        // exact — eventually guarantees progress.
                        self.conflicts += 1;
                        continue;
                    }
                    if batch.is_empty() {
                        continue;
                    }
                    return true;
                }
            }
        }
        !batch.is_empty()
    }

    fn reserve(&mut self, items: usize, key_bytes: usize) {
        self.resume.reserve(key_bytes);
        self.bound_buf.reserve(key_bytes);
        self.anchor_buf.reserve(key_bytes);
        self.tail.reserve(items, key_bytes);
        self.scratch16.reserve(items);
    }
}

impl<V: Clone + Send + Sync + 'static> ConcurrentOrderedIndex<V> for Wormhole<V> {
    fn name(&self) -> &'static str {
        "wormhole"
    }

    fn get(&self, key: &[u8]) -> Option<V> {
        let hash = crc32c(key);
        if self.uses_optimistic() {
            // Lock-free fast path: bounded seqlock-validated attempts inside
            // one QSBR critical section (kept open across retries so the
            // table and the leaves it references stay live).
            let fast = self.qsbr.with_local_handle(|handle| {
                let _guard = handle.enter();
                for _ in 0..OPTIMISTIC_READ_RETRIES {
                    match self.try_get_optimistic(key, hash) {
                        Ok(found) => return Some(found),
                        Err(ReadConflict) => {
                            self.metrics.seqlock_retries.inc();
                            std::hint::spin_loop();
                        }
                    }
                }
                None
            });
            if let Some(found) = fast {
                return found;
            }
            self.metrics.locked_fallbacks.inc();
        }
        // Contended fallback (or optimistic reads disabled): the paper's
        // per-leaf reader lock, which always makes progress.
        self.with_leaf_read(key, |leaf| leaf.get(key, hash, &self.config).cloned())
    }

    fn get_batch(&self, keys: &[&[u8]]) -> Vec<Option<V>> {
        let mut out: Vec<Option<V>> = Vec::with_capacity(keys.len());
        if !self.uses_optimistic() {
            // Without the lock-free read there is no miss chain to overlap
            // (every leaf read takes its lock anyway): plain per-key loop.
            out.extend(keys.iter().map(|key| {
                let hash = crc32c(key);
                self.with_leaf_read(key, |leaf| leaf.get(key, hash, &self.config).cloned())
            }));
            return out;
        }
        // Pipelined batch path: per window of BATCH_WINDOW keys, one QSBR
        // critical section covers the batched meta search (prefetched,
        // round-robined probes), the neighbour resolutions, and the
        // seqlock-validated leaf reads — amortising the epoch entry and
        // overlapping every level's cache misses. Keys that still conflict
        // after the bounded retries are re-read through the per-key path
        // (its own retries plus the locked fallback) after the guard closes.
        for chunk in keys.chunks(BATCH_WINDOW) {
            // `Some(result)` = answered lock-free; `None` = needs fallback.
            let mut values: [Option<Option<V>>; BATCH_WINDOW] = [const { None }; BATCH_WINDOW];
            self.qsbr.with_local_handle(|handle| {
                let _guard = handle.enter();
                // SAFETY: `current` always points to a live VersionedMeta;
                // we are inside a read-side critical section (see `locate`).
                let meta = unsafe { &*self.current.load(Ordering::Acquire) };
                let mut outcomes: [Option<TargetOutcome<LeafHandle<V>>>; BATCH_WINDOW] =
                    [const { None }; BATCH_WINDOW];
                meta.table
                    .search_targets_window(chunk, &self.config, &mut outcomes);
                // Resolve every outcome to its leaf and prefetch the leaf
                // headers (seqlock + expected-version line) before any
                // seqlock read executes, so those fills overlap too.
                let mut located: [Option<LeafHandle<V>>; BATCH_WINDOW] =
                    [const { None }; BATCH_WINDOW];
                for (i, key) in chunk.iter().enumerate() {
                    let outcome = outcomes[i].take().expect("window filled");
                    if let Ok(leaf) = self.resolve_outcome_optimistic(outcome, key) {
                        prefetch_read(Arc::as_ptr(&leaf.0));
                        located[i] = Some(leaf);
                    }
                }
                for (i, key) in chunk.iter().enumerate() {
                    let hash = crc32c(key);
                    // First attempt reuses the batched search; later
                    // attempts re-search per key, like single-key `get`.
                    let first = match located[i].take() {
                        Some(leaf) => self.leaf_read_optimistic(&leaf, key, hash, meta.version),
                        None => Err(ReadConflict),
                    };
                    if let Ok(found) = first {
                        values[i] = Some(found);
                        continue;
                    }
                    self.metrics.seqlock_retries.inc();
                    for _ in 1..OPTIMISTIC_READ_RETRIES {
                        match self.try_get_optimistic(key, hash) {
                            Ok(found) => {
                                values[i] = Some(found);
                                break;
                            }
                            Err(ReadConflict) => {
                                self.metrics.seqlock_retries.inc();
                                std::hint::spin_loop();
                            }
                        }
                    }
                }
            });
            for (i, key) in chunk.iter().enumerate() {
                match values[i].take() {
                    Some(found) => out.push(found),
                    None => {
                        self.metrics.locked_fallbacks.inc();
                        let hash = crc32c(key);
                        out.push(self.with_leaf_read(key, |leaf| {
                            leaf.get(key, hash, &self.config).cloned()
                        }));
                    }
                }
            }
        }
        out
    }

    fn set(&self, key: &[u8], value: V) -> Option<V> {
        let hash = crc32c(key);
        let mut pending = Some(value);
        let mut bin = self.new_bin();
        enum FastPath<V> {
            Replaced(V),
            Inserted,
            NeedsSplit,
        }
        let outcome = self.with_leaf_write(key, |data| {
            if let Some(slot) = data.leaf.get_mut(key, hash, &self.config) {
                return FastPath::Replaced(
                    bin.replace_value(slot, pending.take().expect("value present")),
                );
            }
            if data.leaf.len() < self.config.leaf_capacity {
                let old = data.leaf.insert_retiring(
                    key,
                    hash,
                    pending.take().expect("value present"),
                    &self.config,
                    &mut bin,
                );
                debug_assert!(old.is_none());
                return FastPath::Inserted;
            }
            FastPath::NeedsSplit
        });
        self.retire_garbage(bin);
        match outcome {
            FastPath::Replaced(old) => Some(old),
            FastPath::Inserted => {
                self.len.fetch_add(1, Ordering::Relaxed);
                self.key_bytes.fetch_add(key.len(), Ordering::Relaxed);
                None
            }
            FastPath::NeedsSplit => {
                self.insert_with_split(key, hash, pending.take().expect("value present"))
            }
        }
    }

    fn del(&self, key: &[u8]) -> Option<V> {
        let hash = crc32c(key);
        let mut bin = self.new_bin();
        let (removed, leaf_len) = self.with_leaf_write(key, |data| {
            let removed = data.leaf.remove_retiring(key, hash, &self.config, &mut bin);
            (removed, data.leaf.len())
        });
        self.retire_garbage(bin);
        let removed = removed?;
        self.len.fetch_sub(1, Ordering::Relaxed);
        self.key_bytes.fetch_sub(key.len(), Ordering::Relaxed);
        // A shrunken leaf may be mergeable; the full Algorithm-2 test runs
        // under the writer mutex with both neighbours locked.
        if leaf_len < self.config.merge_size {
            self.try_merge(key);
        }
        Some(removed)
    }

    fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    fn delete_range(&self, lo: &[u8], hi: &[u8]) -> usize {
        Wormhole::remove_range(self, lo, hi)
    }

    fn range_from(&self, start: &[u8], count: usize) -> Vec<(Vec<u8>, V)> {
        // A thin materialising wrapper over the streaming cursor: the
        // cursor owns the whole snapshot/validate/resume discipline (and
        // every reusable buffer); this method only copies the requested
        // window out of its batches.
        let mut out: Vec<(Vec<u8>, V)> = Vec::with_capacity(count.min(1024));
        if count == 0 {
            return out;
        }
        self.scan(start).collect_next(count, &mut out);
        out
    }

    fn scan<'a>(&'a self, start: &[u8]) -> Cursor<'a, V>
    where
        V: Clone + 'a,
    {
        Cursor::new(
            start,
            Box::new(ScanSource {
                wh: self,
                resume: start.to_vec(),
                bound_buf: Vec::new(),
                anchor_buf: Vec::new(),
                tail: TailScratch::new(),
                scratch16: Vec::new(),
                conflicts: 0,
                done: false,
            }),
        )
    }

    fn stats(&self) -> IndexStats {
        Wormhole::stats(self)
    }
}

impl<V> Drop for Wormhole<V> {
    fn drop(&mut self) {
        // Run any reclamation still queued behind a grace period (threads'
        // cached QSBR handles can outlive the index, so waiting for the
        // domain itself to drop could leak the garbage for a long time).
        // `&mut self` guarantees no reader of *this* index is active, so
        // the flush returns promptly.
        self.qsbr.flush();
        // A table still aging through its grace period is exclusively ours
        // now for the same reason; free it without replaying its plan.
        if let Some(retiring) = self.writer.get_mut().retiring.take() {
            // SAFETY: no readers remain (`&mut self`).
            unsafe { drop(Box::from_raw(retiring.table)) };
        }
        // SAFETY: `&mut self` guarantees no readers or writers remain; the
        // published table pointer is exclusively owned here.
        unsafe {
            drop(Box::from_raw(self.current.load(Ordering::Acquire)));
        }
        // Break the forward Arc chain iteratively to avoid deep recursive
        // drops on long leaf lists.
        let mut cur = self.head.0.data.write().next.take();
        while let Some(leaf) = cur {
            cur = leaf.0.data.write().next.take();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc as StdArc;
    use std::thread;

    fn small_config() -> WormholeConfig {
        WormholeConfig::optimized().with_leaf_capacity(8)
    }

    #[test]
    fn empty_index() {
        let wh: Wormhole<u64> = Wormhole::new();
        assert!(wh.is_empty());
        assert_eq!(wh.get(b"missing"), None);
        assert_eq!(wh.del(b"missing"), None);
        assert!(wh.range_from(b"", 10).is_empty());
        wh.check_invariants();
    }

    #[test]
    fn from_sorted_builds_a_fully_functional_index() {
        let keys: Vec<Vec<u8>> = (0..5_000u64)
            .map(|i| format!("bulk-{i:06}").into_bytes())
            .collect();
        let wh: Wormhole<u64> = Wormhole::from_sorted(
            small_config(),
            keys.iter().enumerate().map(|(i, k)| (k.clone(), i as u64)),
        );
        assert_eq!(wh.len(), keys.len());
        assert!(wh.leaf_count() > 1, "bulk load must pack multiple leaves");
        wh.check_invariants();
        for (i, key) in keys.iter().enumerate() {
            assert_eq!(wh.get(key), Some(i as u64));
        }
        // Ordered iteration sees every key in order.
        let all = wh.range_from(b"", keys.len() + 1);
        assert_eq!(all.len(), keys.len());
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0));
        // The index keeps working as a live index: inserts split packed
        // leaves, deletes merge them.
        for key in keys.iter().step_by(2) {
            assert!(wh.del(key).is_some());
        }
        for (i, key) in keys.iter().enumerate() {
            let mut grown = key.clone();
            grown.push(b'x');
            wh.set(&grown, i as u64);
        }
        assert_eq!(wh.len(), keys.len() + keys.len() / 2);
        wh.check_invariants();
    }

    #[test]
    fn from_sorted_handles_fat_node_runs_and_empty_input() {
        let empty: Wormhole<u64> = Wormhole::from_sorted(small_config(), Vec::new());
        assert!(empty.is_empty());
        empty.check_invariants();

        // Keys differing only by trailing ⊥ tokens cannot be split apart:
        // the packer must extend the leaf (fat node) instead of forming an
        // invalid anchor.
        let mut keys: Vec<Vec<u8>> = Vec::new();
        for stem in 1u8..=4 {
            let mut k = vec![stem];
            for _ in 0..12 {
                keys.push(k.clone());
                k.push(0);
            }
        }
        keys.sort();
        let wh: Wormhole<u64> = Wormhole::from_sorted(
            WormholeConfig::optimized().with_leaf_capacity(4),
            keys.iter().enumerate().map(|(i, k)| (k.clone(), i as u64)),
        );
        assert_eq!(wh.len(), keys.len());
        wh.check_invariants();
        for (i, key) in keys.iter().enumerate() {
            assert_eq!(wh.get(key), Some(i as u64), "key {key:?}");
        }
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn from_sorted_rejects_unsorted_input() {
        let _wh: Wormhole<u64> = Wormhole::from_sorted(
            small_config(),
            vec![(b"b".to_vec(), 1u64), (b"a".to_vec(), 2u64)],
        );
    }

    #[test]
    fn single_threaded_crud() {
        let wh = Wormhole::with_config(small_config());
        let names = [
            "Aaron", "Abbe", "Andrew", "Austin", "Denice", "Jacob", "James", "Jason", "John",
            "Joseph", "Julian", "Justin",
        ];
        for (i, name) in names.iter().enumerate() {
            assert_eq!(wh.set(name.as_bytes(), i as u64), None);
        }
        assert_eq!(wh.len(), 12);
        for (i, name) in names.iter().enumerate() {
            assert_eq!(wh.get(name.as_bytes()), Some(i as u64), "{name}");
        }
        assert_eq!(wh.set(b"James", 100), Some(6));
        assert_eq!(wh.del(b"James"), Some(100));
        assert_eq!(wh.get(b"James"), None);
        assert_eq!(wh.len(), 11);
        wh.check_invariants();
        let out = wh.range_from(b"Brown", 3);
        let keys: Vec<String> = out
            .iter()
            .map(|(k, _)| String::from_utf8(k.clone()).unwrap())
            .collect();
        assert_eq!(keys, vec!["Denice", "Jacob", "Jason"]);
    }

    #[test]
    fn locked_reads_match_optimistic_reads() {
        // The same operations through both read paths give identical
        // results (the contended-read benchmark relies on the toggle).
        let optimistic = Wormhole::with_config(small_config());
        let locked = Wormhole::with_config(small_config().with_optimistic_reads(false));
        for i in 0..1200u64 {
            let key = format!("mode-{:05}", i * 31 % 1200);
            optimistic.set(key.as_bytes(), i);
            locked.set(key.as_bytes(), i);
        }
        for i in 0..1200u64 {
            let key = format!("mode-{i:05}");
            assert_eq!(optimistic.get(key.as_bytes()), locked.get(key.as_bytes()));
        }
        assert_eq!(
            optimistic.range_from(b"mode-00300", 200),
            locked.range_from(b"mode-00300", 200)
        );
    }

    #[test]
    fn boxed_values_stay_on_the_locked_path_and_survive_churn() {
        // QSBR-deferred reclamation closes the freed-memory window, but it
        // is NOT enough to admit pointer values to the lock-free path: a
        // speculative `Box` clone would dereference before validation, and
        // the insert/remove windows can expose a never-initialised slot
        // word (see `optimistic_reads_safe`). Pointer values must keep the
        // per-leaf reader lock — and behave correctly under churn there.
        assert!(!Wormhole::<Box<u64>>::optimistic_reads_safe());
        assert!(!Wormhole::<StdArc<u64>>::optimistic_reads_safe());
        assert!(!Wormhole::<Option<Box<u64>>>::optimistic_reads_safe());
        let wh: StdArc<Wormhole<Box<u64>>> = StdArc::new(Wormhole::with_config(small_config()));
        for i in 0..500u64 {
            wh.set(format!("bx-{i:04}").as_bytes(), Box::new(i));
        }
        // Readers race overwrite/delete churn that frees old boxes.
        let stop = StdArc::new(std::sync::atomic::AtomicBool::new(false));
        std::thread::scope(|scope| {
            {
                let wh = StdArc::clone(&wh);
                let stop = StdArc::clone(&stop);
                scope.spawn(move || {
                    let mut round = 1000u64;
                    while !stop.load(Ordering::Relaxed) {
                        for i in (0..500u64).step_by(3) {
                            wh.set(format!("bx-{i:04}").as_bytes(), Box::new(round));
                            wh.set(format!("bx-{i:04}:x").as_bytes(), Box::new(round));
                            wh.del(format!("bx-{i:04}:x").as_bytes());
                        }
                        round += 1;
                    }
                });
            }
            let mut readers = Vec::new();
            for r in 0..2u64 {
                let wh = StdArc::clone(&wh);
                readers.push(scope.spawn(move || {
                    for pass in 0..4_000u64 {
                        let i = (pass * 31 + r) % 500;
                        let got = wh.get(format!("bx-{i:04}").as_bytes());
                        let got = *got.expect("stable key present");
                        assert!(got == i || got >= 1000, "torn boxed value {got}");
                    }
                }));
            }
            for reader in readers {
                reader.join().unwrap();
            }
            stop.store(true, Ordering::Relaxed);
        });
        wh.check_invariants();
    }

    #[test]
    fn deferred_reclamation_stays_bounded() {
        // Point deletes defer their key boxes; the queue must stay bounded
        // even across thousands of mutations (splits/merges and the
        // threshold flush both drain it), and drop flushes the rest.
        let wh: Wormhole<u64> = Wormhole::with_config(small_config());
        for round in 0..3u64 {
            for i in 0..2_000u64 {
                wh.set(format!("gc-{i:05}").as_bytes(), round);
            }
            for i in (0..2_000u64).step_by(2) {
                assert_eq!(wh.del(format!("gc-{i:05}").as_bytes()), Some(round));
            }
            for i in (0..2_000u64).step_by(2) {
                wh.set(format!("gc-{i:05}").as_bytes(), round);
            }
        }
        assert!(
            wh.pending_reclamation() <= GARBAGE_FLUSH_PENDING,
            "reclamation queue unbounded: {}",
            wh.pending_reclamation()
        );
        wh.check_invariants();
    }

    #[test]
    fn heap_values_use_locked_reads_transparently() {
        // String is a multi-word heap-owning value, so
        // `optimistic_reads_safe` routes every read through the per-leaf
        // lock; behaviour must be unaffected.
        assert!(!Wormhole::<String>::optimistic_reads_safe());
        assert!(!Wormhole::<Vec<u8>>::optimistic_reads_safe());
        assert!(Wormhole::<u64>::optimistic_reads_safe());
        let wh: Wormhole<String> = Wormhole::with_config(small_config());
        for i in 0..500u32 {
            wh.set(format!("hv-{i:04}").as_bytes(), format!("value-{i}"));
        }
        for i in 0..500u32 {
            assert_eq!(
                wh.get(format!("hv-{i:04}").as_bytes()),
                Some(format!("value-{i}")),
            );
        }
        let scan = wh.range_from(b"hv-0100", 10);
        assert_eq!(scan.len(), 10);
        assert_eq!(scan[0].1, "value-100");
    }

    #[test]
    fn splits_and_merges_single_thread() {
        let wh = Wormhole::with_config(small_config());
        for i in 0..2000u64 {
            wh.set(format!("{i:06}").as_bytes(), i);
        }
        assert_eq!(wh.len(), 2000);
        assert!(wh.leaf_count() > 50);
        wh.check_invariants();
        for i in 0..2000u64 {
            assert_eq!(wh.get(format!("{i:06}").as_bytes()), Some(i));
        }
        let scan = wh.range_from(b"", usize::MAX);
        assert_eq!(scan.len(), 2000);
        assert!(scan.windows(2).all(|w| w[0].0 < w[1].0));
        for i in 0..2000u64 {
            assert_eq!(wh.del(format!("{i:06}").as_bytes()), Some(i));
        }
        assert!(wh.is_empty());
        wh.check_invariants();
        assert!(wh.leaf_count() < 5, "leaves merge back as keys disappear");
    }

    #[test]
    fn remove_range_drains_across_leaves_and_merges_back() {
        let wh = Wormhole::with_config(small_config());
        for i in 0..3_000u64 {
            wh.set(format!("{i:06}").as_bytes(), i);
        }
        let leaves_before = wh.leaf_count();
        assert!(leaves_before > 50);
        // A mid-index window spanning many leaves.
        assert_eq!(wh.remove_range(b"000500", b"002500"), 2_000);
        assert_eq!(wh.len(), 1_000);
        wh.check_invariants();
        assert!(
            wh.leaf_count() < leaves_before / 2,
            "drained leaves must merge away ({} -> {})",
            leaves_before,
            wh.leaf_count()
        );
        for i in 0..3_000u64 {
            let expect = !(500..2_500).contains(&i);
            assert_eq!(wh.get(format!("{i:06}").as_bytes()).is_some(), expect);
        }
        // The survivors scan in order with no stragglers.
        let all = wh.range_from(b"", usize::MAX);
        assert_eq!(all.len(), 1_000);
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0));
        // Degenerate and disjoint windows are no-ops; full drains empty it.
        assert_eq!(wh.remove_range(b"zzz", b"zz"), 0);
        assert_eq!(wh.remove_range(b"000500", b"000500"), 0);
        assert_eq!(wh.remove_range(b"", b"\xff"), 1_000);
        assert!(wh.is_empty());
        wh.check_invariants();
    }

    #[test]
    fn remove_range_races_concurrent_readers_safely() {
        let wh = StdArc::new(Wormhole::with_config(small_config()));
        for i in 0..4_000u64 {
            wh.set(format!("k{i:06}").as_bytes(), i);
        }
        // Stable prefix and suffix the readers verify while the middle is
        // repeatedly drained and refilled.
        std::thread::scope(|scope| {
            let stop = StdArc::new(std::sync::atomic::AtomicBool::new(false));
            {
                let wh = StdArc::clone(&wh);
                let stop = StdArc::clone(&stop);
                scope.spawn(move || {
                    for round in 0..20u64 {
                        wh.remove_range(b"k001000", b"k003000");
                        for i in 1_000..3_000u64 {
                            wh.set(format!("k{i:06}").as_bytes(), round * 10_000 + i);
                        }
                    }
                    stop.store(true, Ordering::Relaxed);
                });
            }
            for r in 0..2u64 {
                let wh = StdArc::clone(&wh);
                let stop = StdArc::clone(&stop);
                scope.spawn(move || {
                    let mut pass = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let i = (pass * 37 + r) % 1_000;
                        assert_eq!(wh.get(format!("k{i:06}").as_bytes()), Some(i));
                        let j = 3_000 + (pass * 53 + r) % 1_000;
                        assert_eq!(wh.get(format!("k{j:06}").as_bytes()), Some(j));
                        if pass.is_multiple_of(64) {
                            let scan = wh.range_from(b"k000900", 300);
                            assert!(scan.windows(2).all(|w| w[0].0 < w[1].0));
                        }
                        pass += 1;
                    }
                });
            }
        });
        assert_eq!(wh.len(), 4_000);
        wh.check_invariants();
    }

    #[test]
    fn matches_unsafe_variant() {
        use crate::single::WormholeUnsafe;
        use index_traits::OrderedIndex;
        let concurrent = Wormhole::with_config(small_config());
        let mut single = WormholeUnsafe::with_config(small_config());
        let keys: Vec<Vec<u8>> = (0..1500u32)
            .map(|i| format!("item{:05}-user{:04}", i * 7919 % 1500, i % 97).into_bytes())
            .collect();
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(concurrent.set(k, i as u64), single.set(k, i as u64), "{i}");
        }
        for k in &keys {
            assert_eq!(concurrent.get(k), single.get(k));
        }
        assert_eq!(
            concurrent.range_from(b"item00500", 200),
            single.range_from(b"item00500", 200)
        );
        for (i, k) in keys.iter().enumerate() {
            if i % 3 == 0 {
                assert_eq!(concurrent.del(k), single.del(k));
            }
        }
        assert_eq!(concurrent.len(), single.len());
        assert_eq!(
            concurrent.range_from(b"", usize::MAX),
            single.range_from(b"", usize::MAX)
        );
    }

    #[test]
    fn concurrent_readers_and_writers() {
        let wh = StdArc::new(Wormhole::with_config(
            WormholeConfig::optimized().with_leaf_capacity(16),
        ));
        // Preload.
        for i in 0..2000u64 {
            wh.set(format!("preload-{i:06}").as_bytes(), i);
        }
        let threads = 8;
        let per_thread = 1500u64;
        let mut handles = Vec::new();
        for t in 0..threads {
            let wh = StdArc::clone(&wh);
            handles.push(thread::spawn(move || {
                for i in 0..per_thread {
                    let key = format!("writer{t}-{i:06}");
                    wh.set(key.as_bytes(), i);
                    if i % 3 == 0 {
                        assert_eq!(wh.get(key.as_bytes()), Some(i));
                    }
                    if i % 7 == 0 {
                        // Point lookups on the preloaded range.
                        let probe = format!("preload-{:06}", (i * 13) % 2000);
                        assert!(wh.get(probe.as_bytes()).is_some());
                    }
                    if i % 101 == 0 {
                        let _ = wh.range_from(format!("writer{t}-").as_bytes(), 50);
                    }
                    if i % 11 == 0 {
                        wh.del(key.as_bytes());
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        wh.check_invariants();
        // Every surviving key must be readable.
        for t in 0..threads {
            for i in 0..per_thread {
                let key = format!("writer{t}-{i:06}");
                let expect = if i % 11 == 0 { None } else { Some(i) };
                assert_eq!(wh.get(key.as_bytes()), expect, "{key}");
            }
        }
        assert_eq!(
            wh.len(),
            2000 + threads as usize * per_thread as usize
                - threads as usize * per_thread.div_ceil(11) as usize
        );
    }

    #[test]
    fn concurrent_range_scans_with_writers() {
        let wh = StdArc::new(Wormhole::with_config(small_config()));
        for i in 0..3000u64 {
            wh.set(format!("{i:08}").as_bytes(), i);
        }
        let stop = StdArc::new(std::sync::atomic::AtomicBool::new(false));
        let mut handles = Vec::new();
        // Two writers keep splitting and merging leaves.
        for w in 0..2 {
            let wh = StdArc::clone(&wh);
            let stop = StdArc::clone(&stop);
            handles.push(thread::spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let key = format!("writer{w}-{:06}", i % 500);
                    wh.set(key.as_bytes(), i);
                    wh.del(key.as_bytes());
                    i += 1;
                }
            }));
        }
        // Scanners verify that the preloaded keys always appear in order.
        for _ in 0..2 {
            let wh = StdArc::clone(&wh);
            handles.push(thread::spawn(move || {
                for _ in 0..30 {
                    let out = wh.range_from(b"00000100", 500);
                    assert_eq!(out.len(), 500);
                    assert!(out.windows(2).all(|w| w[0].0 < w[1].0), "scan out of order");
                    assert_eq!(out[0].0, b"00000100".to_vec());
                }
            }));
        }
        // Let the scanners finish, then stop the writers.
        for h in handles.drain(2..) {
            h.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }
        wh.check_invariants();
    }

    #[test]
    fn stats_are_populated() {
        let wh = Wormhole::new();
        for i in 0..500u64 {
            wh.set(format!("stat-key-{i:05}").as_bytes(), i);
        }
        let stats = Wormhole::stats(&wh);
        assert_eq!(stats.keys, 500);
        assert_eq!(stats.key_bytes, 500 * 14);
        assert!(stats.structure_bytes > 0);
    }
}
