//! The thread-safe Wormhole index (§2.5 of the paper).
//!
//! Concurrency control combines three mechanisms, exactly as described in the
//! paper:
//!
//! * a **reader/writer lock per leaf node** — point and range operations lock
//!   only the leaf they touch;
//! * a single **writer mutex over the MetaTrieHT** — only split and merge
//!   operations take it, and they apply their changes to a second hash table
//!   (T2), atomically publish it, wait for an RCU grace period (QSBR), apply
//!   the same changes to the old table (T1) and keep it as the next spare;
//! * **version numbers** — every published MetaTrieHT carries a version, and
//!   a leaf about to be split or merged records `version + 1` as its
//!   *expected version*. A lookup that reaches a leaf whose expected version
//!   is newer than the table it searched restarts, which prevents reads
//!   through a stale table from observing half-moved keys.
//!
//! Readers never take the writer mutex and never wait for grace periods; the
//! only blocking they can experience is on an individual leaf lock.

use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};

use index_traits::{ConcurrentOrderedIndex, IndexStats};
use parking_lot::{Mutex, RwLock};
use wh_epoch::Qsbr;
use wh_hash::crc32c;

use crate::config::WormholeConfig;
use crate::leaf::LeafNode;
use crate::meta::{LeafRef, MetaTable, TargetOutcome};

/// Shared state of one leaf: its data behind a reader/writer lock plus the
/// expected-version gate used by the start-over protocol.
struct LeafShared<V> {
    /// A lookup that searched a MetaTrieHT older than this value must
    /// restart (§2.5).
    expected_version: AtomicU64,
    data: RwLock<LeafData<V>>,
}

/// Lock-protected contents of a leaf.
struct LeafData<V> {
    leaf: LeafNode<V>,
    /// Previous leaf on the LeafList (weak to avoid a reference cycle).
    prev: Weak<LeafShared<V>>,
    /// Next leaf on the LeafList.
    next: Option<LeafHandle<V>>,
}

/// A reference-counted handle to a leaf, used both by the LeafList links and
/// by the MetaTrieHT items.
pub struct LeafHandle<V>(Arc<LeafShared<V>>);

impl<V> Clone for LeafHandle<V> {
    fn clone(&self) -> Self {
        Self(Arc::clone(&self.0))
    }
}

impl<V> LeafRef for LeafHandle<V> {
    fn same(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

impl<V> std::fmt::Debug for LeafHandle<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "LeafHandle({:p})", Arc::as_ptr(&self.0))
    }
}

impl<V> LeafHandle<V> {
    fn new(leaf: LeafNode<V>, prev: Weak<LeafShared<V>>, next: Option<LeafHandle<V>>) -> Self {
        Self(Arc::new(LeafShared {
            expected_version: AtomicU64::new(0),
            data: RwLock::new(LeafData { leaf, prev, next }),
        }))
    }

    fn expected_version(&self) -> u64 {
        self.0.expected_version.load(Ordering::Acquire)
    }

    fn set_expected_version(&self, v: u64) {
        self.0.expected_version.store(v, Ordering::Release);
    }

    fn downgrade(&self) -> Weak<LeafShared<V>> {
        Arc::downgrade(&self.0)
    }
}

/// A published MetaTrieHT together with its version number.
struct VersionedMeta<V> {
    version: u64,
    table: MetaTable<LeafHandle<V>>,
}

/// Writer-side state protected by the MetaTrieHT mutex.
struct WriterState<V> {
    /// The spare table (the paper's "second hash table"). Always an exact
    /// logical copy of the published table while the mutex is not held.
    spare: Option<Box<VersionedMeta<V>>>,
}

/// The thread-safe Wormhole ordered index.
pub struct Wormhole<V> {
    config: WormholeConfig,
    /// The currently published MetaTrieHT. Readers dereference it inside a
    /// QSBR critical section; writers retire it only after a grace period.
    current: AtomicPtr<VersionedMeta<V>>,
    writer: Mutex<WriterState<V>>,
    qsbr: Qsbr,
    /// Leftmost leaf of the LeafList (never merged away).
    head: LeafHandle<V>,
    len: AtomicUsize,
    key_bytes: AtomicUsize,
}

// SAFETY: all interior state is either atomic, lock-protected, or reclaimed
// through the QSBR domain; `V` crosses threads inside those structures.
unsafe impl<V: Send + Sync> Send for Wormhole<V> {}
// SAFETY: see above — shared access only goes through locks and atomics.
unsafe impl<V: Send + Sync> Sync for Wormhole<V> {}

impl<V: Clone + Send + Sync> Default for Wormhole<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: Clone + Send + Sync> Wormhole<V> {
    /// Creates an empty index with the default (fully optimised) configuration.
    pub fn new() -> Self {
        Self::with_config(WormholeConfig::default())
    }

    /// Creates an empty index with an explicit configuration.
    pub fn with_config(config: WormholeConfig) -> Self {
        let head = LeafHandle::new(LeafNode::new(Vec::new(), Vec::new()), Weak::new(), None);
        let mut t1 = MetaTable::new();
        t1.install_root_leaf(head.clone());
        let mut t2 = MetaTable::new();
        t2.install_root_leaf(head.clone());
        let current = Box::into_raw(Box::new(VersionedMeta {
            version: 0,
            table: t1,
        }));
        Self {
            config,
            current: AtomicPtr::new(current),
            writer: Mutex::new(WriterState {
                spare: Some(Box::new(VersionedMeta {
                    version: 0,
                    table: t2,
                })),
            }),
            qsbr: Qsbr::new(),
            head,
            len: AtomicUsize::new(0),
            key_bytes: AtomicUsize::new(0),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &WormholeConfig {
        &self.config
    }

    /// Number of leaf nodes currently on the LeafList.
    pub fn leaf_count(&self) -> usize {
        let mut n = 0;
        let mut cur = Some(self.head.clone());
        while let Some(leaf) = cur {
            n += 1;
            cur = leaf.0.data.read().next.clone();
        }
        n
    }

    /// Resolves the MetaTrieHT search outcome to a leaf handle. `meta` must
    /// stay valid for the duration of the call (guard or writer mutex held).
    fn resolve_outcome(
        &self,
        outcome: TargetOutcome<LeafHandle<V>>,
        key: &[u8],
    ) -> Option<LeafHandle<V>> {
        match outcome {
            TargetOutcome::Target(leaf) => Some(leaf),
            TargetOutcome::LeftOf(leaf) => {
                let prev = leaf.0.data.read().prev.clone();
                // When the left neighbour disappeared under us (merge racing
                // with this lookup), return None and let the caller restart.
                prev.upgrade().map(LeafHandle)
            }
            TargetOutcome::CompareAnchor(leaf) => {
                let data = leaf.0.data.read();
                if key < data.leaf.anchor() {
                    let prev = data.prev.clone();
                    drop(data);
                    prev.upgrade().map(LeafHandle)
                } else {
                    drop(data);
                    Some(leaf)
                }
            }
        }
    }

    /// Searches the published MetaTrieHT for `key`'s target leaf inside a
    /// QSBR critical section and returns the leaf together with the version
    /// of the table that produced it.
    fn locate(&self, key: &[u8]) -> (LeafHandle<V>, u64) {
        loop {
            let found = self.qsbr.with_local_handle(|handle| {
                let _guard = handle.enter();
                // SAFETY: `current` always points to a live VersionedMeta;
                // writers retire a table only after a grace period, and we
                // are inside a read-side critical section.
                let meta = unsafe { &*self.current.load(Ordering::Acquire) };
                let outcome = meta.table.search_target(key, &self.config);
                self.resolve_outcome(outcome, key)
                    .map(|leaf| (leaf, meta.version))
            });
            if let Some(found) = found {
                return found;
            }
        }
    }

    /// Runs `f` under the target leaf's read lock, restarting the search when
    /// the version check detects a concurrent split/merge.
    fn with_leaf_read<R>(&self, key: &[u8], mut f: impl FnMut(&LeafNode<V>) -> R) -> R {
        loop {
            let (leaf, version) = self.locate(key);
            let data = leaf.0.data.read();
            if leaf.expected_version() > version {
                continue;
            }
            return f(&data.leaf);
        }
    }

    /// Runs `f` under the target leaf's write lock (for in-place updates that
    /// do not change the set of leaves), restarting on version conflicts.
    fn with_leaf_write<R>(&self, key: &[u8], mut f: impl FnMut(&mut LeafData<V>) -> R) -> R {
        loop {
            let (leaf, version) = self.locate(key);
            let mut data = leaf.0.data.write();
            if leaf.expected_version() > version {
                continue;
            }
            return f(&mut data);
        }
    }

    // ------------------------------------------------------------------
    // Split and merge (the third operation group of §2.5).
    // ------------------------------------------------------------------

    /// Inserts `key` via the split path: takes the writer mutex, re-locates
    /// the leaf, splits it when (still) necessary, and publishes the new
    /// MetaTrieHT with the RCU double-table protocol.
    fn insert_with_split(&self, key: &[u8], hash: u32, value: V) -> Option<V> {
        let mut writer = self.writer.lock();
        // While the mutex is held the published table cannot change or be
        // retired, so it is safe to read it without a QSBR guard.
        // SAFETY: see above; only mutex holders swap or free `current`.
        let current = unsafe { &*self.current.load(Ordering::Acquire) };
        let version = current.version;
        let outcome = current.table.search_target(key, &self.config);
        let Some(leaf) = self.resolve_outcome(outcome, key) else {
            // A merge retired the neighbour we needed; drop the mutex and let
            // the caller's retry loop run the fast path again.
            drop(writer);
            return self.set(key, value);
        };
        let mut left_guard = leaf.0.data.write();
        debug_assert!(leaf.expected_version() <= version);

        // The situation may have changed between the fast path giving up and
        // the mutex being acquired: re-run the cheap cases first.
        if let Some(slot) = left_guard.leaf.get_mut(key, hash, &self.config) {
            return Some(std::mem::replace(slot, value));
        }
        if left_guard.leaf.len() < self.config.leaf_capacity {
            let old = left_guard.leaf.insert(key, hash, value, &self.config);
            debug_assert!(old.is_none());
            self.len.fetch_add(1, Ordering::Relaxed);
            self.key_bytes.fetch_add(key.len(), Ordering::Relaxed);
            return None;
        }
        let Some((at, anchor)) = left_guard.leaf.choose_split() else {
            // Fat node (§3.3): grow past the nominal capacity.
            let old = left_guard.leaf.insert(key, hash, value, &self.config);
            debug_assert!(old.is_none());
            self.len.fetch_add(1, Ordering::Relaxed);
            self.key_bytes.fetch_add(key.len(), Ordering::Relaxed);
            return None;
        };

        // Perform the split on the leaf list while holding the leaf locks.
        let table_key = current.table.reserve_anchor_key(&anchor);
        let right_leaf = left_guard
            .leaf
            .split_off(at, anchor.clone(), table_key.clone());
        let old_right = left_guard.next.clone();
        let new_handle = LeafHandle::new(right_leaf, leaf.downgrade(), old_right.clone());
        left_guard.next = Some(new_handle.clone());
        leaf.set_expected_version(version + 1);
        new_handle.set_expected_version(version + 1);

        // Insert the pending key into whichever half now covers it.
        let mut right_guard = new_handle.0.data.write();
        let old = if key >= anchor.as_slice() {
            right_guard.leaf.insert(key, hash, value, &self.config)
        } else {
            left_guard.leaf.insert(key, hash, value, &self.config)
        };
        debug_assert!(old.is_none());
        self.len.fetch_add(1, Ordering::Relaxed);
        self.key_bytes.fetch_add(key.len(), Ordering::Relaxed);

        // Fix the right neighbour's back link (lock ordering: left to right).
        if let Some(right) = &old_right {
            right.0.data.write().prev = new_handle.downgrade();
        }

        // Apply the changes to the spare table and publish it.
        let mut spare = writer.spare.take().expect("spare table present");
        let relocations =
            spare
                .table
                .apply_split(&table_key, new_handle.clone(), &leaf, old_right.as_ref());
        for (relocated, new_key) in &relocations {
            // The only anchor that can be a proper prefix of the new anchor
            // is the split leaf's own anchor, whose lock we hold.
            assert!(relocated.same(&leaf), "unexpected anchor relocation");
            left_guard.leaf.set_table_key(new_key.clone());
        }
        spare.version = version + 1;
        let old_table = self.current.swap(Box::into_raw(spare), Ordering::AcqRel);

        // Release the leaf locks before waiting for the grace period so that
        // readers blocked on them can finish against the new table (§2.5).
        drop(right_guard);
        drop(left_guard);

        self.qsbr.synchronize();
        // SAFETY: every reader has passed a quiescent state since the swap,
        // so nobody still dereferences the old table; the mutex guarantees
        // exclusive ownership of it from here on.
        let mut old_table = unsafe { Box::from_raw(old_table) };
        let same_relocations =
            old_table
                .table
                .apply_split(&table_key, new_handle, &leaf, old_right.as_ref());
        debug_assert_eq!(same_relocations.len(), relocations.len());
        old_table.version = version + 1;
        writer.spare = Some(old_table);
        None
    }

    /// Attempts to merge the leaf owning `key` with one of its neighbours
    /// (Algorithm 2, DEL). Runs entirely under the writer mutex.
    fn try_merge(&self, key: &[u8]) {
        let mut writer = self.writer.lock();
        // SAFETY: only mutex holders swap or free `current`.
        let current = unsafe { &*self.current.load(Ordering::Acquire) };
        let version = current.version;
        let outcome = current.table.search_target(key, &self.config);
        let Some(leaf) = self.resolve_outcome(outcome, key) else {
            return;
        };
        // Choose the merge pair: (left, leaf) if the left neighbour is small
        // enough, otherwise (leaf, right). Locks are taken left-to-right.
        let (prev_weak, next) = {
            let data = leaf.0.data.read();
            (data.prev.clone(), data.next.clone())
        };
        let prev = prev_weak.upgrade().map(LeafHandle);

        let mut merge_into_left = |left: &LeafHandle<V>, victim: &LeafHandle<V>| -> bool {
            let mut left_guard = left.0.data.write();
            // Verify adjacency (the list may have changed before the mutex
            // was taken).
            match &left_guard.next {
                Some(next) if next.same(victim) => {}
                _ => return false,
            }
            let mut victim_guard = victim.0.data.write();
            if left_guard.leaf.len() + victim_guard.leaf.len() >= self.config.merge_size {
                return false;
            }
            left.set_expected_version(version + 1);
            victim.set_expected_version(version + 1);
            // Move the items and unlink the victim.
            let victim_leaf = std::mem::replace(
                &mut victim_guard.leaf,
                LeafNode::new(Vec::new(), Vec::new()),
            );
            let victim_table_key = victim_leaf.table_key().to_vec();
            left_guard.leaf.absorb(victim_leaf);
            let right = victim_guard.next.clone();
            left_guard.next = right.clone();
            if let Some(right) = &right {
                // Lock ordering: left < victim < right.
                right.0.data.write().prev = left.downgrade();
            }
            drop(victim_guard);
            drop(left_guard);

            let mut spare = writer_spare(&mut writer);
            spare
                .table
                .apply_merge(&victim_table_key, victim, left, right.as_ref());
            spare.version = version + 1;
            let old_table = self.current.swap(Box::into_raw(spare), Ordering::AcqRel);
            self.qsbr.synchronize();
            // SAFETY: grace period elapsed; the old table is exclusively ours.
            let mut old_table = unsafe { Box::from_raw(old_table) };
            old_table
                .table
                .apply_merge(&victim_table_key, victim, left, right.as_ref());
            old_table.version = version + 1;
            writer.spare = Some(old_table);
            true
        };

        fn writer_spare<V>(writer: &mut WriterState<V>) -> Box<VersionedMeta<V>> {
            writer.spare.take().expect("spare table present")
        }

        // Try merging this leaf into its left neighbour first, then absorbing
        // the right neighbour, mirroring Algorithm 2.
        if let Some(prev) = prev {
            if merge_into_left(&prev, &leaf) {
                return;
            }
        }
        if let Some(next) = next {
            let _ = merge_into_left(&leaf, &next);
        }
    }

    /// Memory accounting (Figure 16).
    pub fn stats(&self) -> IndexStats {
        let mut stats = IndexStats {
            keys: self.len.load(Ordering::Relaxed),
            key_bytes: self.key_bytes.load(Ordering::Relaxed),
            value_bytes: self.len.load(Ordering::Relaxed) * std::mem::size_of::<V>(),
            structure_bytes: 0,
        };
        // Meta structure: both tables.
        {
            let writer = self.writer.lock();
            // SAFETY: holding the writer mutex pins the published table.
            let current = unsafe { &*self.current.load(Ordering::Acquire) };
            stats.structure_bytes += current.table.structure_bytes();
            if let Some(spare) = &writer.spare {
                stats.structure_bytes += spare.table.structure_bytes();
            }
        }
        let mut cur = Some(self.head.clone());
        while let Some(leaf) = cur {
            let data = leaf.0.data.read();
            stats.structure_bytes +=
                data.leaf.structure_bytes() + std::mem::size_of::<LeafShared<V>>();
            cur = data.next.clone();
        }
        stats
    }

    /// Walks the LeafList and validates structural invariants (tests only).
    pub fn check_invariants(&self) {
        let mut cur = Some(self.head.clone());
        let mut prev_anchor: Option<Vec<u8>> = None;
        let mut total = 0usize;
        while let Some(leaf) = cur {
            let data = leaf.0.data.read();
            let anchor = data.leaf.anchor().to_vec();
            if let Some(prev) = &prev_anchor {
                assert!(prev < &anchor, "anchors out of order");
            }
            total += data.leaf.len();
            prev_anchor = Some(anchor);
            cur = data.next.clone();
        }
        assert_eq!(
            total,
            self.len.load(Ordering::Relaxed),
            "key count mismatch"
        );
    }
}

impl<V: Clone + Send + Sync> ConcurrentOrderedIndex<V> for Wormhole<V> {
    fn name(&self) -> &'static str {
        "wormhole"
    }

    fn get(&self, key: &[u8]) -> Option<V> {
        let hash = crc32c(key);
        self.with_leaf_read(key, |leaf| leaf.get(key, hash, &self.config).cloned())
    }

    fn set(&self, key: &[u8], value: V) -> Option<V> {
        let hash = crc32c(key);
        let mut pending = Some(value);
        enum FastPath<V> {
            Replaced(V),
            Inserted,
            NeedsSplit,
        }
        let outcome = self.with_leaf_write(key, |data| {
            if let Some(slot) = data.leaf.get_mut(key, hash, &self.config) {
                return FastPath::Replaced(std::mem::replace(
                    slot,
                    pending.take().expect("value present"),
                ));
            }
            if data.leaf.len() < self.config.leaf_capacity {
                let old = data.leaf.insert(
                    key,
                    hash,
                    pending.take().expect("value present"),
                    &self.config,
                );
                debug_assert!(old.is_none());
                return FastPath::Inserted;
            }
            FastPath::NeedsSplit
        });
        match outcome {
            FastPath::Replaced(old) => Some(old),
            FastPath::Inserted => {
                self.len.fetch_add(1, Ordering::Relaxed);
                self.key_bytes.fetch_add(key.len(), Ordering::Relaxed);
                None
            }
            FastPath::NeedsSplit => {
                self.insert_with_split(key, hash, pending.take().expect("value present"))
            }
        }
    }

    fn del(&self, key: &[u8]) -> Option<V> {
        let hash = crc32c(key);
        let (removed, leaf_len) = self.with_leaf_write(key, |data| {
            let removed = data.leaf.remove(key, hash, &self.config);
            (removed, data.leaf.len())
        });
        let removed = removed?;
        self.len.fetch_sub(1, Ordering::Relaxed);
        self.key_bytes.fetch_sub(key.len(), Ordering::Relaxed);
        // A shrunken leaf may be mergeable; the full Algorithm-2 test runs
        // under the writer mutex with both neighbours locked.
        if leaf_len < self.config.merge_size {
            self.try_merge(key);
        }
        Some(removed)
    }

    fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    fn range_from(&self, start: &[u8], count: usize) -> Vec<(Vec<u8>, V)> {
        let mut out: Vec<(Vec<u8>, V)> = Vec::with_capacity(count.min(1024));
        if count == 0 {
            return out;
        }
        // The scan restarts from the last delivered key whenever it reaches a
        // leaf that has been split or merged since the scan's table snapshot.
        // The resume key and the per-leaf copy scratch are reused across
        // leaves and restarts rather than re-allocated for each.
        let mut resume_from: Vec<u8> = Vec::new();
        resume_from.extend_from_slice(start);
        let mut scratch: Vec<(Vec<u8>, V)> = Vec::new();
        'restart: loop {
            let (mut leaf, version) = self.locate(&resume_from);
            loop {
                let mut data = leaf.0.data.write();
                if leaf.expected_version() > version {
                    if let Some(last) = out.last() {
                        resume_from.clear();
                        resume_from.extend_from_slice(&last.0);
                    }
                    continue 'restart;
                }
                // Sort lazily inserted keys in place (incSort), then copy the
                // covered range out. One extra item is requested so that the
                // resume key itself (already delivered) can be skipped.
                data.leaf.ensure_key_sorted();
                let lower: &[u8] = if out.is_empty() { start } else { &resume_from };
                let remaining = (count - out.len()).saturating_add(1);
                scratch.clear();
                data.leaf.collect_range(lower, remaining, &mut scratch);
                for (k, v) in scratch.drain(..) {
                    // `resume_from` is the last key already delivered; skip it
                    // when the scan restarted on its leaf.
                    if !out.is_empty() && k.as_slice() <= resume_from.as_slice() {
                        continue;
                    }
                    if out.len() == count {
                        return out;
                    }
                    out.push((k, v));
                }
                if let Some(last) = out.last() {
                    resume_from.clear();
                    resume_from.extend_from_slice(&last.0);
                }
                let next = data.next.clone();
                drop(data);
                match next {
                    Some(next) if out.len() < count => leaf = next,
                    _ => return out,
                }
            }
        }
    }

    fn stats(&self) -> IndexStats {
        Wormhole::stats(self)
    }
}

impl<V> Drop for Wormhole<V> {
    fn drop(&mut self) {
        // SAFETY: `&mut self` guarantees no readers or writers remain; the
        // published table pointer is exclusively owned here.
        unsafe {
            drop(Box::from_raw(self.current.load(Ordering::Acquire)));
        }
        // Break the forward Arc chain iteratively to avoid deep recursive
        // drops on long leaf lists.
        let mut cur = self.head.0.data.write().next.take();
        while let Some(leaf) = cur {
            cur = leaf.0.data.write().next.take();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc as StdArc;
    use std::thread;

    fn small_config() -> WormholeConfig {
        WormholeConfig::optimized().with_leaf_capacity(8)
    }

    #[test]
    fn empty_index() {
        let wh: Wormhole<u64> = Wormhole::new();
        assert!(wh.is_empty());
        assert_eq!(wh.get(b"missing"), None);
        assert_eq!(wh.del(b"missing"), None);
        assert!(wh.range_from(b"", 10).is_empty());
        wh.check_invariants();
    }

    #[test]
    fn single_threaded_crud() {
        let wh = Wormhole::with_config(small_config());
        let names = [
            "Aaron", "Abbe", "Andrew", "Austin", "Denice", "Jacob", "James", "Jason", "John",
            "Joseph", "Julian", "Justin",
        ];
        for (i, name) in names.iter().enumerate() {
            assert_eq!(wh.set(name.as_bytes(), i as u64), None);
        }
        assert_eq!(wh.len(), 12);
        for (i, name) in names.iter().enumerate() {
            assert_eq!(wh.get(name.as_bytes()), Some(i as u64), "{name}");
        }
        assert_eq!(wh.set(b"James", 100), Some(6));
        assert_eq!(wh.del(b"James"), Some(100));
        assert_eq!(wh.get(b"James"), None);
        assert_eq!(wh.len(), 11);
        wh.check_invariants();
        let out = wh.range_from(b"Brown", 3);
        let keys: Vec<String> = out
            .iter()
            .map(|(k, _)| String::from_utf8(k.clone()).unwrap())
            .collect();
        assert_eq!(keys, vec!["Denice", "Jacob", "Jason"]);
    }

    #[test]
    fn splits_and_merges_single_thread() {
        let wh = Wormhole::with_config(small_config());
        for i in 0..2000u64 {
            wh.set(format!("{i:06}").as_bytes(), i);
        }
        assert_eq!(wh.len(), 2000);
        assert!(wh.leaf_count() > 50);
        wh.check_invariants();
        for i in 0..2000u64 {
            assert_eq!(wh.get(format!("{i:06}").as_bytes()), Some(i));
        }
        let scan = wh.range_from(b"", usize::MAX);
        assert_eq!(scan.len(), 2000);
        assert!(scan.windows(2).all(|w| w[0].0 < w[1].0));
        for i in 0..2000u64 {
            assert_eq!(wh.del(format!("{i:06}").as_bytes()), Some(i));
        }
        assert!(wh.is_empty());
        wh.check_invariants();
        assert!(wh.leaf_count() < 5, "leaves merge back as keys disappear");
    }

    #[test]
    fn matches_unsafe_variant() {
        use crate::single::WormholeUnsafe;
        use index_traits::OrderedIndex;
        let concurrent = Wormhole::with_config(small_config());
        let mut single = WormholeUnsafe::with_config(small_config());
        let keys: Vec<Vec<u8>> = (0..1500u32)
            .map(|i| format!("item{:05}-user{:04}", i * 7919 % 1500, i % 97).into_bytes())
            .collect();
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(concurrent.set(k, i as u64), single.set(k, i as u64), "{i}");
        }
        for k in &keys {
            assert_eq!(concurrent.get(k), single.get(k));
        }
        assert_eq!(
            concurrent.range_from(b"item00500", 200),
            single.range_from(b"item00500", 200)
        );
        for (i, k) in keys.iter().enumerate() {
            if i % 3 == 0 {
                assert_eq!(concurrent.del(k), single.del(k));
            }
        }
        assert_eq!(concurrent.len(), single.len());
        assert_eq!(
            concurrent.range_from(b"", usize::MAX),
            single.range_from(b"", usize::MAX)
        );
    }

    #[test]
    fn concurrent_readers_and_writers() {
        let wh = StdArc::new(Wormhole::with_config(
            WormholeConfig::optimized().with_leaf_capacity(16),
        ));
        // Preload.
        for i in 0..2000u64 {
            wh.set(format!("preload-{i:06}").as_bytes(), i);
        }
        let threads = 8;
        let per_thread = 1500u64;
        let mut handles = Vec::new();
        for t in 0..threads {
            let wh = StdArc::clone(&wh);
            handles.push(thread::spawn(move || {
                for i in 0..per_thread {
                    let key = format!("writer{t}-{i:06}");
                    wh.set(key.as_bytes(), i);
                    if i % 3 == 0 {
                        assert_eq!(wh.get(key.as_bytes()), Some(i));
                    }
                    if i % 7 == 0 {
                        // Point lookups on the preloaded range.
                        let probe = format!("preload-{:06}", (i * 13) % 2000);
                        assert!(wh.get(probe.as_bytes()).is_some());
                    }
                    if i % 101 == 0 {
                        let _ = wh.range_from(format!("writer{t}-").as_bytes(), 50);
                    }
                    if i % 11 == 0 {
                        wh.del(key.as_bytes());
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        wh.check_invariants();
        // Every surviving key must be readable.
        for t in 0..threads {
            for i in 0..per_thread {
                let key = format!("writer{t}-{i:06}");
                let expect = if i % 11 == 0 { None } else { Some(i) };
                assert_eq!(wh.get(key.as_bytes()), expect, "{key}");
            }
        }
        assert_eq!(
            wh.len(),
            2000 + threads as usize * per_thread as usize
                - threads as usize * per_thread.div_ceil(11) as usize
        );
    }

    #[test]
    fn concurrent_range_scans_with_writers() {
        let wh = StdArc::new(Wormhole::with_config(small_config()));
        for i in 0..3000u64 {
            wh.set(format!("{i:08}").as_bytes(), i);
        }
        let stop = StdArc::new(std::sync::atomic::AtomicBool::new(false));
        let mut handles = Vec::new();
        // Two writers keep splitting and merging leaves.
        for w in 0..2 {
            let wh = StdArc::clone(&wh);
            let stop = StdArc::clone(&stop);
            handles.push(thread::spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let key = format!("writer{w}-{:06}", i % 500);
                    wh.set(key.as_bytes(), i);
                    wh.del(key.as_bytes());
                    i += 1;
                }
            }));
        }
        // Scanners verify that the preloaded keys always appear in order.
        for _ in 0..2 {
            let wh = StdArc::clone(&wh);
            handles.push(thread::spawn(move || {
                for _ in 0..30 {
                    let out = wh.range_from(b"00000100", 500);
                    assert_eq!(out.len(), 500);
                    assert!(out.windows(2).all(|w| w[0].0 < w[1].0), "scan out of order");
                    assert_eq!(out[0].0, b"00000100".to_vec());
                }
            }));
        }
        // Let the scanners finish, then stop the writers.
        for h in handles.drain(2..) {
            h.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }
        wh.check_invariants();
    }

    #[test]
    fn stats_are_populated() {
        let wh = Wormhole::new();
        for i in 0..500u64 {
            wh.set(format!("stat-key-{i:05}").as_bytes(), i);
        }
        let stats = Wormhole::stats(&wh);
        assert_eq!(stats.keys, 500);
        assert_eq!(stats.key_bytes, 500 * 14);
        assert!(stats.structure_bytes > 0);
    }
}
