//! The shared split/merge core engine.
//!
//! Both Wormhole variants — the single-threaded
//! [`WormholeUnsafe`](crate::single::WormholeUnsafe) and the concurrent
//! [`Wormhole`](crate::concurrent::Wormhole) — perform the same structural
//! work when a leaf overflows or underflows: pick a split point and form the
//! new anchor (§2.2 with the §3.3 fat-node relaxation), reserve the anchor's
//! table key, carve the leaf in two, decide merge eligibility (Algorithm 2),
//! and rewrite every affected MetaTrieHT item (Algorithm 4). This module
//! owns that logic in exactly one place; the variants keep only their
//! representation-specific halves (arena indices vs `Arc` handles, no
//! locking vs leaf seqlocks plus the T2-then-T1 double-table protocol) and
//! consume the core's outputs:
//!
//! * [`prepare_split`] — split-point selection ([`choose_split_point`]),
//!   anchor formation, anchor table-key reservation, and the leaf-level
//!   carve ([`LeafNode::split_off`]);
//! * [`split_plan`] / [`merge_plan`] — declarative
//!   [`crate::meta::MetaPlan`]s listing the MetaTrieHT item
//!   writes, executed with [`MetaTable::apply_plan`] once per table;
//! * [`merge_eligible`] — Algorithm 2's `MergeSize` test.

use crate::config::WormholeConfig;
use crate::leaf::{LeafGarbage, LeafNode};
use crate::meta::{LeafRef, MetaPlan, MetaTable};

/// Chooses a split position and the new right sibling's logical anchor.
///
/// Implements the anchor-formation rule of §2.2 with the §3.3 relaxation:
/// starting from the middle, find an adjacent pair `(i-1, i)` such that the
/// candidate anchor (common prefix plus one byte) does not end in a zero
/// byte (ending in the smallest token would make the anchor ambiguous
/// against anchors that only differ by trailing ⊥ tokens). Returns `None`
/// when no valid split point exists — the caller keeps the leaf as a
/// *fat node*.
pub fn choose_split_point<V>(leaf: &mut LeafNode<V>) -> Option<(usize, Vec<u8>)> {
    leaf.ensure_key_sorted();
    let n = leaf.len();
    if n < 2 {
        return None;
    }
    let candidate_at = |i: usize| -> Option<Vec<u8>> {
        let prev = leaf.key_at(i - 1);
        let next = leaf.key_at(i);
        let cpl = index_traits::common_prefix_len(prev, next);
        debug_assert!(cpl < next.len(), "adjacent keys must differ");
        let last = next[cpl];
        if last == 0 {
            // Splitting here would create an anchor that ends in the
            // smallest token; see §3.3 (fat nodes).
            return None;
        }
        Some(next[..=cpl].to_vec())
    };
    // Try the middle first, then walk outwards (the paper: "Try another i
    // in range [1, size-1]").
    let mid = n / 2;
    for delta in 0..n {
        for i in [mid.wrapping_sub(delta), mid + delta] {
            if (1..n).contains(&i) {
                if let Some(anchor) = candidate_at(i) {
                    return Some((i, anchor));
                }
            }
        }
    }
    None
}

/// The representation-independent outcome of the leaf-level half of a split.
#[derive(Debug)]
pub struct PreparedSplit<V> {
    /// The new right sibling's logical anchor.
    pub anchor: Vec<u8>,
    /// The anchor as reserved in the MetaTrieHT (may carry appended ⊥
    /// tokens to satisfy the prefix condition).
    pub table_key: Vec<u8>,
    /// The carved-off right half; the caller links it into its leaf list and
    /// registers it through [`split_plan`].
    pub right: LeafNode<V>,
}

/// Performs the representation-independent half of a split: selects the
/// split point, forms the anchor, reserves its table key against `table`,
/// and carves `leaf` in two. Returns `None` when no valid anchor exists —
/// the leaf stays whole and grows past the nominal capacity (§3.3).
pub fn prepare_split<V, L: LeafRef>(
    leaf: &mut LeafNode<V>,
    table: &MetaTable<L>,
    bin: &mut LeafGarbage<V>,
) -> Option<PreparedSplit<V>> {
    leaf.ensure_key_sorted_retiring(bin);
    let (at, anchor) = choose_split_point(leaf)?;
    let table_key = table.reserve_anchor_key(&anchor);
    let right = leaf.split_off_retiring(at, anchor.clone(), table_key.clone(), bin);
    Some(PreparedSplit {
        anchor,
        table_key,
        right,
    })
}

/// Computes the meta-update plan for a split prepared by [`prepare_split`]
/// (Algorithm 4, split half). `table` must be the table the plan will be
/// applied to — or, for the concurrent index, its exact logical copy.
pub fn split_plan<L: LeafRef>(
    table: &MetaTable<L>,
    table_key: &[u8],
    new_leaf: L,
    split_leaf: &L,
    old_right: Option<&L>,
) -> MetaPlan<L> {
    table.plan_split(table_key, new_leaf, split_leaf, old_right)
}

/// Computes the meta-update plan for merging `victim` into `victim_left`
/// (Algorithm 4, merge half).
pub fn merge_plan<L: LeafRef>(
    table: &MetaTable<L>,
    victim_table_key: &[u8],
    victim: &L,
    victim_left: &L,
    victim_right: Option<&L>,
) -> MetaPlan<L> {
    table.plan_merge(victim_table_key, victim, victim_left, victim_right)
}

/// Algorithm 2's merge test: two adjacent leaves merge when their combined
/// size has dropped below `MergeSize`.
pub fn merge_eligible(left_len: usize, victim_len: usize, config: &WormholeConfig) -> bool {
    left_len + victim_len < config.merge_size
}

#[cfg(test)]
mod tests {
    use super::*;
    use wh_hash::crc32c;

    fn cfg() -> WormholeConfig {
        WormholeConfig::optimized().with_leaf_capacity(16)
    }

    fn insert(leaf: &mut LeafNode<u64>, key: &[u8], value: u64, config: &WormholeConfig) {
        leaf.insert(key, crc32c(key), value, config);
    }

    #[test]
    fn choose_split_prefers_middle_and_short_anchor() {
        let config = cfg();
        let mut leaf = LeafNode::new(Vec::new(), Vec::new());
        let names = [
            "Aaron", "Abbe", "Andrew", "Austin", "Denice", "Jacob", "James", "Jason",
        ];
        for n in names {
            insert(&mut leaf, n.as_bytes(), 0, &config);
        }
        let (at, anchor) = choose_split_point(&mut leaf).expect("split point");
        assert_eq!(at, 4);
        // Keys sorted: Aaron Abbe Andrew Austin | Denice Jacob James Jason.
        // Common prefix of "Austin" and "Denice" is empty -> anchor "D".
        assert_eq!(anchor, b"D".to_vec());
    }

    #[test]
    fn choose_split_skips_zero_terminated_candidates() {
        let config = cfg();
        let mut leaf = LeafNode::new(Vec::new(), Vec::new());
        // Keys crafted so the middle candidate would end in a zero byte.
        let keys: Vec<Vec<u8>> = vec![
            vec![1],
            vec![1, 0],
            vec![1, 0, 0],
            vec![1, 0, 0, 0],
            vec![1, 1],
            vec![1, 1, 1],
        ];
        for (i, k) in keys.iter().enumerate() {
            insert(&mut leaf, k, i as u64, &config);
        }
        let (at, anchor) = choose_split_point(&mut leaf).expect("the 1/11 boundary is splittable");
        assert_eq!(anchor, vec![1, 1]);
        assert_eq!(at, 4);
    }

    #[test]
    fn choose_split_returns_none_for_fat_node_keyset() {
        let config = cfg();
        let mut leaf = LeafNode::new(Vec::new(), Vec::new());
        // Every adjacent pair differs only by trailing zero bytes: no valid
        // split position exists (§3.3's fat-node example).
        let keys: Vec<Vec<u8>> = vec![vec![1], vec![1, 0], vec![1, 0, 0], vec![1, 0, 0, 0]];
        for (i, k) in keys.iter().enumerate() {
            insert(&mut leaf, k, i as u64, &config);
        }
        assert!(choose_split_point(&mut leaf).is_none());
    }

    #[test]
    fn prepare_split_reserves_extended_table_key() {
        // When the chosen anchor collides with an existing table item, the
        // reserved table key carries appended ⊥ tokens while the logical
        // anchor does not.
        let mut table: MetaTable<u32> = MetaTable::new();
        table.install_root_leaf(1);
        let key = table.reserve_anchor_key(b"Jo");
        table.apply_split(&key, 2, &1, None);

        let config = cfg();
        let mut leaf = LeafNode::new(Vec::new(), Vec::new());
        for k in ["Joa", "Job", "Joc", "Jod"] {
            insert(&mut leaf, k.as_bytes(), 0, &config);
        }
        let prepared =
            prepare_split(&mut leaf, &table, &mut LeafGarbage::immediate()).expect("splittable");
        assert_eq!(prepared.anchor, b"Joc".to_vec());
        assert_eq!(prepared.table_key, b"Joc".to_vec());
        assert_eq!(prepared.right.anchor(), b"Joc");
        assert_eq!(prepared.right.table_key(), b"Joc");
        assert_eq!(leaf.len() + prepared.right.len(), 4);
    }

    #[test]
    fn merge_eligibility_uses_merge_size() {
        let config = WormholeConfig::optimized().with_leaf_capacity(16);
        assert!(merge_eligible(3, 4, &config));
        assert!(!merge_eligible(4, 4, &config));
        assert!(!merge_eligible(16, 0, &config));
    }
}
