//! The thread-unsafe Wormhole index (the paper's "Wormhole-unsafe" variant).
//!
//! This variant contains the complete core data structure — LeafList plus
//! MetaTrieHT — without any concurrency control, exactly like the
//! configuration measured in Figure 9's `Wormhole-unsafe` series. It is also
//! the reference implementation that the concurrent variant's behaviour is
//! tested against.
//!
//! # Plan-based structural updates
//!
//! This module holds none of the split/merge logic itself. When a leaf
//! overflows, [`crate::core::prepare_split`] selects the split point, forms
//! the anchor, and carves the leaf; [`crate::core::split_plan`] then
//! computes the MetaTrieHT item writes as a declarative
//! [`MetaPlan`](crate::meta::MetaPlan), which is applied to the single
//! table with [`MetaTable::apply_plan`]. Merges mirror this with
//! [`crate::core::merge_eligible`] and [`crate::core::merge_plan`]. The
//! only work left here is representation-specific: the `u32` arena slots
//! and their prev/next links. The concurrent variant consumes the exact
//! same core API, applying each plan to its two tables in turn.

use index_traits::{Cursor, CursorSource, IndexStats, OrderedIndex, ScanBatch};
use wh_hash::crc32c;

use crate::config::WormholeConfig;
use crate::core;
use crate::leaf::{LeafGarbage, LeafNode};
use crate::meta::{MetaTable, TargetOutcome, BATCH_WINDOW};
use crate::prefetch::prefetch_read;

/// Null leaf-list link.
const NIL: u32 = u32::MAX;

/// A leaf plus its doubly-linked LeafList neighbours.
struct SlotLeaf<V> {
    leaf: LeafNode<V>,
    prev: u32,
    next: u32,
}

/// The single-threaded Wormhole ordered index.
pub struct WormholeUnsafe<V> {
    config: WormholeConfig,
    meta: MetaTable<u32>,
    leaves: Vec<Option<SlotLeaf<V>>>,
    free: Vec<u32>,
    /// Leftmost leaf of the LeafList.
    head: u32,
    len: usize,
    key_bytes: usize,
}

impl<V: Clone> Default for WormholeUnsafe<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: Clone> WormholeUnsafe<V> {
    /// Creates an empty index with the default (fully optimised) configuration.
    pub fn new() -> Self {
        Self::with_config(WormholeConfig::default())
    }

    /// Creates an empty index with an explicit configuration.
    pub fn with_config(config: WormholeConfig) -> Self {
        let mut meta = MetaTable::new();
        // The initial LeafList is a single leaf whose anchor is ⊥ (the empty
        // string); it covers the whole key space.
        let root = LeafNode::new(Vec::new(), Vec::new());
        let leaves = vec![Some(SlotLeaf {
            leaf: root,
            prev: NIL,
            next: NIL,
        })];
        meta.install_root_leaf(0);
        Self {
            config,
            meta,
            leaves,
            free: Vec::new(),
            head: 0,
            len: 0,
            key_bytes: 0,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &WormholeConfig {
        &self.config
    }

    /// Number of leaf nodes currently on the LeafList.
    pub fn leaf_count(&self) -> usize {
        self.leaves.iter().flatten().count()
    }

    /// Number of items (anchors and prefixes) in the MetaTrieHT.
    pub fn meta_items(&self) -> usize {
        self.meta.len()
    }

    /// Read access to the MetaTrieHT (benchmarks and tests).
    pub fn meta_table(&self) -> &MetaTable<u32> {
        &self.meta
    }

    fn slot(&self, idx: u32) -> &SlotLeaf<V> {
        self.leaves[idx as usize].as_ref().expect("live leaf")
    }

    fn slot_mut(&mut self, idx: u32) -> &mut SlotLeaf<V> {
        self.leaves[idx as usize].as_mut().expect("live leaf")
    }

    fn alloc_leaf(&mut self, slot: SlotLeaf<V>) -> u32 {
        if let Some(idx) = self.free.pop() {
            self.leaves[idx as usize] = Some(slot);
            idx
        } else {
            self.leaves.push(Some(slot));
            (self.leaves.len() - 1) as u32
        }
    }

    /// Resolves the search outcome of the MetaTrieHT to the target leaf
    /// (the final leaf-list adjustment of Algorithm 3).
    fn locate_leaf(&self, key: &[u8]) -> u32 {
        self.resolve_outcome(self.meta.search_target(key, &self.config), key)
    }

    /// The leaf-list adjustment shared by the per-key and batched searches.
    fn resolve_outcome(&self, outcome: TargetOutcome<u32>, key: &[u8]) -> u32 {
        match outcome {
            TargetOutcome::Target(leaf) => leaf,
            TargetOutcome::LeftOf(leaf) => {
                let prev = self.slot(leaf).prev;
                if prev == NIL {
                    leaf
                } else {
                    prev
                }
            }
            TargetOutcome::CompareAnchor(leaf) => {
                let slot = self.slot(leaf);
                if key < slot.leaf.anchor() && slot.prev != NIL {
                    slot.prev
                } else {
                    leaf
                }
            }
        }
    }

    /// Splits the leaf `idx` if a valid split point exists. Returns `true`
    /// when a split happened. All split logic lives in [`crate::core`]; this
    /// method only wires the new leaf into the arena and applies the plan.
    fn split_leaf(&mut self, idx: u32) -> bool {
        let slot = self.leaves[idx as usize].as_mut().expect("live leaf");
        // No concurrent readers exist: retired blocks drop immediately.
        let Some(prepared) =
            core::prepare_split(&mut slot.leaf, &self.meta, &mut LeafGarbage::immediate())
        else {
            // No valid anchor can be formed: the leaf becomes a fat node
            // (§3.3) and simply grows past the nominal capacity.
            return false;
        };
        let old_next = slot.next;
        let new_idx = self.alloc_leaf(SlotLeaf {
            leaf: prepared.right,
            prev: idx,
            next: old_next,
        });
        self.slot_mut(idx).next = new_idx;
        if old_next != NIL {
            self.slot_mut(old_next).prev = new_idx;
        }
        let old_right = (old_next != NIL).then_some(old_next);
        let plan = core::split_plan(
            &self.meta,
            &prepared.table_key,
            new_idx,
            &idx,
            old_right.as_ref(),
        );
        self.meta.apply_plan(&plan);
        for (leaf, new_table_key) in plan.relocations {
            self.slot_mut(leaf).leaf.set_table_key(new_table_key);
        }
        true
    }

    /// Merges the leaf `victim` into its left neighbour `left`, applying the
    /// core engine's merge plan to the single table.
    fn merge_leaves(&mut self, left: u32, victim: u32) {
        debug_assert_eq!(self.slot(left).next, victim);
        let victim_slot = self.leaves[victim as usize].take().expect("live leaf");
        self.free.push(victim);
        let right = victim_slot.next;
        self.slot_mut(left).next = right;
        if right != NIL {
            self.slot_mut(right).prev = left;
        }
        let right_opt = (right != NIL).then_some(right);
        let plan = core::merge_plan(
            &self.meta,
            victim_slot.leaf.table_key(),
            &victim,
            &left,
            right_opt.as_ref(),
        );
        self.meta.apply_plan(&plan);
        self.slot_mut(left).leaf.absorb(victim_slot.leaf);
    }

    /// Walks the LeafList validating every structural invariant. Panics on
    /// the first violation; intended for tests and debugging.
    pub fn check_invariants(&self) {
        let mut idx = self.head;
        let mut prev = NIL;
        let mut prev_anchor: Option<Vec<u8>> = None;
        let mut seen_keys = 0usize;
        let mut seen_leaves = 0usize;
        while idx != NIL {
            let slot = self.slot(idx);
            assert_eq!(slot.prev, prev, "broken prev link at leaf {idx}");
            let anchor = slot.leaf.anchor().to_vec();
            if let Some(prev_anchor) = &prev_anchor {
                assert!(
                    prev_anchor < &anchor,
                    "anchors out of order: {prev_anchor:?} !< {anchor:?}"
                );
            }
            // Every key in the leaf is >= its anchor.
            let mut leaf_clone = slot.leaf.clone();
            leaf_clone.ensure_key_sorted();
            for kv in leaf_clone.iter_key_order() {
                assert!(
                    kv.key.as_ref() >= anchor.as_slice(),
                    "key below anchor in leaf {idx}"
                );
            }
            // The meta table registers this leaf under its table key.
            match &self.meta.get(slot.leaf.table_key()).map(|i| &i.kind) {
                Some(crate::meta::MetaKind::Leaf(l)) => assert_eq!(*l, idx),
                other => panic!("leaf {idx} not registered correctly: {other:?}"),
            }
            seen_keys += slot.leaf.len();
            seen_leaves += 1;
            prev_anchor = Some(anchor);
            prev = idx;
            idx = slot.next;
        }
        assert_eq!(seen_keys, self.len, "key count mismatch");
        assert_eq!(seen_leaves, self.leaf_count(), "leaf count mismatch");
    }
}

/// Batch-per-leaf [`CursorSource`] over the single-threaded index.
///
/// The cursor's `&'a` borrow freezes the structure (no splits or merges can
/// run while it is alive), so the source simply walks the LeafList by slot
/// index: one leaf per batch (or less, when the consumer's window budget
/// caps it), the lower bound applied to the first leaf of each run. Each
/// leaf's lazily-sorted tail is merged on the fly through one reusable
/// index buffer, so steady-state batch advancement allocates nothing. To
/// interleave writes with a scan, drop the cursor and reopen at
/// [`Cursor::resume_key`].
struct UnsafeScanSource<'a, V> {
    wh: &'a WormholeUnsafe<V>,
    /// Next leaf to stream, [`NIL`] when exhausted.
    next: u32,
    /// Lower bound applied to the next streamed leaf (the scan start, or
    /// the resume point of a budget-truncated batch); cleared otherwise.
    lower: Vec<u8>,
    /// Reusable index buffer for the lazy-tail merge.
    scratch: Vec<u16>,
}

impl<V: Clone> CursorSource<V> for UnsafeScanSource<'_, V> {
    fn fill_next(&mut self, batch: &mut ScanBatch<V>, limit: usize) -> bool {
        let limit = limit.max(1);
        batch.clear();
        while self.next != NIL && batch.is_empty() {
            let slot = self.wh.slot(self.next);
            let appended =
                slot.leaf
                    .collect_leaf_unsorted(&self.lower, limit, batch, &mut self.scratch);
            if appended == limit {
                // Possibly truncated mid-leaf by the window budget: stay on
                // this leaf and resume just past the last streamed key.
                index_traits::immediate_successor_into(
                    batch.last_key().expect("truncated batch holds pairs"),
                    &mut self.lower,
                );
            } else {
                self.lower.clear();
                self.next = slot.next;
            }
        }
        !batch.is_empty()
    }

    fn reserve(&mut self, items: usize, _key_bytes: usize) {
        self.scratch.reserve(items);
    }
}

impl<V: Clone> OrderedIndex<V> for WormholeUnsafe<V> {
    fn name(&self) -> &'static str {
        "wormhole-unsafe"
    }

    fn get(&self, key: &[u8]) -> Option<V> {
        let hash = crc32c(key);
        let leaf = self.locate_leaf(key);
        self.slot(leaf).leaf.get(key, hash, &self.config).cloned()
    }

    fn get_batch(&self, keys: &[&[u8]]) -> Vec<Option<V>> {
        // The pipelined batch path: per window, run the meta searches with
        // their cache misses overlapped, prefetch every resolved leaf slot,
        // then execute the leaf probes. The only allocation is the result
        // vector itself; all per-probe scratch is on the stack.
        let mut out = Vec::with_capacity(keys.len());
        let mut outcomes: [Option<TargetOutcome<u32>>; BATCH_WINDOW] =
            [const { None }; BATCH_WINDOW];
        let mut leaves = [0u32; BATCH_WINDOW];
        for chunk in keys.chunks(BATCH_WINDOW) {
            self.meta
                .search_targets_window(chunk, &self.config, &mut outcomes);
            for (i, key) in chunk.iter().enumerate() {
                let outcome = outcomes[i].take().expect("window filled");
                let leaf = self.resolve_outcome(outcome, key);
                leaves[i] = leaf;
                prefetch_read(&self.leaves[leaf as usize] as *const Option<SlotLeaf<V>>);
            }
            for (i, key) in chunk.iter().enumerate() {
                let hash = crc32c(key);
                out.push(
                    self.slot(leaves[i])
                        .leaf
                        .get(key, hash, &self.config)
                        .cloned(),
                );
            }
        }
        out
    }

    fn set(&mut self, key: &[u8], value: V) -> Option<V> {
        let hash = crc32c(key);
        let mut leaf_idx = self.locate_leaf(key);
        let config = self.config;
        // Fast path: overwrite an existing key in place.
        if let Some(slot) = self.slot_mut(leaf_idx).leaf.get_mut(key, hash, &config) {
            return Some(std::mem::replace(slot, value));
        }
        // Split first when the leaf is full (Algorithm 2, SET).
        if self.slot(leaf_idx).leaf.len() >= self.config.leaf_capacity && self.split_leaf(leaf_idx)
        {
            let right = self.slot(leaf_idx).next;
            debug_assert_ne!(right, NIL);
            if key >= self.slot(right).leaf.anchor() {
                leaf_idx = right;
            }
        }
        let old = self
            .slot_mut(leaf_idx)
            .leaf
            .insert(key, hash, value, &config);
        debug_assert!(old.is_none());
        self.len += 1;
        self.key_bytes += key.len();
        None
    }

    fn del(&mut self, key: &[u8]) -> Option<V> {
        let hash = crc32c(key);
        let config = self.config;
        let leaf_idx = self.locate_leaf(key);
        let removed = self.slot_mut(leaf_idx).leaf.remove(key, hash, &config)?;
        self.len -= 1;
        self.key_bytes -= key.len();
        // Merge with a neighbour when the combined size has dropped below
        // MergeSize (Algorithm 2, DEL).
        let size = self.slot(leaf_idx).leaf.len();
        let left = self.slot(leaf_idx).prev;
        let right = self.slot(leaf_idx).next;
        if left != NIL && core::merge_eligible(self.slot(left).leaf.len(), size, &self.config) {
            self.merge_leaves(left, leaf_idx);
        } else if right != NIL
            && core::merge_eligible(size, self.slot(right).leaf.len(), &self.config)
        {
            self.merge_leaves(leaf_idx, right);
        }
        Some(removed)
    }

    fn len(&self) -> usize {
        self.len
    }

    fn range_from(&self, start: &[u8], count: usize) -> Vec<(Vec<u8>, V)> {
        // A thin materialising wrapper over the streaming cursor.
        let mut out = Vec::with_capacity(count.min(1024));
        if count == 0 {
            return out;
        }
        self.scan(start).collect_next(count, &mut out);
        out
    }

    fn scan<'a>(&'a self, start: &[u8]) -> Cursor<'a, V>
    where
        V: Clone + 'a,
    {
        Cursor::new(
            start,
            Box::new(UnsafeScanSource {
                wh: self,
                next: self.locate_leaf(start),
                lower: start.to_vec(),
                scratch: Vec::new(),
            }),
        )
    }

    fn stats(&self) -> IndexStats {
        let mut stats = IndexStats {
            keys: self.len,
            key_bytes: self.key_bytes,
            value_bytes: self.len * std::mem::size_of::<V>(),
            structure_bytes: self.meta.structure_bytes(),
        };
        for slot in self.leaves.iter().flatten() {
            stats.structure_bytes += slot.leaf.structure_bytes() + 2 * std::mem::size_of::<u32>();
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    fn small_config() -> WormholeConfig {
        WormholeConfig::optimized().with_leaf_capacity(8)
    }

    #[test]
    fn empty_index() {
        let mut wh: WormholeUnsafe<u64> = WormholeUnsafe::new();
        assert!(wh.is_empty());
        assert_eq!(wh.get(b"missing"), None);
        assert_eq!(wh.del(b"missing"), None);
        assert!(wh.range_from(b"", 10).is_empty());
        assert_eq!(wh.leaf_count(), 1);
        wh.check_invariants();
    }

    #[test]
    fn paper_example_with_splits() {
        let names = [
            "Aaron", "Abbe", "Andrew", "Austin", "Denice", "Jacob", "James", "Jason", "John",
            "Joseph", "Julian", "Justin",
        ];
        let mut wh = WormholeUnsafe::with_config(WormholeConfig::optimized().with_leaf_capacity(4));
        for (i, name) in names.iter().enumerate() {
            wh.set(name.as_bytes(), i as u64);
            wh.check_invariants();
        }
        assert_eq!(wh.len(), 12);
        assert!(wh.leaf_count() >= 3, "capacity 4 with 12 keys must split");
        for (i, name) in names.iter().enumerate() {
            assert_eq!(wh.get(name.as_bytes()), Some(i as u64), "{name}");
        }
        // Lookups of absent keys from the paper's Figure 4 narrative.
        assert_eq!(wh.get(b"A"), None);
        assert_eq!(wh.get(b"Brown"), None);
        assert_eq!(wh.get(b"Zoe"), None);
        // Range query starting at an absent key.
        let out = wh.range_from(b"Brown", 3);
        let keys: Vec<String> = out
            .iter()
            .map(|(k, _)| String::from_utf8(k.clone()).unwrap())
            .collect();
        assert_eq!(keys, vec!["Denice", "Jacob", "James"]);
        // Prefix-style range query.
        let out = wh.range_from(b"J", 100);
        assert_eq!(out.len(), 7);
        assert_eq!(out[0].0, b"Jacob".to_vec());
        assert_eq!(out[6].0, b"Justin".to_vec());
    }

    #[test]
    fn overwrite_returns_previous_value() {
        let mut wh = WormholeUnsafe::with_config(small_config());
        assert_eq!(wh.set(b"key", 1u64), None);
        assert_eq!(wh.set(b"key", 2), Some(1));
        assert_eq!(wh.len(), 1);
        assert_eq!(wh.get(b"key"), Some(2));
    }

    #[test]
    fn thousands_of_sequential_keys() {
        let mut wh =
            WormholeUnsafe::with_config(WormholeConfig::optimized().with_leaf_capacity(16));
        for i in 0..5000u64 {
            wh.set(format!("{i:08}").as_bytes(), i);
        }
        wh.check_invariants();
        assert_eq!(wh.len(), 5000);
        assert!(wh.leaf_count() > 100);
        for i in (0..5000u64).step_by(97) {
            assert_eq!(wh.get(format!("{i:08}").as_bytes()), Some(i));
        }
        let scan = wh.range_from(b"", usize::MAX);
        assert_eq!(scan.len(), 5000);
        for (i, (k, v)) in scan.iter().enumerate() {
            assert_eq!(k, format!("{i:08}").as_bytes());
            assert_eq!(*v, i as u64);
        }
    }

    #[test]
    fn random_insert_delete_cycles() {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(42);
        let mut wh = WormholeUnsafe::with_config(small_config());
        let mut keys: Vec<String> = (0..2000)
            .map(|i| format!("user:{:06}:profile", i * 37 % 2000))
            .collect();
        keys.shuffle(&mut rng);
        for (i, k) in keys.iter().enumerate() {
            wh.set(k.as_bytes(), i as u64);
        }
        wh.check_invariants();
        assert_eq!(wh.len(), 2000);
        // Delete half of them in a different order.
        keys.shuffle(&mut rng);
        for k in keys.iter().take(1000) {
            assert!(wh.del(k.as_bytes()).is_some(), "{k}");
        }
        wh.check_invariants();
        assert_eq!(wh.len(), 1000);
        for k in keys.iter().take(1000) {
            assert_eq!(wh.get(k.as_bytes()), None);
        }
        for k in keys.iter().skip(1000) {
            assert!(wh.get(k.as_bytes()).is_some(), "{k}");
        }
    }

    #[test]
    fn delete_everything_collapses_to_one_leaf() {
        let mut wh = WormholeUnsafe::with_config(small_config());
        for i in 0..500u64 {
            wh.set(format!("k{i:04}").as_bytes(), i);
        }
        assert!(wh.leaf_count() > 10);
        for i in 0..500u64 {
            assert_eq!(wh.del(format!("k{i:04}").as_bytes()), Some(i));
        }
        wh.check_invariants();
        assert!(wh.is_empty());
        assert_eq!(wh.leaf_count(), 1, "all leaves merge back into the head");
        // The index remains fully usable.
        wh.set(b"rebirth", 7);
        assert_eq!(wh.get(b"rebirth"), Some(7));
    }

    #[test]
    fn binary_keys_with_zero_bytes_and_prefix_keys() {
        let mut wh = WormholeUnsafe::with_config(WormholeConfig::optimized().with_leaf_capacity(4));
        let keys: Vec<Vec<u8>> = vec![
            vec![],
            vec![0],
            vec![0, 0],
            vec![0, 0, 1],
            vec![1],
            vec![1, 0],
            vec![1, 0, 0],
            vec![1, 0, 0, 0],
            vec![1, 1],
            vec![1, 1, 1],
            vec![2, 0, 2],
            vec![255, 255],
        ];
        for (i, k) in keys.iter().enumerate() {
            wh.set(k, i as u64);
            wh.check_invariants();
        }
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(wh.get(k), Some(i as u64), "{k:?}");
        }
        let scan: Vec<Vec<u8>> = wh
            .range_from(&[], usize::MAX)
            .into_iter()
            .map(|(k, _)| k)
            .collect();
        let mut expect = keys.clone();
        expect.sort();
        assert_eq!(scan, expect);
    }

    #[test]
    fn fat_node_keyset_never_splits_but_stays_correct() {
        // §3.3: keys sharing a prefix and differing only in trailing zero
        // bytes cannot produce a valid anchor; the leaf grows fat instead.
        let mut wh = WormholeUnsafe::with_config(WormholeConfig::optimized().with_leaf_capacity(4));
        let keys: Vec<Vec<u8>> = (0..16)
            .map(|i| {
                let mut k = vec![7u8];
                k.extend(std::iter::repeat_n(0u8, i));
                k
            })
            .collect();
        for (i, k) in keys.iter().enumerate() {
            wh.set(k, i as u64);
            wh.check_invariants();
        }
        assert_eq!(wh.leaf_count(), 1, "fat node must not split");
        assert_eq!(wh.len(), 16);
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(wh.get(k), Some(i as u64));
        }
    }

    #[test]
    fn all_optimization_configs_agree() {
        let keysets: Vec<Vec<u8>> = (0..600u32)
            .map(|i| format!("item{:05}-user{:03}", i * 7919 % 600, i % 50).into_bytes())
            .collect();
        let mut reference: Option<Vec<(Vec<u8>, u64)>> = None;
        for (name, config) in WormholeConfig::ablation_ladder() {
            let mut wh = WormholeUnsafe::with_config(config.with_leaf_capacity(16));
            for (i, k) in keysets.iter().enumerate() {
                wh.set(k, i as u64);
            }
            for (i, k) in keysets.iter().enumerate() {
                assert_eq!(wh.get(k), Some(i as u64), "{name}");
            }
            let scan = wh.range_from(b"", usize::MAX);
            match &reference {
                None => reference = Some(scan),
                Some(r) => assert_eq!(&scan, r, "{name} scan differs"),
            }
        }
    }

    #[test]
    fn stats_report_structure_and_keys() {
        let mut wh = WormholeUnsafe::new();
        for i in 0..1000u64 {
            wh.set(format!("key-number-{i:06}").as_bytes(), i);
        }
        let stats = wh.stats();
        assert_eq!(stats.keys, 1000);
        assert_eq!(stats.key_bytes, 1000 * 17);
        assert!(stats.structure_bytes > 0);
        assert!(stats.total_bytes() > stats.paper_baseline_bytes() / 2);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_matches_btreemap_model(ops in proptest::collection::vec(
            (proptest::collection::vec(any::<u8>(), 0..12), any::<u64>(), any::<bool>()), 1..400)) {
            let mut wh = WormholeUnsafe::with_config(WormholeConfig::optimized().with_leaf_capacity(6));
            let mut model: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
            for (key, value, is_delete) in ops {
                if is_delete {
                    prop_assert_eq!(wh.del(&key), model.remove(&key));
                } else {
                    prop_assert_eq!(wh.set(&key, value), model.insert(key.clone(), value));
                }
                prop_assert_eq!(wh.len(), model.len());
            }
            wh.check_invariants();
            for (k, v) in &model {
                prop_assert_eq!(wh.get(k), Some(*v));
            }
            let scan = wh.range_from(b"", usize::MAX);
            let expect: Vec<_> = model.iter().map(|(k, v)| (k.clone(), *v)).collect();
            prop_assert_eq!(scan, expect);
        }

        #[test]
        fn prop_range_from_matches_model(keys in proptest::collection::btree_set(
            proptest::collection::vec(any::<u8>(), 0..10), 1..150),
            start in proptest::collection::vec(any::<u8>(), 0..10),
            count in 0usize..30) {
            let mut wh = WormholeUnsafe::with_config(WormholeConfig::optimized().with_leaf_capacity(6));
            for (i, k) in keys.iter().enumerate() {
                wh.set(k, i as u64);
            }
            let got: Vec<Vec<u8>> = wh.range_from(&start, count).into_iter().map(|(k, _)| k).collect();
            let expect: Vec<Vec<u8>> = keys.iter().filter(|k| k.as_slice() >= start.as_slice())
                .take(count).cloned().collect();
            prop_assert_eq!(got, expect);
        }

        #[test]
        fn prop_base_config_matches_model(ops in proptest::collection::vec(
            (proptest::collection::vec(any::<u8>(), 0..10), any::<u64>(), any::<bool>()), 1..200)) {
            let mut wh = WormholeUnsafe::with_config(WormholeConfig::base().with_leaf_capacity(6));
            let mut model: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
            for (key, value, is_delete) in ops {
                if is_delete {
                    prop_assert_eq!(wh.del(&key), model.remove(&key));
                } else {
                    prop_assert_eq!(wh.set(&key, value), model.insert(key.clone(), value));
                }
            }
            wh.check_invariants();
            for (k, v) in &model {
                prop_assert_eq!(wh.get(k), Some(*v));
            }
        }
    }
}
