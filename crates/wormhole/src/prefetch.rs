//! Software-prefetch primitive used by the batched lookup pipeline.
//!
//! The batched probe engine (see [`crate::meta`]) overlaps the DRAM miss
//! chains of many independent lookups by issuing a prefetch for the next
//! hash bucket of every in-flight probe before executing any of them — the
//! memory-level-parallelism technique the Cuckoo Trie paper builds its whole
//! design around. A prefetch is purely a performance hint: it never faults,
//! never changes observable behaviour, and may be dropped by the CPU.
//!
//! # Fallback semantics
//!
//! On `x86_64` this compiles to a `prefetcht0` instruction (fetch into all
//! cache levels). On `aarch64` it compiles to `prfm pldl1keep`. On every
//! other target [`prefetch_read`] is a no-op — the batched code path stays
//! correct everywhere and simply loses the overlap benefit where the
//! intrinsic is unavailable.

/// Hints the CPU to fetch the cache line containing `p` into L1 for a read.
///
/// Safe for any pointer value, including dangling or null: prefetch
/// instructions do not fault and do not access memory architecturally.
/// Callers still pass references in practice; the raw-pointer signature only
/// exists so no borrow is held across the hint.
#[inline(always)]
pub fn prefetch_read<T>(p: *const T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: `_mm_prefetch` is a hint; it performs no architectural memory
    // access and cannot fault, whatever the pointer value.
    unsafe {
        core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(p as *const i8);
    }
    #[cfg(target_arch = "aarch64")]
    // SAFETY: `prfm` is a hint; it performs no architectural memory access
    // and cannot fault, whatever the pointer value.
    unsafe {
        core::arch::asm!(
            "prfm pldl1keep, [{ptr}]",
            ptr = in(reg) p,
            options(nostack, preserves_flags, readonly)
        );
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    let _ = p;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetch_is_harmless_for_any_pointer() {
        let on_stack = 42u64;
        prefetch_read(&on_stack as *const u64);
        let heap = vec![1u8; 4096];
        prefetch_read(heap.as_ptr());
        // Dangling and null pointers must not fault either — prefetches are
        // hints, not loads.
        prefetch_read(std::ptr::null::<u64>());
        prefetch_read(0xdead_beef_usize as *const u64);
        assert_eq!(on_stack, 42);
    }
}
