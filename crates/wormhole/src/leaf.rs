//! Wormhole leaf nodes (§3.2 of the paper).
//!
//! A leaf stores up to `leaf_capacity` key/value items plus the node's
//! *anchor*. Two orderings are maintained over the items:
//!
//! * the **hash order** — a tag array sorted by each key's 16-bit hash tag,
//!   used by point lookups (*SortByTag*), optionally with speculative
//!   positioning (*DirectPos*);
//! * the **key order** — a key-sorted view that is allowed to lag behind: new
//!   items are appended unsorted and merged in only when a range scan or a
//!   split needs full ordering (the paper's `incSort`).
//!
//! The leaf also remembers its *logical anchor* (used in ordering
//! comparisons) and its *table key* (the anchor as registered in the
//! MetaTrieHT, which may carry appended `⊥`/zero tokens to satisfy the prefix
//! condition).

use index_traits::RangeSink;
use wh_hash::{tag16, tag_position_hint};

use crate::config::WormholeConfig;

/// Marker returned by the `*_checked` read methods when an optimistic
/// (unlocked) read observed internally inconsistent state — an index out of
/// bounds, an implausible key length, or a lagging sort view. The caller
/// must validate its seqlock and retry; the observed data is meaningless.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadConflict;

/// Reusable snapshot buffer for the unsorted tail of a leaf's key view,
/// used by the `*_checked` collectors of the optimistic read path.
///
/// Tail keys are copied into one flat byte arena (rather than one `Vec<u8>`
/// per entry) before being ordered, for two reasons: the sort comparator
/// then runs over owned, immutable bytes — a genuine total order even when
/// the leaf is being mutated underneath, which `sort_unstable_by` may
/// otherwise punish with a panic — and a scan that reuses the scratch
/// across leaves performs zero allocations per batch in steady state.
#[derive(Debug, Default)]
pub struct TailScratch {
    /// Concatenated snapshotted key bytes.
    bytes: Vec<u8>,
    /// Per entry: (start, end) into `bytes` plus the item's `kvs` index.
    ents: Vec<(usize, usize, u16)>,
}

impl TailScratch {
    /// Creates an empty scratch buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-sizes for `items` tail entries totalling `key_bytes` of payload.
    pub fn reserve(&mut self, items: usize, key_bytes: usize) {
        self.bytes.reserve(key_bytes);
        self.ents.reserve(items);
    }

    fn clear(&mut self) {
        self.bytes.clear();
        self.ents.clear();
    }

    fn push(&mut self, key: &[u8], idx: u16) {
        let start = self.bytes.len();
        self.bytes.extend_from_slice(key);
        self.ents.push((start, self.bytes.len(), idx));
    }

    /// Sorts the entries by snapshotted key (ties broken by item index —
    /// duplicate keys only arise from torn reads, which the caller's
    /// validation discards anyway).
    fn sort(&mut self) {
        let bytes = &self.bytes;
        self.ents
            .sort_unstable_by(|a, b| bytes[a.0..a.1].cmp(&bytes[b.0..b.1]).then(a.2.cmp(&b.2)));
    }

    fn len(&self) -> usize {
        self.ents.len()
    }

    fn key(&self, i: usize) -> &[u8] {
        let (start, end, _) = self.ents[i];
        &self.bytes[start..end]
    }

    fn idx(&self, i: usize) -> u16 {
        self.ents[i].2
    }

    /// Index of the first entry with key `>= start` (requires `sort`).
    fn lower_bound(&self, start: &[u8]) -> usize {
        self.ents
            .partition_point(|&(s, e, _)| &self.bytes[s..e] < start)
    }
}

/// Heap blocks unlinked from a leaf while optimistic readers may still be
/// traversing them.
///
/// Every mutation of a [`LeafNode`] that would free memory — a storage
/// vector outgrowing its buffer, a removed item's key box, a replaced table
/// key, a merged-away sibling's storage — funnels the doomed block through
/// one of these bins instead of dropping it inline. In **immediate** mode
/// (the single-threaded index, or the concurrent index serving reads under
/// leaf locks) the bin drops each block on the spot, so behaviour is
/// unchanged. In **deferred** mode the blocks accumulate and the concurrent
/// index hands the filled bin to `wh_epoch::Qsbr::defer`, so a lock-free
/// reader that loaded a pointer to the old block inside its QSBR critical
/// section can never touch freed memory: the block outlives every critical
/// section that could have observed it.
#[derive(Debug)]
pub struct LeafGarbage<V> {
    defer: bool,
    kv_bufs: Vec<Vec<Kv<V>>>,
    idx_bufs: Vec<Vec<u16>>,
    keys: Vec<Box<[u8]>>,
    values: Vec<V>,
    byte_bufs: Vec<Vec<u8>>,
}

impl<V> LeafGarbage<V> {
    fn with_mode(defer: bool) -> Self {
        Self {
            defer,
            kv_bufs: Vec::new(),
            idx_bufs: Vec::new(),
            keys: Vec::new(),
            values: Vec::new(),
            byte_bufs: Vec::new(),
        }
    }

    /// A bin that drops every retired block immediately (no readers race
    /// with the mutation).
    pub fn immediate() -> Self {
        Self::with_mode(false)
    }

    /// A bin that accumulates retired blocks for reclamation after a QSBR
    /// grace period.
    pub fn deferred() -> Self {
        Self::with_mode(true)
    }

    /// Returns `true` when nothing has been retired into the bin.
    pub fn is_empty(&self) -> bool {
        self.kv_bufs.is_empty()
            && self.idx_bufs.is_empty()
            && self.keys.is_empty()
            && self.values.is_empty()
            && self.byte_bufs.is_empty()
    }

    /// Whether removed or overwritten *values* must also outlive a grace
    /// period: only in deferred mode, and only when dropping a `V` frees
    /// heap memory a racing optimistic reader could be cloning from.
    /// (Currently always `false` in practice — the concurrent index only
    /// runs deferred bins for no-drop-glue values — but it is the hook any
    /// future widening of the optimistic value gate would rely on.)
    pub fn defers_values(&self) -> bool {
        self.defer && std::mem::needs_drop::<V>()
    }

    /// Takes ownership of a value unlinked from a leaf and returns what
    /// the caller may hand out: the value itself in immediate mode, or —
    /// when values are deferred — a clone, with the original retired so a
    /// racing reader cloning from the old bits can never chase freed
    /// memory.
    pub fn hand_off_value(&mut self, value: V) -> V
    where
        V: Clone,
    {
        if self.defers_values() {
            let returned = value.clone();
            self.values.push(value);
            returned
        } else {
            value
        }
    }

    /// Retires a value unlinked from a leaf that nobody will be handed
    /// (bulk range removal): kept past the grace period when values are
    /// deferred, dropped on the spot otherwise. Unlike
    /// [`LeafGarbage::hand_off_value`] this never clones.
    pub fn retire_value(&mut self, value: V) {
        if self.defers_values() {
            self.values.push(value);
        }
    }

    fn retire_kv_buf(&mut self, buf: Vec<Kv<V>>) {
        if self.defer {
            self.kv_bufs.push(buf);
        }
    }

    fn retire_idx_buf(&mut self, buf: Vec<u16>) {
        if self.defer {
            self.idx_bufs.push(buf);
        }
    }

    fn retire_key(&mut self, key: Box<[u8]>) {
        if self.defer {
            self.keys.push(key);
        }
    }

    fn retire_bytes(&mut self, bytes: Vec<u8>) {
        if self.defer {
            self.byte_bufs.push(bytes);
        }
    }

    /// Replaces `*slot` with `new`, returning the previous value (through
    /// [`LeafGarbage::hand_off_value`], so a deferred-mode caller receives
    /// a clone while the original is retired).
    pub fn replace_value(&mut self, slot: &mut V, new: V) -> V
    where
        V: Clone,
    {
        let old = std::mem::replace(slot, new);
        self.hand_off_value(old)
    }
}

/// Appends to a leaf's item storage, retiring — instead of freeing — the
/// old buffer when the append would reallocate. Elements are *moved* into
/// the grown buffer (`append`), which leaves their bytes (and therefore the
/// key pointers a racing reader may have loaded) intact in the retired one.
fn push_kv<V>(v: &mut Vec<Kv<V>>, kv: Kv<V>, bin: &mut LeafGarbage<V>) {
    if v.len() == v.capacity() {
        let mut grown = Vec::with_capacity((v.capacity() * 2).max(8));
        grown.append(v);
        bin.retire_kv_buf(std::mem::replace(v, grown));
    }
    v.push(kv);
}

/// Inserts into an ordering vector, retiring the old buffer on growth
/// (see [`push_kv`]).
fn insert_idx<V>(v: &mut Vec<u16>, pos: usize, idx: u16, bin: &mut LeafGarbage<V>) {
    if v.len() == v.capacity() {
        let mut grown = Vec::with_capacity((v.capacity() * 2).max(8));
        grown.extend_from_slice(v);
        bin.retire_idx_buf(std::mem::replace(v, grown));
    }
    v.insert(pos, idx);
}

/// One key/value item plus its cached hash material.
#[derive(Debug, Clone)]
pub struct Kv<V> {
    /// Full CRC-32c hash of the key.
    pub hash: u32,
    /// 16-bit tag (low bits of the hash).
    pub tag: u16,
    /// The key bytes.
    pub key: Box<[u8]>,
    /// The stored value.
    pub value: V,
}

/// A Wormhole leaf node.
#[derive(Debug, Clone)]
pub struct LeafNode<V> {
    /// Logical anchor: `anchor <= every key in this node`, `> every key in
    /// the left neighbour`. Appended ⊥ tokens are *not* included here.
    anchor: Vec<u8>,
    /// The key under which this leaf is registered in the MetaTrieHT. Equals
    /// `anchor` unless ⊥ (zero) tokens had to be appended to satisfy the
    /// prefix condition.
    table_key: Vec<u8>,
    /// Item storage in insertion order.
    kvs: Vec<Kv<V>>,
    /// Indices into `kvs`, sorted by (tag, key) — the paper's tag array.
    hash_order: Vec<u16>,
    /// Indices into `kvs`; the first `sorted_cnt` are sorted by key, the rest
    /// are unsorted appendees.
    key_order: Vec<u16>,
    /// Length of the key-sorted prefix of `key_order`.
    sorted_cnt: usize,
}

impl<V> LeafNode<V> {
    /// Creates an empty leaf with the given logical anchor and table key.
    pub fn new(anchor: Vec<u8>, table_key: Vec<u8>) -> Self {
        Self {
            anchor,
            table_key,
            kvs: Vec::new(),
            hash_order: Vec::new(),
            key_order: Vec::new(),
            sorted_cnt: 0,
        }
    }

    /// The logical anchor (no appended ⊥ tokens).
    pub fn anchor(&self) -> &[u8] {
        &self.anchor
    }

    /// The MetaTrieHT registration key (may have appended ⊥ tokens).
    pub fn table_key(&self) -> &[u8] {
        &self.table_key
    }

    /// Number of stored items.
    pub fn len(&self) -> usize {
        self.kvs.len()
    }

    /// Returns `true` when the leaf stores no items.
    pub fn is_empty(&self) -> bool {
        self.kvs.is_empty()
    }

    /// Total key payload bytes stored in the leaf.
    pub fn key_bytes(&self) -> usize {
        self.kvs.iter().map(|kv| kv.key.len()).sum()
    }

    /// Approximate bytes used by the leaf structure itself (excluding key
    /// payloads and values).
    pub fn structure_bytes(&self) -> usize {
        self.anchor.len()
            + self.table_key.len()
            + self.kvs.capacity() * std::mem::size_of::<Kv<V>>()
            + (self.hash_order.capacity() + self.key_order.capacity()) * 2
    }

    /// Finds the storage slot of `key`, using the configuration's leaf-search
    /// strategy.
    fn find_slot(&self, key: &[u8], hash: u32, config: &WormholeConfig) -> Option<usize> {
        if self.kvs.is_empty() {
            return None;
        }
        if config.sort_by_tag {
            let tag = tag16(hash);
            let n = self.hash_order.len();
            // Find the first position whose tag is >= the search tag, either
            // by speculative positioning (DirectPos) or by binary search.
            let mut i = if config.direct_pos {
                let mut i = tag_position_hint(tag, n);
                while i > 0 && tag <= self.kvs[self.hash_order[i - 1] as usize].tag {
                    i -= 1;
                }
                while i < n && tag > self.kvs[self.hash_order[i] as usize].tag {
                    i += 1;
                }
                i
            } else {
                self.hash_order
                    .partition_point(|&idx| self.kvs[idx as usize].tag < tag)
            };
            while i < n {
                let idx = self.hash_order[i] as usize;
                let kv = &self.kvs[idx];
                if kv.tag != tag {
                    return None;
                }
                if kv.key.as_ref() == key {
                    return Some(idx);
                }
                i += 1;
            }
            None
        } else {
            // BaseWormhole leaf search: binary search over the key-sorted
            // view (which is kept fully sorted when SortByTag is off).
            debug_assert_eq!(self.sorted_cnt, self.key_order.len());
            self.key_order
                .binary_search_by(|&idx| self.kvs[idx as usize].key.as_ref().cmp(key))
                .ok()
                .map(|pos| self.key_order[pos] as usize)
        }
    }

    /// Returns a reference to the value stored under `key`.
    pub fn get(&self, key: &[u8], hash: u32, config: &WormholeConfig) -> Option<&V> {
        self.find_slot(key, hash, config)
            .map(|i| &self.kvs[i].value)
    }

    /// Returns a mutable reference to the value stored under `key`.
    pub fn get_mut(&mut self, key: &[u8], hash: u32, config: &WormholeConfig) -> Option<&mut V> {
        self.find_slot(key, hash, config)
            .map(|i| &mut self.kvs[i].value)
    }

    /// Inserts `key`, returning the previous value when it already existed.
    pub fn insert(&mut self, key: &[u8], hash: u32, value: V, config: &WormholeConfig) -> Option<V>
    where
        V: Clone,
    {
        self.insert_retiring(key, hash, value, config, &mut LeafGarbage::immediate())
    }

    /// [`LeafNode::insert`], retiring every freed heap block through `bin`.
    pub fn insert_retiring(
        &mut self,
        key: &[u8],
        hash: u32,
        value: V,
        config: &WormholeConfig,
        bin: &mut LeafGarbage<V>,
    ) -> Option<V>
    where
        V: Clone,
    {
        if let Some(slot) = self.find_slot(key, hash, config) {
            return Some(bin.replace_value(&mut self.kvs[slot].value, value));
        }
        let idx = self.kvs.len() as u16;
        let tag = tag16(hash);
        push_kv(
            &mut self.kvs,
            Kv {
                hash,
                tag,
                key: key.to_vec().into_boxed_slice(),
                value,
            },
            bin,
        );
        // Keep the tag array sorted by (tag, key): the paper's hash-ordered
        // tag array supports DirectPos positioning.
        let pos = self.hash_order.partition_point(|&i| {
            let kv = &self.kvs[i as usize];
            (kv.tag, kv.key.as_ref()) < (tag, key)
        });
        insert_idx(&mut self.hash_order, pos, idx, bin);
        if config.sort_by_tag {
            // Key order is allowed to lag: append unsorted (incSort later).
            let end = self.key_order.len();
            insert_idx(&mut self.key_order, end, idx, bin);
        } else {
            // Without SortByTag the key order must stay fully sorted so that
            // lookups can binary-search it.
            let pos = self
                .key_order
                .partition_point(|&i| self.kvs[i as usize].key.as_ref() < key);
            insert_idx(&mut self.key_order, pos, idx, bin);
            self.sorted_cnt = self.key_order.len();
        }
        None
    }

    /// Removes `key`, returning its value when present.
    pub fn remove(&mut self, key: &[u8], hash: u32, config: &WormholeConfig) -> Option<V>
    where
        V: Clone,
    {
        self.remove_retiring(key, hash, config, &mut LeafGarbage::immediate())
    }

    /// [`LeafNode::remove`], retiring the removed item's key box (and, when
    /// values are deferred, the value itself — the caller then receives a
    /// clone) through `bin`.
    pub fn remove_retiring(
        &mut self,
        key: &[u8],
        hash: u32,
        config: &WormholeConfig,
        bin: &mut LeafGarbage<V>,
    ) -> Option<V>
    where
        V: Clone,
    {
        let slot = self.find_slot(key, hash, config)?;
        let removed = self.remove_slot(slot);
        bin.retire_key(removed.key);
        Some(bin.hand_off_value(removed.value))
    }

    /// Unlinks the item at storage slot `slot`, fixing up both orderings:
    /// the removed index is dropped and every index after it shifts down by
    /// one. The caller retires the returned item's key (and value, when
    /// values are deferred).
    fn remove_slot(&mut self, slot: usize) -> Kv<V> {
        let removed = self.kvs.remove(slot);
        let slot = slot as u16;
        let hpos = self
            .hash_order
            .iter()
            .position(|&i| i == slot)
            .expect("hash entry");
        self.hash_order.remove(hpos);
        let kpos = self
            .key_order
            .iter()
            .position(|&i| i == slot)
            .expect("key entry");
        self.key_order.remove(kpos);
        if kpos < self.sorted_cnt {
            self.sorted_cnt -= 1;
        }
        for i in self.hash_order.iter_mut() {
            if *i > slot {
                *i -= 1;
            }
        }
        for i in self.key_order.iter_mut() {
            if *i > slot {
                *i -= 1;
            }
        }
        removed
    }

    /// Removes every item with `lo <= key < hi`, retiring the unlinked key
    /// boxes (and, when values are deferred, the values) through `bin`.
    /// Returns `(items removed, key payload bytes removed)`.
    ///
    /// This is the leaf-level primitive of the concurrent index's batched
    /// range removal (shard migration drains a donor's migrated range with
    /// it); the whole doomed run is resolved against the key-sorted view
    /// once and unlinked slot by slot in descending storage order, so the
    /// shift-down fixups of earlier removals never invalidate later ones.
    pub fn remove_range_retiring(
        &mut self,
        lo: &[u8],
        hi: &[u8],
        bin: &mut LeafGarbage<V>,
    ) -> (usize, usize)
    where
        V: Clone,
    {
        self.ensure_key_sorted_retiring(bin);
        let start = self
            .key_order
            .partition_point(|&i| self.kvs[i as usize].key.as_ref() < lo);
        let end = self
            .key_order
            .partition_point(|&i| self.kvs[i as usize].key.as_ref() < hi);
        if start == end {
            return (0, 0);
        }
        let mut doomed: Vec<u16> = self.key_order[start..end].to_vec();
        doomed.sort_unstable_by(|a, b| b.cmp(a));
        let mut removed = 0usize;
        let mut key_bytes = 0usize;
        for slot in doomed {
            let kv = self.remove_slot(slot as usize);
            removed += 1;
            key_bytes += kv.key.len();
            bin.retire_key(kv.key);
            bin.retire_value(kv.value);
        }
        (removed, key_bytes)
    }

    /// The paper's `incSort`: brings the key-sorted view up to date by
    /// sorting the unsorted tail and two-way merging it with the sorted
    /// prefix.
    pub fn ensure_key_sorted(&mut self) {
        self.ensure_key_sorted_retiring(&mut LeafGarbage::immediate());
    }

    /// [`LeafNode::ensure_key_sorted`], retiring the replaced key-order
    /// buffer through `bin`.
    pub fn ensure_key_sorted_retiring(&mut self, bin: &mut LeafGarbage<V>) {
        if self.sorted_cnt == self.key_order.len() {
            return;
        }
        let tail_start = self.sorted_cnt;
        let mut tail: Vec<u16> = self.key_order.split_off(tail_start);
        tail.sort_unstable_by(|&a, &b| self.kvs[a as usize].key.cmp(&self.kvs[b as usize].key));
        let sorted = std::mem::take(&mut self.key_order);
        self.key_order = Vec::with_capacity(sorted.len() + tail.len());
        let (mut a, mut b) = (0usize, 0usize);
        while a < sorted.len() && b < tail.len() {
            if self.kvs[sorted[a] as usize].key <= self.kvs[tail[b] as usize].key {
                self.key_order.push(sorted[a]);
                a += 1;
            } else {
                self.key_order.push(tail[b]);
                b += 1;
            }
        }
        self.key_order.extend_from_slice(&sorted[a..]);
        self.key_order.extend_from_slice(&tail[b..]);
        self.sorted_cnt = self.key_order.len();
        // `sorted` is the buffer readers may still hold a pointer into;
        // `tail` was freshly allocated here and never published.
        bin.retire_idx_buf(sorted);
    }

    /// Iterates items in ascending key order. Call [`Self::ensure_key_sorted`]
    /// first; otherwise only the sorted prefix is guaranteed to be ordered.
    pub fn iter_key_order(&self) -> impl Iterator<Item = &Kv<V>> + '_ {
        self.key_order.iter().map(|&i| &self.kvs[i as usize])
    }

    /// The smallest key in the leaf (requires a sorted key view).
    pub fn min_key(&self) -> Option<&[u8]> {
        debug_assert_eq!(self.sorted_cnt, self.key_order.len());
        self.key_order
            .first()
            .map(|&i| self.kvs[i as usize].key.as_ref())
    }

    /// The largest key in the leaf (requires a sorted key view).
    pub fn max_key(&self) -> Option<&[u8]> {
        debug_assert_eq!(self.sorted_cnt, self.key_order.len());
        self.key_order
            .last()
            .map(|&i| self.kvs[i as usize].key.as_ref())
    }

    /// Collects up to `count` items with key `>= start` into `sink`, in key
    /// order. Returns the number of items accepted.
    pub fn collect_range_into<S: RangeSink<V>>(
        &self,
        start: &[u8],
        count: usize,
        sink: &mut S,
    ) -> usize {
        debug_assert_eq!(self.sorted_cnt, self.key_order.len());
        let begin = self
            .key_order
            .partition_point(|&i| self.kvs[i as usize].key.as_ref() < start);
        let mut appended = 0;
        for &i in &self.key_order[begin..] {
            if appended == count {
                break;
            }
            let kv = &self.kvs[i as usize];
            sink.accept(kv.key.as_ref(), &kv.value);
            appended += 1;
        }
        appended
    }

    /// Batch-per-leaf primitive of the single-threaded scan cursor: like
    /// [`LeafNode::collect_range_into`], but usable while the key-sorted
    /// view lags behind (`incSort` not yet run): the sorted prefix and the
    /// unsorted tail are merged on the fly, ordering the tail through
    /// `scratch` (a reusable index buffer) instead of cloning the leaf or
    /// sorting it in place. Read-only range scans use this so they neither
    /// mutate the leaf nor copy its keys.
    pub fn collect_leaf_unsorted<S: RangeSink<V>>(
        &self,
        start: &[u8],
        count: usize,
        sink: &mut S,
        scratch: &mut Vec<u16>,
    ) -> usize {
        if self.sorted_cnt == self.key_order.len() {
            return self.collect_range_into(start, count, sink);
        }
        scratch.clear();
        scratch.extend_from_slice(&self.key_order[self.sorted_cnt..]);
        scratch.sort_unstable_by(|&a, &b| self.kvs[a as usize].key.cmp(&self.kvs[b as usize].key));
        let sorted = &self.key_order[..self.sorted_cnt];
        let mut a = sorted.partition_point(|&i| self.kvs[i as usize].key.as_ref() < start);
        let mut b = scratch.partition_point(|&i| self.kvs[i as usize].key.as_ref() < start);
        let mut appended = 0;
        while appended < count {
            let next = match (sorted.get(a), scratch.get(b)) {
                (Some(&x), Some(&y)) => {
                    if self.kvs[x as usize].key <= self.kvs[y as usize].key {
                        a += 1;
                        x
                    } else {
                        b += 1;
                        y
                    }
                }
                (Some(&x), None) => {
                    a += 1;
                    x
                }
                (None, Some(&y)) => {
                    b += 1;
                    y
                }
                (None, None) => break,
            };
            let kv = &self.kvs[next as usize];
            sink.accept(kv.key.as_ref(), &kv.value);
            appended += 1;
        }
        appended
    }

    /// Like [`LeafNode::get`], but safe to run on a leaf that a concurrent
    /// writer may be mutating (the seqlock read path): every index access is
    /// bounds-checked and any inconsistency — instead of panicking or
    /// over-reading — surfaces as [`ReadConflict`], which the caller turns
    /// into a retry after its seqlock validation fails.
    ///
    /// The returned reference (and any value cloned from it) must be
    /// discarded unless the caller's subsequent version validation succeeds.
    pub fn get_checked(
        &self,
        key: &[u8],
        hash: u32,
        config: &WormholeConfig,
    ) -> Result<Option<&V>, ReadConflict> {
        if self.kvs.is_empty() {
            return Ok(None);
        }
        if config.sort_by_tag {
            let tag = tag16(hash);
            let n = self.hash_order.len();
            let kv_at = |i: usize| -> Result<&Kv<V>, ReadConflict> {
                let idx = *self.hash_order.get(i).ok_or(ReadConflict)?;
                self.kvs.get(idx as usize).ok_or(ReadConflict)
            };
            // First position whose tag is >= the search tag, via the same
            // DirectPos hint walk or a hand-rolled (checked) binary search.
            let mut i = if config.direct_pos {
                let mut i = tag_position_hint(tag, n).min(n);
                while i > 0 && tag <= kv_at(i - 1)?.tag {
                    i -= 1;
                }
                while i < n && tag > kv_at(i)?.tag {
                    i += 1;
                }
                i
            } else {
                let (mut lo, mut hi) = (0usize, n);
                while lo < hi {
                    let mid = (lo + hi) / 2;
                    if kv_at(mid)?.tag < tag {
                        lo = mid + 1;
                    } else {
                        hi = mid;
                    }
                }
                lo
            };
            while i < n {
                let kv = kv_at(i)?;
                if kv.tag != tag {
                    return Ok(None);
                }
                if kv.key.as_ref() == key {
                    return Ok(Some(&kv.value));
                }
                i += 1;
            }
            Ok(None)
        } else {
            // Checked binary search over the key-sorted view.
            let key_at = |i: usize| -> Result<&Kv<V>, ReadConflict> {
                let idx = *self.key_order.get(i).ok_or(ReadConflict)?;
                self.kvs.get(idx as usize).ok_or(ReadConflict)
            };
            let (mut lo, mut hi) = (0usize, self.key_order.len());
            while lo < hi {
                let mid = (lo + hi) / 2;
                let kv = key_at(mid)?;
                match kv.key.as_ref().cmp(key) {
                    std::cmp::Ordering::Less => lo = mid + 1,
                    std::cmp::Ordering::Greater => hi = mid,
                    std::cmp::Ordering::Equal => return Ok(Some(&kv.value)),
                }
            }
            Ok(None)
        }
    }

    /// Batch-per-leaf primitive of the concurrent scan cursor: like
    /// [`LeafNode::collect_leaf_unsorted`], but safe on a leaf a
    /// concurrent writer may be mutating (see [`LeafNode::get_checked`]):
    /// bounds-checked throughout, and any key whose recorded length exceeds
    /// `max_key_len` is treated as torn state rather than copied. The
    /// unsorted tail is snapshotted into `tail` (a reusable
    /// [`TailScratch`] arena) before it is ordered, so the sort comparator
    /// never touches racing memory — a comparator over in-flux data would
    /// not be a total order, which `sort_unstable_by` may punish with a
    /// panic. Everything accepted by `sink` must be discarded unless the
    /// caller's seqlock validation succeeds.
    pub fn collect_leaf_checked<S: RangeSink<V>>(
        &self,
        start: &[u8],
        count: usize,
        sink: &mut S,
        tail: &mut TailScratch,
        max_key_len: usize,
    ) -> Result<usize, ReadConflict> {
        let total = self.key_order.len();
        let sorted_cnt = self.sorted_cnt.min(total);
        let key_of = |idx: u16| -> Result<&Kv<V>, ReadConflict> {
            let kv = self.kvs.get(idx as usize).ok_or(ReadConflict)?;
            if kv.key.len() > max_key_len {
                return Err(ReadConflict);
            }
            Ok(kv)
        };
        // Snapshot the unsorted tail into the scratch arena — any torn
        // index or implausible key surfaces as a conflict here — then sort
        // the owned snapshot (a genuine total order, immune to races).
        tail.clear();
        for &idx in self.key_order.get(sorted_cnt..total).ok_or(ReadConflict)? {
            tail.push(key_of(idx)?.key.as_ref(), idx);
        }
        tail.sort();
        let sorted = self.key_order.get(..sorted_cnt).ok_or(ReadConflict)?;
        // Checked lower bounds in both runs.
        let mut a = {
            let (mut lo, mut hi) = (0usize, sorted.len());
            while lo < hi {
                let mid = (lo + hi) / 2;
                if key_of(sorted[mid])?.key.as_ref() < start {
                    lo = mid + 1;
                } else {
                    hi = mid;
                }
            }
            lo
        };
        let mut b = tail.lower_bound(start);
        let mut appended = 0;
        while appended < count {
            // Merge the two runs; tail entries reuse their snapshotted key.
            let take_sorted = match (sorted.get(a), (b < tail.len()).then(|| tail.key(b))) {
                (Some(&x), Some(tail_key)) => key_of(x)?.key.as_ref() <= tail_key,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            if take_sorted {
                let kv = key_of(sorted[a])?;
                a += 1;
                sink.accept(kv.key.as_ref(), &kv.value);
            } else {
                let idx = tail.idx(b) as usize;
                let value = &self.kvs.get(idx).ok_or(ReadConflict)?.value;
                sink.accept(tail.key(b), value);
                b += 1;
            }
            appended += 1;
        }
        Ok(appended)
    }

    /// [`LeafNode::collect_leaf_checked`] materialising into a pair vector
    /// (tests compare it against the unchecked collectors on quiescent
    /// leaves).
    pub fn collect_range_checked(
        &self,
        start: &[u8],
        count: usize,
        out: &mut Vec<(Vec<u8>, V)>,
        tail: &mut TailScratch,
        max_key_len: usize,
    ) -> Result<usize, ReadConflict>
    where
        V: Clone,
    {
        self.collect_leaf_checked(start, count, out, tail, max_key_len)
    }

    /// Key at sorted position `i` (requires the key-sorted view to be
    /// current; see [`LeafNode::ensure_key_sorted`]). Used by the core
    /// engine's split-point selection.
    pub fn key_at(&self, i: usize) -> &[u8] {
        debug_assert_eq!(self.sorted_cnt, self.key_order.len());
        self.kvs[self.key_order[i] as usize].key.as_ref()
    }

    /// Splits the leaf at key-order position `at`, moving items `[at..]` into
    /// a new leaf with the given anchor and table key.
    pub fn split_off(&mut self, at: usize, anchor: Vec<u8>, table_key: Vec<u8>) -> LeafNode<V> {
        self.split_off_retiring(at, anchor, table_key, &mut LeafGarbage::immediate())
    }

    /// [`LeafNode::split_off`], retiring the replaced storage buffers of the
    /// left half through `bin` (the right half is freshly allocated and not
    /// yet visible to readers).
    pub fn split_off_retiring(
        &mut self,
        at: usize,
        anchor: Vec<u8>,
        table_key: Vec<u8>,
        bin: &mut LeafGarbage<V>,
    ) -> LeafNode<V> {
        debug_assert_eq!(self.sorted_cnt, self.key_order.len());
        debug_assert!(at > 0 && at < self.key_order.len());
        let moved: Vec<u16> = self.key_order.split_off(at);
        let mut right = LeafNode::new(anchor, table_key);
        // Move the selected kvs into the new leaf; remaining kvs are
        // compacted into a fresh storage vector to keep indices dense.
        let mut keep = vec![false; self.kvs.len()];
        for &i in &self.key_order {
            keep[i as usize] = true;
        }
        let mut old_kvs = std::mem::take(&mut self.kvs);
        let mut remap = vec![u16::MAX; old_kvs.len()];
        for (i, kv) in old_kvs.drain(..).enumerate() {
            if keep[i] {
                remap[i] = self.kvs.len() as u16;
                self.kvs.push(kv);
            } else {
                remap[i] = right.kvs.len() as u16;
                right.kvs.push(kv);
            }
        }
        bin.retire_kv_buf(old_kvs);
        // Rebuild the orderings of both leaves from the remap.
        self.key_order
            .iter_mut()
            .for_each(|i| *i = remap[*i as usize]);
        self.sorted_cnt = self.key_order.len();
        right.key_order = moved.iter().map(|&i| remap[i as usize]).collect();
        right.sorted_cnt = right.key_order.len();
        let rebuild_hash = |kvs: &[Kv<V>]| {
            let mut order: Vec<u16> = (0..kvs.len() as u16).collect();
            order.sort_unstable_by(|&a, &b| {
                let (ka, kb) = (&kvs[a as usize], &kvs[b as usize]);
                (ka.tag, ka.key.as_ref()).cmp(&(kb.tag, kb.key.as_ref()))
            });
            order
        };
        let old_hash = std::mem::replace(&mut self.hash_order, rebuild_hash(&self.kvs));
        bin.retire_idx_buf(old_hash);
        right.hash_order = rebuild_hash(&right.kvs);
        right
    }

    /// Moves every item of `victim` into this leaf (used by merge).
    pub fn absorb(&mut self, victim: LeafNode<V>) {
        self.absorb_retiring(victim, &mut LeafGarbage::immediate());
    }

    /// [`LeafNode::absorb`], retiring the victim's storage (and any buffer
    /// this leaf outgrows) through `bin`.
    pub fn absorb_retiring(&mut self, mut victim: LeafNode<V>, bin: &mut LeafGarbage<V>) {
        for kv in victim.kvs.drain(..) {
            let idx = self.kvs.len() as u16;
            let pos = self.hash_order.partition_point(|&i| {
                let cur = &self.kvs[i as usize];
                (cur.tag, cur.key.as_ref()) < (kv.tag, kv.key.as_ref())
            });
            insert_idx(&mut self.hash_order, pos, idx, bin);
            push_kv(&mut self.kvs, kv, bin);
            let end = self.key_order.len();
            insert_idx(&mut self.key_order, end, idx, bin);
        }
        // Readers may still be traversing the victim's (now drained)
        // storage and anchor: retire the buffers wholesale.
        bin.retire_kv_buf(std::mem::take(&mut victim.kvs));
        bin.retire_idx_buf(std::mem::take(&mut victim.hash_order));
        bin.retire_idx_buf(std::mem::take(&mut victim.key_order));
        bin.retire_bytes(std::mem::take(&mut victim.anchor));
        bin.retire_bytes(std::mem::take(&mut victim.table_key));
        // The absorbed items landed in the unsorted tail; merges are rare and
        // bounded by the merge size, so restore the key order eagerly. This
        // keeps the "fully sorted" invariant the non-SortByTag configuration
        // relies on for its binary searches.
        self.sorted_cnt = self.sorted_cnt.min(self.key_order.len());
        self.ensure_key_sorted_retiring(bin);
    }

    /// Updates the leaf's table key (used when an anchor is relocated with an
    /// appended ⊥ token by a later split).
    pub fn set_table_key(&mut self, table_key: Vec<u8>) {
        self.set_table_key_retiring(table_key, &mut LeafGarbage::immediate());
    }

    /// [`LeafNode::set_table_key`], retiring the replaced key bytes through
    /// `bin`.
    pub fn set_table_key_retiring(&mut self, table_key: Vec<u8>, bin: &mut LeafGarbage<V>) {
        bin.retire_bytes(std::mem::replace(&mut self.table_key, table_key));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wh_hash::crc32c;

    fn cfg() -> WormholeConfig {
        WormholeConfig::optimized().with_leaf_capacity(16)
    }

    fn insert(
        leaf: &mut LeafNode<u64>,
        key: &[u8],
        value: u64,
        config: &WormholeConfig,
    ) -> Option<u64> {
        leaf.insert(key, crc32c(key), value, config)
    }

    fn get(leaf: &LeafNode<u64>, key: &[u8], config: &WormholeConfig) -> Option<u64> {
        leaf.get(key, crc32c(key), config).copied()
    }

    #[test]
    fn insert_get_remove_roundtrip_all_configs() {
        for config in [
            WormholeConfig::optimized(),
            WormholeConfig::base(),
            WormholeConfig::base().with_sort_by_tag(true),
            WormholeConfig::optimized().with_direct_pos(false),
        ] {
            let mut leaf = LeafNode::new(Vec::new(), Vec::new());
            let names = ["Abby", "Bob", "Bond", "Ella", "Alex", "Jack", "Alan", "Ada"];
            for (i, name) in names.iter().enumerate() {
                assert_eq!(insert(&mut leaf, name.as_bytes(), i as u64, &config), None);
            }
            assert_eq!(leaf.len(), names.len());
            for (i, name) in names.iter().enumerate() {
                assert_eq!(
                    get(&leaf, name.as_bytes(), &config),
                    Some(i as u64),
                    "{name}"
                );
            }
            assert_eq!(get(&leaf, b"Zed", &config), None);
            assert_eq!(insert(&mut leaf, b"Bob", 99, &config), Some(1));
            assert_eq!(leaf.remove(b"Bob", crc32c(b"Bob"), &config), Some(99));
            assert_eq!(get(&leaf, b"Bob", &config), None);
            assert_eq!(leaf.len(), names.len() - 1);
            // Every other key still reachable after the removal fix-ups.
            for (i, name) in names.iter().enumerate() {
                if *name != "Bob" {
                    assert_eq!(
                        get(&leaf, name.as_bytes(), &config),
                        Some(i as u64),
                        "{name}"
                    );
                }
            }
        }
    }

    #[test]
    fn inc_sort_merges_unsorted_tail() {
        let config = cfg();
        let mut leaf = LeafNode::new(Vec::new(), Vec::new());
        for k in ["m", "c", "x", "a", "t", "b"] {
            insert(&mut leaf, k.as_bytes(), 0, &config);
        }
        leaf.ensure_key_sorted();
        let keys: Vec<&[u8]> = leaf.iter_key_order().map(|kv| kv.key.as_ref()).collect();
        assert_eq!(keys, vec![b"a".as_ref(), b"b", b"c", b"m", b"t", b"x"]);
        // Add more after the sort: they form a new unsorted tail.
        for k in ["q", "d"] {
            insert(&mut leaf, k.as_bytes(), 0, &config);
        }
        leaf.ensure_key_sorted();
        let keys: Vec<&[u8]> = leaf.iter_key_order().map(|kv| kv.key.as_ref()).collect();
        assert_eq!(
            keys,
            vec![b"a".as_ref(), b"b", b"c", b"d", b"m", b"q", b"t", b"x"]
        );
    }

    #[test]
    fn collect_range_respects_start_and_count() {
        let config = cfg();
        let mut leaf = LeafNode::new(Vec::new(), Vec::new());
        for i in 0..10u64 {
            insert(&mut leaf, format!("k{i:02}").as_bytes(), i, &config);
        }
        leaf.ensure_key_sorted();
        let mut out = Vec::new();
        let n = leaf.collect_range_into(b"k03", 4, &mut out);
        assert_eq!(n, 4);
        let keys: Vec<String> = out
            .iter()
            .map(|(k, _)| String::from_utf8(k.clone()).unwrap())
            .collect();
        assert_eq!(keys, vec!["k03", "k04", "k05", "k06"]);
    }

    #[test]
    fn split_off_partitions_items() {
        let config = cfg();
        let mut leaf = LeafNode::new(Vec::new(), Vec::new());
        for i in 0..10u64 {
            insert(&mut leaf, format!("key{i}").as_bytes(), i, &config);
        }
        let (at, anchor) = crate::core::choose_split_point(&mut leaf).unwrap();
        let right = leaf.split_off(at, anchor.clone(), anchor.clone());
        assert_eq!(leaf.len() + right.len(), 10);
        assert!(leaf.max_key().unwrap() < right.min_key().unwrap());
        assert!(right.min_key().unwrap() >= anchor.as_slice());
        // Both halves remain searchable.
        for i in 0..10u64 {
            let key = format!("key{i}");
            let hit_left = get(&leaf, key.as_bytes(), &config);
            let hit_right = get(&right, key.as_bytes(), &config);
            assert!(hit_left.is_some() ^ hit_right.is_some(), "{key}");
            assert_eq!(hit_left.or(hit_right), Some(i));
        }
    }

    #[test]
    fn absorb_merges_and_lazily_sorts() {
        let config = cfg();
        let mut left = LeafNode::new(Vec::new(), Vec::new());
        let mut right = LeafNode::new(b"m".to_vec(), b"m".to_vec());
        for k in ["a", "c", "e"] {
            insert(&mut left, k.as_bytes(), 1, &config);
        }
        for k in ["m", "o", "q"] {
            insert(&mut right, k.as_bytes(), 2, &config);
        }
        left.ensure_key_sorted();
        left.absorb(right);
        assert_eq!(left.len(), 6);
        for k in ["a", "c", "e", "m", "o", "q"] {
            assert!(get(&left, k.as_bytes(), &config).is_some(), "{k}");
        }
        left.ensure_key_sorted();
        let keys: Vec<&[u8]> = left.iter_key_order().map(|kv| kv.key.as_ref()).collect();
        assert_eq!(keys, vec![b"a".as_ref(), b"c", b"e", b"m", b"o", b"q"]);
    }

    #[test]
    fn checked_reads_match_unchecked_on_quiescent_leaf() {
        for config in [
            WormholeConfig::optimized(),
            WormholeConfig::optimized().with_direct_pos(false),
            WormholeConfig::base(),
        ] {
            let mut leaf = LeafNode::new(Vec::new(), Vec::new());
            for i in 0..40u64 {
                insert(
                    &mut leaf,
                    format!("ck{:03}", i * 7 % 40).as_bytes(),
                    i,
                    &config,
                );
            }
            for i in 0..40u64 {
                let key = format!("ck{i:03}");
                assert_eq!(
                    leaf.get_checked(key.as_bytes(), crc32c(key.as_bytes()), &config),
                    Ok(leaf.get(key.as_bytes(), crc32c(key.as_bytes()), &config)),
                    "{key}"
                );
            }
            assert_eq!(leaf.get_checked(b"zz", crc32c(b"zz"), &config), Ok(None));
            // Range: the checked collector agrees with the unchecked one
            // even while the key-sorted view lags behind.
            let mut expect = Vec::new();
            let mut scratch16 = Vec::new();
            leaf.collect_leaf_unsorted(b"ck010", 12, &mut expect, &mut scratch16);
            let mut got = Vec::new();
            let mut tail_scratch = TailScratch::new();
            let n = leaf
                .collect_range_checked(b"ck010", 12, &mut got, &mut tail_scratch, 1 << 20)
                .expect("quiescent leaf never conflicts");
            assert_eq!(n, expect.len());
            assert_eq!(got, expect);
        }
    }

    #[test]
    fn table_key_can_be_relocated() {
        let mut leaf: LeafNode<u64> = LeafNode::new(b"Jo".to_vec(), b"Jo".to_vec());
        leaf.set_table_key(b"Jo\0".to_vec());
        assert_eq!(leaf.anchor(), b"Jo");
        assert_eq!(leaf.table_key(), b"Jo\0");
    }

    #[test]
    fn remove_range_drains_exactly_the_half_open_window() {
        for config in [
            WormholeConfig::optimized(),
            WormholeConfig::base(),
            WormholeConfig::optimized().with_direct_pos(false),
        ] {
            let mut leaf = LeafNode::new(Vec::new(), Vec::new());
            for i in 0..24u64 {
                // Insert out of key order so the sorted view lags (incSort
                // must run inside remove_range_retiring).
                insert(
                    &mut leaf,
                    format!("rr{:02}", i * 7 % 24).as_bytes(),
                    i,
                    &config,
                );
            }
            let mut bin = LeafGarbage::immediate();
            let (n, bytes) = leaf.remove_range_retiring(b"rr05", b"rr15", &mut bin);
            assert_eq!(n, 10);
            assert_eq!(bytes, 10 * 4);
            assert_eq!(leaf.len(), 14);
            for i in 0..24u64 {
                let key = format!("rr{i:02}");
                let expect = !(5..15).contains(&i);
                assert_eq!(
                    get(&leaf, key.as_bytes(), &config).is_some(),
                    expect,
                    "{key}"
                );
            }
            // Empty window and disjoint window are no-ops.
            assert_eq!(
                leaf.remove_range_retiring(b"rr05", b"rr05", &mut bin),
                (0, 0)
            );
            assert_eq!(leaf.remove_range_retiring(b"zz", b"zzz", &mut bin), (0, 0));
            // Lookups and further mutation still work after the bulk fixups.
            assert_eq!(insert(&mut leaf, b"rr07", 100, &config), None);
            assert_eq!(get(&leaf, b"rr07", &config), Some(100));
        }
    }
}
