//! The MetaTrieHT (§2.4): a hash table that encodes the meta-trie over leaf
//! anchors.
//!
//! Every anchor and every prefix of every anchor is an item in the table.
//! Leaf items point at a leaf node; internal items carry a 256-bit child
//! bitmap and pointers to the leftmost and rightmost leaves of the subtree
//! they root. Lookups never walk trie edges: each probed prefix is hashed
//! and looked up directly, and the longest prefix match is found with a
//! binary search over prefix lengths (Algorithm 1).
//!
//! # Bucket layout (§3.1, §3.4)
//!
//! The paper's table packs eight (tag, pointer) pairs into each 64-byte
//! cache line so a probe inspects one line of tags before dereferencing
//! anything. This table reproduces that layout:
//!
//! * the bucket array is **one flat allocation** of 64-byte, 64-byte-aligned
//!   `Bucket` records — no per-bucket heap allocation, no `Vec<Vec<_>>`
//!   indirection;
//! * each bucket holds **eight slots**: a `[u16; 8]` tag lane (16 bytes, the
//!   §3.1 *TagMatching* filter, compared eight-at-a-time with
//!   [`wh_hash::tag8_match_mask`]) and a `[u32; 8]` item-index lane, so a
//!   probe touches exactly one cache line until a tag matches;
//! * the rare bucket with more than eight residents chains into a small
//!   **overflow pool** (`overflow` holds an off-by-one index into it; the
//!   pool is rebuilt empty on every resize, so chains never accumulate);
//! * item records (prefix bytes, full hash, payload) live in a side array
//!   indexed by the `u32` slot values; exact probes only touch an item after
//!   its 16-bit tag matched, optimistic probes not at all.
//!
//! `grow()` doubles the flat array and rehashes every slot directly from the
//! item records (each stores its full CRC), with no intermediate per-bucket
//! allocations.
//!
//! The table is generic over the leaf handle type `L` so the same code backs
//! both the single-threaded index (arena indices) and the concurrent index
//! (`Arc` leaf pointers).
//!
//! # Structural updates
//!
//! Splits and merges do not mutate the table directly: [`MetaTable::plan_split`]
//! and [`MetaTable::plan_merge`] compute a declarative [`MetaPlan`] (the
//! absolute item inserts/deletes of Algorithm 4) that
//! [`MetaTable::apply_plan`] executes — once for the single-threaded index,
//! and once per table (T2, then T1 after the grace period) for the
//! concurrent one. See [`meta_plan`].

use index_traits::IndexStats;
use wh_hash::{crc32c, crc32c_append, mix64, tag16, tag8_match_mask, IncrementalHasher};

use crate::config::WormholeConfig;
use crate::prefetch::prefetch_read;

/// A handle to a leaf node stored inside the MetaTrieHT.
pub trait LeafRef: Clone {
    /// Identity comparison (pointer/index equality, not content equality).
    fn same(&self, other: &Self) -> bool;
}

impl LeafRef for u32 {
    fn same(&self, other: &Self) -> bool {
        self == other
    }
}

/// A 256-bit bitmap recording which child tokens exist below an internal
/// trie node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TokenBitmap {
    words: [u64; 4],
}

impl TokenBitmap {
    /// Creates an empty bitmap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the bit for `token`.
    pub fn set(&mut self, token: u8) {
        self.words[(token >> 6) as usize] |= 1u64 << (token & 63);
    }

    /// Clears the bit for `token`.
    pub fn clear(&mut self, token: u8) {
        self.words[(token >> 6) as usize] &= !(1u64 << (token & 63));
    }

    /// Tests the bit for `token`.
    pub fn test(&self, token: u8) -> bool {
        self.words[(token >> 6) as usize] & (1u64 << (token & 63)) != 0
    }

    /// Returns `true` when no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The largest set token strictly less than `token`, if any.
    pub fn prev_set(&self, token: u8) -> Option<u8> {
        let mut t = token as i32 - 1;
        // Scan the word containing `t`, then whole words below it.
        while t >= 0 {
            let word = (t >> 6) as usize;
            let bit = (t & 63) as u32;
            let masked = self.words[word] & ((1u64 << bit) | ((1u64 << bit) - 1));
            if masked != 0 {
                return Some(((word as u32) * 64 + 63 - masked.leading_zeros()) as u8);
            }
            t = (word as i32) * 64 - 1;
        }
        None
    }

    /// The smallest set token strictly greater than `token`, if any.
    pub fn next_set(&self, token: u8) -> Option<u8> {
        let mut t = token as u32 + 1;
        while t < 256 {
            let word = (t >> 6) as usize;
            let bit = t & 63;
            let masked = self.words[word] & !((1u64 << bit) - 1);
            if masked != 0 {
                return Some((word as u32 * 64 + masked.trailing_zeros()) as u8);
            }
            t = (word as u32 + 1) * 64;
        }
        None
    }

    /// The sibling used by the second search phase (Algorithm 3,
    /// `findOneSibling`): the nearest existing token below `missing`, or the
    /// nearest one above it when none exists below.
    pub fn find_one_sibling(&self, missing: u8) -> Option<u8> {
        self.prev_set(missing).or_else(|| self.next_set(missing))
    }
}

/// Payload of an interior trie node: the child bitmap plus the subtree's
/// leaf bounds. Boxed behind [`MetaKind::Internal`] so every item record
/// stays 40 bytes (down from 72 with the payload inline) — exact probes
/// then touch at most one extra cache line per key comparison.
#[derive(Debug, Clone)]
pub struct InternalNode<L> {
    /// Which child tokens exist.
    pub bitmap: TokenBitmap,
    /// Leftmost leaf of the subtree rooted here.
    pub leftmost: L,
    /// Rightmost leaf of the subtree rooted here.
    pub rightmost: L,
}

/// Payload of a MetaTrieHT item.
#[derive(Debug, Clone)]
pub enum MetaKind<L> {
    /// The prefix is an anchor; the item points at its leaf node.
    Leaf(L),
    /// The prefix is an interior trie node.
    Internal(Box<InternalNode<L>>),
}

impl<L> MetaKind<L> {
    /// Builds an internal item payload.
    pub fn internal(bitmap: TokenBitmap, leftmost: L, rightmost: L) -> Self {
        MetaKind::Internal(Box::new(InternalNode {
            bitmap,
            leftmost,
            rightmost,
        }))
    }
}

/// One hash-table item: a prefix (or anchor) plus its payload.
#[derive(Debug, Clone)]
pub struct MetaItem<L> {
    /// The prefix bytes (an anchor table key for leaf items).
    pub key: Box<[u8]>,
    /// CRC-32c of `key`.
    pub hash: u32,
    /// Item payload.
    pub kind: MetaKind<L>,
}

/// Number of slots per bucket: eight (tag16, item-index) pairs fill one
/// 64-byte cache line, the paper's layout.
const BUCKET_SLOTS: usize = 8;

/// One cache line of the hash table: eight 16-bit tags, eight `u32` item
/// indices, the live-slot count, and an optional overflow link.
///
/// `repr(C, align(64))` pins the record to exactly one 64-byte cache line
/// (tags 16 B + items 32 B + len/link 8 B + padding), so a probe's tag scan
/// is a single line fill.
#[repr(C, align(64))]
#[derive(Debug, Clone, Copy)]
struct Bucket {
    /// 16-bit tags of the live slots (`0..len`); compared in one SWAR pass.
    tags: [u16; BUCKET_SLOTS],
    /// Item indices paired with `tags`.
    items: [u32; BUCKET_SLOTS],
    /// Number of live slots (`0..=BUCKET_SLOTS`); live slots are packed at
    /// the front.
    len: u8,
    /// Off-by-one index of the next bucket in the overflow pool (0 = none).
    overflow: u32,
}

impl Bucket {
    const EMPTY: Bucket = Bucket {
        tags: [0; BUCKET_SLOTS],
        items: [0; BUCKET_SLOTS],
        len: 0,
        overflow: 0,
    };

    /// Bitmask of live slots.
    #[inline]
    fn live_mask(&self) -> u8 {
        ((1u32 << self.len) - 1) as u8
    }

    /// Bitmask of live slots whose tag equals `tag`: one SWAR pass over the
    /// bucket's whole tag lane, masked down to the live slots. The lowest
    /// set bit is always an exact match (see [`tag8_match_mask`]).
    #[inline]
    fn tag_matches(&self, tag: u16) -> u8 {
        tag8_match_mask(&self.tags, tag) & self.live_mask()
    }
}

// The whole point of the layout: one bucket, one cache line.
const _: () = assert!(std::mem::size_of::<Bucket>() == 64);
const _: () = assert!(std::mem::align_of::<Bucket>() == 64);

/// Position of a bucket: in the flat main array or in the overflow pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BucketLoc {
    /// Index into the main bucket array.
    Main(usize),
    /// Index into the overflow pool.
    Over(usize),
}

/// Grow when the table is more than ~3/4 full (6 of 8 slots per bucket on
/// average), the same load factor the seed layout used.
const GROW_NUM: usize = BUCKET_SLOTS - 2;

/// Number of lookups kept in flight by the batched search pipeline
/// ([`MetaTable::search_targets_window`]). Large enough that every probe's
/// bucket-line fill overlaps several others', small enough that the
/// prefetched lines are not evicted before their probe executes and that the
/// per-window scratch stays a few hundred stack bytes.
pub const BATCH_WINDOW: usize = 16;

/// Per-key state of one in-flight LPM binary search in the batched pipeline.
/// Deliberately plain data (no borrows) so a whole window of probes lives in
/// one stack array and `get_batch` stays allocation-free.
#[derive(Clone, Copy)]
struct LpmProbe {
    /// Binary-search bounds over prefix lengths (Algorithm 1).
    lo: usize,
    hi: usize,
    /// Best match so far.
    best_len: usize,
    best_item: u32,
    /// The prefix length whose bucket is prefetched and probed next.
    mid: usize,
    /// CRC-32c of `key[..mid]`.
    hash: u32,
    /// Incremental-hashing state (the paper's *IncHashing*, mirroring
    /// [`IncrementalHasher`] in POD form).
    committed_len: usize,
    committed_state: u32,
    /// Whether the binary search still has steps to run.
    live: bool,
}

impl LpmProbe {
    const IDLE: LpmProbe = LpmProbe {
        lo: 0,
        hi: 0,
        best_len: 0,
        best_item: 0,
        mid: 0,
        hash: 0,
        committed_len: 0,
        committed_state: 0,
        live: false,
    };

    /// CRC-32c of `key[..len]`, reusing (and extending) the committed state
    /// exactly like [`IncrementalHasher::hash_prefix_and_commit`].
    #[inline]
    fn prefix_hash(&mut self, key: &[u8], len: usize, inc_hashing: bool) -> u32 {
        if !inc_hashing {
            return crc32c(&key[..len]);
        }
        if len >= self.committed_len {
            let h = crc32c_append(self.committed_state, &key[self.committed_len..len]);
            self.committed_len = len;
            self.committed_state = h;
            h
        } else {
            crc32c_append(0, &key[..len])
        }
    }
}

/// A queued sibling/child step of the batched trie search: everything needed
/// to finish Algorithm 3 for one key once its child bucket's prefetch lands.
#[derive(Clone, Copy)]
struct PendingChild {
    /// The LPM item whose stored CRC seeds the child hash.
    item_idx: u32,
    /// Length of the matched prefix.
    match_len: usize,
    /// The sibling token chosen by `findOneSibling`.
    sibling: u8,
    /// Whether the sibling is above the missing token (`LeftOf` outcomes).
    above: bool,
    live: bool,
}

impl PendingChild {
    const IDLE: PendingChild = PendingChild {
        item_idx: 0,
        match_len: 0,
        sibling: 0,
        above: false,
        live: false,
    };
}

/// Outcome of the trie search (Algorithm 3) before leaf-list adjustment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TargetOutcome<L> {
    /// The returned leaf is the target node.
    Target(L),
    /// The target node is the left neighbour of the returned leaf.
    LeftOf(L),
    /// The returned leaf is the target unless `key < leaf.anchor`, in which
    /// case the target is its left neighbour (Algorithm 3, lines 4–7).
    CompareAnchor(L),
}

pub mod meta_plan {
    //! Declarative meta-update plans (Algorithm 4, factored out).
    //!
    //! A split or merge changes the MetaTrieHT by inserting, replacing, and
    //! deleting whole items. Instead of mutating a table in place, the plan
    //! builders ([`MetaTable::plan_split`] / [`MetaTable::plan_merge`]) read
    //! the *current* table and emit the absolute item writes as a
    //! [`MetaPlan`]. Because the concurrent index keeps its two tables (T1
    //! and T2) as exact logical copies of each other, the same plan can be
    //! applied verbatim to both — first to the spare table, then (after the
    //! RCU grace period) to the retired one — while the single-threaded
    //! index applies it once. This is what lets the split/merge bookkeeping
    //! live in exactly one place.
    //!
    //! [`MetaTable::plan_split`]: super::MetaTable::plan_split
    //! [`MetaTable::plan_merge`]: super::MetaTable::plan_merge

    use super::{LeafRef, MetaKind, MetaTable};

    /// One absolute write against a MetaTrieHT.
    #[derive(Debug, Clone)]
    pub enum MetaOp<L> {
        /// Insert `key` with `kind`, replacing any existing item.
        Put {
            /// The item key (a prefix or anchor table key).
            key: Vec<u8>,
            /// The payload the item must end up with.
            kind: MetaKind<L>,
        },
        /// Remove the item stored under `key`.
        Del {
            /// The item key to remove.
            key: Vec<u8>,
        },
    }

    /// The complete set of MetaTrieHT writes for one split or merge, plus
    /// the anchor relocations the leaf layer must mirror.
    #[derive(Debug, Clone, Default)]
    pub struct MetaPlan<L> {
        /// Item writes, to be applied in order.
        pub ops: Vec<MetaOp<L>>,
        /// Existing anchors that moved to a new table key (`prefix ⧺ ⊥`);
        /// the caller updates each leaf's own `table_key` record.
        pub relocations: Vec<(L, Vec<u8>)>,
    }

    /// Builds a plan against a read-only table: pending writes are kept in a
    /// local overlay consulted before the underlying table, so the builder
    /// observes its own earlier writes exactly like in-place mutation would.
    pub(super) struct PlanBuilder<'t, L> {
        table: &'t MetaTable<L>,
        overlay: Vec<(Vec<u8>, Option<MetaKind<L>>)>,
        plan: MetaPlan<L>,
    }

    impl<'t, L: LeafRef> PlanBuilder<'t, L> {
        pub(super) fn new(table: &'t MetaTable<L>) -> Self {
            Self {
                table,
                overlay: Vec::new(),
                plan: MetaPlan {
                    ops: Vec::new(),
                    relocations: Vec::new(),
                },
            }
        }

        /// The kind currently stored under `key`, as the plan-so-far would
        /// leave it (overlay first, then the underlying table).
        pub(super) fn current(&self, key: &[u8]) -> Option<MetaKind<L>> {
            if let Some((_, kind)) = self.overlay.iter().find(|(k, _)| k.as_slice() == key) {
                return kind.clone();
            }
            self.table.get(key).map(|item| item.kind.clone())
        }

        pub(super) fn put(&mut self, key: Vec<u8>, kind: MetaKind<L>) {
            self.set_overlay(&key, Some(kind.clone()));
            self.plan.ops.push(MetaOp::Put { key, kind });
        }

        pub(super) fn del(&mut self, key: Vec<u8>) {
            self.set_overlay(&key, None);
            self.plan.ops.push(MetaOp::Del { key });
        }

        pub(super) fn relocate(&mut self, leaf: L, new_key: Vec<u8>) {
            self.plan.relocations.push((leaf, new_key));
        }

        pub(super) fn finish(self) -> MetaPlan<L> {
            self.plan
        }

        fn set_overlay(&mut self, key: &[u8], kind: Option<MetaKind<L>>) {
            match self.overlay.iter_mut().find(|(k, _)| k.as_slice() == key) {
                Some((_, slot)) => *slot = kind,
                None => self.overlay.push((key.to_vec(), kind)),
            }
        }
    }
}

pub use meta_plan::{MetaOp, MetaPlan};

/// The MetaTrieHT hash table (cache-line-bucketized; see the module docs
/// for the layout).
#[derive(Debug, Clone)]
pub struct MetaTable<L> {
    /// The flat bucket array — one contiguous allocation of 64-byte records,
    /// always a power-of-two length.
    buckets: Box<[Bucket]>,
    /// Overflow buckets for the rare >8-collision bucket, chained through
    /// `Bucket::overflow` links; cleared on every resize.
    overflow: Vec<Bucket>,
    /// Item records, indexed by the `u32` values stored in bucket slots.
    items: Vec<Option<MetaItem<L>>>,
    free: Vec<u32>,
    len: usize,
    /// Length of the longest anchor table key ever inserted (the paper's
    /// `Lanc`, used to bound the binary search).
    max_anchor_len: usize,
}

impl<L: LeafRef> Default for MetaTable<L> {
    fn default() -> Self {
        Self::new()
    }
}

impl<L: LeafRef> MetaTable<L> {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self {
            buckets: vec![Bucket::EMPTY; 64].into_boxed_slice(),
            overflow: Vec::new(),
            items: Vec::new(),
            free: Vec::new(),
            len: 0,
            max_anchor_len: 0,
        }
    }

    /// Number of items (anchors plus internal prefixes).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when the table holds no items.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The longest anchor table key seen so far (`Lanc`).
    pub fn max_anchor_len(&self) -> usize {
        self.max_anchor_len
    }

    /// Approximate structure bytes used by the table.
    pub fn structure_bytes(&self) -> usize {
        let bucket_bytes =
            (self.buckets.len() + self.overflow.capacity()) * std::mem::size_of::<Bucket>();
        let item_keys: usize = self
            .items
            .iter()
            .flatten()
            .map(|i| i.key.len() + std::mem::size_of::<MetaItem<L>>())
            .sum();
        bucket_bytes + item_keys + self.items.capacity() * 8
    }

    /// Memory statistics contribution of the meta structure.
    pub fn stats(&self) -> IndexStats {
        IndexStats {
            keys: 0,
            structure_bytes: self.structure_bytes(),
            key_bytes: 0,
            value_bytes: 0,
        }
    }

    fn bucket_of(&self, hash: u32) -> usize {
        (mix64(hash as u64) as usize) & (self.buckets.len() - 1)
    }

    #[inline]
    fn bucket(&self, loc: BucketLoc) -> &Bucket {
        match loc {
            BucketLoc::Main(i) => &self.buckets[i],
            BucketLoc::Over(i) => &self.overflow[i],
        }
    }

    #[inline]
    fn bucket_mut(&mut self, loc: BucketLoc) -> &mut Bucket {
        match loc {
            BucketLoc::Main(i) => &mut self.buckets[i],
            BucketLoc::Over(i) => &mut self.overflow[i],
        }
    }

    /// Iterates the bucket chain for `hash`: the main-array bucket first,
    /// then any overflow buckets linked behind it. Every read-side walk
    /// (exact find, optimistic probe, child lookup, slot location) goes
    /// through this single definition of the chain protocol.
    #[inline]
    fn chain(&self, hash: u32) -> impl Iterator<Item = (BucketLoc, &Bucket)> {
        let mut next = Some(BucketLoc::Main(self.bucket_of(hash)));
        std::iter::from_fn(move || {
            let loc = next?;
            let bucket = self.bucket(loc);
            next = (bucket.overflow != 0).then(|| BucketLoc::Over((bucket.overflow - 1) as usize));
            Some((loc, bucket))
        })
    }

    /// Finds the item index for `key` (exact, always verified): a tag scan
    /// over each cache-line bucket, dereferencing an item record only after
    /// its 16-bit tag matched.
    fn find(&self, key: &[u8], hash: u32) -> Option<u32> {
        let tag = tag16(hash);
        for (_, bucket) in self.chain(hash) {
            let mut mask = bucket.tag_matches(tag);
            while mask != 0 {
                let slot = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                let idx = bucket.items[slot];
                let item = self.items[idx as usize].as_ref().expect("live item");
                if item.key.as_ref() == key {
                    return Some(idx);
                }
            }
        }
        None
    }

    /// Probes for a prefix during the LPM binary search. With `optimistic`
    /// set (the *TagMatching* optimisation) the first tag match is trusted
    /// without comparing the stored prefix bytes — the probe never leaves
    /// the bucket cache line(s).
    fn probe(&self, key: &[u8], hash: u32, optimistic: bool) -> Option<u32> {
        if optimistic {
            let tag = tag16(hash);
            self.chain(hash).find_map(|(_, bucket)| {
                let mask = bucket.tag_matches(tag);
                // The lowest set bit is always an exact tag match (see
                // `tag8_match_mask`).
                (mask != 0).then(|| bucket.items[mask.trailing_zeros() as usize])
            })
        } else {
            self.find(key, hash)
        }
    }

    /// Finds the item whose key is `prefix` extended by `token`, given the
    /// CRC of `prefix`. Used by the trie search's sibling step (Algorithm 3)
    /// so that no concatenated key needs to be materialised.
    fn find_child(&self, prefix: &[u8], prefix_hash: u32, token: u8) -> Option<&MetaItem<L>> {
        let hash = crc32c_append(prefix_hash, &[token]);
        let tag = tag16(hash);
        for (_, bucket) in self.chain(hash) {
            let mut mask = bucket.tag_matches(tag);
            while mask != 0 {
                let slot = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                let idx = bucket.items[slot];
                let item = self.items[idx as usize].as_ref().expect("live item");
                let k = item.key.as_ref();
                if k.len() == prefix.len() + 1
                    && k[prefix.len()] == token
                    && &k[..prefix.len()] == prefix
                {
                    return Some(item);
                }
            }
        }
        None
    }

    /// Locates the bucket and slot currently holding item `target` (which
    /// must be live under `hash`).
    fn locate_slot(&self, hash: u32, target: u32) -> Option<(BucketLoc, usize)> {
        self.chain(hash).find_map(|(loc, bucket)| {
            (0..bucket.len as usize)
                .find(|&slot| bucket.items[slot] == target)
                .map(|slot| (loc, slot))
        })
    }

    /// Appends a (tag, item) slot to the bucket chain for `hash`, extending
    /// the chain with a pool bucket when every slot is full.
    fn insert_slot(&mut self, hash: u32, item: u32) {
        let tag = tag16(hash);
        let mut loc = BucketLoc::Main(self.bucket_of(hash));
        loop {
            let bucket = self.bucket_mut(loc);
            if (bucket.len as usize) < BUCKET_SLOTS {
                let slot = bucket.len as usize;
                bucket.tags[slot] = tag;
                bucket.items[slot] = item;
                bucket.len += 1;
                return;
            }
            if bucket.overflow != 0 {
                loc = BucketLoc::Over((bucket.overflow - 1) as usize);
                continue;
            }
            // Chain a fresh overflow bucket holding the new slot.
            let mut fresh = Bucket::EMPTY;
            fresh.tags[0] = tag;
            fresh.items[0] = item;
            fresh.len = 1;
            let link = self.overflow.len() as u32 + 1;
            self.overflow.push(fresh);
            self.bucket_mut(loc).overflow = link;
            return;
        }
    }

    /// Removes the slot holding `target` by swapping the chain's last live
    /// slot into the hole, so live slots stay packed at the front of every
    /// bucket.
    fn remove_slot(&mut self, hash: u32, target: u32) {
        let (loc, slot) = self
            .locate_slot(hash, target)
            .expect("slot present for removal");
        // The chain's last live bucket supplies the replacement slot (bucket
        // fullness is monotone along the chain, so the last live bucket is
        // unambiguous and at least `loc` itself qualifies).
        let last_loc = self
            .chain(hash)
            .filter(|(_, bucket)| bucket.len > 0)
            .last()
            .map(|(loc, _)| loc)
            .expect("chain holds at least the located bucket");
        // Swap the chain's final live slot into the hole (may be the hole
        // itself) and shrink the final bucket. Empty overflow buckets stay
        // linked; they are reclaimed wholesale on the next resize.
        let last = self.bucket_mut(last_loc);
        let last_slot = last.len as usize - 1;
        let (moved_tag, moved_item) = (last.tags[last_slot], last.items[last_slot]);
        last.len -= 1;
        if last_loc != loc || last_slot != slot {
            let bucket = self.bucket_mut(loc);
            bucket.tags[slot] = moved_tag;
            bucket.items[slot] = moved_item;
        }
    }

    /// Returns the item stored under `key`, if any.
    pub fn get(&self, key: &[u8]) -> Option<&MetaItem<L>> {
        let hash = crc32c(key);
        self.find(key, hash)
            .map(|idx| self.items[idx as usize].as_ref().expect("live item"))
    }

    /// Returns the item stored under `key`, mutably.
    pub fn get_mut(&mut self, key: &[u8]) -> Option<&mut MetaItem<L>> {
        let hash = crc32c(key);
        let idx = self.find(key, hash)?;
        self.items[idx as usize].as_mut()
    }

    /// Returns `true` when `key` is present.
    pub fn contains(&self, key: &[u8]) -> bool {
        self.get(key).is_some()
    }

    /// Tag-only membership probe — the §3.1 optimistic *TagMatching* probe
    /// the LPM binary search runs at every step: bucket tag lanes are
    /// scanned without ever touching an item record, so rare 16-bit-tag
    /// false positives are possible. Exposed for the probe benchmarks.
    pub fn probe_optimistic(&self, key: &[u8]) -> bool {
        let hash = crc32c(key);
        self.probe(key, hash, true).is_some()
    }

    /// Inserts `kind` under `key`, replacing and returning any previous item.
    pub fn insert(&mut self, key: &[u8], kind: MetaKind<L>) -> Option<MetaKind<L>> {
        let hash = crc32c(key);
        if let Some(idx) = self.find(key, hash) {
            let item = self.items[idx as usize].as_mut().expect("live item");
            return Some(std::mem::replace(&mut item.kind, kind));
        }
        if self.len + 1 > self.buckets.len() * GROW_NUM {
            self.grow();
        }
        let is_leaf = matches!(kind, MetaKind::Leaf(_));
        let item = MetaItem {
            key: key.to_vec().into_boxed_slice(),
            hash,
            kind,
        };
        let idx = match self.free.pop() {
            Some(idx) => {
                self.items[idx as usize] = Some(item);
                idx
            }
            None => {
                self.items.push(Some(item));
                (self.items.len() - 1) as u32
            }
        };
        self.insert_slot(hash, idx);
        self.len += 1;
        if is_leaf {
            self.max_anchor_len = self.max_anchor_len.max(key.len());
        }
        None
    }

    /// Removes the item stored under `key`.
    pub fn remove(&mut self, key: &[u8]) -> Option<MetaItem<L>> {
        let hash = crc32c(key);
        let idx = self.find(key, hash)?;
        self.remove_slot(hash, idx);
        self.len -= 1;
        self.free.push(idx);
        self.items[idx as usize].take()
    }

    /// Doubles the flat bucket array, rehashing every slot straight from the
    /// item records (each stores its full CRC). The overflow pool is rebuilt
    /// from scratch — under the doubled bucket count almost no chain
    /// survives — and no per-bucket allocation happens at any point.
    fn grow(&mut self) {
        let new_size = self.buckets.len() * 2;
        self.buckets = vec![Bucket::EMPTY; new_size].into_boxed_slice();
        self.overflow.clear();
        for idx in 0..self.items.len() {
            let Some(hash) = self.items[idx].as_ref().map(|item| item.hash) else {
                continue;
            };
            self.insert_slot(hash, idx as u32);
        }
    }

    /// Iterates all live items.
    pub fn iter(&self) -> impl Iterator<Item = &MetaItem<L>> + '_ {
        self.items.iter().flatten()
    }

    // ------------------------------------------------------------------
    // Search (Algorithms 1 and 3).
    // ------------------------------------------------------------------

    /// Binary search on prefix lengths for the longest prefix of `key` that
    /// exists in the table (Algorithm 1). Returns the matched item index and
    /// the match length.
    fn search_lpm(&self, key: &[u8], config: &WormholeConfig) -> (u32, usize) {
        let bound = key.len().min(self.max_anchor_len);
        let optimistic = config.tag_matching;
        match self.search_lpm_once(key, bound, optimistic, config.inc_hashing) {
            Some(found) => found,
            // A tag false-positive misled the optimistic search; redo it
            // with full prefix comparisons (§3.1).
            None => {
                debug_assert!(optimistic);
                self.search_lpm_once(key, bound, false, config.inc_hashing)
                    .expect("exact LPM search cannot fail verification")
            }
        }
    }

    /// One pass of the binary search. Returns `None` when the final
    /// verification detects that optimistic tag matching went down a wrong
    /// path.
    fn search_lpm_once(
        &self,
        key: &[u8],
        bound: usize,
        optimistic: bool,
        inc_hashing: bool,
    ) -> Option<(u32, usize)> {
        let mut hasher = IncrementalHasher::new(key);
        let hash_at = |hasher: &mut IncrementalHasher<'_>, len: usize| -> u32 {
            if inc_hashing {
                hasher.hash_prefix_and_commit(len)
            } else {
                crc32c(&key[..len])
            }
        };
        // The empty prefix is always present (the trie root).
        let mut best_len = 0usize;
        let root_hash = hash_at(&mut hasher, 0);
        let mut best_item = self
            .probe(&key[..0], root_hash, false)
            .expect("the root item must exist");
        let mut lo = 0usize;
        let mut hi = bound + 1;
        while lo + 1 < hi {
            let mid = (lo + hi) / 2;
            let h = hash_at(&mut hasher, mid);
            match self.probe(&key[..mid], h, optimistic) {
                Some(item) => {
                    lo = mid;
                    best_len = mid;
                    best_item = item;
                }
                None => hi = mid,
            }
        }
        if optimistic && best_len > 0 {
            // Verify the final match; tag collisions may have lied earlier.
            let item = self.items[best_item as usize].as_ref().expect("live item");
            if item.key.as_ref() != &key[..best_len] {
                return None;
            }
        }
        Some((best_item, best_len))
    }

    /// Full trie search (Algorithm 3, `searchTrieHT`): returns the target
    /// leaf, up to the final leaf-list adjustment which requires the caller's
    /// leaf links.
    pub fn search_target(&self, key: &[u8], config: &WormholeConfig) -> TargetOutcome<L> {
        let (item_idx, match_len) = self.search_lpm(key, config);
        let item = self.items[item_idx as usize].as_ref().expect("live item");
        match &item.kind {
            MetaKind::Leaf(leaf) => TargetOutcome::Target(leaf.clone()),
            MetaKind::Internal(node) => {
                if match_len == key.len() {
                    // The whole key is an interior prefix: the target is the
                    // subtree's leftmost leaf or its left neighbour.
                    return TargetOutcome::CompareAnchor(node.leftmost.clone());
                }
                let missing = key[match_len];
                let Some(sibling) = node.bitmap.find_one_sibling(missing) else {
                    // An internal node always has at least one child; treat a
                    // corrupted bitmap as "use the subtree bounds".
                    debug_assert!(false, "internal node with empty bitmap");
                    return TargetOutcome::Target(node.rightmost.clone());
                };
                // The child's key is the matched prefix plus one token; its
                // hash extends the matched item's stored CRC, so the probe
                // needs no materialised key (the lookup hot path stays
                // allocation-free).
                let child = self
                    .find_child(&key[..match_len], item.hash, sibling)
                    .expect("bitmap bit set but child item missing");
                match &child.kind {
                    MetaKind::Leaf(leaf) => {
                        if sibling > missing {
                            TargetOutcome::LeftOf(leaf.clone())
                        } else {
                            TargetOutcome::Target(leaf.clone())
                        }
                    }
                    MetaKind::Internal(child_node) => {
                        if sibling > missing {
                            TargetOutcome::LeftOf(child_node.leftmost.clone())
                        } else {
                            TargetOutcome::Target(child_node.rightmost.clone())
                        }
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Batched search (the memory-level-parallelism pipeline).
    // ------------------------------------------------------------------

    /// Prefetches the main-array bucket for `hash` — the first cache line a
    /// probe for that hash will touch. Overflow chains (rare by
    /// construction) are not prefetched.
    #[inline]
    fn prefetch_bucket(&self, hash: u32) {
        prefetch_read(&self.buckets[self.bucket_of(hash)] as *const Bucket);
    }

    /// Pipelined LPM binary search over a window of keys (Algorithm 1,
    /// batched). Semantically identical to running [`MetaTable::search_lpm`]
    /// per key; the difference is scheduling: every in-flight probe's next
    /// bucket is prefetched before any probe executes, and the search steps
    /// are round-robined across the keys so each probe's cache miss overlaps
    /// the others'. Fills `out[..keys.len()]` with `(item, match_len)`.
    fn search_lpm_window(
        &self,
        keys: &[&[u8]],
        config: &WormholeConfig,
        out: &mut [(u32, usize); BATCH_WINDOW],
    ) {
        debug_assert!(keys.len() <= BATCH_WINDOW);
        let optimistic = config.tag_matching;
        let inc_hashing = config.inc_hashing;
        // The empty prefix (the trie root) is shared by every key in the
        // window: probe it once for all of them.
        let root_item = self
            .probe(&[], crc32c(&[]), false)
            .expect("the root item must exist");
        let mut probes = [LpmProbe::IDLE; BATCH_WINDOW];
        let mut live = 0usize;
        for (i, key) in keys.iter().enumerate() {
            let bound = key.len().min(self.max_anchor_len);
            let p = &mut probes[i];
            *p = LpmProbe {
                lo: 0,
                hi: bound + 1,
                best_item: root_item,
                ..LpmProbe::IDLE
            };
            if p.lo + 1 < p.hi {
                p.mid = (p.lo + p.hi) / 2;
                p.hash = p.prefix_hash(key, p.mid, inc_hashing);
                self.prefetch_bucket(p.hash);
                p.live = true;
                live += 1;
            }
        }
        // Round-robin rounds: execute each probe's already-prefetched step,
        // then immediately compute and prefetch its next one. While probe
        // i's line is filling, probes i+1.. execute theirs.
        while live > 0 {
            for (i, key) in keys.iter().enumerate() {
                let p = &mut probes[i];
                if !p.live {
                    continue;
                }
                match self.probe(&key[..p.mid], p.hash, optimistic) {
                    Some(item) => {
                        p.lo = p.mid;
                        p.best_len = p.mid;
                        p.best_item = item;
                    }
                    None => p.hi = p.mid,
                }
                if p.lo + 1 < p.hi {
                    p.mid = (p.lo + p.hi) / 2;
                    p.hash = p.prefix_hash(key, p.mid, inc_hashing);
                    self.prefetch_bucket(p.hash);
                } else {
                    p.live = false;
                    live -= 1;
                }
            }
        }
        for (i, key) in keys.iter().enumerate() {
            let p = &probes[i];
            let mut found = (p.best_item, p.best_len);
            if optimistic && p.best_len > 0 {
                // Verify the final match; tag collisions may have misled the
                // optimistic search — redo it exactly, like the single-key
                // path (§3.1).
                let item = self.items[p.best_item as usize]
                    .as_ref()
                    .expect("live item");
                if item.key.as_ref() != &key[..p.best_len] {
                    found = self
                        .search_lpm_once(
                            key,
                            key.len().min(self.max_anchor_len),
                            false,
                            inc_hashing,
                        )
                        .expect("exact LPM search cannot fail verification");
                }
            }
            out[i] = found;
        }
    }

    /// Batched trie search (Algorithm 3 over a window of keys): the
    /// pipelined LPM pass, then an overlapped sibling/child step whose
    /// bucket lines are all prefetched before any child probe executes.
    /// Produces exactly the outcomes [`MetaTable::search_target`] would per
    /// key, written to `out[..keys.len()]`. `keys.len()` must not exceed
    /// [`BATCH_WINDOW`].
    pub fn search_targets_window(
        &self,
        keys: &[&[u8]],
        config: &WormholeConfig,
        out: &mut [Option<TargetOutcome<L>>],
    ) {
        assert!(keys.len() <= BATCH_WINDOW, "window exceeds BATCH_WINDOW");
        assert!(out.len() >= keys.len(), "output window too small");
        let mut lpm = [(0u32, 0usize); BATCH_WINDOW];
        self.search_lpm_window(keys, config, &mut lpm);
        // First pass: resolve the keys whose match is already terminal and
        // queue the rest's sibling step with its child bucket prefetched.
        let mut pending = [PendingChild::IDLE; BATCH_WINDOW];
        for (i, key) in keys.iter().enumerate() {
            let (item_idx, match_len) = lpm[i];
            let item = self.items[item_idx as usize].as_ref().expect("live item");
            match &item.kind {
                MetaKind::Leaf(leaf) => out[i] = Some(TargetOutcome::Target(leaf.clone())),
                MetaKind::Internal(node) => {
                    if match_len == key.len() {
                        out[i] = Some(TargetOutcome::CompareAnchor(node.leftmost.clone()));
                        continue;
                    }
                    let missing = key[match_len];
                    let Some(sibling) = node.bitmap.find_one_sibling(missing) else {
                        debug_assert!(false, "internal node with empty bitmap");
                        out[i] = Some(TargetOutcome::Target(node.rightmost.clone()));
                        continue;
                    };
                    self.prefetch_bucket(crc32c_append(item.hash, &[sibling]));
                    pending[i] = PendingChild {
                        item_idx,
                        match_len,
                        sibling,
                        above: sibling > missing,
                        live: true,
                    };
                }
            }
        }
        // Second pass: the prefetched child probes.
        for (i, key) in keys.iter().enumerate() {
            let p = pending[i];
            if !p.live {
                continue;
            }
            let item = self.items[p.item_idx as usize].as_ref().expect("live item");
            let child = self
                .find_child(&key[..p.match_len], item.hash, p.sibling)
                .expect("bitmap bit set but child item missing");
            out[i] = Some(match (&child.kind, p.above) {
                (MetaKind::Leaf(leaf), true) => TargetOutcome::LeftOf(leaf.clone()),
                (MetaKind::Leaf(leaf), false) => TargetOutcome::Target(leaf.clone()),
                (MetaKind::Internal(node), true) => TargetOutcome::LeftOf(node.leftmost.clone()),
                (MetaKind::Internal(node), false) => TargetOutcome::Target(node.rightmost.clone()),
            });
        }
    }

    // ------------------------------------------------------------------
    // Structural updates (Algorithm 4).
    // ------------------------------------------------------------------

    /// Chooses the table key for a new anchor: appends ⊥ (zero) tokens while
    /// the candidate collides with an existing prefix, so the new anchor is
    /// not a prefix of any existing anchor (§2.2's prefix condition).
    pub fn reserve_anchor_key(&self, anchor: &[u8]) -> Vec<u8> {
        let mut key = anchor.to_vec();
        while self.contains(&key) {
            key.push(0);
        }
        key
    }

    /// Computes the meta-update plan registering a freshly split-off leaf
    /// under `table_key` (split half of Algorithm 4). The table is not
    /// modified; apply the returned plan with [`MetaTable::apply_plan`].
    ///
    /// * `new_leaf` — the new right sibling created by the split;
    /// * `split_leaf` — the leaf that was split (left half, keeps its anchor);
    /// * `old_right` — the leaf that was to the right of `split_leaf` before
    ///   the split (now to the right of `new_leaf`), if any.
    ///
    /// The plan's `relocations` list the existing anchors that moved to a new
    /// table key so the caller can update the leaves' own records.
    pub fn plan_split(
        &self,
        table_key: &[u8],
        new_leaf: L,
        split_leaf: &L,
        old_right: Option<&L>,
    ) -> MetaPlan<L> {
        let mut plan = meta_plan::PlanBuilder::new(self);
        debug_assert!(
            plan.current(table_key).is_none(),
            "anchor table key must be unused"
        );
        plan.put(table_key.to_vec(), MetaKind::Leaf(new_leaf.clone()));
        for plen in 0..table_key.len() {
            let prefix = &table_key[..plen];
            let token = table_key[plen];
            match plan.current(prefix) {
                None => {
                    let mut bitmap = TokenBitmap::new();
                    bitmap.set(token);
                    plan.put(
                        prefix.to_vec(),
                        MetaKind::internal(bitmap, new_leaf.clone(), new_leaf.clone()),
                    );
                }
                Some(MetaKind::Internal(mut node)) => {
                    node.bitmap.set(token);
                    if node.rightmost.same(split_leaf) {
                        node.rightmost = new_leaf.clone();
                    }
                    if let Some(right) = old_right {
                        if node.leftmost.same(right) {
                            node.leftmost = new_leaf.clone();
                        }
                    }
                    plan.put(prefix.to_vec(), MetaKind::Internal(node));
                }
                Some(MetaKind::Leaf(existing)) => {
                    // An existing anchor equals this prefix: relocate it to
                    // `prefix ⧺ ⊥` and put an internal node in its place
                    // (Algorithm 4, lines 15–18).
                    let mut relocated_key = prefix.to_vec();
                    relocated_key.push(0);
                    debug_assert!(plan.current(&relocated_key).is_none());
                    plan.put(relocated_key.clone(), MetaKind::Leaf(existing.clone()));
                    let mut bitmap = TokenBitmap::new();
                    bitmap.set(0);
                    bitmap.set(token);
                    plan.put(
                        prefix.to_vec(),
                        MetaKind::internal(bitmap, existing.clone(), new_leaf.clone()),
                    );
                    plan.relocate(existing, relocated_key);
                }
            }
        }
        plan.finish()
    }

    /// Computes the meta-update plan unregistering a merged-away leaf (merge
    /// half of Algorithm 4). The table is not modified; apply the returned
    /// plan with [`MetaTable::apply_plan`].
    ///
    /// * `victim_table_key` — the removed leaf's registration key;
    /// * `victim` — the removed leaf;
    /// * `victim_left` — its left neighbour (the leaf that absorbed it);
    /// * `victim_right` — its right neighbour, if any.
    pub fn plan_merge(
        &self,
        victim_table_key: &[u8],
        victim: &L,
        victim_left: &L,
        victim_right: Option<&L>,
    ) -> MetaPlan<L> {
        let mut plan = meta_plan::PlanBuilder::new(self);
        debug_assert!(
            matches!(plan.current(victim_table_key), Some(MetaKind::Leaf(_))),
            "victim anchor must be registered as a leaf item"
        );
        plan.del(victim_table_key.to_vec());
        let mut child_removed = true;
        for plen in (0..victim_table_key.len()).rev() {
            let prefix = &victim_table_key[..plen];
            let token = victim_table_key[plen];
            let Some(MetaKind::Internal(mut node)) = plan.current(prefix) else {
                debug_assert!(false, "prefix of an anchor must be an internal item");
                continue;
            };
            if child_removed {
                node.bitmap.clear(token);
            }
            if node.bitmap.is_empty() {
                plan.del(prefix.to_vec());
                child_removed = true;
            } else {
                child_removed = false;
                if node.leftmost.same(victim) {
                    // The subtree's leaves form a contiguous run of the
                    // leaf list, so the victim's right neighbour takes over.
                    node.leftmost = victim_right.cloned().unwrap_or_else(|| victim_left.clone());
                }
                if node.rightmost.same(victim) {
                    node.rightmost = victim_left.clone();
                }
                plan.put(prefix.to_vec(), MetaKind::Internal(node));
            }
        }
        plan.finish()
    }

    /// Applies a plan computed by [`MetaTable::plan_split`] or
    /// [`MetaTable::plan_merge`]. Because plans are absolute item writes, the
    /// same plan applied to two logically identical tables leaves them
    /// logically identical again (the concurrent index's T2-then-T1
    /// protocol relies on this).
    pub fn apply_plan(&mut self, plan: &MetaPlan<L>) {
        for op in &plan.ops {
            match op {
                MetaOp::Put { key, kind } => {
                    self.insert(key, kind.clone());
                }
                MetaOp::Del { key } => {
                    self.remove(key);
                }
            }
        }
    }

    /// Plans and immediately applies a split (convenience for the
    /// single-table callers and tests). Returns the anchor relocations.
    pub fn apply_split(
        &mut self,
        table_key: &[u8],
        new_leaf: L,
        split_leaf: &L,
        old_right: Option<&L>,
    ) -> Vec<(L, Vec<u8>)> {
        let plan = self.plan_split(table_key, new_leaf, split_leaf, old_right);
        self.apply_plan(&plan);
        plan.relocations
    }

    /// Plans and immediately applies a merge (convenience for the
    /// single-table callers and tests).
    pub fn apply_merge(
        &mut self,
        victim_table_key: &[u8],
        victim: &L,
        victim_left: &L,
        victim_right: Option<&L>,
    ) {
        let plan = self.plan_merge(victim_table_key, victim, victim_left, victim_right);
        self.apply_plan(&plan);
    }

    /// Registers the very first leaf (empty anchor) of a new index.
    pub fn install_root_leaf(&mut self, leaf: L) {
        debug_assert!(self.is_empty());
        self.insert(&[], MetaKind::Leaf(leaf));
    }

    /// Creates an empty table with a tiny bucket array, so tests can force
    /// bucket-overflow chains deterministically.
    #[cfg(test)]
    fn with_bucket_count(buckets: usize) -> Self {
        assert!(buckets.is_power_of_two());
        Self {
            buckets: vec![Bucket::EMPTY; buckets].into_boxed_slice(),
            overflow: Vec::new(),
            items: Vec::new(),
            free: Vec::new(),
            len: 0,
            max_anchor_len: 0,
        }
    }

    /// Number of overflow buckets currently allocated (tests only).
    #[cfg(test)]
    fn overflow_buckets(&self) -> usize {
        self.overflow.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> WormholeConfig {
        WormholeConfig::optimized()
    }

    #[test]
    fn bitmap_set_clear_test() {
        let mut b = TokenBitmap::new();
        assert!(b.is_empty());
        for t in [0u8, 1, 63, 64, 127, 128, 200, 255] {
            b.set(t);
            assert!(b.test(t));
        }
        assert_eq!(b.count(), 8);
        b.clear(64);
        assert!(!b.test(64));
        assert_eq!(b.count(), 7);
        assert!(!b.is_empty());
    }

    #[test]
    fn bitmap_sibling_search() {
        let mut b = TokenBitmap::new();
        b.set(b'A');
        b.set(b'J');
        // 'D' sits between 'A' and 'J': the left sibling wins.
        assert_eq!(b.find_one_sibling(b'D'), Some(b'A'));
        // Below the smallest set bit only a right sibling exists.
        assert_eq!(b.find_one_sibling(b'0'), Some(b'A'));
        // Above the largest set bit the left sibling is 'J'.
        assert_eq!(b.find_one_sibling(b'z'), Some(b'J'));
        assert_eq!(TokenBitmap::new().find_one_sibling(100), None);
        // Boundary tokens.
        let mut edge = TokenBitmap::new();
        edge.set(0);
        edge.set(255);
        assert_eq!(edge.find_one_sibling(1), Some(0));
        assert_eq!(edge.find_one_sibling(254), Some(0));
        assert_eq!(edge.prev_set(0), None);
        assert_eq!(edge.next_set(255), None);
    }

    #[test]
    fn insert_get_remove_items() {
        let mut t: MetaTable<u32> = MetaTable::new();
        assert!(t.insert(b"Ja", MetaKind::Leaf(1)).is_none());
        assert!(t.contains(b"Ja"));
        assert!(!t.contains(b"J"));
        let mut bitmap = TokenBitmap::new();
        bitmap.set(b'a');
        t.insert(b"J", MetaKind::internal(bitmap, 1, 1));
        assert_eq!(t.len(), 2);
        assert!(matches!(
            t.get(b"J").unwrap().kind,
            MetaKind::Internal { .. }
        ));
        assert!(t.remove(b"Ja").is_some());
        assert!(!t.contains(b"Ja"));
        assert!(t.remove(b"Ja").is_none());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn overflow_chain_insert_find_remove() {
        // A single-bucket table: every key collides, so the ninth insert
        // must chain into the overflow pool.
        let mut t: MetaTable<u32> = MetaTable::with_bucket_count(1);
        let keys: Vec<Vec<u8>> = (0..10u32)
            .map(|i| format!("ovf-{i}").into_bytes())
            .collect();
        for (i, k) in keys.iter().enumerate() {
            // Stay below the grow threshold (1 bucket * 6) by growing once:
            // after the automatic grow to 2 buckets the threshold is 12.
            t.insert(k, MetaKind::Leaf(i as u32));
        }
        assert_eq!(t.len(), 10);
        for (i, k) in keys.iter().enumerate() {
            match &t.get(k).expect("present").kind {
                MetaKind::Leaf(l) => assert_eq!(*l, i as u32, "{k:?}"),
                other => panic!("unexpected {other:?}"),
            }
        }
        // Remove from the middle and the ends; every survivor stays findable.
        let removed = [0usize, 4, 9, 5];
        for &victim in &removed {
            assert!(t.remove(&keys[victim]).is_some());
        }
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(t.get(k).is_some(), !removed.contains(&i), "{k:?}");
        }
        assert_eq!(t.len(), 6);
    }

    #[test]
    fn overflow_chain_forced_without_grow() {
        // Force a genuine >8 chain on one bucket of a 2-bucket table by
        // picking keys that hash into bucket 0.
        let mut t: MetaTable<u32> = MetaTable::with_bucket_count(2);
        let mut picked = Vec::new();
        let mut i = 0u32;
        while picked.len() < 10 {
            let key = format!("chain-{i}").into_bytes();
            if t.bucket_of(wh_hash::crc32c(&key)) == 0 {
                picked.push(key);
            }
            i += 1;
        }
        for (v, k) in picked.iter().enumerate() {
            t.insert(k, MetaKind::Leaf(v as u32));
        }
        assert!(t.overflow_buckets() >= 1, "ten colliding keys must chain");
        for (v, k) in picked.iter().enumerate() {
            match &t.get(k).expect("present").kind {
                MetaKind::Leaf(l) => assert_eq!(*l, v as u32),
                other => panic!("unexpected {other:?}"),
            }
        }
        // Drain the chain completely and refill it.
        for k in &picked {
            assert!(t.remove(k).is_some());
        }
        assert!(t.is_empty());
        for (v, k) in picked.iter().enumerate() {
            t.insert(k, MetaKind::Leaf(v as u32));
            assert!(t.contains(k), "{v}");
        }
        assert_eq!(t.len(), 10);
    }

    #[test]
    fn grow_rebuilds_overflow_pool() {
        let mut t: MetaTable<u32> = MetaTable::with_bucket_count(1);
        // 200 items force several doublings; the pool must shrink back as
        // buckets spread the load.
        for i in 0..200u32 {
            t.insert(format!("g-{i}").as_bytes(), MetaKind::Leaf(i));
        }
        for i in 0..200u32 {
            assert!(t.contains(format!("g-{i}").as_bytes()), "{i}");
        }
        // After growing to >= 64 buckets for 200 items, chains are rare.
        assert!(
            t.overflow_buckets() <= 4,
            "grow must rebuild chains, found {}",
            t.overflow_buckets()
        );
    }

    #[test]
    fn table_grows_under_load() {
        let mut t: MetaTable<u32> = MetaTable::new();
        for i in 0..5000u32 {
            t.insert(format!("prefix-{i}").as_bytes(), MetaKind::Leaf(i));
        }
        assert_eq!(t.len(), 5000);
        for i in 0..5000u32 {
            match &t.get(format!("prefix-{i}").as_bytes()).unwrap().kind {
                MetaKind::Leaf(l) => assert_eq!(*l, i),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    /// Builds the paper's Figure 5 example table: anchors ⊥(""), "Au",
    /// "Jam", "Jos" for leaves 1–4.
    fn figure5_table() -> MetaTable<u32> {
        let mut t: MetaTable<u32> = MetaTable::new();
        t.install_root_leaf(1);
        // Split leaf 1 -> new leaf 2 with anchor "Au".
        let key = t.reserve_anchor_key(b"Au");
        assert_eq!(key, b"Au".to_vec());
        t.apply_split(&key, 2, &1, None);
        // Split leaf 2 -> new leaf 3 with anchor "Jam" (right of 2).
        let key = t.reserve_anchor_key(b"Jam");
        t.apply_split(&key, 3, &2, None);
        // Split leaf 3 -> new leaf 4 with anchor "Jos".
        let key = t.reserve_anchor_key(b"Jos");
        t.apply_split(&key, 4, &3, None);
        t
    }

    #[test]
    fn figure5_structure() {
        let t = figure5_table();
        // The root is internal; the original leaf was relocated to "\0".
        assert!(matches!(
            t.get(b"").unwrap().kind,
            MetaKind::Internal { .. }
        ));
        assert!(matches!(t.get(b"\0").unwrap().kind, MetaKind::Leaf(1)));
        assert!(matches!(t.get(b"Au").unwrap().kind, MetaKind::Leaf(2)));
        assert!(matches!(t.get(b"Jam").unwrap().kind, MetaKind::Leaf(3)));
        assert!(matches!(t.get(b"Jos").unwrap().kind, MetaKind::Leaf(4)));
        // Internal prefixes: "A", "J", "Ja", "Jo".
        for p in [b"A".as_ref(), b"J", b"Ja", b"Jo"] {
            assert!(
                matches!(t.get(p).unwrap().kind, MetaKind::Internal { .. }),
                "{p:?}"
            );
        }
        // Figure 5's root bitmap lists children ⊥, 'A', 'J'.
        if let MetaKind::Internal(node) = &t.get(b"").unwrap().kind {
            assert!(node.bitmap.test(0) && node.bitmap.test(b'A') && node.bitmap.test(b'J'));
            assert_eq!(node.bitmap.count(), 3);
            assert_eq!(node.leftmost, 1);
            assert_eq!(node.rightmost, 4);
        }
        // The "J" subtree spans leaves 3..4 ("Jam" and "Jos").
        if let MetaKind::Internal(node) = &t.get(b"J").unwrap().kind {
            assert_eq!(node.leftmost, 3);
            assert_eq!(node.rightmost, 4);
        }
        assert_eq!(t.max_anchor_len(), 3);
    }

    #[test]
    fn figure4_lookups() {
        let t = figure5_table();
        let config = cfg();
        // "Joseph" matches the anchor "Jos" exactly -> leaf 4.
        assert_eq!(
            t.search_target(b"Joseph", &config),
            TargetOutcome::Target(4)
        );
        // "James" has LPM "Jam" -> leaf 3.
        assert_eq!(t.search_target(b"James", &config), TargetOutcome::Target(3));
        // "Denice": LPM "", missing 'D', siblings 'A' (left) and 'J' (right);
        // the left subtree's rightmost leaf is leaf 2.
        assert_eq!(
            t.search_target(b"Denice", &config),
            TargetOutcome::Target(2)
        );
        // "Julian": LPM "J", missing 'u', left sibling 'o' -> subtree "Jo"
        // whose rightmost leaf is 4.
        assert_eq!(
            t.search_target(b"Julian", &config),
            TargetOutcome::Target(4)
        );
        // "A": the whole key is an interior prefix -> compare against the
        // anchor of the subtree's leftmost leaf (leaf 2, anchor "Au").
        assert_eq!(
            t.search_target(b"A", &config),
            TargetOutcome::CompareAnchor(2)
        );
        // "Aaron": LPM "A", missing 'a' < 'u' -> right sibling "Au" is a
        // leaf, so the target is its left neighbour.
        assert_eq!(t.search_target(b"Aaron", &config), TargetOutcome::LeftOf(2));
    }

    #[test]
    fn search_is_consistent_across_configs() {
        let t = figure5_table();
        let keys: Vec<&[u8]> = vec![
            b"Aaron", b"Abbe", b"Andrew", b"Austin", b"Denice", b"Jacob", b"James", b"Jason",
            b"John", b"Joseph", b"Julian", b"Justin", b"A", b"Z", b"", b"Jo", b"Jos", b"Josz",
        ];
        let optimized = WormholeConfig::optimized();
        let base = WormholeConfig::base();
        for key in keys {
            assert_eq!(
                t.search_target(key, &optimized),
                t.search_target(key, &base),
                "divergent outcome for {key:?}"
            );
        }
    }

    #[test]
    fn windowed_search_matches_per_key_search() {
        // The batched pipeline must produce exactly the per-key outcomes on
        // both the small Figure-5 table and a grown table with deep anchors,
        // in every configuration of the ablation ladder.
        let mut grown = figure5_table();
        for (next_leaf, i) in (5u32..).zip(0..300u32) {
            let anchor = format!("Ja{:03}x{}", i % 40, i);
            let key = grown.reserve_anchor_key(anchor.as_bytes());
            grown.apply_split(&key, next_leaf, &4, None);
        }
        let probes: Vec<Vec<u8>> = [
            &b"Aaron"[..],
            b"Joseph",
            b"James",
            b"Denice",
            b"Julian",
            b"A",
            b"",
            b"Zoe",
            b"Jo",
            b"Ja017x17",
            b"Ja017x17zzz",
            b"Ja0",
            b"\0",
            b"Au",
            b"Austin",
            b"Jos",
        ]
        .iter()
        .map(|k| k.to_vec())
        .collect();
        for t in [&figure5_table(), &grown] {
            for (name, config) in WormholeConfig::ablation_ladder() {
                for window in [1usize, 3, 7, BATCH_WINDOW] {
                    let mut out: Vec<Option<TargetOutcome<u32>>> = vec![None; BATCH_WINDOW];
                    for chunk in probes.chunks(window) {
                        let keys: Vec<&[u8]> = chunk.iter().map(|k| k.as_slice()).collect();
                        t.search_targets_window(&keys, &config, &mut out);
                        for (i, key) in keys.iter().enumerate() {
                            assert_eq!(
                                out[i].take().expect("window filled"),
                                t.search_target(key, &config),
                                "{name}: window {window} diverges on {key:?}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn merge_undoes_split() {
        let mut t = figure5_table();
        // Merge leaf 4 ("Jos") into leaf 3.
        t.apply_merge(b"Jos", &4, &3, None);
        assert!(t.get(b"Jos").is_none());
        assert!(t.get(b"Jo").is_none(), "exclusively-owned prefix removed");
        // "J" still exists for "Jam", and its rightmost pointer fell back to 3.
        if let MetaKind::Internal(node) = &t.get(b"J").unwrap().kind {
            assert_eq!(node.leftmost, 3);
            assert_eq!(node.rightmost, 3);
        } else {
            panic!("'J' should remain an internal item");
        }
        // Lookups that used to land in leaf 4 now land in 3.
        assert_eq!(t.search_target(b"Joseph", &cfg()), TargetOutcome::Target(3));

        // Merge leaf 3 ("Jam") into 2, then leaf 2 ("Au") into 1.
        t.apply_merge(b"Jam", &3, &2, None);
        t.apply_merge(b"Au", &2, &1, None);
        // Only the relocated root anchor remains.
        assert!(matches!(t.get(b"\0").unwrap().kind, MetaKind::Leaf(1)));
        assert_eq!(
            t.search_target(b"Anything", &cfg()),
            TargetOutcome::Target(1)
        );
        assert_eq!(t.search_target(b"zzz", &cfg()), TargetOutcome::Target(1));
    }

    #[test]
    fn reserve_anchor_appends_bottom_tokens() {
        let t = figure5_table();
        // "Jo" is an internal prefix, so a new anchor "Jo" must be extended.
        assert_eq!(t.reserve_anchor_key(b"Jo"), b"Jo\0".to_vec());
        // A fresh anchor stays untouched.
        assert_eq!(t.reserve_anchor_key(b"Ka"), b"Ka".to_vec());
    }

    #[test]
    fn relocation_reported_to_caller() {
        let mut t: MetaTable<u32> = MetaTable::new();
        t.install_root_leaf(1);
        let key = t.reserve_anchor_key(b"Jo");
        t.apply_split(&key, 2, &1, None);
        // Splitting leaf 2 with anchor "Jos" forces the "Jo" anchor item to
        // relocate to "Jo\0".
        let key = t.reserve_anchor_key(b"Jos");
        assert_eq!(key, b"Jos".to_vec());
        let relocations = t.apply_split(&key, 3, &2, None);
        assert_eq!(relocations.len(), 1);
        assert_eq!(relocations[0].0, 2);
        assert_eq!(relocations[0].1, b"Jo\0".to_vec());
        assert!(matches!(t.get(b"Jo\0").unwrap().kind, MetaKind::Leaf(2)));
        assert!(matches!(
            t.get(b"Jo").unwrap().kind,
            MetaKind::Internal { .. }
        ));
        // Lookups for keys owned by the relocated leaf still resolve to it.
        assert_eq!(t.search_target(b"Joe", &cfg()), TargetOutcome::Target(2));
        assert_eq!(t.search_target(b"Joseph", &cfg()), TargetOutcome::Target(3));
    }

    #[test]
    fn long_binary_anchor_lookup() {
        let mut t: MetaTable<u32> = MetaTable::new();
        t.install_root_leaf(1);
        let anchor: Vec<u8> = (0u8..100).collect();
        let key = t.reserve_anchor_key(&anchor);
        t.apply_split(&key, 2, &1, None);
        assert_eq!(t.max_anchor_len(), 100);
        let mut probe = anchor.clone();
        probe.push(77);
        assert_eq!(t.search_target(&probe, &cfg()), TargetOutcome::Target(2));
        assert_eq!(
            t.search_target(&anchor[..50], &cfg()),
            TargetOutcome::CompareAnchor(2)
        );
    }
}
