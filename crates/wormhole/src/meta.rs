//! The MetaTrieHT (§2.4): a hash table that encodes the meta-trie over leaf
//! anchors.
//!
//! Every anchor and every prefix of every anchor is an item in the table.
//! Leaf items point at a leaf node; internal items carry a 256-bit child
//! bitmap and pointers to the leftmost and rightmost leaves of the subtree
//! they root. Lookups never walk trie edges: each probed prefix is hashed
//! and looked up directly, and the longest prefix match is found with a
//! binary search over prefix lengths (Algorithm 1).
//!
//! The table is generic over the leaf handle type `L` so the same code backs
//! both the single-threaded index (arena indices) and the concurrent index
//! (`Arc` leaf pointers).

use index_traits::IndexStats;
use wh_hash::{crc32c, mix64, tag16, IncrementalHasher};

use crate::config::WormholeConfig;

/// A handle to a leaf node stored inside the MetaTrieHT.
pub trait LeafRef: Clone {
    /// Identity comparison (pointer/index equality, not content equality).
    fn same(&self, other: &Self) -> bool;
}

impl LeafRef for u32 {
    fn same(&self, other: &Self) -> bool {
        self == other
    }
}

/// A 256-bit bitmap recording which child tokens exist below an internal
/// trie node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TokenBitmap {
    words: [u64; 4],
}

impl TokenBitmap {
    /// Creates an empty bitmap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the bit for `token`.
    pub fn set(&mut self, token: u8) {
        self.words[(token >> 6) as usize] |= 1u64 << (token & 63);
    }

    /// Clears the bit for `token`.
    pub fn clear(&mut self, token: u8) {
        self.words[(token >> 6) as usize] &= !(1u64 << (token & 63));
    }

    /// Tests the bit for `token`.
    pub fn test(&self, token: u8) -> bool {
        self.words[(token >> 6) as usize] & (1u64 << (token & 63)) != 0
    }

    /// Returns `true` when no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The largest set token strictly less than `token`, if any.
    pub fn prev_set(&self, token: u8) -> Option<u8> {
        let mut t = token as i32 - 1;
        // Scan the word containing `t`, then whole words below it.
        while t >= 0 {
            let word = (t >> 6) as usize;
            let bit = (t & 63) as u32;
            let masked = self.words[word] & ((1u64 << bit) | ((1u64 << bit) - 1));
            if masked != 0 {
                return Some(((word as u32) * 64 + 63 - masked.leading_zeros()) as u8);
            }
            t = (word as i32) * 64 - 1;
        }
        None
    }

    /// The smallest set token strictly greater than `token`, if any.
    pub fn next_set(&self, token: u8) -> Option<u8> {
        let mut t = token as u32 + 1;
        while t < 256 {
            let word = (t >> 6) as usize;
            let bit = t & 63;
            let masked = self.words[word] & !((1u64 << bit) - 1);
            if masked != 0 {
                return Some((word as u32 * 64 + masked.trailing_zeros()) as u8);
            }
            t = (word as u32 + 1) * 64;
        }
        None
    }

    /// The sibling used by the second search phase (Algorithm 3,
    /// `findOneSibling`): the nearest existing token below `missing`, or the
    /// nearest one above it when none exists below.
    pub fn find_one_sibling(&self, missing: u8) -> Option<u8> {
        self.prev_set(missing).or_else(|| self.next_set(missing))
    }
}

/// Payload of a MetaTrieHT item.
#[derive(Debug, Clone)]
pub enum MetaKind<L> {
    /// The prefix is an anchor; the item points at its leaf node.
    Leaf(L),
    /// The prefix is an interior trie node.
    Internal {
        /// Which child tokens exist.
        bitmap: TokenBitmap,
        /// Leftmost leaf of the subtree rooted here.
        leftmost: L,
        /// Rightmost leaf of the subtree rooted here.
        rightmost: L,
    },
}

/// One hash-table item: a prefix (or anchor) plus its payload.
#[derive(Debug, Clone)]
pub struct MetaItem<L> {
    /// The prefix bytes (an anchor table key for leaf items).
    pub key: Box<[u8]>,
    /// CRC-32c of `key`.
    pub hash: u32,
    /// Item payload.
    pub kind: MetaKind<L>,
}

/// One slot in a hash bucket: a 16-bit tag plus the item index.
#[derive(Debug, Clone, Copy)]
struct Slot {
    tag: u16,
    item: u32,
}

/// Nominal number of slots that fit in one cache line (the paper packs eight
/// tag+pointer pairs per 64-byte line). Buckets grow past this only under
/// unusual collision pressure; the table resizes before that becomes common.
const BUCKET_TARGET: usize = 8;

/// Outcome of the trie search (Algorithm 3) before leaf-list adjustment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TargetOutcome<L> {
    /// The returned leaf is the target node.
    Target(L),
    /// The target node is the left neighbour of the returned leaf.
    LeftOf(L),
    /// The returned leaf is the target unless `key < leaf.anchor`, in which
    /// case the target is its left neighbour (Algorithm 3, lines 4–7).
    CompareAnchor(L),
}

/// The MetaTrieHT hash table.
#[derive(Debug, Clone)]
pub struct MetaTable<L> {
    buckets: Vec<Vec<Slot>>,
    items: Vec<Option<MetaItem<L>>>,
    free: Vec<u32>,
    len: usize,
    /// Length of the longest anchor table key ever inserted (the paper's
    /// `Lanc`, used to bound the binary search).
    max_anchor_len: usize,
}

impl<L: LeafRef> Default for MetaTable<L> {
    fn default() -> Self {
        Self::new()
    }
}

impl<L: LeafRef> MetaTable<L> {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self {
            buckets: vec![Vec::new(); 64],
            items: Vec::new(),
            free: Vec::new(),
            len: 0,
            max_anchor_len: 0,
        }
    }

    /// Number of items (anchors plus internal prefixes).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when the table holds no items.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The longest anchor table key seen so far (`Lanc`).
    pub fn max_anchor_len(&self) -> usize {
        self.max_anchor_len
    }

    /// Approximate structure bytes used by the table.
    pub fn structure_bytes(&self) -> usize {
        let slots: usize = self.buckets.iter().map(|b| b.capacity()).sum();
        let item_keys: usize = self
            .items
            .iter()
            .flatten()
            .map(|i| i.key.len() + std::mem::size_of::<MetaItem<L>>())
            .sum();
        slots * std::mem::size_of::<Slot>() + item_keys + self.items.capacity() * 8
    }

    /// Memory statistics contribution of the meta structure.
    pub fn stats(&self) -> IndexStats {
        IndexStats {
            keys: 0,
            structure_bytes: self.structure_bytes(),
            key_bytes: 0,
            value_bytes: 0,
        }
    }

    fn bucket_of(&self, hash: u32) -> usize {
        (mix64(hash as u64) as usize) & (self.buckets.len() - 1)
    }

    /// Finds the item index for `key` (exact, always verified).
    fn find(&self, key: &[u8], hash: u32) -> Option<u32> {
        let tag = tag16(hash);
        let bucket = &self.buckets[self.bucket_of(hash)];
        for slot in bucket {
            if slot.tag == tag {
                let item = self.items[slot.item as usize].as_ref().expect("live item");
                if item.key.as_ref() == key {
                    return Some(slot.item);
                }
            }
        }
        None
    }

    /// Probes for a prefix during the LPM binary search. With `optimistic`
    /// set (the *TagMatching* optimisation) the first tag match is trusted
    /// without comparing the stored prefix bytes.
    fn probe(&self, key: &[u8], hash: u32, optimistic: bool) -> Option<u32> {
        if optimistic {
            let tag = tag16(hash);
            let bucket = &self.buckets[self.bucket_of(hash)];
            bucket.iter().find(|slot| slot.tag == tag).map(|s| s.item)
        } else {
            self.find(key, hash)
        }
    }

    /// Returns the item stored under `key`, if any.
    pub fn get(&self, key: &[u8]) -> Option<&MetaItem<L>> {
        let hash = crc32c(key);
        self.find(key, hash)
            .map(|idx| self.items[idx as usize].as_ref().expect("live item"))
    }

    /// Returns the item stored under `key`, mutably.
    pub fn get_mut(&mut self, key: &[u8]) -> Option<&mut MetaItem<L>> {
        let hash = crc32c(key);
        let idx = self.find(key, hash)?;
        self.items[idx as usize].as_mut()
    }

    /// Returns `true` when `key` is present.
    pub fn contains(&self, key: &[u8]) -> bool {
        self.get(key).is_some()
    }

    /// Inserts `kind` under `key`, replacing and returning any previous item.
    pub fn insert(&mut self, key: &[u8], kind: MetaKind<L>) -> Option<MetaKind<L>> {
        let hash = crc32c(key);
        if let Some(idx) = self.find(key, hash) {
            let item = self.items[idx as usize].as_mut().expect("live item");
            return Some(std::mem::replace(&mut item.kind, kind));
        }
        if self.len + 1 > self.buckets.len() * (BUCKET_TARGET - 2) {
            self.grow();
        }
        let item = MetaItem {
            key: key.to_vec().into_boxed_slice(),
            hash,
            kind,
        };
        let idx = match self.free.pop() {
            Some(idx) => {
                self.items[idx as usize] = Some(item);
                idx
            }
            None => {
                self.items.push(Some(item));
                (self.items.len() - 1) as u32
            }
        };
        let bucket = self.bucket_of(hash);
        self.buckets[bucket].push(Slot {
            tag: tag16(hash),
            item: idx,
        });
        self.len += 1;
        if matches!(
            self.items[idx as usize].as_ref().map(|i| &i.kind),
            Some(MetaKind::Leaf(_))
        ) {
            self.max_anchor_len = self.max_anchor_len.max(key.len());
        }
        None
    }

    /// Removes the item stored under `key`.
    pub fn remove(&mut self, key: &[u8]) -> Option<MetaItem<L>> {
        let hash = crc32c(key);
        let idx = self.find(key, hash)?;
        let bucket = self.bucket_of(hash);
        self.buckets[bucket].retain(|slot| slot.item != idx);
        self.len -= 1;
        self.free.push(idx);
        self.items[idx as usize].take()
    }

    fn grow(&mut self) {
        let new_size = self.buckets.len() * 2;
        let mut buckets: Vec<Vec<Slot>> = vec![Vec::new(); new_size];
        for (idx, item) in self.items.iter().enumerate() {
            if let Some(item) = item {
                let b = (mix64(item.hash as u64) as usize) & (new_size - 1);
                buckets[b].push(Slot {
                    tag: tag16(item.hash),
                    item: idx as u32,
                });
            }
        }
        self.buckets = buckets;
    }

    /// Iterates all live items.
    pub fn iter(&self) -> impl Iterator<Item = &MetaItem<L>> + '_ {
        self.items.iter().flatten()
    }

    // ------------------------------------------------------------------
    // Search (Algorithms 1 and 3).
    // ------------------------------------------------------------------

    /// Binary search on prefix lengths for the longest prefix of `key` that
    /// exists in the table (Algorithm 1). Returns the matched item index and
    /// the match length.
    fn search_lpm(&self, key: &[u8], config: &WormholeConfig) -> (u32, usize) {
        let bound = key.len().min(self.max_anchor_len);
        let optimistic = config.tag_matching;
        loop {
            let result = self.search_lpm_once(key, bound, optimistic, config.inc_hashing);
            match result {
                Some(found) => return found,
                // A tag false-positive misled the optimistic search; redo it
                // with full prefix comparisons (§3.1).
                None => {
                    debug_assert!(optimistic);
                    let exact = self.search_lpm_once(key, bound, false, config.inc_hashing);
                    return exact.expect("exact LPM search cannot fail verification");
                }
            }
        }
    }

    /// One pass of the binary search. Returns `None` when the final
    /// verification detects that optimistic tag matching went down a wrong
    /// path.
    fn search_lpm_once(
        &self,
        key: &[u8],
        bound: usize,
        optimistic: bool,
        inc_hashing: bool,
    ) -> Option<(u32, usize)> {
        let mut hasher = IncrementalHasher::new(key);
        let hash_at = |hasher: &mut IncrementalHasher<'_>, len: usize| -> u32 {
            if inc_hashing {
                hasher.hash_prefix_and_commit(len)
            } else {
                crc32c(&key[..len])
            }
        };
        // The empty prefix is always present (the trie root).
        let mut best_len = 0usize;
        let root_hash = hash_at(&mut hasher, 0);
        let mut best_item = self
            .probe(&key[..0], root_hash, false)
            .expect("the root item must exist");
        let mut lo = 0usize;
        let mut hi = bound + 1;
        while lo + 1 < hi {
            let mid = (lo + hi) / 2;
            let h = hash_at(&mut hasher, mid);
            match self.probe(&key[..mid], h, optimistic) {
                Some(item) => {
                    lo = mid;
                    best_len = mid;
                    best_item = item;
                }
                None => hi = mid,
            }
        }
        if optimistic && best_len > 0 {
            // Verify the final match; tag collisions may have lied earlier.
            let item = self.items[best_item as usize].as_ref().expect("live item");
            if item.key.as_ref() != &key[..best_len] {
                return None;
            }
        }
        Some((best_item, best_len))
    }

    /// Full trie search (Algorithm 3, `searchTrieHT`): returns the target
    /// leaf, up to the final leaf-list adjustment which requires the caller's
    /// leaf links.
    pub fn search_target(&self, key: &[u8], config: &WormholeConfig) -> TargetOutcome<L> {
        let (item_idx, match_len) = self.search_lpm(key, config);
        let item = self.items[item_idx as usize].as_ref().expect("live item");
        match &item.kind {
            MetaKind::Leaf(leaf) => TargetOutcome::Target(leaf.clone()),
            MetaKind::Internal {
                bitmap,
                leftmost,
                rightmost,
            } => {
                if match_len == key.len() {
                    // The whole key is an interior prefix: the target is the
                    // subtree's leftmost leaf or its left neighbour.
                    return TargetOutcome::CompareAnchor(leftmost.clone());
                }
                let missing = key[match_len];
                let Some(sibling) = bitmap.find_one_sibling(missing) else {
                    // An internal node always has at least one child; treat a
                    // corrupted bitmap as "use the subtree bounds".
                    debug_assert!(false, "internal node with empty bitmap");
                    return TargetOutcome::Target(rightmost.clone());
                };
                let mut child_key = Vec::with_capacity(match_len + 1);
                child_key.extend_from_slice(&key[..match_len]);
                child_key.push(sibling);
                let child = self
                    .get(&child_key)
                    .expect("bitmap bit set but child item missing");
                match &child.kind {
                    MetaKind::Leaf(leaf) => {
                        if sibling > missing {
                            TargetOutcome::LeftOf(leaf.clone())
                        } else {
                            TargetOutcome::Target(leaf.clone())
                        }
                    }
                    MetaKind::Internal {
                        leftmost,
                        rightmost,
                        ..
                    } => {
                        if sibling > missing {
                            TargetOutcome::LeftOf(leftmost.clone())
                        } else {
                            TargetOutcome::Target(rightmost.clone())
                        }
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Structural updates (Algorithm 4).
    // ------------------------------------------------------------------

    /// Chooses the table key for a new anchor: appends ⊥ (zero) tokens while
    /// the candidate collides with an existing prefix, so the new anchor is
    /// not a prefix of any existing anchor (§2.2's prefix condition).
    pub fn reserve_anchor_key(&self, anchor: &[u8]) -> Vec<u8> {
        let mut key = anchor.to_vec();
        while self.contains(&key) {
            key.push(0);
        }
        key
    }

    /// Registers a freshly split-off leaf under `table_key` and inserts or
    /// updates every prefix item (split half of Algorithm 4).
    ///
    /// * `new_leaf` — the new right sibling created by the split;
    /// * `split_leaf` — the leaf that was split (left half, keeps its anchor);
    /// * `old_right` — the leaf that was to the right of `split_leaf` before
    ///   the split (now to the right of `new_leaf`), if any.
    ///
    /// Returns the relocations performed on existing anchors (leaf handle and
    /// its new table key) so the caller can update the leaves' own records.
    pub fn apply_split(
        &mut self,
        table_key: &[u8],
        new_leaf: L,
        split_leaf: &L,
        old_right: Option<&L>,
    ) -> Vec<(L, Vec<u8>)> {
        let mut relocations = Vec::new();
        debug_assert!(
            !self.contains(table_key),
            "anchor table key must be unused"
        );
        self.insert(table_key, MetaKind::Leaf(new_leaf.clone()));
        for plen in 0..table_key.len() {
            let prefix = &table_key[..plen];
            let token = table_key[plen];
            // Inspect (and, for internal items, update) the prefix in place;
            // structural changes that need further table calls are deferred
            // until the mutable borrow ends.
            let relocate: Option<L> = match self.get_mut(prefix) {
                None => {
                    let mut bitmap = TokenBitmap::new();
                    bitmap.set(token);
                    self.insert(
                        prefix,
                        MetaKind::Internal {
                            bitmap,
                            leftmost: new_leaf.clone(),
                            rightmost: new_leaf.clone(),
                        },
                    );
                    None
                }
                Some(item) => match &mut item.kind {
                    MetaKind::Internal {
                        bitmap,
                        leftmost,
                        rightmost,
                    } => {
                        bitmap.set(token);
                        if rightmost.same(split_leaf) {
                            *rightmost = new_leaf.clone();
                        }
                        if let Some(right) = old_right {
                            if leftmost.same(right) {
                                *leftmost = new_leaf.clone();
                            }
                        }
                        None
                    }
                    MetaKind::Leaf(existing) => Some(existing.clone()),
                },
            };
            if let Some(existing) = relocate {
                // An existing anchor equals this prefix: relocate it to
                // `prefix ⧺ ⊥` and put an internal node in its place
                // (Algorithm 4, lines 15–18).
                let mut relocated_key = prefix.to_vec();
                relocated_key.push(0);
                debug_assert!(!self.contains(&relocated_key));
                self.remove(prefix).expect("leaf item present");
                self.insert(&relocated_key, MetaKind::Leaf(existing.clone()));
                let mut bitmap = TokenBitmap::new();
                bitmap.set(0);
                bitmap.set(token);
                self.insert(
                    prefix,
                    MetaKind::Internal {
                        bitmap,
                        leftmost: existing.clone(),
                        rightmost: new_leaf.clone(),
                    },
                );
                relocations.push((existing, relocated_key));
            }
        }
        relocations
    }

    /// Unregisters a merged-away leaf (merge half of Algorithm 4).
    ///
    /// * `victim_table_key` — the removed leaf's registration key;
    /// * `victim` — the removed leaf;
    /// * `victim_left` — its left neighbour (the leaf that absorbed it);
    /// * `victim_right` — its right neighbour, if any.
    pub fn apply_merge(
        &mut self,
        victim_table_key: &[u8],
        victim: &L,
        victim_left: &L,
        victim_right: Option<&L>,
    ) {
        let removed = self.remove(victim_table_key);
        debug_assert!(
            matches!(removed.map(|i| i.kind), Some(MetaKind::Leaf(_))),
            "victim anchor must be registered as a leaf item"
        );
        let mut child_removed = true;
        for plen in (0..victim_table_key.len()).rev() {
            let prefix = &victim_table_key[..plen];
            let token = victim_table_key[plen];
            let remove_prefix = {
                let Some(item) = self.get_mut(prefix) else {
                    debug_assert!(false, "missing prefix item during merge");
                    continue;
                };
                let MetaKind::Internal {
                    bitmap,
                    leftmost,
                    rightmost,
                } = &mut item.kind
                else {
                    debug_assert!(false, "prefix of an anchor must be an internal item");
                    continue;
                };
                if child_removed {
                    bitmap.clear(token);
                }
                if bitmap.is_empty() {
                    true
                } else {
                    child_removed = false;
                    if leftmost.same(victim) {
                        // The subtree's leaves form a contiguous run of the
                        // leaf list, so the victim's right neighbour takes
                        // over.
                        *leftmost = victim_right
                            .cloned()
                            .unwrap_or_else(|| victim_left.clone());
                    }
                    if rightmost.same(victim) {
                        *rightmost = victim_left.clone();
                    }
                    false
                }
            };
            if remove_prefix {
                self.remove(prefix);
                child_removed = true;
            }
        }
    }

    /// Registers the very first leaf (empty anchor) of a new index.
    pub fn install_root_leaf(&mut self, leaf: L) {
        debug_assert!(self.is_empty());
        self.insert(&[], MetaKind::Leaf(leaf));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> WormholeConfig {
        WormholeConfig::optimized()
    }

    #[test]
    fn bitmap_set_clear_test() {
        let mut b = TokenBitmap::new();
        assert!(b.is_empty());
        for t in [0u8, 1, 63, 64, 127, 128, 200, 255] {
            b.set(t);
            assert!(b.test(t));
        }
        assert_eq!(b.count(), 8);
        b.clear(64);
        assert!(!b.test(64));
        assert_eq!(b.count(), 7);
        assert!(!b.is_empty());
    }

    #[test]
    fn bitmap_sibling_search() {
        let mut b = TokenBitmap::new();
        b.set(b'A');
        b.set(b'J');
        // 'D' sits between 'A' and 'J': the left sibling wins.
        assert_eq!(b.find_one_sibling(b'D'), Some(b'A'));
        // Below the smallest set bit only a right sibling exists.
        assert_eq!(b.find_one_sibling(b'0'), Some(b'A'));
        // Above the largest set bit the left sibling is 'J'.
        assert_eq!(b.find_one_sibling(b'z'), Some(b'J'));
        assert_eq!(TokenBitmap::new().find_one_sibling(100), None);
        // Boundary tokens.
        let mut edge = TokenBitmap::new();
        edge.set(0);
        edge.set(255);
        assert_eq!(edge.find_one_sibling(1), Some(0));
        assert_eq!(edge.find_one_sibling(254), Some(0));
        assert_eq!(edge.prev_set(0), None);
        assert_eq!(edge.next_set(255), None);
    }

    #[test]
    fn insert_get_remove_items() {
        let mut t: MetaTable<u32> = MetaTable::new();
        assert!(t.insert(b"Ja", MetaKind::Leaf(1)).is_none());
        assert!(t.contains(b"Ja"));
        assert!(!t.contains(b"J"));
        let mut bitmap = TokenBitmap::new();
        bitmap.set(b'a');
        t.insert(
            b"J",
            MetaKind::Internal {
                bitmap,
                leftmost: 1,
                rightmost: 1,
            },
        );
        assert_eq!(t.len(), 2);
        assert!(matches!(t.get(b"J").unwrap().kind, MetaKind::Internal { .. }));
        assert!(t.remove(b"Ja").is_some());
        assert!(!t.contains(b"Ja"));
        assert!(t.remove(b"Ja").is_none());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn table_grows_under_load() {
        let mut t: MetaTable<u32> = MetaTable::new();
        for i in 0..5000u32 {
            t.insert(format!("prefix-{i}").as_bytes(), MetaKind::Leaf(i));
        }
        assert_eq!(t.len(), 5000);
        for i in 0..5000u32 {
            match &t.get(format!("prefix-{i}").as_bytes()).unwrap().kind {
                MetaKind::Leaf(l) => assert_eq!(*l, i),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    /// Builds the paper's Figure 5 example table: anchors ⊥(""), "Au",
    /// "Jam", "Jos" for leaves 1–4.
    fn figure5_table() -> MetaTable<u32> {
        let mut t: MetaTable<u32> = MetaTable::new();
        t.install_root_leaf(1);
        // Split leaf 1 -> new leaf 2 with anchor "Au".
        let key = t.reserve_anchor_key(b"Au");
        assert_eq!(key, b"Au".to_vec());
        t.apply_split(&key, 2, &1, None);
        // Split leaf 2 -> new leaf 3 with anchor "Jam" (right of 2).
        let key = t.reserve_anchor_key(b"Jam");
        t.apply_split(&key, 3, &2, None);
        // Split leaf 3 -> new leaf 4 with anchor "Jos".
        let key = t.reserve_anchor_key(b"Jos");
        t.apply_split(&key, 4, &3, None);
        t
    }

    #[test]
    fn figure5_structure() {
        let t = figure5_table();
        // The root is internal; the original leaf was relocated to "\0".
        assert!(matches!(t.get(b"").unwrap().kind, MetaKind::Internal { .. }));
        assert!(matches!(t.get(b"\0").unwrap().kind, MetaKind::Leaf(1)));
        assert!(matches!(t.get(b"Au").unwrap().kind, MetaKind::Leaf(2)));
        assert!(matches!(t.get(b"Jam").unwrap().kind, MetaKind::Leaf(3)));
        assert!(matches!(t.get(b"Jos").unwrap().kind, MetaKind::Leaf(4)));
        // Internal prefixes: "A", "J", "Ja", "Jo".
        for p in [b"A".as_ref(), b"J", b"Ja", b"Jo"] {
            assert!(
                matches!(t.get(p).unwrap().kind, MetaKind::Internal { .. }),
                "{p:?}"
            );
        }
        // Figure 5's root bitmap lists children ⊥, 'A', 'J'.
        if let MetaKind::Internal { bitmap, leftmost, rightmost } = &t.get(b"").unwrap().kind {
            assert!(bitmap.test(0) && bitmap.test(b'A') && bitmap.test(b'J'));
            assert_eq!(bitmap.count(), 3);
            assert_eq!(*leftmost, 1);
            assert_eq!(*rightmost, 4);
        }
        // The "J" subtree spans leaves 3..4 ("Jam" and "Jos").
        if let MetaKind::Internal { leftmost, rightmost, .. } = &t.get(b"J").unwrap().kind {
            assert_eq!(*leftmost, 3);
            assert_eq!(*rightmost, 4);
        }
        assert_eq!(t.max_anchor_len(), 3);
    }

    #[test]
    fn figure4_lookups() {
        let t = figure5_table();
        let config = cfg();
        // "Joseph" matches the anchor "Jos" exactly -> leaf 4.
        assert_eq!(t.search_target(b"Joseph", &config), TargetOutcome::Target(4));
        // "James" has LPM "Jam" -> leaf 3.
        assert_eq!(t.search_target(b"James", &config), TargetOutcome::Target(3));
        // "Denice": LPM "", missing 'D', siblings 'A' (left) and 'J' (right);
        // the left subtree's rightmost leaf is leaf 2.
        assert_eq!(t.search_target(b"Denice", &config), TargetOutcome::Target(2));
        // "Julian": LPM "J", missing 'u', left sibling 'o' -> subtree "Jo"
        // whose rightmost leaf is 4.
        assert_eq!(t.search_target(b"Julian", &config), TargetOutcome::Target(4));
        // "A": the whole key is an interior prefix -> compare against the
        // anchor of the subtree's leftmost leaf (leaf 2, anchor "Au").
        assert_eq!(t.search_target(b"A", &config), TargetOutcome::CompareAnchor(2));
        // "Aaron": LPM "A", missing 'a' < 'u' -> right sibling "Au" is a
        // leaf, so the target is its left neighbour.
        assert_eq!(t.search_target(b"Aaron", &config), TargetOutcome::LeftOf(2));
    }

    #[test]
    fn search_is_consistent_across_configs() {
        let t = figure5_table();
        let keys: Vec<&[u8]> = vec![
            b"Aaron", b"Abbe", b"Andrew", b"Austin", b"Denice", b"Jacob", b"James", b"Jason",
            b"John", b"Joseph", b"Julian", b"Justin", b"A", b"Z", b"", b"Jo", b"Jos", b"Josz",
        ];
        let optimized = WormholeConfig::optimized();
        let base = WormholeConfig::base();
        for key in keys {
            assert_eq!(
                t.search_target(key, &optimized),
                t.search_target(key, &base),
                "divergent outcome for {key:?}"
            );
        }
    }

    #[test]
    fn merge_undoes_split() {
        let mut t = figure5_table();
        // Merge leaf 4 ("Jos") into leaf 3.
        t.apply_merge(b"Jos", &4, &3, None);
        assert!(t.get(b"Jos").is_none());
        assert!(t.get(b"Jo").is_none(), "exclusively-owned prefix removed");
        // "J" still exists for "Jam", and its rightmost pointer fell back to 3.
        if let MetaKind::Internal { leftmost, rightmost, .. } = &t.get(b"J").unwrap().kind {
            assert_eq!(*leftmost, 3);
            assert_eq!(*rightmost, 3);
        } else {
            panic!("'J' should remain an internal item");
        }
        // Lookups that used to land in leaf 4 now land in 3.
        assert_eq!(
            t.search_target(b"Joseph", &cfg()),
            TargetOutcome::Target(3)
        );

        // Merge leaf 3 ("Jam") into 2, then leaf 2 ("Au") into 1.
        t.apply_merge(b"Jam", &3, &2, None);
        t.apply_merge(b"Au", &2, &1, None);
        // Only the relocated root anchor remains.
        assert!(matches!(t.get(b"\0").unwrap().kind, MetaKind::Leaf(1)));
        assert_eq!(t.search_target(b"Anything", &cfg()), TargetOutcome::Target(1));
        assert_eq!(t.search_target(b"zzz", &cfg()), TargetOutcome::Target(1));
    }

    #[test]
    fn reserve_anchor_appends_bottom_tokens() {
        let t = figure5_table();
        // "Jo" is an internal prefix, so a new anchor "Jo" must be extended.
        assert_eq!(t.reserve_anchor_key(b"Jo"), b"Jo\0".to_vec());
        // A fresh anchor stays untouched.
        assert_eq!(t.reserve_anchor_key(b"Ka"), b"Ka".to_vec());
    }

    #[test]
    fn relocation_reported_to_caller() {
        let mut t: MetaTable<u32> = MetaTable::new();
        t.install_root_leaf(1);
        let key = t.reserve_anchor_key(b"Jo");
        t.apply_split(&key, 2, &1, None);
        // Splitting leaf 2 with anchor "Jos" forces the "Jo" anchor item to
        // relocate to "Jo\0".
        let key = t.reserve_anchor_key(b"Jos");
        assert_eq!(key, b"Jos".to_vec());
        let relocations = t.apply_split(&key, 3, &2, None);
        assert_eq!(relocations.len(), 1);
        assert_eq!(relocations[0].0, 2);
        assert_eq!(relocations[0].1, b"Jo\0".to_vec());
        assert!(matches!(t.get(b"Jo\0").unwrap().kind, MetaKind::Leaf(2)));
        assert!(matches!(t.get(b"Jo").unwrap().kind, MetaKind::Internal { .. }));
        // Lookups for keys owned by the relocated leaf still resolve to it.
        assert_eq!(t.search_target(b"Joe", &cfg()), TargetOutcome::Target(2));
        assert_eq!(t.search_target(b"Joseph", &cfg()), TargetOutcome::Target(3));
    }

    #[test]
    fn long_binary_anchor_lookup() {
        let mut t: MetaTable<u32> = MetaTable::new();
        t.install_root_leaf(1);
        let anchor: Vec<u8> = (0u8..100).collect();
        let key = t.reserve_anchor_key(&anchor);
        t.apply_split(&key, 2, &1, None);
        assert_eq!(t.max_anchor_len(), 100);
        let mut probe = anchor.clone();
        probe.push(77);
        assert_eq!(t.search_target(&probe, &cfg()), TargetOutcome::Target(2));
        assert_eq!(t.search_target(&anchor[..50], &cfg()), TargetOutcome::CompareAnchor(2));
    }
}
