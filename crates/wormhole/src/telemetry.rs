//! Telemetry for the concurrent index: counters for the events the bench
//! story cares about (seqlock retries, locked fallbacks, structural
//! splits/merges, LPM restarts), shareable across instances so a sharded
//! front aggregates all its shards into one set of cells.
//!
//! All recording sites are *off* the clean hot path: a conflict-free
//! optimistic `get` touches no counter at all, so the zero-alloc and
//! sub-microsecond read gates are unaffected.

use wh_telemetry::{Counter, Registry};

/// Event counters for one (or several — the handles are shared clones)
/// [`Wormhole`](crate::Wormhole) instances.
#[derive(Clone, Debug, Default)]
pub struct WormholeMetrics {
    /// Seqlock validation conflicts on the optimistic read path (each one
    /// costs one retry of the lock-free attempt).
    pub seqlock_retries: Counter,
    /// Reads that exhausted their bounded optimistic retries and fell
    /// back to the per-leaf reader lock.
    pub locked_fallbacks: Counter,
    /// Leaf splits published (each is a full RCU table publication).
    pub splits: Counter,
    /// Leaf merges published.
    pub merges: Counter,
    /// MetaTrieHT lookup restarts: the LPM search resolved to a leaf that
    /// a racing merge retired before the neighbour step completed.
    pub lpm_restarts: Counter,
}

impl WormholeMetrics {
    /// Registers every counter under `<prefix>_…_total` names (prefix
    /// must match `[a-z0-9_]+`, e.g. `wormhole`).
    pub fn register_into(&self, registry: &Registry, prefix: &str) {
        registry.register_counter(
            &format!("{prefix}_seqlock_retries_total"),
            &self.seqlock_retries,
        );
        registry.register_counter(
            &format!("{prefix}_locked_fallbacks_total"),
            &self.locked_fallbacks,
        );
        registry.register_counter(&format!("{prefix}_splits_total"), &self.splits);
        registry.register_counter(&format!("{prefix}_merges_total"), &self.merges);
        registry.register_counter(&format!("{prefix}_lpm_restarts_total"), &self.lpm_restarts);
    }
}
