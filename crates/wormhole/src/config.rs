//! Runtime configuration of the Wormhole index.
//!
//! The paper's Figure 11 measures how much each implementation optimisation
//! contributes by enabling them one at a time on top of a plain
//! "BaseWormhole". The same ablation is reproduced here by constructing the
//! index with the corresponding [`WormholeConfig`].

/// Tunable parameters and optimisation toggles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WormholeConfig {
    /// Maximum number of keys per leaf node (the paper uses 128).
    pub leaf_capacity: usize,
    /// Merge two adjacent leaves when their combined size drops below this
    /// value (the paper's `MergeSize`; defaults to `leaf_capacity / 2`).
    pub merge_size: usize,
    /// §3.1 *TagMatching*: trust 16-bit tag matches in the MetaTrieHT during
    /// the binary search and only verify the final prefix, instead of
    /// comparing the full prefix at every probe.
    pub tag_matching: bool,
    /// §3.1 *IncHashing*: reuse the CRC state of a matched prefix when
    /// hashing longer prefixes of the same key.
    pub inc_hashing: bool,
    /// §3.2 *SortByTag*: search leaf nodes through the tag array sorted in
    /// hash order rather than binary search over fully key-sorted items.
    pub sort_by_tag: bool,
    /// §3.2 *DirectPos*: start the tag-array search at the position predicted
    /// from the tag value instead of scanning from the ends.
    pub direct_pos: bool,
    /// Concurrent variant only: serve `get`/`range_from` through the
    /// seqlock-validated optimistic read path (no per-leaf `RwLock::read`)
    /// instead of taking the leaf reader lock. Disabling this restores the
    /// paper's original §2.5 locking reader, which the contended-read
    /// benchmark uses as its baseline. Takes effect only for value types
    /// without drop glue (e.g. `u64`); heap-owning values always use the
    /// locking reader regardless of this flag.
    pub optimistic_reads: bool,
}

impl Default for WormholeConfig {
    fn default() -> Self {
        Self::optimized()
    }
}

impl WormholeConfig {
    /// The fully optimised configuration used for all headline numbers.
    pub fn optimized() -> Self {
        Self {
            leaf_capacity: 128,
            merge_size: 64,
            tag_matching: true,
            inc_hashing: true,
            sort_by_tag: true,
            direct_pos: true,
            optimistic_reads: true,
        }
    }

    /// The paper's "BaseWormhole": the core data structure with all
    /// implementation optimisations switched off.
    pub fn base() -> Self {
        Self {
            leaf_capacity: 128,
            merge_size: 64,
            tag_matching: false,
            inc_hashing: false,
            sort_by_tag: false,
            direct_pos: false,
            optimistic_reads: true,
        }
    }

    /// Overrides the leaf capacity (and scales `merge_size` to half of it).
    pub fn with_leaf_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity >= 4, "leaf capacity must be at least 4");
        self.leaf_capacity = capacity;
        self.merge_size = capacity / 2;
        self
    }

    /// Enables or disables the *TagMatching* optimisation.
    pub fn with_tag_matching(mut self, on: bool) -> Self {
        self.tag_matching = on;
        self
    }

    /// Enables or disables the *IncHashing* optimisation.
    pub fn with_inc_hashing(mut self, on: bool) -> Self {
        self.inc_hashing = on;
        self
    }

    /// Enables or disables the *SortByTag* optimisation.
    pub fn with_sort_by_tag(mut self, on: bool) -> Self {
        self.sort_by_tag = on;
        self
    }

    /// Enables or disables the *DirectPos* optimisation.
    pub fn with_direct_pos(mut self, on: bool) -> Self {
        self.direct_pos = on;
        self
    }

    /// Enables or disables the concurrent variant's optimistic (seqlock)
    /// read path. Not part of the Figure 11 ablation ladder: it changes the
    /// concurrency control, not the data-structure search.
    pub fn with_optimistic_reads(mut self, on: bool) -> Self {
        self.optimistic_reads = on;
        self
    }

    /// The five configurations of the Figure 11 ablation, in the paper's
    /// order: BaseWormhole, +TagMatching, +IncHashing, +SortByTag,
    /// +DirectPos (each step keeps the previous ones enabled).
    pub fn ablation_ladder() -> Vec<(&'static str, WormholeConfig)> {
        let base = Self::base();
        vec![
            ("BaseWormhole", base),
            ("+TagMatching", base.with_tag_matching(true)),
            (
                "+IncHashing",
                base.with_tag_matching(true).with_inc_hashing(true),
            ),
            (
                "+SortByTag",
                base.with_tag_matching(true)
                    .with_inc_hashing(true)
                    .with_sort_by_tag(true),
            ),
            ("+DirectPos", Self::optimized()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_fully_optimized() {
        let c = WormholeConfig::default();
        assert!(c.tag_matching && c.inc_hashing && c.sort_by_tag && c.direct_pos);
        assert_eq!(c.leaf_capacity, 128);
        assert_eq!(c.merge_size, 64);
    }

    #[test]
    fn base_disables_everything() {
        let c = WormholeConfig::base();
        assert!(!c.tag_matching && !c.inc_hashing && !c.sort_by_tag && !c.direct_pos);
    }

    #[test]
    fn ablation_ladder_is_monotone() {
        let ladder = WormholeConfig::ablation_ladder();
        assert_eq!(ladder.len(), 5);
        let flags = |c: &WormholeConfig| {
            [c.tag_matching, c.inc_hashing, c.sort_by_tag, c.direct_pos]
                .iter()
                .filter(|&&b| b)
                .count()
        };
        for pair in ladder.windows(2) {
            assert!(flags(&pair[1].1) == flags(&pair[0].1) + 1);
        }
        assert_eq!(ladder.last().unwrap().1, WormholeConfig::optimized());
    }

    #[test]
    fn leaf_capacity_override() {
        let c = WormholeConfig::optimized().with_leaf_capacity(32);
        assert_eq!(c.leaf_capacity, 32);
        assert_eq!(c.merge_size, 16);
    }

    #[test]
    #[should_panic(expected = "leaf capacity must be at least 4")]
    fn tiny_leaf_capacity_rejected() {
        let _ = WormholeConfig::optimized().with_leaf_capacity(2);
    }
}
