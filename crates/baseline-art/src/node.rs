//! ART node representations: Node4, Node16, Node48, Node256.

/// A stored key/value pair. ART leaves keep the full key so the final step of
/// a lookup can verify the parts skipped by path compression.
#[derive(Debug, Clone)]
pub struct Leaf<V> {
    /// The full key.
    pub key: Box<[u8]>,
    /// The stored value.
    pub value: V,
}

/// A node in the adaptive radix tree.
#[derive(Debug)]
pub enum Node<V> {
    /// A single key/value pair.
    Leaf(Leaf<V>),
    /// An internal node with adaptive children storage.
    Internal(Box<Internal<V>>),
}

/// An internal node: compressed prefix, optional terminal leaf, and children.
#[derive(Debug)]
pub struct Internal<V> {
    /// Path-compressed prefix shared by all keys below this node (relative to
    /// the node's depth).
    pub prefix: Vec<u8>,
    /// Leaf for the key that ends exactly after `prefix` at this node.
    pub terminal: Option<Leaf<V>>,
    /// Child pointers, keyed by the next key byte.
    pub children: Children<V>,
}

/// Adaptive children storage.
#[derive(Debug)]
pub enum Children<V> {
    /// Up to 4 children: parallel sorted arrays.
    Node4 { keys: Vec<u8>, nodes: Vec<Node<V>> },
    /// Up to 16 children: parallel sorted arrays.
    Node16 { keys: Vec<u8>, nodes: Vec<Node<V>> },
    /// Up to 48 children: a 256-entry index into a slot vector.
    Node48 {
        /// `index[b]` is `slot + 1`, or 0 when byte `b` has no child.
        index: Box<[u8; 256]>,
        slots: Vec<Option<Node<V>>>,
    },
    /// Up to 256 children: direct array.
    Node256 { slots: Box<[Option<Node<V>>; 256]> },
}

impl<V> Children<V> {
    /// Creates the smallest representation.
    pub fn new() -> Self {
        Children::Node4 {
            keys: Vec::with_capacity(4),
            nodes: Vec::with_capacity(4),
        }
    }

    /// Number of children.
    pub fn len(&self) -> usize {
        match self {
            Children::Node4 { keys, .. } | Children::Node16 { keys, .. } => keys.len(),
            Children::Node48 { slots, .. } => slots.iter().filter(|s| s.is_some()).count(),
            Children::Node256 { slots } => slots.iter().filter(|s| s.is_some()).count(),
        }
    }

    /// Returns `true` when the node has no children.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The canonical capacity of the current representation.
    pub fn capacity(&self) -> usize {
        match self {
            Children::Node4 { .. } => 4,
            Children::Node16 { .. } => 16,
            Children::Node48 { .. } => 48,
            Children::Node256 { .. } => 256,
        }
    }

    /// Looks up the child for byte `b`.
    pub fn get(&self, b: u8) -> Option<&Node<V>> {
        match self {
            Children::Node4 { keys, nodes } | Children::Node16 { keys, nodes } => {
                keys.iter().position(|&k| k == b).map(|i| &nodes[i])
            }
            Children::Node48 { index, slots } => {
                let slot = index[b as usize];
                if slot == 0 {
                    None
                } else {
                    slots[(slot - 1) as usize].as_ref()
                }
            }
            Children::Node256 { slots } => slots[b as usize].as_ref(),
        }
    }

    /// Looks up the child for byte `b`, mutably.
    pub fn get_mut(&mut self, b: u8) -> Option<&mut Node<V>> {
        match self {
            Children::Node4 { keys, nodes } | Children::Node16 { keys, nodes } => keys
                .iter()
                .position(|&k| k == b)
                .map(move |i| &mut nodes[i]),
            Children::Node48 { index, slots } => {
                let slot = index[b as usize];
                if slot == 0 {
                    None
                } else {
                    slots[(slot - 1) as usize].as_mut()
                }
            }
            Children::Node256 { slots } => slots[b as usize].as_mut(),
        }
    }

    /// Inserts a child for byte `b`, growing the representation if needed.
    /// Panics if a child for `b` already exists.
    pub fn insert(&mut self, b: u8, node: Node<V>) {
        debug_assert!(self.get(b).is_none(), "child {b} already present");
        if self.len() == self.capacity() && self.capacity() < 256 {
            self.grow();
        }
        match self {
            Children::Node4 { keys, nodes } | Children::Node16 { keys, nodes } => {
                let pos = keys.partition_point(|&k| k < b);
                keys.insert(pos, b);
                nodes.insert(pos, node);
            }
            Children::Node48 { index, slots } => {
                // Reuse a freed slot if one exists so the slot vector stays
                // bounded under insert/remove churn.
                let slot = match slots.iter().position(|s| s.is_none()) {
                    Some(free) => {
                        slots[free] = Some(node);
                        free
                    }
                    None => {
                        slots.push(Some(node));
                        slots.len() - 1
                    }
                };
                index[b as usize] = (slot + 1) as u8;
            }
            Children::Node256 { slots } => {
                slots[b as usize] = Some(node);
            }
        }
    }

    /// Removes and returns the child for byte `b`.
    pub fn remove(&mut self, b: u8) -> Option<Node<V>> {
        match self {
            Children::Node4 { keys, nodes } | Children::Node16 { keys, nodes } => {
                let pos = keys.iter().position(|&k| k == b)?;
                keys.remove(pos);
                Some(nodes.remove(pos))
            }
            Children::Node48 { index, slots } => {
                let slot = index[b as usize];
                if slot == 0 {
                    return None;
                }
                index[b as usize] = 0;
                slots[(slot - 1) as usize].take()
            }
            Children::Node256 { slots } => slots[b as usize].take(),
        }
    }

    /// Iterates children in ascending byte order.
    pub fn iter(&self) -> Box<dyn Iterator<Item = (u8, &Node<V>)> + '_> {
        match self {
            Children::Node4 { keys, nodes } | Children::Node16 { keys, nodes } => {
                Box::new(keys.iter().copied().zip(nodes.iter()))
            }
            Children::Node48 { index, slots } => Box::new((0u16..256).filter_map(move |b| {
                let slot = index[b as usize];
                if slot == 0 {
                    None
                } else {
                    slots[(slot - 1) as usize].as_ref().map(|n| (b as u8, n))
                }
            })),
            Children::Node256 { slots } => Box::new(
                (0u16..256).filter_map(move |b| slots[b as usize].as_ref().map(|n| (b as u8, n))),
            ),
        }
    }

    /// Removes and returns the only child; panics unless exactly one exists.
    pub fn take_single_child(&mut self) -> (u8, Node<V>) {
        assert_eq!(
            self.len(),
            1,
            "take_single_child on node with {} children",
            self.len()
        );
        let byte = self.iter().next().map(|(b, _)| b).expect("one child");
        let node = self.remove(byte).expect("one child");
        (byte, node)
    }

    /// Grows the representation to the next size class.
    fn grow(&mut self) {
        let current = std::mem::take(self);
        *self = match current {
            Children::Node4 { keys, nodes } => Children::Node16 { keys, nodes },
            Children::Node16 { keys, nodes } => {
                let mut index = Box::new([0u8; 256]);
                let mut slots = Vec::with_capacity(48);
                for (k, n) in keys.into_iter().zip(nodes) {
                    slots.push(Some(n));
                    index[k as usize] = slots.len() as u8;
                }
                Children::Node48 { index, slots }
            }
            Children::Node48 { index, mut slots } => {
                let mut arr: Box<[Option<Node<V>>; 256]> = Box::new(std::array::from_fn(|_| None));
                for b in 0..256usize {
                    let slot = index[b];
                    if slot != 0 {
                        arr[b] = slots[(slot - 1) as usize].take();
                    }
                }
                Children::Node256 { slots: arr }
            }
            full @ Children::Node256 { .. } => full,
        };
    }

    /// Approximate structure bytes used by this representation (excluding the
    /// children nodes themselves).
    pub fn structure_bytes(&self) -> usize {
        match self {
            Children::Node4 { .. } => 4 + 4 * std::mem::size_of::<Node<V>>(),
            Children::Node16 { .. } => 16 + 16 * std::mem::size_of::<Node<V>>(),
            Children::Node48 { slots, .. } => 256 + slots.len() * std::mem::size_of::<Node<V>>(),
            Children::Node256 { .. } => 256 * std::mem::size_of::<Node<V>>(),
        }
    }
}

impl<V> Default for Children<V> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(b: u8) -> Node<u64> {
        Node::Leaf(Leaf {
            key: vec![b].into_boxed_slice(),
            value: b as u64,
        })
    }

    #[test]
    fn insert_and_get_across_growth() {
        let mut c: Children<u64> = Children::new();
        // Insert 200 children, forcing Node4 -> Node16 -> Node48 -> Node256.
        for b in 0..200u8 {
            c.insert(b, leaf(b));
            assert_eq!(c.len(), b as usize + 1);
        }
        assert!(matches!(c, Children::Node256 { .. }));
        for b in 0..200u8 {
            match c.get(b) {
                Some(Node::Leaf(l)) => assert_eq!(l.value, b as u64),
                other => panic!("missing child {b}: {other:?}"),
            }
        }
        assert!(c.get(201).is_none());
    }

    #[test]
    fn growth_boundaries() {
        let mut c: Children<u64> = Children::new();
        for b in 0..4u8 {
            c.insert(b, leaf(b));
        }
        assert!(matches!(c, Children::Node4 { .. }));
        c.insert(4, leaf(4));
        assert!(matches!(c, Children::Node16 { .. }));
        for b in 5..16u8 {
            c.insert(b, leaf(b));
        }
        assert!(matches!(c, Children::Node16 { .. }));
        c.insert(16, leaf(16));
        assert!(matches!(c, Children::Node48 { .. }));
        for b in 17..48u8 {
            c.insert(b, leaf(b));
        }
        assert!(matches!(c, Children::Node48 { .. }));
        c.insert(48, leaf(48));
        assert!(matches!(c, Children::Node256 { .. }));
    }

    #[test]
    fn remove_and_iter_order() {
        let mut c: Children<u64> = Children::new();
        for &b in &[9u8, 3, 200, 77, 1] {
            c.insert(b, leaf(b));
        }
        assert!(c.remove(77).is_some());
        assert!(c.remove(77).is_none());
        let order: Vec<u8> = c.iter().map(|(b, _)| b).collect();
        assert_eq!(order, vec![1, 3, 9, 200]);
    }

    #[test]
    fn take_single_child() {
        let mut c: Children<u64> = Children::new();
        c.insert(42, leaf(42));
        let (b, _) = c.take_single_child();
        assert_eq!(b, 42);
        assert!(c.is_empty());
    }
}
