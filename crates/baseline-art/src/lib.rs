//! An Adaptive Radix Tree (ART), the trie baseline of the Wormhole
//! evaluation (Leis et al., ICDE 2013; the paper uses the `libart` C
//! implementation).
//!
//! The tree adapts each internal node's representation to its population —
//! Node4, Node16, Node48, and Node256 — and applies path compression so that
//! chains of single-child nodes collapse into a prefix stored at the child.
//! Lookup cost is `O(L)` in the key length, the property the paper contrasts
//! with Wormhole's `O(log L)`.
//!
//! Arbitrary byte keys (including keys that are prefixes of other keys) are
//! supported by giving every internal node an optional *terminal* slot for
//! the key that ends exactly at that node, which plays the role of the
//! implicit end-of-string symbol in the original design.

pub mod node;
pub mod tree;

pub use tree::Art;
