//! The adaptive radix tree.

use index_traits::{common_prefix_len, is_prefix_of, IndexStats, OrderedIndex};

use crate::node::{Children, Internal, Leaf, Node};

/// An adaptive radix tree over byte-string keys.
pub struct Art<V> {
    root: Option<Node<V>>,
    len: usize,
    key_bytes: usize,
}

impl<V: Clone> Default for Art<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: Clone> Art<V> {
    /// Creates an empty tree.
    pub fn new() -> Self {
        Self {
            root: None,
            len: 0,
            key_bytes: 0,
        }
    }

    fn get_rec<'a>(node: &'a Node<V>, key: &[u8], depth: usize) -> Option<&'a V> {
        match node {
            Node::Leaf(l) => (l.key.as_ref() == key).then_some(&l.value),
            Node::Internal(int) => {
                let rest = &key[depth..];
                if rest.len() < int.prefix.len() || rest[..int.prefix.len()] != int.prefix[..] {
                    return None;
                }
                let depth = depth + int.prefix.len();
                if depth == key.len() {
                    return int.terminal.as_ref().map(|l| &l.value);
                }
                let b = key[depth];
                int.children
                    .get(b)
                    .and_then(|child| Self::get_rec(child, key, depth + 1))
            }
        }
    }

    /// Builds a leaf node holding the full key.
    fn make_leaf(key: &[u8], value: V) -> Leaf<V> {
        Leaf {
            key: key.to_vec().into_boxed_slice(),
            value,
        }
    }

    /// Attaches `leaf` below `int` given that the leaf's key diverges from the
    /// node's coverage at absolute position `pos` (== key length for a
    /// terminal).
    fn attach_leaf(int: &mut Internal<V>, key: &[u8], pos: usize, leaf: Leaf<V>) {
        if pos == key.len() {
            debug_assert!(int.terminal.is_none());
            int.terminal = Some(leaf);
        } else {
            int.children.insert(key[pos], Node::Leaf(leaf));
        }
    }

    fn insert_rec(node: &mut Node<V>, key: &[u8], depth: usize, value: V) -> Option<V> {
        if let Node::Leaf(existing) = node {
            if existing.key.as_ref() == key {
                return Some(std::mem::replace(&mut existing.value, value));
            }
            // Split this leaf: build an internal node covering the common
            // prefix of the two keys below `depth`.
            let old = match std::mem::replace(
                node,
                Node::Internal(Box::new(Internal {
                    prefix: Vec::new(),
                    terminal: None,
                    children: Children::new(),
                })),
            ) {
                Node::Leaf(old) => old,
                Node::Internal(_) => unreachable!(),
            };
            let common = common_prefix_len(&old.key[depth..], &key[depth..]);
            let split_at = depth + common;
            let Node::Internal(int) = node else {
                unreachable!()
            };
            int.prefix = key[depth..split_at].to_vec();
            let old_key = old.key.clone();
            Self::attach_leaf(int, &old_key, split_at, old);
            Self::attach_leaf(int, key, split_at, Self::make_leaf(key, value));
            return None;
        }

        // Internal node: check the compressed prefix first.
        let (prefix_len, common) = {
            let Node::Internal(int) = &*node else {
                unreachable!()
            };
            let rest = &key[depth..];
            (int.prefix.len(), common_prefix_len(&int.prefix, rest))
        };

        if common < prefix_len {
            // The key diverges inside the compressed prefix: split the prefix.
            let old_node = std::mem::replace(
                node,
                Node::Internal(Box::new(Internal {
                    prefix: Vec::new(),
                    terminal: None,
                    children: Children::new(),
                })),
            );
            let Node::Internal(mut old_int) = old_node else {
                unreachable!()
            };
            let old_prefix = std::mem::take(&mut old_int.prefix);
            let split_byte = old_prefix[common];
            old_int.prefix = old_prefix[common + 1..].to_vec();

            let Node::Internal(new_int) = node else {
                unreachable!()
            };
            new_int.prefix = old_prefix[..common].to_vec();
            new_int.children.insert(split_byte, Node::Internal(old_int));
            let split_at = depth + common;
            Self::attach_leaf(new_int, key, split_at, Self::make_leaf(key, value));
            return None;
        }

        // Prefix fully matched; continue below it.
        let depth = depth + prefix_len;
        let Node::Internal(int) = node else {
            unreachable!()
        };
        if depth == key.len() {
            return match &mut int.terminal {
                Some(t) => Some(std::mem::replace(&mut t.value, value)),
                slot @ None => {
                    *slot = Some(Self::make_leaf(key, value));
                    None
                }
            };
        }
        let b = key[depth];
        match int.children.get_mut(b) {
            Some(child) => Self::insert_rec(child, key, depth + 1, value),
            None => {
                int.children
                    .insert(b, Node::Leaf(Self::make_leaf(key, value)));
                None
            }
        }
    }

    /// Recursive deletion. Returns the removed value and whether the node has
    /// become empty and should be detached by its parent.
    fn delete_rec(node: &mut Node<V>, key: &[u8], depth: usize) -> (Option<V>, bool) {
        if let Node::Leaf(l) = node {
            return if l.key.as_ref() == key {
                (Some(l.value.clone()), true)
            } else {
                (None, false)
            };
        }
        let removed = {
            let Node::Internal(int) = &mut *node else {
                unreachable!()
            };
            let rest = &key[depth..];
            if rest.len() < int.prefix.len() || rest[..int.prefix.len()] != int.prefix[..] {
                return (None, false);
            }
            let depth = depth + int.prefix.len();
            if depth == key.len() {
                match int.terminal.take() {
                    Some(l) => Some(l.value),
                    None => return (None, false),
                }
            } else {
                let b = key[depth];
                let Some(child) = int.children.get_mut(b) else {
                    return (None, false);
                };
                let (removed, drop_child) = Self::delete_rec(child, key, depth + 1);
                if drop_child {
                    int.children.remove(b);
                }
                match removed {
                    Some(v) => Some(v),
                    None => return (None, false),
                }
            }
        };

        // The node lost an entry: collapse or signal removal where possible.
        let (children_len, has_terminal) = {
            let Node::Internal(int) = &*node else {
                unreachable!()
            };
            (int.children.len(), int.terminal.is_some())
        };
        if children_len == 0 && !has_terminal {
            return (removed, true);
        }
        if children_len == 1 && !has_terminal {
            // Path compression: merge this node with its only child.
            let Node::Internal(int) = &mut *node else {
                unreachable!()
            };
            let (byte, child) = int.children.take_single_child();
            let mut merged_prefix = std::mem::take(&mut int.prefix);
            merged_prefix.push(byte);
            match child {
                Node::Leaf(l) => {
                    *node = Node::Leaf(l);
                }
                Node::Internal(mut child_int) => {
                    merged_prefix.extend_from_slice(&child_int.prefix);
                    child_int.prefix = merged_prefix;
                    *node = Node::Internal(child_int);
                }
            }
        }
        (removed, false)
    }

    /// Depth-first visit of all keys at or after `start`, in ascending key
    /// order. The visitor returns `false` to stop the scan.
    fn scan_rec<'a>(
        node: &'a Node<V>,
        path: &mut Vec<u8>,
        start: &[u8],
        visit: &mut impl FnMut(&[u8], &'a V) -> bool,
    ) -> bool {
        match node {
            Node::Leaf(l) => {
                if l.key.as_ref() >= start {
                    return visit(&l.key, &l.value);
                }
                true
            }
            Node::Internal(int) => {
                path.extend_from_slice(&int.prefix);
                let mut keep_going = true;
                if let Some(t) = &int.terminal {
                    if path.as_slice() >= start {
                        keep_going = visit(path, &t.value);
                    }
                }
                if keep_going {
                    for (b, child) in int.children.iter() {
                        path.push(b);
                        // Prune subtrees that lie entirely before `start`:
                        // every key below starts with `path`, so if `path` is
                        // not a prefix of `start` and sorts before it, the
                        // whole subtree sorts before `start`.
                        let skip = !is_prefix_of(path, start) && path.as_slice() < start;
                        if !skip {
                            keep_going = Self::scan_rec(child, path, start, visit);
                        }
                        path.pop();
                        if !keep_going {
                            break;
                        }
                    }
                }
                path.truncate(path.len() - int.prefix.len());
                keep_going
            }
        }
    }

    /// Visits every key/value pair at or after `start` in ascending order
    /// until the visitor returns `false`.
    pub fn scan_from(&self, start: &[u8], mut visit: impl FnMut(&[u8], &V) -> bool) {
        if let Some(root) = &self.root {
            let mut path = Vec::new();
            Self::scan_rec(root, &mut path, start, &mut visit);
        }
    }

    fn stats_rec(node: &Node<V>, stats: &mut IndexStats) {
        match node {
            Node::Leaf(l) => {
                stats.key_bytes += l.key.len();
                stats.value_bytes += std::mem::size_of::<V>();
                stats.structure_bytes += std::mem::size_of::<Leaf<V>>();
            }
            Node::Internal(int) => {
                stats.structure_bytes += std::mem::size_of::<Internal<V>>()
                    + int.prefix.len()
                    + int.children.structure_bytes();
                if let Some(t) = &int.terminal {
                    stats.key_bytes += t.key.len();
                    stats.value_bytes += std::mem::size_of::<V>();
                }
                for (_, child) in int.children.iter() {
                    Self::stats_rec(child, stats);
                }
            }
        }
    }
}

impl<V: Clone> OrderedIndex<V> for Art<V> {
    fn name(&self) -> &'static str {
        "art"
    }

    fn get(&self, key: &[u8]) -> Option<V> {
        self.root
            .as_ref()
            .and_then(|root| Self::get_rec(root, key, 0))
            .cloned()
    }

    fn set(&mut self, key: &[u8], value: V) -> Option<V> {
        let old = match &mut self.root {
            Some(root) => Self::insert_rec(root, key, 0, value),
            None => {
                self.root = Some(Node::Leaf(Self::make_leaf(key, value)));
                None
            }
        };
        if old.is_none() {
            self.len += 1;
            self.key_bytes += key.len();
        }
        old
    }

    fn del(&mut self, key: &[u8]) -> Option<V> {
        let Some(root) = &mut self.root else {
            return None;
        };
        let (removed, drop_root) = Self::delete_rec(root, key, 0);
        if drop_root {
            self.root = None;
        }
        if removed.is_some() {
            self.len -= 1;
            self.key_bytes -= key.len();
        }
        removed
    }

    fn len(&self) -> usize {
        self.len
    }

    fn range_from(&self, start: &[u8], count: usize) -> Vec<(Vec<u8>, V)> {
        let mut out = Vec::new();
        if count == 0 {
            return out;
        }
        self.scan_from(start, |k, v| {
            out.push((k.to_vec(), v.clone()));
            out.len() < count
        });
        out
    }

    fn stats(&self) -> IndexStats {
        let mut stats = IndexStats {
            keys: self.len,
            ..Default::default()
        };
        if let Some(root) = &self.root {
            Self::stats_rec(root, &mut stats);
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    #[test]
    fn empty_tree() {
        let mut t: Art<u64> = Art::new();
        assert!(t.is_empty());
        assert_eq!(t.get(b"x"), None);
        assert_eq!(t.del(b"x"), None);
        assert!(t.range_from(b"", 10).is_empty());
    }

    #[test]
    fn single_key() {
        let mut t = Art::new();
        t.set(b"hello", 1u64);
        assert_eq!(t.get(b"hello"), Some(1));
        assert_eq!(t.get(b"hell"), None);
        assert_eq!(t.get(b"hello!"), None);
        assert_eq!(t.del(b"hello"), Some(1));
        assert!(t.is_empty());
    }

    #[test]
    fn keys_that_are_prefixes_of_each_other() {
        let mut t = Art::new();
        t.set(b"a", 1u64);
        t.set(b"ab", 2);
        t.set(b"abc", 3);
        t.set(b"abcd", 4);
        for (k, v) in [(&b"a"[..], 1u64), (b"ab", 2), (b"abc", 3), (b"abcd", 4)] {
            assert_eq!(t.get(k), Some(v));
        }
        assert_eq!(t.del(b"ab"), Some(2));
        assert_eq!(t.get(b"ab"), None);
        assert_eq!(t.get(b"abc"), Some(3));
        assert_eq!(t.get(b"abcd"), Some(4));
        assert_eq!(t.get(b"a"), Some(1));
    }

    #[test]
    fn paper_example_names() {
        let names = [
            "Aaron", "Abbe", "Andrew", "Austin", "Denice", "Jacob", "James", "Jason", "John",
            "Joseph", "Julian", "Justin",
        ];
        let mut t = Art::new();
        for (i, k) in names.iter().enumerate() {
            t.set(k.as_bytes(), i as u64);
        }
        assert_eq!(t.len(), 12);
        for (i, k) in names.iter().enumerate() {
            assert_eq!(t.get(k.as_bytes()), Some(i as u64), "{k}");
        }
        assert_eq!(t.get(b"Denic"), None);
        assert_eq!(t.get(b"Denicee"), None);
        // Ordered scan returns sorted names.
        let scanned: Vec<String> = t
            .range_from(b"", usize::MAX)
            .into_iter()
            .map(|(k, _)| String::from_utf8(k).unwrap())
            .collect();
        let mut sorted: Vec<String> = names.iter().map(|s| s.to_string()).collect();
        sorted.sort();
        assert_eq!(scanned, sorted);
    }

    #[test]
    fn binary_keys_with_zero_bytes() {
        let mut t = Art::new();
        let keys: Vec<Vec<u8>> = vec![
            vec![1],
            vec![1, 0],
            vec![1, 0, 0],
            vec![1, 0, 0, 0],
            vec![1, 1],
            vec![1, 1, 1],
            vec![0],
            vec![],
        ];
        for (i, k) in keys.iter().enumerate() {
            t.set(k, i as u64);
        }
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(t.get(k), Some(i as u64), "{k:?}");
        }
        assert_eq!(t.len(), keys.len());
    }

    #[test]
    fn overwrite_keeps_len() {
        let mut t = Art::new();
        t.set(b"dup", 1u64);
        assert_eq!(t.set(b"dup", 2), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(b"dup"), Some(2));
    }

    #[test]
    fn path_compression_collapse_after_delete() {
        let mut t = Art::new();
        t.set(b"prefix-common-aaaa", 1u64);
        t.set(b"prefix-common-bbbb", 2);
        t.set(b"prefix-common-cccc", 3);
        assert_eq!(t.del(b"prefix-common-bbbb"), Some(2));
        assert_eq!(t.del(b"prefix-common-cccc"), Some(3));
        // Only one key left; lookups must still work after collapses.
        assert_eq!(t.get(b"prefix-common-aaaa"), Some(1));
        assert_eq!(t.len(), 1);
        t.set(b"prefix-common-dddd", 4);
        assert_eq!(t.get(b"prefix-common-dddd"), Some(4));
    }

    #[test]
    fn large_random_set() {
        use rand::Rng;
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(99);
        let mut t = Art::new();
        let mut model = BTreeMap::new();
        for i in 0u64..5000 {
            let len = rng.gen_range(1..24);
            let key: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
            t.set(&key, i);
            model.insert(key, i);
        }
        assert_eq!(t.len(), model.len());
        for (k, v) in &model {
            assert_eq!(t.get(k), Some(*v));
        }
        let scan = t.range_from(b"", usize::MAX);
        let expect: Vec<_> = model.iter().map(|(k, v)| (k.clone(), *v)).collect();
        assert_eq!(scan, expect);
    }

    #[test]
    fn range_from_middle() {
        let mut t = Art::new();
        for i in 0..100u64 {
            t.set(format!("key{i:03}").as_bytes(), i);
        }
        let out = t.range_from(b"key050", 5);
        let keys: Vec<String> = out
            .iter()
            .map(|(k, _)| String::from_utf8(k.clone()).unwrap())
            .collect();
        assert_eq!(keys, vec!["key050", "key051", "key052", "key053", "key054"]);
        // Start key absent from the index.
        let out = t.range_from(b"key0505", 2);
        assert_eq!(out[0].0, b"key051".to_vec());
    }

    #[test]
    fn stats_counts_nodes() {
        let mut t = Art::new();
        for i in 0..1000u64 {
            t.set(format!("{i:06}").as_bytes(), i);
        }
        let s = t.stats();
        assert_eq!(s.keys, 1000);
        assert_eq!(s.key_bytes, 6000);
        assert!(s.structure_bytes > 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn prop_matches_btreemap_model(ops in proptest::collection::vec(
            (proptest::collection::vec(any::<u8>(), 0..10), any::<u64>(), any::<bool>()), 1..300)) {
            let mut t = Art::new();
            let mut model: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
            for (key, value, is_delete) in ops {
                if is_delete {
                    prop_assert_eq!(t.del(&key), model.remove(&key));
                } else {
                    prop_assert_eq!(t.set(&key, value), model.insert(key.clone(), value));
                }
                prop_assert_eq!(t.len(), model.len());
            }
            for (k, v) in &model {
                prop_assert_eq!(t.get(k), Some(*v));
            }
            let scan = t.range_from(b"", usize::MAX);
            let expect: Vec<_> = model.iter().map(|(k, v)| (k.clone(), *v)).collect();
            prop_assert_eq!(scan, expect);
        }

        #[test]
        fn prop_range_from_matches_model(keys in proptest::collection::btree_set(
            proptest::collection::vec(any::<u8>(), 0..8), 1..100),
            start in proptest::collection::vec(any::<u8>(), 0..8),
            count in 0usize..20) {
            let mut t = Art::new();
            for (i, k) in keys.iter().enumerate() {
                t.set(k, i as u64);
            }
            let got: Vec<Vec<u8>> = t.range_from(&start, count).into_iter().map(|(k, _)| k).collect();
            let expect: Vec<Vec<u8>> = keys.iter().filter(|k| k.as_slice() >= start.as_slice())
                .take(count).cloned().collect();
            prop_assert_eq!(got, expect);
        }
    }
}
