//! Regression guards for the migration-idle router fast path: the hot
//! read path must stay **allocation-free** and — while no migration is in
//! flight — must make **zero** classic router critical-section entries
//! (one relaxed store + one fence + one flag load instead), observed
//! through [`ShardedWormhole::router_section_entries`]. The classic
//! configuration and the single-shard bypass are pinned alongside so a
//! routing change that silently re-introduces the per-op section tax (or
//! removes the counter's meaning) fails here rather than only in a bench.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use index_traits::ConcurrentOrderedIndex;
use wh_shard::{ShardedConfig, ShardedWormhole};
use wormhole::WormholeConfig;

// ---------------------------------------------------------------------
// Counting allocator (same idiom as wormhole's meta_property tests)
// ---------------------------------------------------------------------

thread_local! {
    /// Allocations made by the current thread (counts `alloc` and
    /// `realloc`; `dealloc` is free).
    static THREAD_ALLOCS: Cell<usize> = const { Cell::new(0) };
}

/// Wraps the system allocator, counting per-thread allocation events so a
/// test can assert a code path allocates nothing — regardless of what other
/// test threads do concurrently.
struct CountingAllocator;

// SAFETY: defers entirely to `System`; the thread-local counter is a plain
// `Cell<usize>` with const init, so touching it never allocates or drops.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        THREAD_ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        THREAD_ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn thread_allocs() -> usize {
    THREAD_ALLOCS.with(|c| c.get())
}

// ---------------------------------------------------------------------
// Fixtures
// ---------------------------------------------------------------------

const N_KEYS: u64 = 4_000;

fn keyset() -> Vec<Vec<u8>> {
    (0..N_KEYS)
        .map(|i| format!("user-{i:06}").into_bytes())
        .collect()
}

fn build(shards: &[&[u8]], fast_path: bool, keys: &[Vec<u8>]) -> ShardedWormhole<u64> {
    let idx = ShardedWormhole::with_config(
        ShardedConfig::with_boundaries(shards.iter().map(|b| b.to_vec()).collect())
            .with_inner(WormholeConfig::optimized())
            .with_router_fast_path(fast_path),
    );
    for (i, key) in keys.iter().enumerate() {
        idx.set(key, i as u64);
    }
    idx
}

const FOUR_SHARDS: [&[u8]; 3] = [b"user-001000", b"user-002000", b"user-003000"];

// ---------------------------------------------------------------------
// Critical-section entry counts
// ---------------------------------------------------------------------

#[test]
fn idle_fast_path_ops_enter_zero_router_sections() {
    let keys = keyset();
    let idx = build(&FOUR_SHARDS, true, &keys);
    // Preload registered this thread's handle and counted its sections; a
    // migration would revoke the bias, but none is in flight from here on.
    let before = idx.router_section_entries();
    for (i, key) in keys.iter().enumerate() {
        assert_eq!(idx.get(key), Some(i as u64));
    }
    for (i, key) in keys.iter().enumerate().step_by(7) {
        assert_eq!(idx.set(key, i as u64), Some(i as u64));
    }
    let batch: Vec<&[u8]> = keys.iter().step_by(3).map(Vec::as_slice).collect();
    let values = idx.get_batch(&batch);
    assert_eq!(values.len(), batch.len());
    assert_eq!(
        idx.router_section_entries() - before,
        0,
        "migration-idle point ops took the classic critical-section path"
    );
}

#[test]
fn classic_path_gets_enter_one_router_section_each() {
    let keys = keyset();
    let idx = build(&FOUR_SHARDS, false, &keys);
    let before = idx.router_section_entries();
    for (i, key) in keys.iter().enumerate() {
        assert_eq!(idx.get(key), Some(i as u64));
    }
    assert_eq!(
        idx.router_section_entries() - before,
        N_KEYS,
        "fast path off must route every get through a critical section"
    );
}

#[test]
fn single_shard_bypass_skips_the_router_even_without_fast_path() {
    let keys = keyset();
    let idx = build(&[], false, &keys);
    let before = idx.router_section_entries();
    for (i, key) in keys.iter().enumerate() {
        assert_eq!(idx.get(key), Some(i as u64));
    }
    let batch: Vec<&[u8]> = keys.iter().step_by(5).map(Vec::as_slice).collect();
    assert_eq!(idx.get_batch(&batch).len(), batch.len());
    assert_eq!(
        idx.router_section_entries() - before,
        0,
        "a 1-shard index can never migrate, so routing must bypass the router"
    );
}

#[test]
fn migration_revokes_then_restores_the_fast_path() {
    let keys = keyset();
    let idx = build(&FOUR_SHARDS, true, &keys);
    // A migration's own router reads (freeze checks, drains) may enter
    // sections on this thread; what's pinned is the steady state around it.
    let before = idx.router_section_entries();
    for key in keys.iter().take(200) {
        idx.get(key);
    }
    assert_eq!(idx.router_section_entries() - before, 0);
    idx.migrate_boundary(1, b"user-001500")
        .expect("forced migration failed");
    // Bias resumed after the migration: back to zero entries per op.
    let after_migration = idx.router_section_entries();
    for (i, key) in keys.iter().enumerate() {
        assert_eq!(idx.get(key), Some(i as u64));
    }
    assert_eq!(
        idx.router_section_entries() - after_migration,
        0,
        "fast path not restored after the migration drained"
    );
}

// ---------------------------------------------------------------------
// Allocation guard: the idle fast-path get
// ---------------------------------------------------------------------

#[test]
fn idle_fast_path_get_is_allocation_free() {
    let keys = keyset();
    let idx = build(&FOUR_SHARDS, true, &keys);
    // Warm up: thread registration with both the router QSBR domain and
    // every shard's domain happens on first contact.
    for key in keys.iter().take(64) {
        idx.get(key);
    }
    let before = thread_allocs();
    for (i, key) in keys.iter().enumerate() {
        assert_eq!(idx.get(key), Some(i as u64));
    }
    assert_eq!(
        thread_allocs() - before,
        0,
        "idle fast-path get allocated on the hot path"
    );
}
