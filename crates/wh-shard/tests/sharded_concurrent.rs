//! Concurrency tests for the sharded front: parallel writers over disjoint
//! and overlapping shard sets, and cross-shard cursors racing structural
//! churn on every shard at once.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use index_traits::ConcurrentOrderedIndex;
use wh_shard::{ShardedConfig, ShardedWormhole};
use wormhole::WormholeConfig;

fn churny() -> ShardedConfig {
    // Tiny leaves force constant splits and merges, so the writer mutex of
    // each shard is exercised hard.
    ShardedConfig::evenly(4).with_inner(WormholeConfig::optimized().with_leaf_capacity(8))
}

#[test]
fn parallel_writers_on_distinct_shards_preserve_every_key() {
    let idx = Arc::new(ShardedWormhole::<u64>::with_config(churny()));
    let threads = 8usize;
    let per_thread = 3_000u64;
    std::thread::scope(|scope| {
        for t in 0..threads {
            let idx = Arc::clone(&idx);
            scope.spawn(move || {
                // Thread t's keys start with byte 32·t: threads map onto
                // shards without perfect alignment (two threads per shard).
                for i in 0..per_thread {
                    let key = [(t * 32) as u8, (i >> 8) as u8, i as u8];
                    idx.set(&key, i);
                }
            });
        }
    });
    assert_eq!(idx.len(), threads * per_thread as usize);
    idx.check_invariants();
    let all = idx.range_from(b"", usize::MAX);
    assert_eq!(all.len(), threads * per_thread as usize);
    assert!(all.windows(2).all(|w| w[0].0 < w[1].0));
}

#[test]
fn cross_shard_scans_stay_ordered_under_churn() {
    // Smoke-scale in debug builds; the full-scale version of this property
    // is `sharded_multi_writer_scan_stress` in tests/concurrent_wormhole.rs
    // (release-gated).
    let scans = if cfg!(debug_assertions) { 6 } else { 60 };
    let idx = Arc::new(ShardedWormhole::<u64>::with_config(churny()));
    let n_stable = 1_024u64;
    for i in 0..n_stable {
        // 4 keys per first byte: the stable population spans all shards.
        idx.set(&[(i / 4) as u8, b'-', i as u8], i);
    }
    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|scope| {
        for t in 0..2u64 {
            let idx = Arc::clone(&idx);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut round = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    for i in ((t * 2)..n_stable).step_by(5) {
                        idx.set(&[(i / 4) as u8, b'~', i as u8, t as u8], round);
                    }
                    for i in ((t * 2)..n_stable).step_by(5) {
                        idx.del(&[(i / 4) as u8, b'~', i as u8, t as u8]);
                    }
                    round += 1;
                }
            });
        }
        let mut readers = Vec::new();
        for _ in 0..2 {
            let idx = Arc::clone(&idx);
            readers.push(scope.spawn(move || {
                for _ in 0..scans {
                    let mut cursor = idx.scan(b"");
                    let mut prev: Option<Vec<u8>> = None;
                    let mut stable_seen = 0u64;
                    while let Some((key, value)) = cursor.next() {
                        if let Some(prev) = &prev {
                            assert!(prev.as_slice() < key, "stream not strictly ascending");
                        }
                        if key.len() == 3 && key[1] == b'-' {
                            let id = u64::from(key[0]) * 4 + u64::from(key[2]) % 4;
                            assert_eq!(id, stable_seen, "stable key missing or duplicated");
                            assert_eq!(*value, id, "torn stable value");
                            stable_seen += 1;
                        }
                        prev = Some(key.to_vec());
                    }
                    assert_eq!(stable_seen, n_stable, "scan lost stable keys");
                }
            }));
        }
        for r in readers {
            r.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
    });
    idx.check_invariants();
}

#[test]
fn resume_keys_survive_concurrent_mutation_across_boundaries() {
    let idx = Arc::new(ShardedWormhole::<u64>::with_config(churny()));
    for i in 0..512u64 {
        idx.set(&[(i / 2) as u8, b'k', i as u8], i);
    }
    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|scope| {
        {
            let idx = Arc::clone(&idx);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut round = 1_000u64;
                while !stop.load(Ordering::Relaxed) {
                    for i in (0..512u64).step_by(3) {
                        idx.set(&[(i / 2) as u8, b'z', i as u8], round);
                        idx.del(&[(i / 2) as u8, b'z', i as u8]);
                    }
                    round += 1;
                }
            });
        }
        // Paginate the stable population in small windows through resume
        // keys while the writer churns; stable keys must appear exactly
        // once, in order, across all pages.
        for _ in 0..10 {
            let mut resume: Vec<u8> = Vec::new();
            let mut stable_seen = 0u64;
            loop {
                let mut cursor = idx.scan(&resume);
                let mut page = Vec::new();
                if cursor.collect_next(7, &mut page) == 0 {
                    break;
                }
                resume = cursor.resume_key();
                drop(cursor);
                for (key, value) in &page {
                    if key.len() == 3 && key[1] == b'k' {
                        let id = u64::from(key[0]) * 2 + u64::from(key[2]) % 2;
                        assert_eq!(id, stable_seen, "stable key missing/duplicated in pages");
                        assert_eq!(*value, id);
                        stable_seen += 1;
                    }
                }
            }
            assert_eq!(stable_seen, 512);
        }
        stop.store(true, Ordering::Relaxed);
    });
    idx.check_invariants();
}
