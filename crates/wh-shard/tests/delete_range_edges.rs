//! Edge cases of `delete_range` on the sharded front (and the plain
//! index underneath it): degenerate windows, the full-index window, a
//! window whose endpoints sit exactly on a shard boundary, and a window
//! inside a range that a live migration has frozen mid-sweep.

use index_traits::ConcurrentOrderedIndex;
use wh_shard::{RebalanceConfig, ShardedConfig, ShardedWormhole};
use wormhole::{Wormhole, WormholeConfig};

fn two_sharded() -> ShardedWormhole<u64> {
    ShardedWormhole::with_config(
        ShardedConfig::with_boundaries(vec![b"m".to_vec()])
            .with_inner(WormholeConfig::optimized().with_leaf_capacity(8)),
    )
}

fn fill(idx: &impl ConcurrentOrderedIndex<u64>, n: u64) {
    for i in 0..n {
        let key = format!("{}{:04}", (b'a' + (i % 26) as u8) as char, i);
        idx.set(key.as_bytes(), i);
    }
}

#[test]
fn degenerate_windows_remove_nothing_everywhere() {
    let plain = Wormhole::<u64>::with_config(WormholeConfig::optimized().with_leaf_capacity(8));
    let sharded = two_sharded();
    fill(&plain, 500);
    fill(&sharded, 500);
    for idx in [&plain as &dyn ConcurrentOrderedIndex<u64>, &sharded] {
        assert_eq!(idx.delete_range(b"", b""), 0, "empty-empty window");
        assert_eq!(idx.delete_range(b"g", b"g"), 0, "point window");
        assert_eq!(idx.delete_range(b"t", b"g"), 0, "inverted window");
        assert_eq!(idx.delete_range(b"zzz", b"zzzz"), 0, "window past all keys");
        assert_eq!(idx.len(), 500);
    }
    // The empty index accepts any window.
    let empty = two_sharded();
    assert_eq!(empty.delete_range(b"", b"\xff"), 0);
    assert_eq!(empty.len(), 0);
}

#[test]
fn full_index_window_drains_every_shard() {
    let idx = two_sharded();
    fill(&idx, 600);
    // Both shards are populated before the drain.
    assert!(idx.shard(0).len() > 0 && idx.shard(1).len() > 0);
    assert_eq!(idx.delete_range(b"", b"\xff"), 600);
    assert_eq!(idx.len(), 0);
    assert!(idx.range_from(b"", usize::MAX).is_empty());
    idx.check_invariants();
    // The index keeps working after a full drain.
    idx.set(b"reborn", 1);
    assert_eq!(idx.get(b"reborn"), Some(1));
}

#[test]
fn window_endpoints_exactly_on_a_shard_boundary() {
    // Keys m0000..m0009 sit at the very bottom of shard 1 (boundary "m").
    let idx = two_sharded();
    fill(&idx, 600);
    let below: Vec<_> = idx
        .range_from(b"f", usize::MAX)
        .into_iter()
        .take_while(|(k, _)| k.as_slice() < b"m" as &[u8])
        .collect();
    // hi == boundary: the window ends exactly where shard 0 ends; nothing
    // in shard 1 (keys >= "m") may be touched.
    let shard1_before = idx.shard(1).len();
    assert_eq!(idx.delete_range(b"f", b"m"), below.len());
    assert_eq!(idx.shard(1).len(), shard1_before);
    assert!(idx.get(b"f0005").is_none());
    assert!(idx.get(b"m0012").is_some());

    // lo == boundary: the window starts exactly where shard 1 begins;
    // shard 0's remaining keys are untouched.
    let shard0_before = idx.shard(0).len();
    let mid: Vec<_> = idx
        .range_from(b"m", usize::MAX)
        .into_iter()
        .take_while(|(k, _)| k.as_slice() < b"p" as &[u8])
        .collect();
    assert!(!mid.is_empty());
    assert_eq!(idx.delete_range(b"m", b"p"), mid.len());
    assert_eq!(idx.shard(0).len(), shard0_before);
    assert!(idx.get(b"m0012").is_none());
    idx.check_invariants();
}

#[test]
fn window_inside_a_frozen_migrating_range_is_exact() {
    // Small batches make the migration freeze/publish many times while the
    // sweep below runs, so deletes genuinely hit frozen sub-ranges and
    // have to wait them out.
    let idx = ShardedWormhole::<u64>::with_config(
        ShardedConfig::with_boundaries(vec![b"t".to_vec()])
            .with_inner(WormholeConfig::optimized().with_leaf_capacity(8))
            .with_rebalance(RebalanceConfig {
                batch_keys: 16,
                ..RebalanceConfig::default()
            }),
    );
    fill(&idx, 2_000);
    let in_window = idx
        .range_from(b"g", usize::MAX)
        .into_iter()
        .take_while(|(k, _)| k.as_slice() < b"l" as &[u8])
        .count();
    assert!(in_window > 100, "window too small to be interesting");
    let total = idx.len();
    std::thread::scope(|scope| {
        let idx = &idx;
        let migrator = scope.spawn(move || {
            // Drag the boundary down through the window and back up: the
            // deletes race freeze windows on both sides of their sweep.
            idx.migrate_boundary(0, b"h").unwrap();
            idx.migrate_boundary(0, b"t").unwrap()
        });
        let removed = idx.delete_range(b"g", b"l");
        assert_eq!(removed, in_window, "every key deleted exactly once");
        migrator.join().unwrap();
    });
    assert_eq!(idx.len(), total - in_window);
    assert!(idx.range_from(b"g", 1)[0].0.as_slice() >= b"l" as &[u8]);
    idx.check_invariants();
}
