//! Shard-count and boundary configuration for [`crate::ShardedWormhole`].
//!
//! A sharded index is fully described by its **boundary keys** — the
//! strictly ascending, non-empty byte strings that partition the key space
//! — plus the [`WormholeConfig`] every shard is built with. `N` shards need
//! `N - 1` boundaries: shard `0` covers `[ε, b₀)`, shard `i` covers
//! `[bᵢ₋₁, bᵢ)`, and the last shard covers `[bₙ₋₂, ∞)`. Boundaries are
//! fixed at construction; three ways to choose them are provided:
//!
//! * [`ShardedConfig::evenly`] — split the byte space by first byte, for
//!   keys whose leading byte is roughly uniform;
//! * [`ShardedConfig::from_sample`] — quantile boundaries drawn from a
//!   sample of the expected keyset, for skewed distributions;
//! * [`ShardedConfig::with_boundaries`] — explicit boundaries chosen by the
//!   caller (e.g. tenant prefixes).

use wormhole::WormholeConfig;

use crate::rebalance::RebalanceConfig;

/// Construction parameters of a [`crate::ShardedWormhole`]: the resolved
/// boundary keys, the per-shard Wormhole configuration, and the rebalance
/// policy applied by [`crate::ShardedWormhole::maybe_rebalance`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardedConfig {
    boundaries: Vec<Vec<u8>>,
    inner: WormholeConfig,
    rebalance: RebalanceConfig,
    router_fast_path: bool,
}

/// The `numer/denom` quantile of an ascending key sample: the shared
/// machinery under both [`ShardedConfig::from_sample`] (construction-time
/// boundaries) and the online rebalancer's boundary pick (which feeds it a
/// stride sample of the live donor shard streamed through a cursor).
///
/// Returns `None` for an empty sample or a quantile beyond its end; the
/// returned key is a member of the sample, so choosing it as a boundary
/// always lands on (the location of) a real key.
pub fn sample_quantile<K: AsRef<[u8]>>(sorted: &[K], numer: usize, denom: usize) -> Option<&[u8]> {
    if sorted.is_empty() || denom == 0 {
        return None;
    }
    let idx = ((numer as u128 * sorted.len() as u128) / denom as u128) as usize;
    sorted.get(idx).map(K::as_ref)
}

/// Validates the boundary invariants: strictly ascending and non-empty
/// (an empty boundary would make shard 0's range empty, leaving it
/// unreachable by the router).
fn validate(boundaries: &[Vec<u8>]) {
    for (i, boundary) in boundaries.iter().enumerate() {
        assert!(!boundary.is_empty(), "shard boundary {i} is empty");
        if i > 0 {
            assert!(
                boundaries[i - 1] < *boundary,
                "shard boundaries not strictly ascending at {i}"
            );
        }
    }
}

impl ShardedConfig {
    /// Splits the key space into `shards` ranges of (approximately) equal
    /// first-byte width: boundary `i` is the single byte `256·i/shards`.
    /// Right for keys whose leading byte is roughly uniform; for skewed
    /// keysets prefer [`ShardedConfig::from_sample`].
    ///
    /// `shards` is capped at 256 (single-byte boundaries cannot distinguish
    /// more ranges).
    pub fn evenly(shards: usize) -> Self {
        let shards = shards.clamp(1, 256);
        let boundaries = (1..shards)
            .map(|i| vec![(i * 256 / shards) as u8])
            .collect();
        Self {
            boundaries,
            inner: WormholeConfig::default(),
            rebalance: RebalanceConfig::default(),
            router_fast_path: true,
        }
    }

    /// Explicit boundary keys; the index gets `boundaries.len() + 1`
    /// shards. Panics unless the boundaries are strictly ascending and
    /// non-empty.
    pub fn with_boundaries(boundaries: Vec<Vec<u8>>) -> Self {
        validate(&boundaries);
        Self {
            boundaries,
            inner: WormholeConfig::default(),
            rebalance: RebalanceConfig::default(),
            router_fast_path: true,
        }
    }

    /// Chooses up to `shards - 1` boundaries as the quantiles of a sample
    /// of the expected keyset, so each shard receives roughly the same
    /// share of a *skewed* key distribution. Duplicate or empty quantile
    /// keys are dropped, which can yield fewer shards than requested (a
    /// sample with too few distinct keys cannot support the requested
    /// fan-out).
    pub fn from_sample<K: AsRef<[u8]>>(shards: usize, sample: &[K]) -> Self {
        let shards = shards.max(1);
        let mut sorted: Vec<&[u8]> = sample
            .iter()
            .map(|k| k.as_ref())
            .filter(|k| !k.is_empty())
            .collect();
        sorted.sort_unstable();
        sorted.dedup();
        let mut boundaries: Vec<Vec<u8>> = Vec::with_capacity(shards.saturating_sub(1));
        for i in 1..shards {
            let Some(candidate) = sample_quantile(&sorted, i, shards) else {
                continue;
            };
            if boundaries.last().map(Vec::as_slice) != Some(candidate) {
                boundaries.push(candidate.to_vec());
            }
        }
        validate(&boundaries);
        Self {
            boundaries,
            inner: WormholeConfig::default(),
            rebalance: RebalanceConfig::default(),
            router_fast_path: true,
        }
    }

    /// Overrides the per-shard [`WormholeConfig`].
    pub fn with_inner(mut self, inner: WormholeConfig) -> Self {
        self.inner = inner;
        self
    }

    /// Overrides the rebalance policy consulted by
    /// [`crate::ShardedWormhole::maybe_rebalance`].
    pub fn with_rebalance(mut self, rebalance: RebalanceConfig) -> Self {
        self.rebalance = rebalance;
        self
    }

    /// The rebalance policy.
    pub fn rebalance(&self) -> &RebalanceConfig {
        &self.rebalance
    }

    /// Number of shards the configuration produces.
    pub fn shard_count(&self) -> usize {
        self.boundaries.len() + 1
    }

    /// The resolved boundary keys, strictly ascending.
    pub fn boundaries(&self) -> &[Vec<u8>] {
        &self.boundaries
    }

    /// The per-shard Wormhole configuration.
    pub fn inner(&self) -> &WormholeConfig {
        &self.inner
    }

    /// Enables or disables the migration-idle **router fast path**
    /// (default: enabled). While no migration is in flight, point ops route
    /// off the published table through a biased QSBR entry — one relaxed
    /// store, one fence, one flag load — instead of a full read-side
    /// critical section; the migration engine's draining barrier keeps the
    /// skipped sections ordered against table swaps. Disabling it forces
    /// every op through the classic critical-section path, which is what
    /// the A/B cells in `BENCH_shard.json` compare.
    pub fn with_router_fast_path(mut self, enabled: bool) -> Self {
        self.router_fast_path = enabled;
        self
    }

    /// Whether the migration-idle router fast path is enabled.
    pub fn router_fast_path(&self) -> bool {
        self.router_fast_path
    }

    pub(crate) fn into_parts(self) -> (Vec<Vec<u8>>, WormholeConfig, RebalanceConfig, bool) {
        (
            self.boundaries,
            self.inner,
            self.rebalance,
            self.router_fast_path,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evenly_splits_first_byte_space() {
        let config = ShardedConfig::evenly(4);
        assert_eq!(config.shard_count(), 4);
        assert_eq!(
            config.boundaries(),
            &[vec![64u8], vec![128], vec![192]] as &[Vec<u8>]
        );
        assert_eq!(ShardedConfig::evenly(1).shard_count(), 1);
        assert_eq!(ShardedConfig::evenly(0).shard_count(), 1);
        // More shards than byte values degrade gracefully.
        assert_eq!(ShardedConfig::evenly(1000).shard_count(), 256);
    }

    #[test]
    fn sample_boundaries_follow_quantiles() {
        let sample: Vec<Vec<u8>> = (0..1000u32)
            .map(|i| format!("user-{i:04}").into_bytes())
            .collect();
        let config = ShardedConfig::from_sample(4, &sample);
        assert_eq!(config.shard_count(), 4);
        assert_eq!(config.boundaries()[0], b"user-0250".to_vec());
        assert_eq!(config.boundaries()[1], b"user-0500".to_vec());
        assert_eq!(config.boundaries()[2], b"user-0750".to_vec());
    }

    #[test]
    fn degenerate_sample_reduces_shard_count() {
        let sample = [b"same".to_vec(), b"same".to_vec(), b"same".to_vec()];
        let config = ShardedConfig::from_sample(8, &sample);
        assert!(config.shard_count() <= 2, "one distinct key, ≤ 2 shards");
        let empty: Vec<Vec<u8>> = Vec::new();
        assert_eq!(ShardedConfig::from_sample(8, &empty).shard_count(), 1);
    }

    #[test]
    fn sample_quantile_selects_by_fraction() {
        let sample: Vec<Vec<u8>> = (0..100u32)
            .map(|i| format!("q{i:03}").into_bytes())
            .collect();
        assert_eq!(sample_quantile(&sample, 0, 4), Some(&b"q000"[..]));
        assert_eq!(sample_quantile(&sample, 1, 4), Some(&b"q025"[..]));
        assert_eq!(sample_quantile(&sample, 3, 4), Some(&b"q075"[..]));
        assert_eq!(
            sample_quantile(&sample, 4, 4),
            None,
            "end quantile is out of range"
        );
        assert_eq!(sample_quantile(&sample, 1, 0), None, "zero denominator");
        let empty: Vec<Vec<u8>> = Vec::new();
        assert_eq!(sample_quantile(&empty, 1, 2), None);
    }

    #[test]
    #[should_panic(expected = "not strictly ascending")]
    fn unsorted_explicit_boundaries_rejected() {
        let _ = ShardedConfig::with_boundaries(vec![b"m".to_vec(), b"a".to_vec()]);
    }

    #[test]
    #[should_panic(expected = "is empty")]
    fn empty_boundary_rejected() {
        let _ = ShardedConfig::with_boundaries(vec![Vec::new(), b"m".to_vec()]);
    }
}
